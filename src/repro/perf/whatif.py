"""Dimemas-style what-if replays: re-run a configuration on altered machines.

The BSC methodology's signature move is replaying a traced application on a
parametrically modified platform ("what if the network were ideal?", "what
if memory bandwidth doubled?").  A simulator does this exactly: re-run the
same configuration with one :class:`~repro.machine.knl.KnlParameters` field
swept.

:func:`runtime_attribution` decomposes the FFT phase runtime into the
shares attributable to each modelled bottleneck by lifting them one at a
time: ideal network (the POP transfer factor), infinite memory bandwidth
(the contention the paper's Opt 2 attacks), and zero jitter (the noise
floor).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.config import RunConfig
from repro.core.driver import run_fft_phase
from repro.machine.knl import KnlParameters

__all__ = ["whatif_sweep", "runtime_attribution", "SWEEPABLE_PARAMETERS"]

#: KnlParameters fields that make sense to sweep.
SWEEPABLE_PARAMETERS = (
    "frequency_hz",
    "mem_bandwidth",
    "mem_bw_rampup_max",
    "net_injection_bw",
    "net_capacity",
    "net_latency",
    "compute_jitter",
)


def whatif_sweep(
    config: RunConfig,
    parameter: str,
    values: _t.Sequence[float],
    knl: KnlParameters | None = None,
) -> list[tuple[float, float]]:
    """Phase runtime for each value of one machine parameter.

    Returns ``[(value, phase_time_s), ...]`` in input order.
    """
    if parameter not in SWEEPABLE_PARAMETERS:
        raise ValueError(
            f"cannot sweep {parameter!r}; choose from {SWEEPABLE_PARAMETERS}"
        )
    base = knl or KnlParameters()
    out = []
    for value in values:
        machine = dataclasses.replace(base, **{parameter: value})
        result = run_fft_phase(config, knl=machine)
        out.append((value, result.phase_time))
    return out


def runtime_attribution(
    config: RunConfig, knl: KnlParameters | None = None
) -> dict[str, float]:
    """Decompose the phase runtime by lifting one bottleneck at a time.

    Returns a mapping with the measured runtime and the runtime under each
    single what-if: ``ideal_network`` (zero latency, infinite transport),
    ``infinite_bandwidth`` (no memory contention; hyper-thread sharing and
    nominal IPCs remain), and ``no_jitter``.  The relative gaps are the
    shares of runtime each mechanism is responsible for.
    """
    base = knl or KnlParameters()
    measured = run_fft_phase(config, knl=base).phase_time

    ideal_net = dataclasses.replace(
        base, net_latency=0.0, net_injection_bw=1e18, net_capacity=1e18
    )
    no_contention = dataclasses.replace(
        base, mem_bandwidth=1e18, mem_bw_rampup_max=None
    )
    no_jitter = dataclasses.replace(base, compute_jitter=0.0)

    return {
        "measured": measured,
        "ideal_network": run_fft_phase(config, knl=ideal_net).phase_time,
        "infinite_bandwidth": run_fft_phase(config, knl=no_contention).phase_time,
        "no_jitter": run_fft_phase(config, knl=no_jitter).phase_time,
    }
