"""The trace monitor (Extrae analogue).

A :class:`Tracer` plugs into the driver's three observer hooks and collects
every compute-phase record, MPI record and task record of a run into a
:class:`Trace` — the raw material for the POP model, the timeline views and
the Paraver export.  Unlike real instrumentation it is exact and overhead
free (the paper quotes 0.6-2.2 % monitor overhead; a simulator pays none).

The record classes themselves live in :mod:`repro.telemetry.trace` (shared
with the unified telemetry layer); this module re-exports them and keeps the
one-call :func:`trace_run` entry point.  Tracing is opt-in: a plain
``run_fft_phase`` attaches no observers and records nothing — use
``trace_run``, ``RunConfig(telemetry=True)`` or an explicit telemetry
session to observe a run.
"""

from __future__ import annotations

import typing as _t

from repro.core.config import RunConfig
from repro.core.driver import RunResult, run_fft_phase
from repro.telemetry.trace import Trace, Tracer

__all__ = ["Trace", "Tracer", "trace_run"]


def trace_run(config: RunConfig, **run_kwargs: _t.Any) -> tuple[RunResult, Trace]:
    """Run a configuration with tracing attached; returns (result, trace).

    When the run is telemetry-enabled (``config.telemetry`` or a
    ``telemetry=`` keyword), the driver's own tracer already collects the
    records and this returns its trace; otherwise a standalone
    :class:`Tracer` is attached through the observer hooks.
    """
    tracer = Tracer()
    result = run_fft_phase(
        config,
        mpi_observer=tracer.on_mpi,
        compute_observer=tracer.on_compute,
        task_observer=tracer.on_task,
        **run_kwargs,
    )
    if result.telemetry is not None and result.telemetry.enabled:
        return result, result.telemetry.trace
    return result, tracer.trace
