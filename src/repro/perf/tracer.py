"""The trace monitor (Extrae analogue).

A :class:`Tracer` plugs into the driver's three observer hooks and collects
every compute-phase record, MPI record and task record of a run into a
:class:`Trace` — the raw material for the POP model, the timeline views and
the Paraver export.  Unlike real instrumentation it is exact and overhead
free (the paper quotes 0.6-2.2 % monitor overhead; a simulator pays none).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.config import RunConfig
from repro.core.driver import RunResult, run_fft_phase
from repro.machine.cpu import ComputeRecord
from repro.mpisim.world import MpiRecord
from repro.ompss.task import TaskRecord

__all__ = ["Trace", "Tracer", "trace_run"]


@dataclasses.dataclass
class Trace:
    """All records of one run, in completion order."""

    compute: list[ComputeRecord] = dataclasses.field(default_factory=list)
    mpi: list[MpiRecord] = dataclasses.field(default_factory=list)
    tasks: list[tuple[int, TaskRecord]] = dataclasses.field(default_factory=list)

    @property
    def streams(self) -> list:
        """All streams that appear in compute or MPI records, sorted."""
        seen = {r.stream for r in self.compute} | {r.stream for r in self.mpi}
        return sorted(seen)

    @property
    def span(self) -> float:
        """Last record end time (the traced horizon)."""
        ends = [r.end for r in self.compute] + [r.t_end for r in self.mpi]
        return max(ends) if ends else 0.0

    def compute_of(self, stream) -> list[ComputeRecord]:
        """Compute records of one stream, by start time."""
        return sorted(
            (r for r in self.compute if r.stream == stream), key=lambda r: r.start
        )

    def mpi_of(self, stream) -> list[MpiRecord]:
        """MPI records of one stream, by begin time."""
        return sorted(
            (r for r in self.mpi if r.stream == stream), key=lambda r: r.t_begin
        )


class Tracer:
    """Observer bundle feeding a :class:`Trace`."""

    def __init__(self) -> None:
        self.trace = Trace()

    # The three hooks the driver accepts:

    def on_compute(self, record: ComputeRecord) -> None:
        """Compute-phase completion hook."""
        self.trace.compute.append(record)

    def on_mpi(self, record: MpiRecord) -> None:
        """MPI call completion hook."""
        self.trace.mpi.append(record)

    def on_task(self, rank: int, record: TaskRecord) -> None:
        """OmpSs task completion hook."""
        self.trace.tasks.append((rank, record))


def trace_run(config: RunConfig, **run_kwargs: _t.Any) -> tuple[RunResult, Trace]:
    """Run a configuration with tracing attached; returns (result, trace)."""
    tracer = Tracer()
    result = run_fft_phase(
        config,
        mpi_observer=tracer.on_mpi,
        compute_observer=tracer.on_compute,
        task_observer=tracer.on_task,
        **run_kwargs,
    )
    return result, tracer.trace
