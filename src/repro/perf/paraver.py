"""Paraver-style trace files (.prv with .pcf/.row sidecars).

The BSC tools store traces as plain-text records; this module writes the
subset the reproduction needs and reads it back:

* header — ``#Paraver (<date>):<duration>_ns:<nodes>(<cpus>):...``
* state records — ``1:cpu:appl:task:thread:begin:end:state`` (compute
  phases and MPI calls, coded via the tables below);
* event records — ``2:cpu:appl:task:thread:time:type:value`` (instruction
  counts at phase end, MPI call ids at call begin/end).

The ``.pcf`` sidecar carries the state/event legends (as Paraver expects)
and the ``.row`` sidecar the stream labels.  Pairwise communication records
(type 3) are not emitted: the simulator's collectives are not decomposed
into point-to-point messages.

Times are written in integer nanoseconds.
"""

from __future__ import annotations

import pathlib
import typing as _t

from repro.perf.tracer import Trace

__all__ = ["write_prv", "read_prv", "STATE_CODES", "MPI_CALL_CODES"]

#: Paraver state ids for the compute phases.
STATE_CODES: dict[str, int] = {
    "idle": 0,
    "prepare_psis": 2,
    "pack_sticks": 3,
    "fft_z": 4,
    "scatter_reorder": 5,
    "fft_xy": 6,
    "vofr": 7,
    "unpack_sticks": 8,
}

#: Paraver state ids for MPI calls (offset block, as Extrae does).
MPI_CALL_CODES: dict[str, int] = {
    "alltoall": 20,
    "barrier": 21,
    "bcast": 22,
    "allreduce": 23,
    "gather": 24,
    "split": 25,
    "send": 26,
    "recv": 27,
    "allgather": 28,
    "reduce": 29,
    "rscatter": 30,
    "dup": 31,
}

#: Event type for useful instructions (PAPI_TOT_INS's conventional id).
EV_INSTRUCTIONS = 42000050
#: Event type for MPI call begin/end (Extrae's MPI event block).
EV_MPI_CALL = 50000001

_NS = 1e9


def _stream_ids(streams: _t.Sequence) -> dict:
    """Map a stream to (cpu, task, thread), all 1-based."""
    ids = {}
    for i, stream in enumerate(sorted(streams)):
        rank, thread = stream
        ids[stream] = (i + 1, rank + 1, thread + 1)
    return ids


def write_prv(path: str | pathlib.Path, trace: Trace, label: str = "fftxlib") -> pathlib.Path:
    """Write ``<path>.prv`` (+ ``.pcf``, ``.row``); returns the .prv path."""
    path = pathlib.Path(path)
    prv = path.with_suffix(".prv")
    streams = trace.streams
    ids = _stream_ids(streams)
    duration_ns = int(round(trace.span * _NS))
    n_tasks = len({s[0] for s in streams})
    max_threads = max((s[1] + 1 for s in streams), default=1)

    lines = [
        f"#Paraver (01/01/2026 at 00:00):{duration_ns}_ns:1({len(streams)}):1:"
        f"1({n_tasks}:{max_threads})"
    ]
    records: list[tuple[float, str]] = []
    for r in trace.compute:
        cpu, task, thread = ids[r.stream]
        b, e = int(round(r.start * _NS)), int(round(r.end * _NS))
        code = STATE_CODES.get(r.phase)
        if code is None:
            raise ValueError(f"phase {r.phase!r} has no Paraver state code")
        records.append((r.start, f"1:{cpu}:1:{task}:{thread}:{b}:{e}:{code}"))
        records.append(
            (r.end, f"2:{cpu}:1:{task}:{thread}:{e}:{EV_INSTRUCTIONS}:{int(r.instructions)}")
        )
    for r in trace.mpi:
        cpu, task, thread = ids[r.stream]
        b, e = int(round(r.t_begin * _NS)), int(round(r.t_end * _NS))
        code = MPI_CALL_CODES.get(r.call)
        if code is None:
            raise ValueError(f"MPI call {r.call!r} has no Paraver state code")
        records.append((r.t_begin, f"1:{cpu}:1:{task}:{thread}:{b}:{e}:{code}"))
        records.append((r.t_begin, f"2:{cpu}:1:{task}:{thread}:{b}:{EV_MPI_CALL}:{code}"))
        records.append((r.t_end, f"2:{cpu}:1:{task}:{thread}:{e}:{EV_MPI_CALL}:0"))
    records.sort(key=lambda t: t[0])
    lines.extend(rec for _t0, rec in records)
    prv.write_text("\n".join(lines) + "\n")

    pcf_lines = ["DEFAULT_OPTIONS", "", "STATES"]
    for name, code in sorted(STATE_CODES.items(), key=lambda kv: kv[1]):
        pcf_lines.append(f"{code}    {name}")
    for name, code in sorted(MPI_CALL_CODES.items(), key=lambda kv: kv[1]):
        pcf_lines.append(f"{code}    MPI_{name}")
    pcf_lines += [
        "",
        "EVENT_TYPE",
        f"0    {EV_INSTRUCTIONS}    Useful instructions",
        f"0    {EV_MPI_CALL}    MPI call (0 = outside)",
    ]
    prv.with_suffix(".pcf").write_text("\n".join(pcf_lines) + "\n")

    row_lines = [f"LEVEL CPU SIZE {len(streams)}"]
    row_lines += [f"{label}.rank{s[0]}.thread{s[1]}" for s in sorted(streams)]
    prv.with_suffix(".row").write_text("\n".join(row_lines) + "\n")
    return prv


def read_prv(path: str | pathlib.Path) -> dict:
    """Parse a ``.prv`` written by :func:`write_prv`.

    Returns ``{"duration_ns": int, "states": [...], "events": [...]}``
    where states are ``(cpu, task, thread, begin_ns, end_ns, state)`` and
    events ``(cpu, task, thread, time_ns, type, value)`` (all ints).
    """
    path = pathlib.Path(path)
    states, events = [], []
    duration_ns = 0
    with path.open() as fh:
        header = fh.readline().strip()
        if not header.startswith("#Paraver"):
            raise ValueError(f"{path} is not a Paraver trace (bad header)")
        # The date field contains colons; the duration follows the first "):".
        after_date = header.split("):", 1)[1]
        duration_ns = int(after_date.split(":", 1)[0].replace("_ns", ""))
        for line in fh:
            line = line.strip()
            if not line:
                continue
            fields = line.split(":")
            kind = fields[0]
            if kind == "1":
                _k, cpu, _appl, task, thread, begin, end, state = fields
                states.append(
                    (int(cpu), int(task), int(thread), int(begin), int(end), int(state))
                )
            elif kind == "2":
                _k, cpu, _appl, task, thread, time, etype, value = fields
                events.append(
                    (int(cpu), int(task), int(thread), int(time), int(etype), int(value))
                )
            else:
                raise ValueError(f"unsupported record kind {kind!r} in {path}")
    return {"duration_ns": duration_ns, "states": states, "events": events}
