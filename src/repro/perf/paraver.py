"""Paraver-style trace files (.prv with .pcf/.row sidecars).

The BSC tools store traces as plain-text records; this module writes the
subset the reproduction needs and reads it back:

* header — ``#Paraver (<date>):<duration>_ns:<nodes>(<cpus>):...``
* state records — ``1:cpu:appl:task:thread:begin:end:state`` (compute
  phases and MPI calls, coded via the tables below);
* event records — ``2:cpu:appl:task:thread:time:type:value`` (instruction
  counts at phase end, MPI call ids at call begin/end);
* communication records — ``3:cpu:appl:task:thread:lsend:psend:<recv side>:
  size:tag`` for every matched point-to-point send/recv pair (collectives
  are not decomposed into messages; they stay state records only).

The ``.pcf`` sidecar carries the state/event legends (as Paraver expects)
and the ``.row`` sidecar the stream labels.

Times are written in integer nanoseconds.
"""

from __future__ import annotations

import pathlib
import typing as _t

from repro.telemetry.trace import Trace

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.world import MpiRecord

__all__ = ["write_prv", "read_prv", "STATE_CODES", "MPI_CALL_CODES"]

#: Paraver state ids for the compute phases.
STATE_CODES: dict[str, int] = {
    "idle": 0,
    "prepare_psis": 2,
    "pack_sticks": 3,
    "fft_z": 4,
    "scatter_reorder": 5,
    "fft_xy": 6,
    "vofr": 7,
    "unpack_sticks": 8,
}

#: Paraver state ids for MPI calls (offset block, as Extrae does).
MPI_CALL_CODES: dict[str, int] = {
    "alltoall": 20,
    "barrier": 21,
    "bcast": 22,
    "allreduce": 23,
    "gather": 24,
    "split": 25,
    "send": 26,
    "recv": 27,
    "allgather": 28,
    "reduce": 29,
    "rscatter": 30,
    "dup": 31,
    "alltoallw": 32,
}

#: Event type for useful instructions (PAPI_TOT_INS's conventional id).
EV_INSTRUCTIONS = 42000050
#: Event type for MPI call begin/end (Extrae's MPI event block).
EV_MPI_CALL = 50000001

_NS = 1e9


def _stream_ids(streams: _t.Sequence) -> dict:
    """Map a stream to (cpu, task, thread), all 1-based."""
    ids = {}
    for i, stream in enumerate(sorted(streams)):
        rank, thread = stream
        ids[stream] = (i + 1, rank + 1, thread + 1)
    return ids


def _match_p2p(mpi: _t.Sequence["MpiRecord"]) -> list[tuple["MpiRecord", "MpiRecord"]]:
    """Pair send records with recv records by (comm, src, dst, tag) in order."""
    sends: dict[tuple, list] = {}
    for r in mpi:
        if r.call == "send" and r.src is not None and r.dst is not None:
            sends.setdefault((r.comm_id, r.src, r.dst, r.tag), []).append(r)
    pairs = []
    for r in mpi:
        if r.call != "recv":
            continue
        queue = sends.get((r.comm_id, r.src, r.dst, r.tag))
        if queue:
            pairs.append((queue.pop(0), r))
    return pairs


def write_prv(path: str | pathlib.Path, trace: Trace, label: str = "fftxlib") -> pathlib.Path:
    """Write ``<path>.prv`` (+ ``.pcf``, ``.row``); returns the .prv path."""
    path = pathlib.Path(path)
    prv = path.with_suffix(".prv")
    streams = trace.streams
    ids = _stream_ids(streams)
    duration_ns = int(round(trace.span * _NS))
    n_tasks = len({s[0] for s in streams})
    max_threads = max((s[1] + 1 for s in streams), default=1)

    lines = [
        f"#Paraver (01/01/2026 at 00:00):{duration_ns}_ns:1({len(streams)}):1:"
        f"1({n_tasks}:{max_threads})"
    ]
    records: list[tuple[float, str]] = []
    for r in trace.compute:
        cpu, task, thread = ids[r.stream]
        b, e = int(round(r.start * _NS)), int(round(r.end * _NS))
        code = STATE_CODES.get(r.phase)
        if code is None:
            raise ValueError(f"phase {r.phase!r} has no Paraver state code")
        records.append((r.start, f"1:{cpu}:1:{task}:{thread}:{b}:{e}:{code}"))
        records.append(
            (r.end, f"2:{cpu}:1:{task}:{thread}:{e}:{EV_INSTRUCTIONS}:{int(r.instructions)}")
        )
    for r in trace.mpi:
        cpu, task, thread = ids[r.stream]
        b, e = int(round(r.t_begin * _NS)), int(round(r.t_end * _NS))
        code = MPI_CALL_CODES.get(r.call)
        if code is None:
            raise ValueError(f"MPI call {r.call!r} has no Paraver state code")
        records.append((r.t_begin, f"1:{cpu}:1:{task}:{thread}:{b}:{e}:{code}"))
        records.append((r.t_begin, f"2:{cpu}:1:{task}:{thread}:{b}:{EV_MPI_CALL}:{code}"))
        records.append((r.t_end, f"2:{cpu}:1:{task}:{thread}:{e}:{EV_MPI_CALL}:0"))
    for send, recv in _match_p2p(trace.mpi):
        cpu_s, task_s, thread_s = ids[send.stream]
        cpu_r, task_r, thread_r = ids[recv.stream]
        lsend, psend = int(round(send.t_begin * _NS)), int(round(send.t_end * _NS))
        lrecv, precv = int(round(recv.t_begin * _NS)), int(round(recv.t_end * _NS))
        tag = send.tag if send.tag is not None else 0
        records.append(
            (
                send.t_begin,
                f"3:{cpu_s}:1:{task_s}:{thread_s}:{lsend}:{psend}"
                f":{cpu_r}:1:{task_r}:{thread_r}:{lrecv}:{precv}"
                f":{int(send.bytes_sent)}:{tag}",
            )
        )
    records.sort(key=lambda t: t[0])
    lines.extend(rec for _t0, rec in records)
    prv.write_text("\n".join(lines) + "\n")

    pcf_lines = ["DEFAULT_OPTIONS", "", "STATES"]
    for name, code in sorted(STATE_CODES.items(), key=lambda kv: kv[1]):
        pcf_lines.append(f"{code}    {name}")
    for name, code in sorted(MPI_CALL_CODES.items(), key=lambda kv: kv[1]):
        pcf_lines.append(f"{code}    MPI_{name}")
    pcf_lines += [
        "",
        "EVENT_TYPE",
        f"0    {EV_INSTRUCTIONS}    Useful instructions",
        f"0    {EV_MPI_CALL}    MPI call (0 = outside)",
    ]
    prv.with_suffix(".pcf").write_text("\n".join(pcf_lines) + "\n")

    row_lines = [f"LEVEL CPU SIZE {len(streams)}"]
    row_lines += [f"{label}.rank{s[0]}.thread{s[1]}" for s in sorted(streams)]
    prv.with_suffix(".row").write_text("\n".join(row_lines) + "\n")
    return prv


def read_prv(path: str | pathlib.Path) -> dict:
    """Parse a ``.prv`` written by :func:`write_prv`.

    Returns ``{"duration_ns": int, "states": [...], "events": [...],
    "comms": [...]}`` where states are ``(cpu, task, thread, begin_ns,
    end_ns, state)``, events ``(cpu, task, thread, time_ns, type, value)``
    and comms ``(cpu_s, task_s, thread_s, lsend_ns, psend_ns, cpu_r,
    task_r, thread_r, lrecv_ns, precv_ns, size, tag)`` (all ints).
    """
    path = pathlib.Path(path)
    states, events, comms = [], [], []
    duration_ns = 0
    with path.open() as fh:
        header = fh.readline().strip()
        if not header.startswith("#Paraver"):
            raise ValueError(f"{path} is not a Paraver trace (bad header)")
        # The date field contains colons; the duration follows the first "):".
        after_date = header.split("):", 1)[1]
        duration_ns = int(after_date.split(":", 1)[0].replace("_ns", ""))
        for line in fh:
            line = line.strip()
            if not line:
                continue
            fields = line.split(":")
            kind = fields[0]
            if kind == "1":
                _k, cpu, _appl, task, thread, begin, end, state = fields
                states.append(
                    (int(cpu), int(task), int(thread), int(begin), int(end), int(state))
                )
            elif kind == "2":
                _k, cpu, _appl, task, thread, time, etype, value = fields
                events.append(
                    (int(cpu), int(task), int(thread), int(time), int(etype), int(value))
                )
            elif kind == "3":
                (
                    _k,
                    cpu_s, _appl_s, task_s, thread_s, lsend, psend,
                    cpu_r, _appl_r, task_r, thread_r, lrecv, precv,
                    size, tag,
                ) = fields
                comms.append(
                    (
                        int(cpu_s), int(task_s), int(thread_s), int(lsend), int(psend),
                        int(cpu_r), int(task_r), int(thread_r), int(lrecv), int(precv),
                        int(size), int(tag),
                    )
                )
            else:
                raise ValueError(f"unsupported record kind {kind!r} in {path}")
    return {
        "duration_ns": duration_ns,
        "states": states,
        "events": events,
        "comms": comms,
    }
