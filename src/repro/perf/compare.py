"""Run comparison: where did the time go between two executions?

The analyst's follow-up question after any optimization — "which phases got
faster, which got slower, and did communication or computation move?" —
answered by aligning two traces phase by phase.  This is the quantitative
version of the paper's side-by-side Fig. 7 reading.

:func:`compare_runs` aggregates each trace into per-phase compute time/IPC
and per-communicator-layer MPI time, then reports absolute and relative
deltas; :func:`format_run_comparison` renders the table.

The same comparison also works *offline* on run manifests
(:mod:`repro.telemetry.manifest`): :func:`diff_manifests` aligns two saved
artifacts, :func:`format_manifest_diff` renders the report the
``perf diff`` CLI prints, and :func:`manifest_regressions` is the
``perf check`` gate — a list of human-readable violations when the
candidate run is slower than the baseline beyond a threshold.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.perf.timeline import phase_summary
from repro.perf.tracer import Trace
from repro.telemetry.layers import comm_layer

__all__ = [
    "PhaseDelta",
    "RunComparison",
    "compare_runs",
    "format_run_comparison",
    "ManifestDiff",
    "diff_manifests",
    "format_manifest_diff",
    "manifest_regressions",
]


@dataclasses.dataclass(frozen=True)
class PhaseDelta:
    """One phase's aggregate change between runs A and B."""

    name: str
    time_a: float
    time_b: float
    ipc_a: float
    ipc_b: float

    @property
    def time_delta(self) -> float:
        return self.time_b - self.time_a

    @property
    def relative(self) -> float:
        """Relative time change (B vs A; negative = faster)."""
        if self.time_a <= 0:
            return float("inf") if self.time_b > 0 else 0.0
        return self.time_b / self.time_a - 1.0


@dataclasses.dataclass
class RunComparison:
    """Phase-by-phase and layer-by-layer deltas between two traces."""

    phases: list[PhaseDelta]
    mpi_a: dict[str, float]  # communicator-layer -> accumulated seconds
    mpi_b: dict[str, float]
    total_compute_a: float
    total_compute_b: float

    def regressions(self, threshold: float = 0.05) -> list[PhaseDelta]:
        """Phases that got slower by more than ``threshold`` (relative)."""
        return [p for p in self.phases if p.relative > threshold]

    def improvements(self, threshold: float = 0.05) -> list[PhaseDelta]:
        """Phases that got faster by more than ``threshold`` (relative)."""
        return [p for p in self.phases if p.relative < -threshold]


def _mpi_by_layer(trace: Trace) -> dict[str, float]:
    out: dict[str, float] = {}
    for r in trace.mpi:
        layer = comm_layer(r.comm_name)  # pack3 -> pack
        out[layer] = out.get(layer, 0.0) + r.duration
    return out


def compare_runs(trace_a: Trace, trace_b: Trace, frequency_hz: float) -> RunComparison:
    """Align two traces phase by phase (union of phase names)."""
    sum_a = phase_summary(trace_a, frequency_hz)
    sum_b = phase_summary(trace_b, frequency_hz)
    phases = []
    for name in sorted(set(sum_a) | set(sum_b)):
        a = sum_a.get(name, {"time": 0.0, "ipc": 0.0})
        b = sum_b.get(name, {"time": 0.0, "ipc": 0.0})
        phases.append(
            PhaseDelta(
                name=name,
                time_a=a["time"],
                time_b=b["time"],
                ipc_a=a.get("ipc", 0.0),
                ipc_b=b.get("ipc", 0.0),
            )
        )
    return RunComparison(
        phases=phases,
        mpi_a=_mpi_by_layer(trace_a),
        mpi_b=_mpi_by_layer(trace_b),
        total_compute_a=sum(p.time_a for p in phases),
        total_compute_b=sum(p.time_b for p in phases),
    )


def format_run_comparison(
    comparison: RunComparison, labels: tuple[str, str] = ("A", "B")
) -> str:
    """Render the comparison as an ASCII table."""
    la, lb = labels
    lines = [
        f"{'phase':<18}{la + ' time':>12}{lb + ' time':>12}{'delta':>9}"
        f"{la + ' IPC':>9}{lb + ' IPC':>9}",
        "-" * 69,
    ]
    for p in comparison.phases:
        rel = p.relative
        rel_str = f"{rel * 100:+6.1f}%" if rel != float("inf") else "   new"
        lines.append(
            f"{p.name:<18}{p.time_a * 1e3:>10.2f}ms{p.time_b * 1e3:>10.2f}ms"
            f"{rel_str:>9}{p.ipc_a:>9.3f}{p.ipc_b:>9.3f}"
        )
    lines.append("-" * 69)
    rel_total = (
        comparison.total_compute_b / comparison.total_compute_a - 1.0
        if comparison.total_compute_a > 0
        else 0.0
    )
    lines.append(
        f"{'total compute':<18}{comparison.total_compute_a * 1e3:>10.2f}ms"
        f"{comparison.total_compute_b * 1e3:>10.2f}ms{rel_total * 100:>+8.1f}%"
    )
    for layer in sorted(set(comparison.mpi_a) | set(comparison.mpi_b)):
        a = comparison.mpi_a.get(layer, 0.0)
        b = comparison.mpi_b.get(layer, 0.0)
        lines.append(
            f"{'MPI ' + layer:<18}{a * 1e3:>10.2f}ms{b * 1e3:>10.2f}ms"
        )
    return "\n".join(lines)


# -- manifest diffing (the perf diff / perf check CLI) -----------------------


@dataclasses.dataclass
class ManifestDiff:
    """Aligned view of two run manifests (A = baseline, B = candidate)."""

    label_a: str
    label_b: str
    phase_time_a: float
    phase_time_b: float
    average_ipc_a: float
    average_ipc_b: float
    phases: list[PhaseDelta]
    mpi_a: dict[str, float]
    mpi_b: dict[str, float]
    pop_a: dict[str, float]
    pop_b: dict[str, float]

    @property
    def runtime_relative(self) -> float:
        """Relative phase-runtime change (B vs A; negative = faster)."""
        if self.phase_time_a <= 0:
            return float("inf") if self.phase_time_b > 0 else 0.0
        return self.phase_time_b / self.phase_time_a - 1.0


def _manifest_phases(manifest: dict) -> dict[str, dict]:
    return {
        name: entry
        for name, entry in manifest.get("phases", {}).items()
        if isinstance(entry, dict)
    }


def diff_manifests(manifest_a: dict, manifest_b: dict) -> ManifestDiff:
    """Align two run manifests phase by phase (union of phase names)."""
    phases_a = _manifest_phases(manifest_a)
    phases_b = _manifest_phases(manifest_b)
    phases = []
    for name in sorted(set(phases_a) | set(phases_b)):
        a = phases_a.get(name, {})
        b = phases_b.get(name, {})
        phases.append(
            PhaseDelta(
                name=name,
                time_a=float(a.get("time_s", 0.0)),
                time_b=float(b.get("time_s", 0.0)),
                ipc_a=float(a.get("ipc", 0.0)),
                ipc_b=float(b.get("ipc", 0.0)),
            )
        )
    return ManifestDiff(
        label_a=manifest_a["config"]["label"],
        label_b=manifest_b["config"]["label"],
        phase_time_a=float(manifest_a["timing"]["phase_time_s"]),
        phase_time_b=float(manifest_b["timing"]["phase_time_s"]),
        average_ipc_a=float(manifest_a.get("average_ipc", 0.0)),
        average_ipc_b=float(manifest_b.get("average_ipc", 0.0)),
        phases=phases,
        mpi_a={
            layer: float(entry.get("time_s", 0.0))
            for layer, entry in manifest_a.get("mpi", {}).items()
        },
        mpi_b={
            layer: float(entry.get("time_s", 0.0))
            for layer, entry in manifest_b.get("mpi", {}).items()
        },
        pop_a=dict(manifest_a.get("pop", {})),
        pop_b=dict(manifest_b.get("pop", {})),
    )


def format_manifest_diff(diff: ManifestDiff) -> str:
    """Render a manifest diff: runtime, per-phase time/IPC, MPI, POP."""
    la, lb = diff.label_a[:16], diff.label_b[:16]
    rel = diff.runtime_relative
    rel_str = f"{rel * 100:+.1f}%" if rel != float("inf") else "new"
    lines = [
        f"A: {diff.label_a}",
        f"B: {diff.label_b}",
        f"phase runtime: {diff.phase_time_a * 1e3:.3f} ms -> "
        f"{diff.phase_time_b * 1e3:.3f} ms ({rel_str})",
        f"average IPC:   {diff.average_ipc_a:.3f} -> {diff.average_ipc_b:.3f}",
        "",
        f"{'phase':<18}{'A time':>12}{'B time':>12}{'delta':>9}"
        f"{'A IPC':>9}{'B IPC':>9}",
        "-" * 69,
    ]
    for p in diff.phases:
        prel = p.relative
        prel_str = f"{prel * 100:+6.1f}%" if prel != float("inf") else "   new"
        lines.append(
            f"{p.name:<18}{p.time_a * 1e3:>10.2f}ms{p.time_b * 1e3:>10.2f}ms"
            f"{prel_str:>9}{p.ipc_a:>9.3f}{p.ipc_b:>9.3f}"
        )
    for layer in sorted(set(diff.mpi_a) | set(diff.mpi_b)):
        a = diff.mpi_a.get(layer, 0.0)
        b = diff.mpi_b.get(layer, 0.0)
        lines.append(f"{'MPI ' + layer:<18}{a * 1e3:>10.2f}ms{b * 1e3:>10.2f}ms")
    pop_keys = sorted(
        k
        for k in set(diff.pop_a) | set(diff.pop_b)
        if isinstance(diff.pop_a.get(k, diff.pop_b.get(k)), (int, float))
        and k != "ideal_time_s"
    )
    if pop_keys:
        lines.append("")
        lines.append(f"{'POP factor':<28}{'A':>8}{'B':>8}")
        for k in pop_keys:
            a = diff.pop_a.get(k)
            b = diff.pop_b.get(k)
            fa = f"{a:.3f}" if isinstance(a, (int, float)) else "-"
            fb = f"{b:.3f}" if isinstance(b, (int, float)) else "-"
            lines.append(f"{k:<28}{fa:>8}{fb:>8}")
    return "\n".join(lines)


def manifest_regressions(
    baseline: dict, candidate: dict, threshold: float = 0.05
) -> list[str]:
    """Regression-gate check: violations of ``candidate`` vs ``baseline``.

    Flags the simulated phase runtime and any per-phase compute time that
    grew by more than ``threshold`` (relative).  An empty list means the
    candidate passes.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    diff = diff_manifests(baseline, candidate)
    violations = []
    if diff.runtime_relative > threshold:
        violations.append(
            f"phase runtime regressed {diff.runtime_relative * 100:+.1f}% "
            f"({diff.phase_time_a * 1e3:.3f} ms -> {diff.phase_time_b * 1e3:.3f} ms), "
            f"threshold {threshold * 100:.1f}%"
        )
    for p in diff.phases:
        if p.time_a > 0 and p.relative > threshold:
            violations.append(
                f"phase {p.name!r} compute time regressed {p.relative * 100:+.1f}% "
                f"({p.time_a * 1e3:.3f} ms -> {p.time_b * 1e3:.3f} ms)"
            )
    return violations
