"""Run comparison: where did the time go between two executions?

The analyst's follow-up question after any optimization — "which phases got
faster, which got slower, and did communication or computation move?" —
answered by aligning two traces phase by phase.  This is the quantitative
version of the paper's side-by-side Fig. 7 reading.

:func:`compare_runs` aggregates each trace into per-phase compute time/IPC
and per-communicator-layer MPI time, then reports absolute and relative
deltas; :func:`format_run_comparison` renders the table.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.perf.timeline import phase_summary
from repro.perf.tracer import Trace

__all__ = ["PhaseDelta", "RunComparison", "compare_runs", "format_run_comparison"]


@dataclasses.dataclass(frozen=True)
class PhaseDelta:
    """One phase's aggregate change between runs A and B."""

    name: str
    time_a: float
    time_b: float
    ipc_a: float
    ipc_b: float

    @property
    def time_delta(self) -> float:
        return self.time_b - self.time_a

    @property
    def relative(self) -> float:
        """Relative time change (B vs A; negative = faster)."""
        if self.time_a <= 0:
            return float("inf") if self.time_b > 0 else 0.0
        return self.time_b / self.time_a - 1.0


@dataclasses.dataclass
class RunComparison:
    """Phase-by-phase and layer-by-layer deltas between two traces."""

    phases: list[PhaseDelta]
    mpi_a: dict[str, float]  # communicator-layer -> accumulated seconds
    mpi_b: dict[str, float]
    total_compute_a: float
    total_compute_b: float

    def regressions(self, threshold: float = 0.05) -> list[PhaseDelta]:
        """Phases that got slower by more than ``threshold`` (relative)."""
        return [p for p in self.phases if p.relative > threshold]

    def improvements(self, threshold: float = 0.05) -> list[PhaseDelta]:
        """Phases that got faster by more than ``threshold`` (relative)."""
        return [p for p in self.phases if p.relative < -threshold]


def _mpi_by_layer(trace: Trace) -> dict[str, float]:
    out: dict[str, float] = {}
    for r in trace.mpi:
        layer = r.comm_name.rstrip("0123456789")  # pack3 -> pack
        out[layer] = out.get(layer, 0.0) + r.duration
    return out


def compare_runs(trace_a: Trace, trace_b: Trace, frequency_hz: float) -> RunComparison:
    """Align two traces phase by phase (union of phase names)."""
    sum_a = phase_summary(trace_a, frequency_hz)
    sum_b = phase_summary(trace_b, frequency_hz)
    phases = []
    for name in sorted(set(sum_a) | set(sum_b)):
        a = sum_a.get(name, {"time": 0.0, "ipc": 0.0})
        b = sum_b.get(name, {"time": 0.0, "ipc": 0.0})
        phases.append(
            PhaseDelta(
                name=name,
                time_a=a["time"],
                time_b=b["time"],
                ipc_a=a.get("ipc", 0.0),
                ipc_b=b.get("ipc", 0.0),
            )
        )
    return RunComparison(
        phases=phases,
        mpi_a=_mpi_by_layer(trace_a),
        mpi_b=_mpi_by_layer(trace_b),
        total_compute_a=sum(p.time_a for p in phases),
        total_compute_b=sum(p.time_b for p in phases),
    )


def format_run_comparison(
    comparison: RunComparison, labels: tuple[str, str] = ("A", "B")
) -> str:
    """Render the comparison as an ASCII table."""
    la, lb = labels
    lines = [
        f"{'phase':<18}{la + ' time':>12}{lb + ' time':>12}{'delta':>9}"
        f"{la + ' IPC':>9}{lb + ' IPC':>9}",
        "-" * 69,
    ]
    for p in comparison.phases:
        rel = p.relative
        rel_str = f"{rel * 100:+6.1f}%" if rel != float("inf") else "   new"
        lines.append(
            f"{p.name:<18}{p.time_a * 1e3:>10.2f}ms{p.time_b * 1e3:>10.2f}ms"
            f"{rel_str:>9}{p.ipc_a:>9.3f}{p.ipc_b:>9.3f}"
        )
    lines.append("-" * 69)
    rel_total = (
        comparison.total_compute_b / comparison.total_compute_a - 1.0
        if comparison.total_compute_a > 0
        else 0.0
    )
    lines.append(
        f"{'total compute':<18}{comparison.total_compute_a * 1e3:>10.2f}ms"
        f"{comparison.total_compute_b * 1e3:>10.2f}ms{rel_total * 100:>+8.1f}%"
    )
    for layer in sorted(set(comparison.mpi_a) | set(comparison.mpi_b)):
        a = comparison.mpi_a.get(layer, 0.0)
        b = comparison.mpi_b.get(layer, 0.0)
        lines.append(
            f"{'MPI ' + layer:<18}{a * 1e3:>10.2f}ms{b * 1e3:>10.2f}ms"
        )
    return "\n".join(lines)
