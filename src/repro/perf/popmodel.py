"""The POP efficiency model (Tables I and II).

Following Rosas/Giménez/Labarta (the paper's ref. [10]), overall efficiency
is decomposed multiplicatively:

* **Load balance** = mean over streams of useful compute time / max.
* **Communication efficiency** = max useful compute time / runtime, split as
  **serialization (sync) x transfer**, where transfer efficiency is measured
  by replaying the run on an *ideal network* (zero latency, infinite
  bandwidth) — the classic Dimemas what-if, which a simulator performs
  exactly;
* **Parallel efficiency** = load balance x communication efficiency.
* **Computation scalability** (vs. the smallest run) = total useful compute
  time of the base / this run, further split into **IPC scalability** and
  **instruction scalability**.
* **Global efficiency** = parallel efficiency x computation scalability.

A *stream* is what the analysis treats as a process: an MPI rank in the
original version, an (MPI rank, thread) pair in the task versions — exactly
how the paper's Tables I/II compare "1-16 ranks with 8 FFT task groups /
8 OmpSs tasks each".
"""

from __future__ import annotations

import dataclasses

from repro.core.config import RunConfig
from repro.core.driver import RunResult, run_fft_phase
from repro.machine.knl import KnlParameters

__all__ = [
    "FactorSet",
    "BaseMetrics",
    "RunAggregates",
    "factors_from_run",
    "factors_from_aggregates",
    "ideal_network",
]


@dataclasses.dataclass(frozen=True)
class BaseMetrics:
    """Aggregates of the smallest (reference) run."""

    total_compute_time: float
    total_instructions: float
    average_ipc: float

    @classmethod
    def from_run(cls, result: RunResult) -> "BaseMetrics":
        c = result.cpu.counters
        return cls(
            total_compute_time=c.total_compute_time(),
            total_instructions=c.total_instructions(),
            average_ipc=c.average_ipc(),
        )


@dataclasses.dataclass(frozen=True)
class RunAggregates:
    """Everything the factor decomposition needs from one run.

    The point of splitting these off :class:`RunResult` is that they are a
    handful of floats — JSON-serializable and picklable — while the result
    object holds the whole simulated world.  Sweep workers reduce each run to
    its aggregates in-process; the parent then computes factor columns with
    :func:`factors_from_aggregates` once the base run is known.
    """

    runtime: float
    per_stream_compute: tuple[float, ...]
    total_compute_time: float
    total_instructions: float
    average_ipc: float

    @classmethod
    def from_run(cls, result: RunResult) -> "RunAggregates":
        counters = result.cpu.counters
        return cls(
            runtime=result.phase_time,
            per_stream_compute=tuple(
                counters.stream_compute_time(s) for s in counters.streams
            ),
            total_compute_time=counters.total_compute_time(),
            total_instructions=counters.total_instructions(),
            average_ipc=counters.average_ipc(),
        )

    def base_metrics(self) -> BaseMetrics:
        """This run viewed as the reference column."""
        return BaseMetrics(
            total_compute_time=self.total_compute_time,
            total_instructions=self.total_instructions,
            average_ipc=self.average_ipc,
        )

    def to_dict(self) -> dict:
        return {
            "runtime": self.runtime,
            "per_stream_compute": list(self.per_stream_compute),
            "total_compute_time": self.total_compute_time,
            "total_instructions": self.total_instructions,
            "average_ipc": self.average_ipc,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "RunAggregates":
        return cls(
            runtime=doc["runtime"],
            per_stream_compute=tuple(doc["per_stream_compute"]),
            total_compute_time=doc["total_compute_time"],
            total_instructions=doc["total_instructions"],
            average_ipc=doc["average_ipc"],
        )


@dataclasses.dataclass(frozen=True)
class FactorSet:
    """One column of Table I/II (fractions in [0, ~1])."""

    parallel_efficiency: float
    load_balance: float
    communication_efficiency: float
    synchronization_efficiency: float
    transfer_efficiency: float
    computation_scalability: float
    ipc_scalability: float
    instruction_scalability: float
    global_efficiency: float

    def as_rows(self) -> list[tuple[str, float]]:
        """Ordered (label, value) rows matching the paper's table layout."""
        return [
            ("Parallel efficiency", self.parallel_efficiency),
            ("-> Load Balance", self.load_balance),
            ("-> Communication Efficiency", self.communication_efficiency),
            ("   -> Synchronization", self.synchronization_efficiency),
            ("   -> Transfer", self.transfer_efficiency),
            ("Computation Scalability", self.computation_scalability),
            ("-> IPC Scalability", self.ipc_scalability),
            ("-> Instructions Scalability", self.instruction_scalability),
            ("Global Efficiency", self.global_efficiency),
        ]


def ideal_network(knl: KnlParameters | None = None) -> KnlParameters:
    """The what-if machine: same node, instantaneous MPI transport."""
    base = knl or KnlParameters()
    return dataclasses.replace(
        base,
        net_latency=0.0,
        net_injection_bw=1e18,
        net_capacity=1e18,
    )


def factors_from_run(
    result: RunResult,
    ideal_time: float | None = None,
    base: BaseMetrics | None = None,
) -> FactorSet:
    """Compute the factor column for one run.

    Parameters
    ----------
    result:
        The measured run.
    ideal_time:
        Runtime of the same configuration on the ideal network; without it
        the sync/transfer split is not identified (both reported as the
        square root of communication efficiency would be arbitrary — they
        are set to ``nan``-free neutral 1.0 and the caller should know).
    base:
        Aggregates of the smallest run; defaults to this run itself (i.e.
        the base column, scalability = 1).
    """
    return factors_from_aggregates(
        RunAggregates.from_run(result), ideal_time=ideal_time, base=base
    )


def factors_from_aggregates(
    agg: RunAggregates,
    ideal_time: float | None = None,
    base: BaseMetrics | None = None,
) -> FactorSet:
    """Compute a factor column from reduced aggregates (see their docstring).

    Semantics (parameters, defaults, identified splits) are exactly those of
    :func:`factors_from_run`; the float operation order is identical, so the
    two paths produce bit-equal columns.
    """
    runtime = agg.runtime
    per_stream = agg.per_stream_compute
    if not per_stream or runtime <= 0.0:
        raise ValueError("run has no computation to analyse")

    max_compute = max(per_stream)
    avg_compute = sum(per_stream) / len(per_stream)

    load_balance = avg_compute / max_compute if max_compute > 0 else 1.0
    comm_eff = max_compute / runtime
    parallel_eff = load_balance * comm_eff

    if ideal_time is not None and ideal_time > 0:
        transfer_eff = min(ideal_time / runtime, 1.0)
        sync_eff = min(max_compute / ideal_time, 1.0)
    else:
        transfer_eff = 1.0
        sync_eff = comm_eff

    if base is None:
        base = agg.base_metrics()
    total_compute = agg.total_compute_time
    total_instr = agg.total_instructions
    comp_scal = base.total_compute_time / total_compute if total_compute > 0 else 1.0
    ipc_scal = agg.average_ipc / base.average_ipc if base.average_ipc > 0 else 1.0
    instr_scal = base.total_instructions / total_instr if total_instr > 0 else 1.0

    return FactorSet(
        parallel_efficiency=parallel_eff,
        load_balance=load_balance,
        communication_efficiency=comm_eff,
        synchronization_efficiency=sync_eff,
        transfer_efficiency=transfer_eff,
        computation_scalability=comp_scal,
        ipc_scalability=ipc_scal,
        instruction_scalability=instr_scal,
        global_efficiency=parallel_eff * comp_scal,
    )


def measure_factors(
    config: RunConfig,
    base: BaseMetrics | None = None,
    knl: KnlParameters | None = None,
) -> tuple[RunResult, FactorSet]:
    """Run a configuration twice (real + ideal network) and decompose it."""
    result = run_fft_phase(config, knl=knl)
    ideal = run_fft_phase(config, knl=ideal_network(knl))
    return result, factors_from_run(result, ideal_time=ideal.phase_time, base=base)
