"""Timeline and histogram extraction (the Paraver views of Figs. 3 and 7).

These functions turn a :class:`~repro.perf.tracer.Trace` into the data
behind the paper's figures:

* :func:`phase_intervals` — the compute-phase timeline (stream, phase,
  begin, end, IPC): Fig. 3's "useful duration" and IPC views, Fig. 7's
  left panels;
* :func:`mpi_intervals` — the MPI-call timeline: Fig. 3's MPI view;
* :func:`communicator_structure` — which sub-communicators exist and who
  belongs to them: Fig. 3's communicator view (R pack groups of T
  neighboring ranks; T scatter groups of R strided ranks);
* :func:`ipc_histogram` — per-stream distribution of compute time over IPC
  bins: Fig. 7's right panels;
* :func:`phase_summary` — per-phase aggregate IPC/time (the "0.06 / 0.52 /
  0.77 IPC" numbers quoted in the analysis).
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.perf.tracer import Trace

__all__ = [
    "PhaseInterval",
    "MpiInterval",
    "phase_intervals",
    "mpi_intervals",
    "phase_summary",
    "ipc_histogram",
    "communicator_structure",
]


@dataclasses.dataclass(frozen=True)
class PhaseInterval:
    """One compute phase occurrence on one stream."""

    stream: tuple
    phase: str
    begin: float
    end: float
    ipc: float

    @property
    def duration(self) -> float:
        return self.end - self.begin


@dataclasses.dataclass(frozen=True)
class MpiInterval:
    """One MPI call occurrence on one stream."""

    stream: tuple
    call: str
    comm_name: str
    begin: float
    end: float
    bytes_sent: float

    @property
    def duration(self) -> float:
        return self.end - self.begin


def phase_intervals(trace: Trace, frequency_hz: float) -> list[PhaseInterval]:
    """All compute phases as timeline intervals (sorted by begin time)."""
    out = [
        PhaseInterval(
            stream=r.stream,
            phase=r.phase,
            begin=r.start,
            end=r.end,
            ipc=r.ipc(frequency_hz),
        )
        for r in trace.compute
    ]
    return sorted(out, key=lambda iv: (iv.begin, repr(iv.stream)))


def mpi_intervals(trace: Trace) -> list[MpiInterval]:
    """All MPI calls as timeline intervals (sorted by begin time)."""
    out = [
        MpiInterval(
            stream=r.stream,
            call=r.call,
            comm_name=r.comm_name,
            begin=r.t_begin,
            end=r.t_end,
            bytes_sent=r.bytes_sent,
        )
        for r in trace.mpi
    ]
    return sorted(out, key=lambda iv: (iv.begin, repr(iv.stream)))


def phase_summary(trace: Trace, frequency_hz: float) -> dict[str, dict[str, float]]:
    """Aggregate per phase kind: total time, instructions, mean IPC, count."""
    agg: dict[str, dict[str, float]] = {}
    for r in trace.compute:
        entry = agg.setdefault(
            r.phase, {"time": 0.0, "instructions": 0.0, "count": 0.0}
        )
        entry["time"] += r.duration
        entry["instructions"] += r.instructions
        entry["count"] += 1
    for entry in agg.values():
        entry["ipc"] = (
            entry["instructions"] / (entry["time"] * frequency_hz)
            if entry["time"] > 0
            else 0.0
        )
    return agg


def ipc_histogram(
    trace: Trace,
    frequency_hz: float,
    bins: int = 24,
    ipc_range: tuple[float, float] = (0.0, 1.6),
    phases: _t.Collection[str] | None = None,
) -> tuple[np.ndarray, np.ndarray, list]:
    """Fig. 7's histogram: compute time per (stream, IPC bin).

    Returns ``(hist, edges, streams)`` where ``hist[i, j]`` is the time
    stream ``streams[i]`` spent in phases whose average IPC falls in bin
    ``j``.  ``phases`` restricts to a subset (e.g. the main compute phase).
    """
    streams = trace.streams
    index = {s: i for i, s in enumerate(streams)}
    edges = np.linspace(ipc_range[0], ipc_range[1], bins + 1)
    hist = np.zeros((len(streams), bins))
    for r in trace.compute:
        if phases is not None and r.phase not in phases:
            continue
        ipc = r.ipc(frequency_hz)
        j = int(np.clip(np.searchsorted(edges, ipc, side="right") - 1, 0, bins - 1))
        hist[index[r.stream], j] += r.duration
    return hist, edges, streams


def communicator_structure(trace: Trace) -> dict[str, dict]:
    """Communicator usage summary (Fig. 3's bottom-right view).

    Returns ``{comm_name: {"streams": sorted ranks seen, "calls": count,
    "bytes": total}}`` from the MPI records.
    """
    out: dict[str, dict] = {}
    for r in trace.mpi:
        entry = out.setdefault(
            r.comm_name, {"streams": set(), "calls": 0, "bytes": 0.0}
        )
        entry["streams"].add(r.stream[0])
        entry["calls"] += 1
        entry["bytes"] += r.bytes_sent
    for entry in out.values():
        entry["streams"] = sorted(entry["streams"])
    return out
