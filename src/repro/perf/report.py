"""ASCII rendering of factor tables and series.

The experiments print their artifacts in the layout of the paper: factor
tables with one column per configuration (Tables I/II), and simple labeled
series for the runtime figures.  Keeping this as dumb text keeps the
benchmark harness dependency-free and diffable.
"""

from __future__ import annotations

import typing as _t

from repro.perf.popmodel import FactorSet

__all__ = [
    "format_factor_table",
    "format_series",
    "format_comparison",
    "render_timeline",
    "TIMELINE_GLYPHS",
]

#: Default glyph per phase for :func:`render_timeline` ('.' = idle / in MPI).
TIMELINE_GLYPHS = {
    "prepare_psis": "p",
    "pack_sticks": "p",
    "unpack_sticks": "p",
    "fft_z": "z",
    "scatter_reorder": "s",
    "fft_xy": "X",
    "vofr": "v",
}


def format_factor_table(
    columns: _t.Sequence[tuple[str, FactorSet]],
    title: str = "",
    reference: _t.Mapping[str, _t.Sequence[float]] | None = None,
) -> str:
    """Render factor columns like the paper's Table I/II.

    ``columns`` is a sequence of ``(label, FactorSet)``.  If ``reference``
    maps row labels to the paper's published percentages, a second line per
    row shows them for side-by-side comparison.
    """
    labels = [lbl for lbl, _ in columns]
    rows = columns[0][1].as_rows()
    name_width = max(len(r[0]) for r in rows) + 2
    col_width = max(9, max(len(l) for l in labels) + 2)

    lines = []
    if title:
        lines.append(title)
    header = " " * name_width + "".join(f"{l:>{col_width}}" for l in labels)
    lines.append(header)
    lines.append("-" * len(header))
    for i, (row_label, _) in enumerate(rows):
        vals = [fs.as_rows()[i][1] for _, fs in columns]
        line = f"{row_label:<{name_width}}" + "".join(
            f"{v * 100:>{col_width - 2}.2f} %" for v in vals
        )
        lines.append(line)
        if reference and row_label in reference:
            ref_vals = reference[row_label]
            ref_line = f"{'  (paper)':<{name_width}}" + "".join(
                f"{v:>{col_width - 2}.2f} %" for v in ref_vals
            )
            lines.append(ref_line)
    return "\n".join(lines)


def format_series(
    points: _t.Sequence[tuple[str, float]],
    title: str = "",
    unit: str = "ms",
    scale: float = 1e3,
    bar_width: int = 40,
) -> str:
    """Render a labeled series with proportional ASCII bars (the figures)."""
    lines = [title] if title else []
    if not points:
        return title
    peak = max(v for _, v in points)
    label_width = max(len(l) for l, _ in points) + 2
    for label, value in points:
        bar = "#" * max(1, int(round(bar_width * value / peak))) if peak > 0 else ""
        lines.append(f"{label:<{label_width}}{value * scale:>10.2f} {unit}  {bar}")
    return "\n".join(lines)


def render_timeline(
    trace,
    width: int = 100,
    max_rows: int = 16,
    glyphs: _t.Mapping[str, str] | None = None,
) -> str:
    """ASCII timeline of compute phases: one row per stream, one column per
    time bucket (the poor man's Paraver view behind Figs. 3 and 7).

    Buckets show the phase glyph of whatever compute interval covers them;
    idle/MPI time shows as '.'.
    """
    from repro.perf.timeline import phase_intervals

    glyphs = dict(TIMELINE_GLYPHS if glyphs is None else glyphs)
    intervals = phase_intervals(trace, 1.0)
    if not intervals:
        return "(no compute intervals)"
    span = max(iv.end for iv in intervals)
    streams = trace.streams[:max_rows]
    rows = []
    for stream in streams:
        line = ["."] * width
        for iv in intervals:
            if iv.stream != stream:
                continue
            a = int(iv.begin / span * (width - 1))
            b = max(a + 1, int(iv.end / span * (width - 1)))
            glyph = glyphs.get(iv.phase, "?")
            for k in range(a, min(b, width)):
                line[k] = glyph
        rows.append(f"{str(stream):>9} {''.join(line)}")
    if len(trace.streams) > max_rows:
        rows.append(f"          ... ({len(trace.streams) - max_rows} more streams)")
    return "\n".join(rows)


def format_comparison(
    rows: _t.Sequence[tuple[str, float, float]],
    title: str = "",
    headers: tuple[str, str] = ("measured", "paper"),
) -> str:
    """Two-value comparison table (measured vs. paper anchors)."""
    lines = [title] if title else []
    label_width = max((len(r[0]) for r in rows), default=8) + 2
    lines.append(f"{'':<{label_width}}{headers[0]:>12}{headers[1]:>12}")
    for label, measured, paper in rows:
        lines.append(f"{label:<{label_width}}{measured:>12.3f}{paper:>12.3f}")
    return "\n".join(lines)
