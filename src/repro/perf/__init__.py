"""Performance tracing and analysis (the Extrae + Paraver + POP toolchain).

The paper's methodology is as much a contribution as its optimization: trace
the run (Extrae), inspect timelines and histograms (Paraver), and condense
everything into the multiplicative POP efficiency model (Tables I/II).
This package reproduces that workflow against the simulator:

* :mod:`~repro.perf.tracer` — :class:`Tracer` collects compute-phase, MPI
  and task records through the driver's observer hooks; ``trace_run`` is
  the one-call "run with tracing" entry point;
* :mod:`~repro.perf.popmodel` — the efficiency/scalability factor
  decomposition: parallel efficiency = load balance x communication
  efficiency; communication efficiency = serialization x transfer (transfer
  measured by an *ideal-network replay*, trivially exact in a simulator);
  computation scalability = IPC x instruction scalability; global = PE x CS;
* :mod:`~repro.perf.timeline` — Fig. 3/7 artifacts: per-stream phase
  timelines, MPI call maps, communicator structure, IPC histograms;
* :mod:`~repro.perf.paraver` — a Paraver-like trace format (.prv state /
  event / communication records with .pcf/.row sidecars) writer and parser;
* :mod:`~repro.perf.report` — ASCII rendering of the factor tables and
  series the experiments print.
"""

from repro.perf.tracer import Trace, Tracer, trace_run
from repro.perf.popmodel import (
    BaseMetrics,
    FactorSet,
    RunAggregates,
    factors_from_aggregates,
    factors_from_run,
    ideal_network,
)
from repro.perf.timeline import (
    communicator_structure,
    ipc_histogram,
    mpi_intervals,
    phase_intervals,
    phase_summary,
)
from repro.perf.paraver import read_prv, write_prv
from repro.perf.report import format_factor_table, format_series
from repro.perf.whatif import runtime_attribution, whatif_sweep
from repro.perf.compare import (
    compare_runs,
    diff_manifests,
    format_manifest_diff,
    format_run_comparison,
    manifest_regressions,
)

__all__ = [
    "Trace",
    "Tracer",
    "trace_run",
    "BaseMetrics",
    "FactorSet",
    "RunAggregates",
    "factors_from_run",
    "factors_from_aggregates",
    "ideal_network",
    "phase_intervals",
    "mpi_intervals",
    "phase_summary",
    "ipc_histogram",
    "communicator_structure",
    "write_prv",
    "read_prv",
    "format_factor_table",
    "format_series",
    "whatif_sweep",
    "runtime_attribution",
    "compare_runs",
    "format_run_comparison",
    "diff_manifests",
    "format_manifest_diff",
    "manifest_regressions",
]
