"""The contention model: concurrent phases -> effective per-thread rates.

:class:`BandwidthContentionAllocator` is a :class:`~repro.simkit.fluid.RateAllocator`
for the node's CPU fluid resource.  Each active fluid task represents one
compute phase executing on one hardware thread; its metadata carries the
:class:`~repro.machine.phases.PhaseProfile` and the
:class:`~repro.machine.topology.HwThread` binding.  Rates are in
*instructions per second* and are derived in two stages:

1. **Issue sharing (per core).**  Hyper-threads of the same physical core
   share issue slots linearly: with ``k`` active hyper-threads each gets a
   ceiling of ``ipc0 * frequency / k`` instructions/s.  This reproduces the
   paper's observation that "the average IPC is more or less cut in half when
   going from 8x8 (no hyper-threading) to 16x8 (two-time hyper-threading)".

2. **Bandwidth water filling (per node).**  Each task *demands* memory
   traffic ``ceiling_i * bytes_per_instr_i``.  The node bandwidth ``B`` is
   divided max-min fairly: tasks demanding less than the fair share are fully
   satisfied, the slack is redistributed over the rest.  A task's final rate
   is ``grant_i / bytes_per_instr_i`` (or its issue ceiling for phases with
   negligible traffic).

When every thread executes the high-intensity phase simultaneously (the
original, statically synchronised FFTXlib), all demands collide and every
thread is throttled to ``B / n / bpi``.  When the OmpSs scheduler
de-synchronises phases, low-demand phases leave bandwidth to high-demand
ones, raising their effective IPC — the mechanism behind Fig. 7.

Hot-path engine
---------------
The allocator implements the fluid engine's batch protocol (``prepare`` /
``allocate_batch``).  ``prepare`` interns each task's contention-relevant
statics — ``(ipc0, bytes_per_instr, core, node)`` — into a small integer
*signature id* once, at submit time.  ``allocate_batch`` then works purely on
the active set's signature-id array:

* the base rates (everything except the per-execution ``speed`` factor, a
  pure post-multiplier) depend only on the *composition* of the active set.
  Core identity is irrelevant — a task's rate is determined by its phase
  profile, the number of active hyper-threads *on its own core*, its node,
  and the demand multiset of everyone else — so the memo key is the sorted
  array of packed ``(profile, core-occupancy, node)`` codes.  That is what
  makes the steady-state 64-thread phase mix recur thousands of times per
  run even as tasks hop between cores;
* a cache miss computes the rates per *unique* code with the numpy
  sort+cumsum water filling of :func:`waterfill_vec` (tasks sharing a code
  provably receive equal grants under max-min fairness, so the per-code
  result scatters back to tasks by one ``searchsorted``).

Cache hits/misses are exported via :meth:`cache_info` into run manifests.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.machine.phases import PhaseProfile
from repro.machine.topology import HwThread
from repro.simkit.fluid import FluidTask

__all__ = ["BandwidthContentionAllocator", "waterfill", "waterfill_vec"]

#: Numerical slack for the water-filling fixpoint.
_EPS = 1e-12

#: Compositions memoized per allocator before the table is reset (a plain
#: clear — entries are two tiny arrays, so the bound is generous; an LRU
#: would add ordering cost for no hit-rate gain).
_CACHE_LIMIT = 16384


def waterfill(demands: _t.Sequence[float], capacity: float) -> list[float]:
    """Max-min fair allocation of ``capacity`` over ``demands``.

    Tasks demanding no more than the current fair share receive their full
    demand; the freed capacity is redistributed among the remaining tasks
    until all are either satisfied or capped at the final fair share.

    Returns one grant per demand, with ``sum(grants) <= capacity`` and
    ``grants[i] <= demands[i]``.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    n = len(demands)
    grants = [0.0] * n
    if n == 0:
        return grants
    remaining = capacity
    unsat = [i for i in range(n) if demands[i] > 0.0]
    while unsat:
        fair = remaining / len(unsat)
        threshold = fair + _EPS
        # One pass: grant the satisfied demands (in index order, so the
        # floating-point subtraction sequence is unchanged) and collect the
        # still-unsatisfied rest — the old three-scan version with its
        # per-round set() rebuild dominated allocator time at 64+ streams.
        still_unsat: list[int] = []
        for i in unsat:
            d = demands[i]
            if d <= threshold:
                grants[i] = d
                remaining -= d
            else:
                still_unsat.append(i)
        if len(still_unsat) == len(unsat):
            for i in unsat:
                grants[i] = fair
            return grants
        unsat = still_unsat
        if remaining <= 0.0:
            break
    return grants


def waterfill_vec(
    demands: np.ndarray, capacity: float, weights: np.ndarray | None = None
) -> np.ndarray:
    """Vectorized max-min fair allocation (sort + cumsum water level).

    Equivalent to :func:`waterfill` up to floating-point rounding, computed
    in O(m log m) numpy operations instead of a Python fixpoint loop.  With
    ``weights`` each demand entry stands for ``weights[i]`` identical tasks
    (the allocator's per-signature grouping); the returned grants are still
    *per task* of each group.

    The water level ``L`` is the unique solution of
    ``sum_i w_i * min(d_i, L) == capacity`` when total demand exceeds the
    capacity; every task is granted ``min(d_i, L)``.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    d = np.asarray(demands, dtype=float)
    m = d.size
    if m == 0:
        return np.empty(0)
    w = np.ones(m) if weights is None else np.asarray(weights, dtype=float)
    total = float((w * d).sum())
    if total <= capacity * (1.0 + _EPS):
        return d.copy()
    order = np.argsort(d, kind="stable")
    ds = d[order]
    ws = w[order]
    cum_w = np.cumsum(ws)
    cum_wd = np.cumsum(ws * ds)
    # Candidate level when the j smallest demand groups are fully satisfied:
    #   capacity = cum_wd[j-1] + L * (W - cum_w[j-1])
    # The correct segment is the first j whose candidate stays below ds[j].
    prev_w = np.concatenate(([0.0], cum_w[:-1]))
    prev_wd = np.concatenate(([0.0], cum_wd[:-1]))
    denom = cum_w[-1] - prev_w
    levels = (capacity - prev_wd) / denom
    feasible = levels <= ds * (1.0 + _EPS)
    j = int(np.argmax(feasible)) if feasible.any() else m - 1
    level = max(float(levels[j]), 0.0)
    return np.minimum(d, level)


#: Compositions with at most this many unique signatures take the scalar
#: fast path of the allocator miss pipeline.  7 is also the bit-exactness
#: boundary: numpy reduces sums of fewer than 8 float64 elements strictly
#: sequentially, so the scalar transcription matches :func:`waterfill_vec`
#: to the last ulp.
_SCALAR_MAX_GROUPS = 7


def _waterfill_scalar(
    demands: list[float], capacity: float, weights: list[int]
) -> list[float]:
    """Scalar transcription of :func:`waterfill_vec` for tiny inputs.

    Bit-identical to the vectorized version for fewer than 8 demand groups
    (see :data:`_SCALAR_MAX_GROUPS`); every sum runs in the same sequential
    order and the sort is stable, mirroring ``argsort(kind="stable")``.
    """
    m = len(demands)
    total = 0.0
    for j in range(m):
        total += weights[j] * demands[j]
    if total <= capacity * (1.0 + _EPS):
        return list(demands)
    order = sorted(range(m), key=demands.__getitem__)
    cum_w = [0.0] * m
    cum_wd = [0.0] * m
    acc_w = 0.0
    acc_wd = 0.0
    for k, j in enumerate(order):
        acc_w += weights[j]
        acc_wd += weights[j] * demands[j]
        cum_w[k] = acc_w
        cum_wd[k] = acc_wd
    w_total = cum_w[-1]
    prev_w = 0.0
    prev_wd = 0.0
    level = 0.0
    for k, j in enumerate(order):
        level = (capacity - prev_wd) / (w_total - prev_w)
        if level <= demands[j] * (1.0 + _EPS):
            break
        prev_w = cum_w[k]
        prev_wd = cum_wd[k]
    if level < 0.0:
        level = 0.0
    return [min(dj, level) for dj in demands]


class BandwidthContentionAllocator:
    """Rate allocator combining per-core issue sharing and node bandwidth.

    Parameters
    ----------
    frequency_hz:
        Core clock frequency.
    bandwidth_bytes_per_s:
        Effective shared node memory bandwidth.

    Fluid-task metadata contract: ``meta["profile"]`` is a
    :class:`PhaseProfile` and ``meta["thread"]`` a :class:`HwThread`.
    """

    def __init__(
        self,
        frequency_hz: float,
        bandwidth_bytes_per_s: float,
        bandwidth_rampup_max: float | None = None,
        bandwidth_rampup_half: float = 0.0,
    ):
        if frequency_hz <= 0:
            raise ValueError(f"frequency_hz must be positive, got {frequency_hz}")
        if bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"bandwidth_bytes_per_s must be positive, got {bandwidth_bytes_per_s}"
            )
        if bandwidth_rampup_half < 0:
            raise ValueError(
                f"bandwidth_rampup_half must be >= 0, got {bandwidth_rampup_half}"
            )
        self.frequency_hz = frequency_hz
        self.bandwidth = bandwidth_bytes_per_s
        #: Concurrency ramp-up of the memory system (Little's-law queueing):
        #: with n demanding threads the achievable aggregate bandwidth is
        #: ``min(rampup_max * n / (n + rampup_half), bandwidth)``.  Real
        #: many-core memory systems need tens of outstanding request streams
        #: to reach peak; the per-thread share therefore *degrades gradually*
        #: with concurrency instead of at a hard saturation knee — this is
        #: what produces the paper's smooth IPC-scalability decline across
        #: 2x8 and 4x8 (Table I).  ``rampup_max=None`` disables the ramp.
        self.bandwidth_rampup_max = bandwidth_rampup_max
        self.bandwidth_rampup_half = bandwidth_rampup_half
        # Profile interning: (ipc0, bytes_per_instr) -> small id, with the
        # numeric fields mirrored in arrays (vectorized decode) and plain
        # lists (scalar decode on the small-composition fast path).
        self._profile_ids: dict[tuple[float, float], int] = {}
        self._profile_ipc0 = np.empty(0)
        self._profile_bpi = np.empty(0)
        self._profile_ipc0_l: list[float] = []
        self._profile_bpi_l: list[float] = []
        # Core interning: (node, core) -> dense id.
        self._core_ids: dict[tuple[int, int], int] = {}
        # Dense interning of *single-occupancy* packed codes: code -> small
        # contiguous id, with the decoded physics (issue ceiling, bandwidth
        # demand, traffic intensity, node) mirrored per id.  On the
        # no-hyper-threading fast path a composition is then just the count
        # vector over dense ids — one bincount — and a cache miss prices the
        # present groups without re-decoding any code.
        self._dense_ids: dict[int, int] = {}
        self._dense_code_l: list[int] = []
        self._dense_ceiling_l: list[float] = []
        self._dense_demand_l: list[float] = []
        self._dense_bpi_l: list[float] = []
        self._dense_node_l: list[int] = []
        # Count-vector memo of the dense fast path: counts bytes -> base
        # rate per dense id.  Kept separate from the sorted-code memo (the
        # entry formats differ); both report into the same hit/miss counters.
        self._dense_cache: dict[bytes, np.ndarray] = {}
        # Incremental core occupancy, fed by the fluid engine's attach/detach
        # notifications: active-task count per core id, plus the number of
        # cores currently running more than one hyper-thread.  While that
        # number is zero every occupancy is 1 and the rebalance hot path can
        # skip the per-batch bincount entirely.
        self._core_occ: dict[int, int] = {}
        self._multi_cores = 0
        # Composition memo: sorted packed-code bytes ->
        # (unique codes, base rate per code) — excludes the speed factor.
        self._cache: dict[bytes, tuple[np.ndarray, np.ndarray]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0

    def effective_capacity(self, n_demanding: int) -> float:
        """Achievable aggregate bandwidth with ``n_demanding`` active streams."""
        if self.bandwidth_rampup_max is None or n_demanding <= 0:
            return self.bandwidth
        ramp = self.bandwidth_rampup_max * n_demanding / (n_demanding + self.bandwidth_rampup_half)
        return min(ramp, self.bandwidth)

    def cache_info(self) -> dict[str, int]:
        """Allocation-memo counters (merged into the engine manifest section)."""
        return {
            "alloc_cache_hits": self.cache_hits,
            "alloc_cache_misses": self.cache_misses,
            "alloc_cache_size": len(self._cache) + len(self._dense_cache),
            "alloc_cache_evictions": self.cache_evictions,
        }

    # -- batch protocol (the fluid engine's hot path) -------------------------

    #: Static record layout:
    #: ``(packed code, core id, speed, dense code id)``.
    #: The first field is ``(profile id << 24) | (1 << 12) | node`` — the
    #: occupancy slot (bits 12..23) is pre-filled with the single-occupancy
    #: value; rebalances that do see shared cores add the occupancy *excess*
    #: per task and fall back to the sorted-code memo.  The fourth field is
    #: the dense intern of the packed code, which the no-hyper-threading
    #: fast path bincounts straight into its composition key.  The fluid
    #: resource stores records as rows of one float array and hands
    #: :meth:`allocate_batch` an ``(n, 4)`` view — no per-task iteration.
    static_width = 4

    def prepare(self, task: FluidTask) -> tuple[int, int, float, int]:
        """Intern a task's static contention signature (once, at submit)."""
        meta = task.meta
        try:
            profile: PhaseProfile = meta["profile"]
            thread: HwThread = meta["thread"]
        except KeyError as exc:
            raise RuntimeError(
                f"compute task missing required metadata {exc}: {task!r}"
            ) from None
        pkey = (profile.ipc0, profile.bytes_per_instr)
        pid = self._profile_ids.get(pkey)
        if pid is None:
            pid = len(self._profile_ids)
            self._profile_ids[pkey] = pid
            self._profile_ipc0 = np.append(self._profile_ipc0, profile.ipc0)
            self._profile_bpi = np.append(self._profile_bpi, profile.bytes_per_instr)
            self._profile_ipc0_l.append(profile.ipc0)
            self._profile_bpi_l.append(profile.bytes_per_instr)
        core_key = (thread.node, thread.core)
        core_id = self._core_ids.get(core_key)
        if core_id is None:
            core_id = len(self._core_ids)
            self._core_ids[core_key] = core_id
        code = (pid << 24) | (1 << 12) | thread.node
        did = self._dense_ids.get(code)
        if did is None:
            did = len(self._dense_ids)
            self._dense_ids[code] = did
            self._dense_code_l.append(code)
            # Single-occupancy physics (occupancy 1 divides out exactly, so
            # these match the generic decode bit for bit).
            ceiling = profile.ipc0 * self.frequency_hz
            self._dense_ceiling_l.append(ceiling)
            self._dense_demand_l.append(ceiling * profile.bytes_per_instr)
            self._dense_bpi_l.append(profile.bytes_per_instr)
            self._dense_node_l.append(thread.node)
        return (code, core_id, meta.get("speed", 1.0), did)

    def notify_attach(self, static: "np.ndarray | tuple") -> None:
        """Track a task entering the active set (fluid-engine hook)."""
        core = int(static[1])
        occ = self._core_occ
        c = occ.get(core, 0) + 1
        occ[core] = c
        if c == 2:
            self._multi_cores += 1

    def notify_detach(self, static: "np.ndarray | tuple") -> None:
        """Track a task leaving the active set (fluid-engine hook)."""
        core = int(static[1])
        occ = self._core_occ
        c = occ[core] - 1
        if c:
            occ[core] = c
            if c == 1:
                self._multi_cores -= 1
        else:
            del occ[core]

    def allocate_batch(self, statics: "np.ndarray | _t.Sequence") -> np.ndarray:
        """Instruction rates for the active set's static records (in order).

        ``statics`` is the resource's ``(n, 3)`` record array (or any
        sequence of ``prepare`` tuples — the scalar path delegates here).
        Callers other than the fluid engine must route attach/detach
        notifications (or use :meth:`allocate`, which does): the occupancy
        fast path below trusts the incremental per-core counts.
        """
        n = len(statics)
        if n == 0:
            return np.empty(0)
        if type(statics) is np.ndarray:
            arr = statics
        else:
            arr = np.asarray(statics, dtype=float)
        # Packed per-task code: everything the base rate depends on.  The
        # multiset of codes fully determines the allocation, so the sorted
        # code array is the memo key — and codes of tasks on *different but
        # equally occupied* cores collide by construction, which is exactly
        # the invariance that makes steady-state compositions recur.
        if self._multi_cores:
            ints = arr[:, :2].astype(np.int64)
            core = ints[:, 1]
            occupancy = np.bincount(core)[core]  # active HTs on own core
            codes = ints[:, 0] + ((occupancy - 1) << 12)
            sorted_codes = np.sort(codes)
            key = sorted_codes.tobytes()
            entry = self._cache.get(key)
            if entry is None:
                self.cache_misses += 1
                if len(self._cache) >= _CACHE_LIMIT:
                    self._cache.clear()
                    self.cache_evictions += 1
                entry = self._base_rates(sorted_codes)
                self._cache[key] = entry
            else:
                self.cache_hits += 1
            uniq, base = entry
            # Per-execution speed factor (models run-to-run microarchitectural
            # variability — cache state, TLB, OS noise; see CpuModel.jitter).
            return base[np.searchsorted(uniq, codes)] * arr[:, 2]
        # No core runs more than one active task (tracked incrementally by
        # the attach/detach hooks): every occupancy is 1, already baked into
        # the static codes, and the composition is just the count vector
        # over dense code ids — no sort, and rate lookup is direct indexing.
        dense = arr[:, 3].astype(np.intp)
        counts = np.bincount(dense, minlength=len(self._dense_code_l))
        key = counts.tobytes()
        cache = self._dense_cache
        base = cache.get(key)
        if base is None:
            self.cache_misses += 1
            if len(cache) >= _CACHE_LIMIT:
                cache.clear()
                self.cache_evictions += 1
            base = self._base_rates_dense(counts)
            cache[key] = base
        else:
            self.cache_hits += 1
        return base[dense] * arr[:, 2]

    def _base_rates(self, sorted_codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Speed-independent rate per packed code for one composition.

        All tasks sharing a code have identical issue ceilings and bandwidth
        demands, so max-min fairness grants them identical rates — the
        computation runs per *unique* code with multiplicities as
        water-filling weights.  Returns ``(unique codes, rate per code)``.
        """
        # Run-length encode the pre-sorted codes — group boundaries are the
        # positions where adjacent codes differ, so unique codes and their
        # multiplicities come out of three array ops instead of a Python pass
        # over every task (np.unique would re-sort what is already sorted).
        n = sorted_codes.size
        flag = np.empty(n, dtype=bool)
        flag[0] = True
        np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=flag[1:])
        starts = flag.nonzero()[0]
        uniq = sorted_codes[starts]
        m = starts.size
        if m <= _SCALAR_MAX_GROUPS:
            bounds = starts.tolist()
            bounds.append(n)
            counts = [bounds[k + 1] - bounds[k] for k in range(m)]
            return self._base_rates_scalar(uniq, counts)
        counts = np.empty(m, dtype=np.int64)
        np.subtract(starts[1:], starts[:-1], out=counts[: m - 1])
        counts[m - 1] = n - starts[m - 1]
        return self._base_rates_groups(uniq, counts)

    def _base_rates_groups(
        self, uniq: np.ndarray, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized pricing of one composition given as (codes, weights).

        ``uniq`` must be sorted ascending — both callers iterate groups in
        code order, which pins the floating-point summation sequence and
        keeps every memo path bit-compatible.
        """
        pid = uniq >> 24
        occupancy = (uniq >> 12) & 0xFFF
        node = uniq & 0xFFF
        ipc0 = self._profile_ipc0[pid]
        bpi = self._profile_bpi[pid]

        # Stage 1: per-core issue sharing — the occupancy is baked into the
        # code, so the ceiling is a pure elementwise expression.
        ceilings = ipc0 * self.frequency_hz / occupancy
        demands = ceilings * bpi

        # Stage 2: per-node bandwidth water filling against the
        # concurrency-dependent achievable capacity of that node.
        demanding = demands > 0.0
        grants = np.zeros(uniq.size)
        if (node == node[0]).all():
            # Fast path (the paper's testbed): one contention domain.
            n_demanding = int(counts[demanding].sum())
            grants[:] = waterfill_vec(
                demands, self.effective_capacity(n_demanding), counts
            )
        else:
            for nd in np.unique(node):
                sel = node == nd
                n_demanding = int(counts[sel & demanding].sum())
                grants[sel] = waterfill_vec(
                    demands[sel], self.effective_capacity(n_demanding), counts[sel]
                )

        rates = np.where(
            bpi <= 0.0,
            ceilings,
            np.minimum(
                ceilings,
                np.divide(grants, bpi, out=np.zeros_like(grants), where=bpi > 0.0),
            ),
        )
        return uniq, rates

    def _base_rates_dense(self, counts: np.ndarray) -> np.ndarray:
        """Base rate per dense code id for one single-occupancy composition.

        ``counts`` is the count vector over dense ids (zeros for absent
        codes).  The physics per id was precomputed at intern time, so a
        miss only selects the present groups — in *code order*, matching
        the sorted-code paths' summation sequence bit for bit — and runs
        the water filling.  Returns a rate array indexed by dense id.
        """
        active = counts.nonzero()[0].tolist()
        code_l = self._dense_code_l
        active.sort(key=code_l.__getitem__)
        m = len(active)
        counts_l = counts.tolist()
        base = np.zeros(len(counts_l))
        if m > _SCALAR_MAX_GROUPS:
            uniq = np.array([code_l[d] for d in active], dtype=np.int64)
            weights = np.array([counts_l[d] for d in active], dtype=np.int64)
            _, rates = self._base_rates_groups(uniq, weights)
            base[active] = rates
            return base
        ceiling_l = self._dense_ceiling_l
        demand_l = self._dense_demand_l
        bpi_l = self._dense_bpi_l
        node_l = self._dense_node_l
        demands = [demand_l[d] for d in active]
        weights = [counts_l[d] for d in active]
        nodes = [node_l[d] for d in active]
        node_set = set(nodes)
        if len(node_set) == 1:
            n_demanding = 0
            for j in range(m):
                if demands[j] > 0.0:
                    n_demanding += weights[j]
            grants = _waterfill_scalar(
                demands, self.effective_capacity(n_demanding), weights
            )
            for j, d in enumerate(active):
                bpi_j = bpi_l[d]
                if bpi_j <= 0.0:
                    base[d] = ceiling_l[d]
                else:
                    base[d] = min(ceiling_l[d], grants[j] / bpi_j)
            return base
        for nd in sorted(node_set):
            idx = [j for j in range(m) if nodes[j] == nd]
            n_demanding = 0
            for j in idx:
                if demands[j] > 0.0:
                    n_demanding += weights[j]
            grants = _waterfill_scalar(
                [demands[j] for j in idx],
                self.effective_capacity(n_demanding),
                [weights[j] for j in idx],
            )
            for g, j in zip(grants, idx):
                d = active[j]
                bpi_j = bpi_l[d]
                if bpi_j <= 0.0:
                    base[d] = ceiling_l[d]
                else:
                    base[d] = min(ceiling_l[d], g / bpi_j)
        return base

    def _base_rates_scalar(
        self, uniq_arr: np.ndarray, counts: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scalar twin of the vectorized miss path for small compositions.

        With at most :data:`_SCALAR_MAX_GROUPS` unique codes, plain Python
        floats beat numpy's per-call overhead by ~4x.  Every arithmetic step
        mirrors the vectorized path operation-for-operation (numpy reduces
        sums of fewer than 8 elements strictly sequentially), so both paths
        produce bit-identical rates and the memo stays path-independent.
        """
        freq = self.frequency_hz
        ipc0_l = self._profile_ipc0_l
        bpi_l = self._profile_bpi_l
        uniq = uniq_arr.tolist()
        m = len(uniq)
        ceilings = [0.0] * m
        demands = [0.0] * m
        bpis = [0.0] * m
        nodes = [0] * m
        for j, code in enumerate(uniq):
            pid = code >> 24
            occ = (code >> 12) & 0xFFF
            nodes[j] = code & 0xFFF
            bpi_j = bpi_l[pid]
            ceil_j = ipc0_l[pid] * freq / occ
            ceilings[j] = ceil_j
            demands[j] = ceil_j * bpi_j
            bpis[j] = bpi_j
        rates = [0.0] * m
        node_set = set(nodes)
        if len(node_set) == 1:
            # Single contention domain (the paper's testbed): feed the group
            # arrays straight through, no per-node index lists.
            n_demanding = 0
            for j in range(m):
                if demands[j] > 0.0:
                    n_demanding += counts[j]
            grants = _waterfill_scalar(
                demands, self.effective_capacity(n_demanding), counts
            )
            for j in range(m):
                bpi_j = bpis[j]
                if bpi_j <= 0.0:
                    rates[j] = ceilings[j]
                else:
                    rates[j] = min(ceilings[j], grants[j] / bpi_j)
            return uniq_arr, np.array(rates)
        for nd in sorted(node_set):
            idx = [j for j in range(m) if nodes[j] == nd]
            n_demanding = 0
            for j in idx:
                if demands[j] > 0.0:
                    n_demanding += counts[j]
            grants = _waterfill_scalar(
                [demands[j] for j in idx],
                self.effective_capacity(n_demanding),
                [counts[j] for j in idx],
            )
            for g, j in zip(grants, idx):
                bpi_j = bpis[j]
                if bpi_j <= 0.0:
                    rates[j] = ceilings[j]
                else:
                    rates[j] = min(ceilings[j], g / bpi_j)
        return uniq_arr, np.array(rates)

    # -- sequence interface (tests, diagnostics, non-engine callers) ----------

    def allocate(self, tasks: _t.Sequence[FluidTask]) -> list[float]:
        """Instruction rates for the active compute tasks (see module docs).

        Both sharing stages are per *node*: hyper-threads share their own
        core's issue slots, and the bandwidth water-filling runs over each
        node's tasks against that node's achievable capacity (nodes of a
        cluster are independent contention domains).  Delegates to the same
        vectorized engine the fluid resource drives through the batch
        protocol, so direct calls and engine calls agree bit-for-bit.
        """
        if not tasks:
            return []
        statics = [self.prepare(t) for t in tasks]
        for s in statics:
            self.notify_attach(s)
        try:
            return self.allocate_batch(statics).tolist()
        finally:
            for s in statics:
                self.notify_detach(s)

    def effective_ipc(self, rate_instr_per_s: float) -> float:
        """Convert an instruction rate back to IPC (for counters/tracing)."""
        return rate_instr_per_s / self.frequency_hz
