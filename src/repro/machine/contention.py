"""The contention model: concurrent phases -> effective per-thread rates.

:class:`BandwidthContentionAllocator` is a :class:`~repro.simkit.fluid.RateAllocator`
for the node's CPU fluid resource.  Each active fluid task represents one
compute phase executing on one hardware thread; its metadata carries the
:class:`~repro.machine.phases.PhaseProfile` and the
:class:`~repro.machine.topology.HwThread` binding.  Rates are in
*instructions per second* and are derived in two stages:

1. **Issue sharing (per core).**  Hyper-threads of the same physical core
   share issue slots linearly: with ``k`` active hyper-threads each gets a
   ceiling of ``ipc0 * frequency / k`` instructions/s.  This reproduces the
   paper's observation that "the average IPC is more or less cut in half when
   going from 8x8 (no hyper-threading) to 16x8 (two-time hyper-threading)".

2. **Bandwidth water filling (per node).**  Each task *demands* memory
   traffic ``ceiling_i * bytes_per_instr_i``.  The node bandwidth ``B`` is
   divided max-min fairly: tasks demanding less than the fair share are fully
   satisfied, the slack is redistributed over the rest.  A task's final rate
   is ``grant_i / bytes_per_instr_i`` (or its issue ceiling for phases with
   negligible traffic).

When every thread executes the high-intensity phase simultaneously (the
original, statically synchronised FFTXlib), all demands collide and every
thread is throttled to ``B / n / bpi``.  When the OmpSs scheduler
de-synchronises phases, low-demand phases leave bandwidth to high-demand
ones, raising their effective IPC — the mechanism behind Fig. 7.
"""

from __future__ import annotations

import typing as _t
from collections import Counter as _Counter

from repro.machine.phases import PhaseProfile
from repro.machine.topology import HwThread
from repro.simkit.fluid import FluidTask

__all__ = ["BandwidthContentionAllocator", "waterfill"]

#: Numerical slack for the water-filling fixpoint.
_EPS = 1e-12


def waterfill(demands: _t.Sequence[float], capacity: float) -> list[float]:
    """Max-min fair allocation of ``capacity`` over ``demands``.

    Tasks demanding no more than the current fair share receive their full
    demand; the freed capacity is redistributed among the remaining tasks
    until all are either satisfied or capped at the final fair share.

    Returns one grant per demand, with ``sum(grants) <= capacity`` and
    ``grants[i] <= demands[i]``.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    n = len(demands)
    grants = [0.0] * n
    if n == 0:
        return grants
    remaining = capacity
    unsat = [i for i in range(n) if demands[i] > 0.0]
    while unsat:
        fair = remaining / len(unsat)
        threshold = fair + _EPS
        # One pass: grant the satisfied demands (in index order, so the
        # floating-point subtraction sequence is unchanged) and collect the
        # still-unsatisfied rest — the old three-scan version with its
        # per-round set() rebuild dominated allocator time at 64+ streams.
        still_unsat: list[int] = []
        for i in unsat:
            d = demands[i]
            if d <= threshold:
                grants[i] = d
                remaining -= d
            else:
                still_unsat.append(i)
        if len(still_unsat) == len(unsat):
            for i in unsat:
                grants[i] = fair
            return grants
        unsat = still_unsat
        if remaining <= 0.0:
            break
    return grants


class BandwidthContentionAllocator:
    """Rate allocator combining per-core issue sharing and node bandwidth.

    Parameters
    ----------
    frequency_hz:
        Core clock frequency.
    bandwidth_bytes_per_s:
        Effective shared node memory bandwidth.

    Fluid-task metadata contract: ``meta["profile"]`` is a
    :class:`PhaseProfile` and ``meta["thread"]`` a :class:`HwThread`.
    """

    def __init__(
        self,
        frequency_hz: float,
        bandwidth_bytes_per_s: float,
        bandwidth_rampup_max: float | None = None,
        bandwidth_rampup_half: float = 0.0,
    ):
        if frequency_hz <= 0:
            raise ValueError(f"frequency_hz must be positive, got {frequency_hz}")
        if bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"bandwidth_bytes_per_s must be positive, got {bandwidth_bytes_per_s}"
            )
        if bandwidth_rampup_half < 0:
            raise ValueError(
                f"bandwidth_rampup_half must be >= 0, got {bandwidth_rampup_half}"
            )
        self.frequency_hz = frequency_hz
        self.bandwidth = bandwidth_bytes_per_s
        #: Concurrency ramp-up of the memory system (Little's-law queueing):
        #: with n demanding threads the achievable aggregate bandwidth is
        #: ``min(rampup_max * n / (n + rampup_half), bandwidth)``.  Real
        #: many-core memory systems need tens of outstanding request streams
        #: to reach peak; the per-thread share therefore *degrades gradually*
        #: with concurrency instead of at a hard saturation knee — this is
        #: what produces the paper's smooth IPC-scalability decline across
        #: 2x8 and 4x8 (Table I).  ``rampup_max=None`` disables the ramp.
        self.bandwidth_rampup_max = bandwidth_rampup_max
        self.bandwidth_rampup_half = bandwidth_rampup_half

    def effective_capacity(self, n_demanding: int) -> float:
        """Achievable aggregate bandwidth with ``n_demanding`` active streams."""
        if self.bandwidth_rampup_max is None or n_demanding <= 0:
            return self.bandwidth
        ramp = self.bandwidth_rampup_max * n_demanding / (n_demanding + self.bandwidth_rampup_half)
        return min(ramp, self.bandwidth)

    def allocate(self, tasks: _t.Sequence[FluidTask]) -> list[float]:
        """Instruction rates for the active compute tasks (see module docs).

        Both sharing stages are per *node*: hyper-threads share their own
        core's issue slots, and the bandwidth water-filling runs over each
        node's tasks against that node's achievable capacity (nodes of a
        cluster are independent contention domains).
        """
        n = len(tasks)
        if n == 0:
            return []
        # The allocator runs on *every* change of the active set — with k
        # concurrent phases that is O(k) calls of O(k) work per burst, the
        # single hottest path of a sweep.  A task's profile/thread/speed never
        # change after submit, so the attribute and dict traffic is paid once
        # and memoised on the task as ``meta["_alloc"]``:
        # (ipc0, bytes_per_instr, (node, core), node, speed).
        infos = []
        corekeys = []
        append_info = infos.append
        append_key = corekeys.append
        for task in tasks:
            meta = task.meta
            info = meta.get("_alloc")
            if info is None:
                try:
                    profile: PhaseProfile = meta["profile"]
                    thread: HwThread = meta["thread"]
                except KeyError as exc:
                    raise RuntimeError(
                        f"compute task missing required metadata {exc}: {task!r}"
                    ) from None
                info = (
                    profile.ipc0,
                    profile.bytes_per_instr,
                    (thread.node, thread.core),
                    thread.node,
                    meta.get("speed", 1.0),
                )
                meta["_alloc"] = info
            append_info(info)
            append_key(info[2])

        per_core = _Counter(corekeys)  # C-level counting loop
        node0 = infos[0][3]
        single_node = all(info[3] == node0 for info in infos)

        # Stage 1 + 2 demand side in one pass: per-core issue ceilings
        # (instructions/s) and the bytes/s demands they imply.
        frequency_hz = self.frequency_hz
        ceilings = []
        demands = []
        n_demanding = 0
        append_c = ceilings.append
        append_d = demands.append
        for info in infos:
            c = info[0] * frequency_hz / per_core[info[2]]
            d = c * info[1]
            append_c(c)
            append_d(d)
            if d > 0.0:
                n_demanding += 1

        # Stage 2: per-node bandwidth water filling against the
        # concurrency-dependent achievable capacity of that node.
        if single_node:
            # Fast path (the paper's testbed): one contention domain, no
            # per-node regrouping — identical arithmetic, no index shuffle.
            grants = waterfill(demands, self.effective_capacity(n_demanding))
        else:
            grants = [0.0] * n
            by_node: dict[int, list[int]] = {}
            for i, info in enumerate(infos):
                by_node.setdefault(info[3], []).append(i)
            for node_tasks in by_node.values():
                node_demands = [demands[i] for i in node_tasks]
                n_demanding = sum(1 for d in node_demands if d > 0.0)
                node_grants = waterfill(node_demands, self.effective_capacity(n_demanding))
                for i, g in zip(node_tasks, node_grants):
                    grants[i] = g

        rates = []
        for info, ceiling, grant in zip(infos, ceilings, grants):
            bytes_per_instr = info[1]
            if bytes_per_instr <= 0.0:
                rate = ceiling
            else:
                rate = min(ceiling, grant / bytes_per_instr)
            # Per-execution speed factor (models run-to-run microarchitectural
            # variability — cache state, TLB, OS noise; see CpuModel.jitter).
            rates.append(rate * info[4])
        return rates

    def effective_ipc(self, rate_instr_per_s: float) -> float:
        """Convert an instruction rate back to IPC (for counters/tracing)."""
        return rate_instr_per_s / self.frequency_hz
