"""The CPU model: executing compute phases on the contended node.

:class:`CpuModel` wraps one :class:`~repro.simkit.fluid.FluidResource` whose
allocator is the :class:`~repro.machine.contention.BandwidthContentionAllocator`.
Rank programs and OmpSs workers execute computation as::

    yield cpu.compute(stream, thread, "fft_xy", instructions)

The returned event fires when the phase's instruction budget has been issued
at whatever (time-varying) effective rate the contention model granted.  On
completion the CPU model updates the hardware counters and notifies observers
(the Extrae-like tracer) with a :class:`ComputeRecord`.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro import telemetry as _telemetry
from repro.machine.contention import BandwidthContentionAllocator
from repro.machine.counters import CounterSet
from repro.machine.phases import PhaseTable
from repro.machine.topology import HwThread, NodeTopology
from repro.simkit.events import Event
from repro.simkit.fluid import FluidResource
from repro.simkit.rng import substream

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.simkit.simulator import Simulator

__all__ = ["ComputeRecord", "CpuModel"]


@dataclasses.dataclass(frozen=True)
class ComputeRecord:
    """One completed compute phase, as reported to observers."""

    stream: _t.Hashable
    thread: HwThread
    phase: str
    instructions: float
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Wall (simulated) duration of the phase."""
        return self.end - self.start

    def ipc(self, frequency_hz: float) -> float:
        """Average effective IPC over the phase."""
        if self.duration <= 0.0:
            return 0.0
        return self.instructions / (self.duration * frequency_hz)


class CpuModel:
    """Compute facade over the contended node.

    Parameters
    ----------
    sim:
        Owning simulator.
    topology:
        The node (frequency and thread slots).
    phase_table:
        Known compute-phase profiles.
    bandwidth_bytes_per_s:
        Effective shared memory bandwidth for the water-filling stage.
    """

    def __init__(
        self,
        sim: "Simulator",
        topology: NodeTopology,
        phase_table: PhaseTable,
        bandwidth_bytes_per_s: float,
        jitter: float = 0.0,
        jitter_seed: int = 7,
        bandwidth_rampup_max: float | None = None,
        bandwidth_rampup_half: float = 0.0,
    ):
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.sim = sim
        self.topology = topology
        self.phase_table = phase_table
        self.allocator = BandwidthContentionAllocator(
            frequency_hz=topology.frequency_hz,
            bandwidth_bytes_per_s=bandwidth_bytes_per_s,
            bandwidth_rampup_max=bandwidth_rampup_max,
            bandwidth_rampup_half=bandwidth_rampup_half,
        )
        self.resource = FluidResource(sim, self.allocator, name="cpu")
        self.counters = CounterSet(frequency_hz=topology.frequency_hz)
        self._observers: list[_t.Callable[[ComputeRecord], None]] = []
        #: Relative amplitude of per-execution speed variability.  Real cores
        #: never run two nominally identical phases at exactly the same speed
        #: (cache/TLB state, OS noise); this seeded, deterministic jitter is
        #: what lets dynamically scheduled tasks drift out of lock-step — the
        #: raw material of the paper's de-synchronization effect.  Statically
        #: synchronized executions re-align at every collective, so the same
        #: jitter costs them load balance instead.
        self.jitter = jitter
        self._rng = substream(jitter_seed)
        #: Fault injector consulted per compute phase (set by the driver
        #: when a fault scenario is active; ``None`` costs one attribute
        #: check and leaves timing bit-identical to a healthy run).
        self.faults: "FaultInjector | None" = None

    @property
    def frequency_hz(self) -> float:
        """Core clock frequency (Hz)."""
        return self.topology.frequency_hz

    def add_observer(self, observer: _t.Callable[[ComputeRecord], None]) -> None:
        """Register a callback invoked with every completed :class:`ComputeRecord`."""
        self._observers.append(observer)

    def compute(
        self,
        stream: _t.Hashable,
        thread: HwThread,
        phase: str,
        instructions: float,
    ) -> Event:
        """Execute ``instructions`` of phase ``phase`` on ``thread``.

        Returns an event that fires when the work completes.  The phase must
        exist in the phase table; unknown phases raise immediately (catching
        cost-model typos at call time rather than as silent stalls).
        """
        profile = self.phase_table[phase]
        if instructions < 0:
            raise ValueError(f"negative instruction count {instructions!r}")
        start = self.sim.now
        speed = 1.0
        if self.jitter > 0.0:
            speed = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        if self.faults is not None:
            speed *= self.faults.compute_speed_factor(stream)
        task = self.resource.submit(
            instructions,
            meta={"profile": profile, "thread": thread, "stream": stream, "speed": speed},
        )

        def _finish(event: Event) -> None:
            if event._exception is not None:
                return  # cancelled/failed: no completion bookkeeping
            end = self.sim.now
            record = ComputeRecord(
                stream=stream,
                thread=thread,
                phase=phase,
                instructions=instructions,
                start=start,
                end=end,
            )
            self.counters.record(stream, phase, instructions, end - start)
            for observer in self._observers:
                observer(record)
            tel = _telemetry.current()
            if tel.enabled:
                tel.metrics.count("machine.compute_seconds", end - start, phase=phase)
                tel.metrics.count("machine.instructions", instructions, phase=phase)
                tel.metrics.observe("machine.phase_seconds", end - start, phase=phase)
            # Waiters resume off this same event; registered first, this
            # callback swaps the task payload for the ComputeRecord they
            # expect — one event per phase instead of a done/notify pair.
            event._value = record

        task.done.add_callback(_finish)
        return task.done

    def engine_stats(self) -> dict[str, int]:
        """Fluid-engine counters of the contended CPU resource (manifests)."""
        return dict(self.resource.stats())

    def current_ipc_of(self, stream: _t.Hashable) -> float | None:
        """Instantaneous effective IPC of a stream's running phase (or None)."""
        for task in self.resource.active_tasks:
            if task.meta.get("stream") == stream:
                return self.allocator.effective_ipc(task.rate)
        return None
