"""Machine model of an Intel Knights Landing (KNL) node.

This package is the substitute for the paper's physical test system (a single
KNL node: 68 cores at 1.4 GHz, 4-way hyper-threading).  It provides

* :mod:`~repro.machine.topology` — cores, hardware-thread slots, placement;
* :mod:`~repro.machine.phases` — per-phase *nominal* IPC and memory traffic
  (bytes per instruction), the inputs of the contention model;
* :mod:`~repro.machine.contention` — the rate allocator that converts the set
  of concurrently executing phases into effective per-thread IPC: linear
  issue-slot sharing between hyper-threads of a core, and max-min (water
  filling) sharing of the node memory bandwidth;
* :mod:`~repro.machine.cpu` — :class:`CpuModel`, the facade used by rank
  programs: ``yield cpu.compute(thread, phase, instructions)``;
* :mod:`~repro.machine.counters` — per-thread instruction/cycle accounting
  (the simulated PAPI counters the POP model consumes);
* :mod:`~repro.machine.knl` — the calibrated KNL preset used by all
  experiments.

The central design point: a phase's *effective* IPC is not an input, it is an
output of the allocator given everything else running on the node at the same
instant.  De-synchronising phases (the paper's Opt 2) therefore raises
average IPC in this model for the same structural reason it does on real KNL
hardware — high-demand phases overlap low-demand ones instead of colliding.
"""

from repro.machine.topology import HwThread, NodeTopology, Placement
from repro.machine.phases import PhaseProfile, PhaseTable
from repro.machine.contention import BandwidthContentionAllocator
from repro.machine.counters import CounterSet, PhaseCounters
from repro.machine.cpu import ComputeRecord, CpuModel
from repro.machine.knl import KnlParameters, knl_parameters, knl_phase_table, knl_topology

__all__ = [
    "HwThread",
    "NodeTopology",
    "Placement",
    "PhaseProfile",
    "PhaseTable",
    "BandwidthContentionAllocator",
    "CounterSet",
    "PhaseCounters",
    "CpuModel",
    "ComputeRecord",
    "KnlParameters",
    "knl_parameters",
    "knl_phase_table",
    "knl_topology",
]
