"""Simulated hardware counters (instructions / compute time / IPC).

The POP efficiency model of the paper (Tables I and II) consumes exactly two
hardware quantities per process: useful instructions executed in computation
and the time spent computing (from which average IPC follows, given the clock
frequency).  :class:`CounterSet` accumulates both per execution stream and per
phase, fed by the :class:`~repro.machine.cpu.CpuModel` completion hook.
"""

from __future__ import annotations

import dataclasses
import typing as _t

__all__ = ["PhaseCounters", "CounterSet"]


@dataclasses.dataclass
class PhaseCounters:
    """Accumulated instructions and busy time for one (stream, phase) pair."""

    instructions: float = 0.0
    compute_time: float = 0.0
    occurrences: int = 0

    def add(self, instructions: float, compute_time: float) -> None:
        """Fold one completed compute phase into the counters."""
        self.instructions += instructions
        self.compute_time += compute_time
        self.occurrences += 1

    def ipc(self, frequency_hz: float) -> float:
        """Average IPC over the accumulated phase executions."""
        if self.compute_time <= 0.0:
            return 0.0
        return self.instructions / (self.compute_time * frequency_hz)


class CounterSet:
    """Per-stream, per-phase hardware-counter accumulation.

    A *stream* is one execution context the analysis treats as a process:
    an MPI rank in the original version, an (MPI rank, OmpSs thread) pair in
    the task versions.
    """

    def __init__(self, frequency_hz: float):
        if frequency_hz <= 0:
            raise ValueError(f"frequency_hz must be positive, got {frequency_hz}")
        self.frequency_hz = frequency_hz
        self._data: dict[_t.Hashable, dict[str, PhaseCounters]] = {}

    def record(self, stream: _t.Hashable, phase: str, instructions: float, compute_time: float) -> None:
        """Accumulate one completed compute phase."""
        per_phase = self._data.get(stream)
        if per_phase is None:
            per_phase = self._data[stream] = {}
        counters = per_phase.get(phase)
        if counters is None:
            counters = per_phase[phase] = PhaseCounters()
        counters.add(instructions, compute_time)

    # -- queries ----------------------------------------------------------------

    @property
    def streams(self) -> list[_t.Hashable]:
        """All streams that recorded at least one phase."""
        return sorted(self._data, key=repr)

    def phases(self, stream: _t.Hashable) -> dict[str, PhaseCounters]:
        """Phase-name -> counters mapping for one stream."""
        return dict(self._data.get(stream, {}))

    def stream_instructions(self, stream: _t.Hashable) -> float:
        """Total useful instructions of one stream."""
        return sum(c.instructions for c in self._data.get(stream, {}).values())

    def stream_compute_time(self, stream: _t.Hashable) -> float:
        """Total busy compute time of one stream."""
        return sum(c.compute_time for c in self._data.get(stream, {}).values())

    def stream_ipc(self, stream: _t.Hashable) -> float:
        """Average IPC of one stream over its compute time."""
        t = self.stream_compute_time(stream)
        if t <= 0.0:
            return 0.0
        return self.stream_instructions(stream) / (t * self.frequency_hz)

    def total_instructions(self) -> float:
        """Total useful instructions over all streams."""
        return sum(self.stream_instructions(s) for s in self._data)

    def total_compute_time(self) -> float:
        """Accumulated compute time over all streams."""
        return sum(self.stream_compute_time(s) for s in self._data)

    def average_ipc(self) -> float:
        """Compute-time-weighted average IPC over all streams."""
        t = self.total_compute_time()
        if t <= 0.0:
            return 0.0
        return self.total_instructions() / (t * self.frequency_hz)

    def phase_ipc(self, phase: str) -> float:
        """Average IPC of one phase kind across all streams."""
        instr = 0.0
        t = 0.0
        for per_phase in self._data.values():
            c = per_phase.get(phase)
            if c is not None:
                instr += c.instructions
                t += c.compute_time
        if t <= 0.0:
            return 0.0
        return instr / (t * self.frequency_hz)
