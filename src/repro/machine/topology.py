"""Node topology: cores, hardware threads, and thread placement.

The KNL node of the paper has 68 cores (in 34 tiles of 2), each with 4
hardware-thread slots.  Simulated execution streams (MPI ranks, OmpSs worker
threads) are bound to :class:`HwThread` slots by a :class:`Placement` policy.

The placement used throughout the reproduction mirrors the paper's runs: one
stream per core as long as streams <= cores, then wrapping onto the second
(and fourth) hyper-thread slot — e.g. the 16x8 configuration (128 streams on
68 cores) runs most cores with two hyper-threads, and 32x8 (256 streams) with
four, exactly the "2 and 4 hyper-threads per core" of Figures 2/6.
"""

from __future__ import annotations

import dataclasses
import typing as _t

__all__ = ["HwThread", "NodeTopology", "Placement"]


@dataclasses.dataclass(frozen=True)
class HwThread:
    """One hardware-thread slot of one core.

    Attributes
    ----------
    core:
        Physical core index in ``[0, n_cores)`` *within its node*.
    slot:
        Hyper-thread slot on that core in ``[0, threads_per_core)``.
    index:
        Dense index within the node (``slot``-major over occupied slots).
    node:
        Node index for cluster topologies (0 on a single node).
    """

    core: int
    slot: int
    index: int
    node: int = 0

    def __str__(self) -> str:  # pragma: no cover - debug aid
        prefix = f"n{self.node}" if self.node else ""
        return f"{prefix}c{self.core}t{self.slot}"


class NodeTopology:
    """Static description of one many-core node.

    Parameters
    ----------
    n_cores:
        Number of physical cores.
    threads_per_core:
        Hardware-thread slots per core.
    frequency_hz:
        Core clock frequency in Hz.
    cores_per_tile:
        Cores sharing an L2 tile (descriptive; the contention model works at
        core and node granularity).
    """

    def __init__(
        self,
        n_cores: int = 68,
        threads_per_core: int = 4,
        frequency_hz: float = 1.4e9,
        cores_per_tile: int = 2,
    ):
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {n_cores}")
        if threads_per_core < 1:
            raise ValueError(f"threads_per_core must be >= 1, got {threads_per_core}")
        if frequency_hz <= 0:
            raise ValueError(f"frequency_hz must be positive, got {frequency_hz}")
        self.n_cores = n_cores
        self.threads_per_core = threads_per_core
        self.frequency_hz = frequency_hz
        self.cores_per_tile = cores_per_tile

    @property
    def n_hw_threads(self) -> int:
        """Total hardware-thread slots on the node."""
        return self.n_cores * self.threads_per_core

    def tile_of(self, core: int) -> int:
        """L2 tile index of ``core``."""
        self._check_core(core)
        return core // self.cores_per_tile

    def hw_thread(self, core: int, slot: int) -> HwThread:
        """The :class:`HwThread` for an explicit (core, slot) pair."""
        self._check_core(core)
        if not 0 <= slot < self.threads_per_core:
            raise ValueError(f"slot {slot} out of range [0, {self.threads_per_core})")
        return HwThread(core=core, slot=slot, index=slot * self.n_cores + core)

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.n_cores:
            raise ValueError(f"core {core} out of range [0, {self.n_cores})")

    def place(self, n_streams: int) -> "Placement":
        """Bind ``n_streams`` execution streams to hardware threads.

        Streams are spread across cores first (one per core), wrapping onto
        higher hyper-thread slots only when all cores are occupied — the
        paper's configuration style.  Raises if the node is over-subscribed.
        """
        if n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {n_streams}")
        if n_streams > self.n_hw_threads:
            raise ValueError(
                f"{n_streams} streams exceed the node's {self.n_hw_threads} hardware threads"
            )
        threads = [
            self.hw_thread(core=i % self.n_cores, slot=i // self.n_cores)
            for i in range(n_streams)
        ]
        return Placement(topology=self, threads=threads)

    def place_grouped(self, n_streams: int, group: int) -> "Placement":
        """Bind streams so each consecutive group of ``group`` shares a core.

        Used by the per-step task version, whose extra worker per MPI process
        lives on its own core's spare hyper-thread slot (so a worker blocked
        in MPI leaves the full core to its sibling).  Groups are spread over
        cores; when groups outnumber cores they wrap onto higher slot banks.
        """
        if n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {n_streams}")
        if not 1 <= group <= self.threads_per_core:
            raise ValueError(
                f"group must be in [1, {self.threads_per_core}], got {group}"
            )
        threads = []
        for i in range(n_streams):
            g, within = divmod(i, group)
            core = g % self.n_cores
            slot = within + group * (g // self.n_cores)
            if slot >= self.threads_per_core:
                raise ValueError(
                    f"{n_streams} streams in groups of {group} exceed the node's "
                    f"hyper-thread slots"
                )
            threads.append(self.hw_thread(core=core, slot=slot))
        return Placement(topology=self, threads=threads)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ghz = self.frequency_hz / 1e9
        return (
            f"NodeTopology({self.n_cores} cores x {self.threads_per_core} HT @ {ghz:g} GHz)"
        )


class Placement:
    """A binding of execution streams to hardware threads.

    ``placement[i]`` is the :class:`HwThread` of stream ``i``.
    """

    def __init__(self, topology: NodeTopology, threads: _t.Sequence[HwThread]):
        self.topology = topology
        self.threads = list(threads)
        occupied = set()
        for t in self.threads:
            key = (t.node, t.core, t.slot)
            if key in occupied:
                raise ValueError(f"hardware thread {t} bound twice")
            occupied.add(key)

    def __len__(self) -> int:
        return len(self.threads)

    def __getitem__(self, stream: int) -> HwThread:
        return self.threads[stream]

    def __iter__(self) -> _t.Iterator[HwThread]:
        return iter(self.threads)

    @property
    def max_threads_per_core(self) -> int:
        """Worst-case hyper-threads sharing one core under this placement."""
        counts: dict[tuple[int, int], int] = {}
        for t in self.threads:
            key = (t.node, t.core)
            counts[key] = counts.get(key, 0) + 1
        return max(counts.values())

    def streams_on_core(self, core: int, node: int = 0) -> list[int]:
        """Stream indices bound to ``core`` (of ``node``)."""
        return [
            i
            for i, t in enumerate(self.threads)
            if t.core == core and t.node == node
        ]
