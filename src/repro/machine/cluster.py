"""Cluster topology: several KNL nodes (the paper's "large scales" regime).

The paper evaluates on a single node but designed Opt 1 for "large scales
where the impact of the communication is very high and the computational
load is relatively rather small" (§IV).  :class:`ClusterTopology` lets the
driver place ranks over multiple nodes — each an independent contention
domain (per-node issue sharing and per-node bandwidth water-filling in
:class:`~repro.machine.contention.BandwidthContentionAllocator`) — while
the network layer (:class:`~repro.mpisim.network.ClusterNetworkModel`)
charges inter-node traffic at fabric, not memory, speeds.

Placement is node-major blocks: ranks fill node 0 first, then node 1, …,
so the original version's pack groups (T consecutive ranks) stay inside a
node whenever the per-node rank count is a multiple of T — the layout a
production MPI launcher would use for exactly that reason.
"""

from __future__ import annotations

from repro.machine.topology import HwThread, NodeTopology, Placement

__all__ = ["ClusterTopology"]


class ClusterTopology:
    """``n_nodes`` identical nodes; quacks like a big :class:`NodeTopology`."""

    def __init__(self, node: NodeTopology, n_nodes: int):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.node = node
        self.n_nodes = n_nodes

    @property
    def frequency_hz(self) -> float:
        """Core clock (same on every node)."""
        return self.node.frequency_hz

    @property
    def n_cores(self) -> int:
        """Cores per node (the contention domain size)."""
        return self.node.n_cores

    @property
    def threads_per_core(self) -> int:
        """Hyper-thread slots per core."""
        return self.node.threads_per_core

    @property
    def n_hw_threads(self) -> int:
        """Total hardware threads across the cluster."""
        return self.n_nodes * self.node.n_hw_threads

    def node_of_stream(self, n_streams: int, stream: int) -> int:
        """Node of one stream under the block placement of ``place``."""
        per_node = -(-n_streams // self.n_nodes)  # ceil
        return min(stream // per_node, self.n_nodes - 1)

    def place(self, n_streams: int) -> Placement:
        """Node-major block placement; within a node, spread across cores."""
        threads = self._assign(n_streams, grouped=None)
        return Placement(topology=self.node, threads=threads)

    def place_grouped(self, n_streams: int, group: int) -> Placement:
        """Node-major blocks; within a node, core-sharing groups of ``group``."""
        threads = self._assign(n_streams, grouped=group)
        return Placement(topology=self.node, threads=threads)

    def _assign(self, n_streams: int, grouped: int | None) -> list[HwThread]:
        if n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {n_streams}")
        if n_streams > self.n_hw_threads:
            raise ValueError(
                f"{n_streams} streams exceed the cluster's {self.n_hw_threads} "
                f"hardware threads"
            )
        per_node = -(-n_streams // self.n_nodes)
        if grouped is not None and per_node % grouped:
            raise ValueError(
                f"{per_node} streams per node do not split into core groups of {grouped}"
            )
        # One per-node template placement, re-labelled per node.
        if grouped is None:
            base = self.node.place(per_node)
        else:
            base = self.node.place_grouped(per_node, grouped)
        threads: list[HwThread] = []
        for i in range(n_streams):
            node = min(i // per_node, self.n_nodes - 1)
            local = i - node * per_node
            t = base[local]
            threads.append(
                HwThread(core=t.core, slot=t.slot, index=t.index, node=node)
            )
        return threads

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClusterTopology({self.n_nodes} x {self.node!r})"
