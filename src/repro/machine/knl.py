"""Calibrated Knights Landing preset.

The paper's test system is "a single KNL node with 68 cores at 1.4 GHz with
four-time hyper-threading" (Section III).  This module pins the topology and
the free parameters of the contention and network models.

Calibration policy (see DESIGN.md §5): the *anchor points* below are taken
from the paper's own measurements; everything else must emerge from the
mechanisms.

* Phase IPCs observed in the Fig. 3 timeline of the fully populated node:
  Psi preparation ~0.06 IPC, FFT along Z ~0.52 IPC, the central
  FFT-XY/VOFR phase ~0.77 IPC.  Working backwards through the water-filling
  model with 64 synchronized threads gives the effective node bandwidth and
  the relative memory intensities of the Z and XY transforms.
* Average compute IPC ~1.1 at 1x8 (Table I base column) pins the nominal
  (uncontended) IPCs.
* "IPC ... cut in half when going from 8x8 to 16x8" pins the linear
  hyper-thread issue sharing (no extra parameter needed).

The network parameters model on-node MPI over the shared memory system:
a per-rank injection bandwidth (a single core's copy throughput), an
aggregate transport capacity, and a per-message software latency.
"""

from __future__ import annotations

import dataclasses

from repro.machine.phases import PhaseProfile, PhaseTable
from repro.machine.topology import NodeTopology

__all__ = ["KnlParameters", "knl_topology", "knl_phase_table", "knl_parameters"]


@dataclasses.dataclass(frozen=True)
class KnlParameters:
    """All calibrated constants of the simulated KNL node."""

    n_cores: int = 68
    threads_per_core: int = 4
    frequency_hz: float = 1.4e9
    cores_per_tile: int = 2

    #: Effective shared memory bandwidth seen by the compute phases.  Derived
    #: from the Fig. 3 anchor: 64 synchronized threads in the XY phase at
    #: ~0.77 IPC with ~1 B/instr -> 0.77 * 1.4e9 * 64 ~= 6.9e10 B/s.
    mem_bandwidth: float = 6.9e10

    #: Concurrency ramp-up of the memory system (see
    #: ``BandwidthContentionAllocator``): achievable aggregate bandwidth is
    #: ``min(mem_bw_rampup_max * n/(n + mem_bw_rampup_half), mem_bandwidth)``.
    #: Fit through the Table I IPC-scalability anchors (xy-phase IPC ~1.4
    #: uncontended at 8 threads, ~1.3 at 16, ~1.05 at 32, 0.77 at 64).
    mem_bw_rampup_max: float = 1.277e11
    mem_bw_rampup_half: float = 54.5

    #: Per-rank MPI injection bandwidth (one core copying, B/s).
    net_injection_bw: float = 3.0e9

    #: Aggregate on-node MPI transport capacity (B/s); concurrent collectives
    #: share it through the network fluid resource.
    net_capacity: float = 4.5e10

    #: Per-message software latency of the MPI stack (s).
    net_latency: float = 3.0e-6

    #: Inter-node fabric (multi-node runs; Omni-Path-class 100 Gb/s links):
    #: per-node NIC bandwidth, per-message fabric latency.  The fabric's
    #: aggregate capacity is ``fabric_injection_bw * n_nodes / 2`` (full
    #: bisection), computed by the driver.
    fabric_injection_bw: float = 1.25e10
    fabric_latency: float = 2.0e-6

    #: Relative amplitude of per-execution compute-speed variability (cache
    #: state, TLB, OS noise — the run-to-run scatter real phases always
    #: show).  Statically synchronized executions re-align at every
    #: collective; dynamically scheduled tasks accumulate the drift, which
    #: is the seed of the paper's de-synchronization effect (Fig. 7).
    compute_jitter: float = 0.06

    #: Seed of the (deterministic) jitter stream.
    jitter_seed: int = 7


def knl_parameters() -> KnlParameters:
    """The default calibrated parameter set used by all experiments."""
    return KnlParameters()


def knl_topology(params: KnlParameters | None = None) -> NodeTopology:
    """Topology of the paper's KNL test node."""
    p = params or KnlParameters()
    return NodeTopology(
        n_cores=p.n_cores,
        threads_per_core=p.threads_per_core,
        frequency_hz=p.frequency_hz,
        cores_per_tile=p.cores_per_tile,
    )


def knl_phase_table() -> PhaseTable:
    """Phase profiles of the FFTXlib compute phases on KNL.

    ``ipc0`` is the nominal (uncontended, full-core) IPC; ``bytes_per_instr``
    the main-memory traffic per instruction driving the bandwidth sharing.

    * ``prepare_psis`` — strided gather of G-vector coefficients into the 3D
      grid ("preparation of the Psis with very low IPC", Fig. 3): latency
      bound, intrinsically ~0.06 IPC, negligible bandwidth pressure.
    * ``pack_sticks`` / ``unpack_sticks`` — copy-like reshuffling of group
      sticks around the MPI_Alltoallv: moderate IPC, memory heavy.
    * ``fft_z`` — multi-band 1D FFTs along Z on the sticks: observed ~0.52
      IPC on the full node; nominal 1.10 with a relative memory intensity of
      0.77/0.52 vs. the XY phase (both saturate the same bandwidth).
    * ``scatter_reorder`` — local pencil<->plane reordering around the
      MPI_Alltoall.
    * ``fft_xy`` — multi-band 2D FFTs on the planes: the high-intensity main
      phase; nominal 1.40, throttled to ~0.77 when 64 threads collide.
    * ``vofr`` — pointwise application of the real-space potential:
      streaming, bandwidth bound.
    """
    return PhaseTable(
        [
            PhaseProfile("prepare_psis", ipc0=0.06, bytes_per_instr=1.0),
            PhaseProfile("pack_sticks", ipc0=0.45, bytes_per_instr=3.0),
            PhaseProfile("unpack_sticks", ipc0=0.45, bytes_per_instr=3.0),
            PhaseProfile("fft_z", ipc0=1.10, bytes_per_instr=1.481),
            PhaseProfile("scatter_reorder", ipc0=0.45, bytes_per_instr=3.0),
            PhaseProfile("fft_xy", ipc0=1.40, bytes_per_instr=1.0),
            PhaseProfile("vofr", ipc0=1.20, bytes_per_instr=1.2),
        ]
    )
