"""Compute-phase profiles: the per-phase inputs of the contention model.

A :class:`PhaseProfile` characterises one kind of compute phase by

* ``ipc0`` — the *nominal* IPC the phase sustains when it has a full core and
  an uncontended memory system (the intrinsic quality of the code: a strided
  gather like the Psi preparation is latency-bound and never exceeds a very
  low IPC no matter how empty the node is);
* ``bytes_per_instr`` — average main-memory traffic per instruction, which
  determines how strongly the phase presses on the shared node bandwidth.

Effective IPC at run time is derived by the allocator in
:mod:`repro.machine.contention`; it is at most ``ipc0`` (scaled down by
hyper-thread issue sharing) and possibly lower when the aggregate bandwidth
demand of all concurrently running phases exceeds the node bandwidth — the
resource contention the paper identifies as the scaling killer (Table I,
"IPC Scalability").
"""

from __future__ import annotations

import dataclasses
import typing as _t

__all__ = ["PhaseProfile", "PhaseTable"]


@dataclasses.dataclass(frozen=True)
class PhaseProfile:
    """Static performance character of one compute-phase kind.

    Attributes
    ----------
    name:
        Phase identifier (e.g. ``"fft_xy"``); also the tracer's state label.
    ipc0:
        Nominal instructions-per-cycle with a full core and no bandwidth
        pressure.
    bytes_per_instr:
        Main-memory bytes moved per instruction (arithmetic intensity
        inverse); drives the bandwidth water-filling.
    """

    name: str
    ipc0: float
    bytes_per_instr: float

    def __post_init__(self) -> None:
        if self.ipc0 <= 0:
            raise ValueError(f"ipc0 must be positive, got {self.ipc0}")
        if self.bytes_per_instr < 0:
            raise ValueError(f"bytes_per_instr must be >= 0, got {self.bytes_per_instr}")


class PhaseTable:
    """Registry of the phase profiles known to one machine configuration."""

    def __init__(self, profiles: _t.Iterable[PhaseProfile] = ()):
        self._profiles: dict[str, PhaseProfile] = {}
        for p in profiles:
            self.add(p)

    def add(self, profile: PhaseProfile) -> None:
        """Register ``profile``; duplicate names are rejected."""
        if profile.name in self._profiles:
            raise ValueError(f"phase {profile.name!r} already registered")
        self._profiles[profile.name] = profile

    def __getitem__(self, name: str) -> PhaseProfile:
        try:
            return self._profiles[name]
        except KeyError:
            raise KeyError(
                f"unknown phase {name!r}; known: {sorted(self._profiles)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._profiles

    def names(self) -> list[str]:
        """Registered phase names, sorted."""
        return sorted(self._profiles)

    def __len__(self) -> int:
        return len(self._profiles)
