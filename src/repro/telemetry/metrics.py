"""The process-wide metrics registry (counters, gauges, histograms).

A :class:`MetricsRegistry` is the numeric side of the telemetry layer: every
instrumented subsystem (simulated MPI, the OmpSs runtime, the FFT plan cache,
the machine model) folds its events into named metrics with small label sets,
e.g. ``mpi.bytes_sent{call="alltoall", comm="scatter"}``.  The registry is
deliberately tiny and dependency free; its dump formats are

* :meth:`MetricsRegistry.snapshot` — a plain nested dict for the run
  manifest (JSON-friendly);
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# TYPE`` headers, ``name{labels} value`` samples).

Overhead discipline: instrumented call sites hold a reference to the current
:class:`~repro.telemetry.Telemetry` and guard on its ``enabled`` flag, so a
disabled run pays one attribute check per event and nothing else.  The
registry itself also carries ``enabled`` so stray updates on a disabled
session are dropped rather than accumulated.
"""

from __future__ import annotations

import bisect
import typing as _t

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets: log-spaced seconds covering simulated phase and
#: call durations (1 us .. 10 s) plus the +Inf catch-all.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, _t.Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing value for one (name, labels) series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """Last-written value for one (name, labels) series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-watermark gauges)."""
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Cumulative bucketed distribution for one (name, labels) series."""

    __slots__ = ("buckets", "counts", "total", "sum")

    def __init__(self, buckets: _t.Sequence[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self.counts = [0] * (len(self.buckets) + 1)  # last slot = +Inf
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += 1
        self.sum += value

    def cumulative(self) -> list[int]:
        """Cumulative counts per upper bound (Prometheus ``le`` semantics)."""
        out, acc = [], 0
        for c in self.counts:
            acc += c
            out.append(acc)
        return out


class _Family:
    """All series of one metric name (shared kind and help text)."""

    __slots__ = ("name", "kind", "help", "series", "buckets")

    def __init__(self, name: str, kind: str, help: str, buckets: _t.Sequence[float]):
        self.name = name
        self.kind = kind
        self.help = help
        self.series: dict[LabelKey, _t.Any] = {}
        self.buckets = tuple(buckets)


class MetricsRegistry:
    """Named metric families with labelled series.

    Metric names are dotted (``mpi.bytes_sent``); the Prometheus dump
    rewrites dots to underscores as the exposition format requires.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: dict[str, _Family] = {}

    # -- series access -------------------------------------------------------

    def _family(self, name: str, kind: str, help: str, buckets: _t.Sequence[float]) -> _Family:
        fam = self._families.get(name)
        if fam is None:
            fam = _Family(name, kind, help, buckets)
            self._families[name] = fam
        elif fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}, not {kind}"
            )
        return fam

    def counter(self, name: str, help: str = "", /, **labels: _t.Any) -> Counter:
        """Get or create the counter series for ``name{labels}``."""
        fam = self._family(name, "counter", help, ())
        key = _label_key(labels)
        series = fam.series.get(key)
        if series is None:
            series = fam.series[key] = Counter()
        return series

    def gauge(self, name: str, help: str = "", /, **labels: _t.Any) -> Gauge:
        """Get or create the gauge series for ``name{labels}``."""
        fam = self._family(name, "gauge", help, ())
        key = _label_key(labels)
        series = fam.series.get(key)
        if series is None:
            series = fam.series[key] = Gauge()
        return series

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: _t.Sequence[float] = DEFAULT_BUCKETS,
        /,
        **labels: _t.Any,
    ) -> Histogram:
        """Get or create the histogram series for ``name{labels}``."""
        fam = self._family(name, "histogram", help, buckets)
        key = _label_key(labels)
        series = fam.series.get(key)
        if series is None:
            series = fam.series[key] = Histogram(fam.buckets)
        return series

    # -- one-shot conveniences (the instrumented call sites use these) -------

    def count(self, name: str, amount: float = 1.0, /, **labels: _t.Any) -> None:
        """Increment a counter (no-op when the registry is disabled)."""
        if self.enabled:
            self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, /, **labels: _t.Any) -> None:
        """Set a gauge (no-op when the registry is disabled)."""
        if self.enabled:
            self.gauge(name, **labels).set(value)

    def max_gauge(self, name: str, value: float, /, **labels: _t.Any) -> None:
        """Raise a high-watermark gauge (no-op when disabled)."""
        if self.enabled:
            self.gauge(name, **labels).set_max(value)

    def observe(self, name: str, value: float, /, **labels: _t.Any) -> None:
        """Observe into a histogram (no-op when the registry is disabled)."""
        if self.enabled:
            self.histogram(name, **labels).observe(value)

    # -- dumps ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-friendly dump: ``{name: {kind, series: [{labels, ...}]}}``."""
        out: dict = {}
        for name in sorted(self._families):
            fam = self._families[name]
            series = []
            for key in sorted(fam.series):
                s = fam.series[key]
                entry: dict[str, _t.Any] = {"labels": dict(key)}
                if fam.kind == "histogram":
                    entry.update(
                        count=s.total,
                        sum=s.sum,
                        buckets=list(fam.buckets),
                        counts=list(s.counts),
                    )
                else:
                    entry["value"] = s.value
                series.append(entry)
            out[name] = {"kind": fam.kind, "series": series}
        return out

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._families):
            fam = self._families[name]
            pname = name.replace(".", "_")
            if fam.help:
                lines.append(f"# HELP {pname} {fam.help}")
            lines.append(f"# TYPE {pname} {fam.kind}")
            for key in sorted(fam.series):
                s = fam.series[key]
                if fam.kind == "histogram":
                    cum = s.cumulative()
                    for ub, c in zip(list(fam.buckets) + ["+Inf"], cum):
                        le = f"{ub:g}" if isinstance(ub, float) else ub
                        bkey = key + (("le", le),)
                        lines.append(f"{pname}_bucket{_label_str(bkey)} {c}")
                    lines.append(f"{pname}_sum{_label_str(key)} {s.sum:g}")
                    lines.append(f"{pname}_count{_label_str(key)} {s.total}")
                else:
                    lines.append(f"{pname}{_label_str(key)} {s.value:g}")
        return "\n".join(lines) + "\n"

    # -- queries (tests and reports) ----------------------------------------

    def value(self, name: str, /, **labels: _t.Any) -> float:
        """Value of one counter/gauge series (0.0 if absent)."""
        fam = self._families.get(name)
        if fam is None:
            return 0.0
        series = fam.series.get(_label_key(labels))
        if series is None:
            return 0.0
        if isinstance(series, Histogram):
            raise ValueError(f"{name!r} is a histogram; use series()")
        return series.value

    def total(self, name: str) -> float:
        """Sum of a counter family's series over all label sets."""
        fam = self._families.get(name)
        if fam is None:
            return 0.0
        return sum(s.value for s in fam.series.values())

    def families(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._families)
