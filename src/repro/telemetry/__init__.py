"""Unified telemetry: metrics, spans, traces, exporters and run manifests.

The paper's contribution rests on observability — Extrae traces, Paraver
timelines and the POP model are how Wagner et al. diagnose the IPC collapse
and prove the OmpSs fix.  This package is the reproduction's equivalent
substrate, shared by every subsystem:

* :mod:`~repro.telemetry.metrics` — a process-wide registry of counters,
  gauges and histograms with labels (``mpi.bytes_sent{call,comm}``,
  ``ompss.task_queue_depth``, ``fft.plan_cache_hits``, ...);
* :mod:`~repro.telemetry.spans` — hierarchical spans over the simulated
  clock (run -> executor -> iteration; tasks and phases come from records);
* :mod:`~repro.telemetry.trace` — the raw compute/MPI/task record store
  (:class:`Trace`), formerly of :mod:`repro.perf.tracer`;
* :mod:`~repro.telemetry.chrometrace` — Perfetto/Chrome-trace JSON export
  with one track per hardware thread and MPI flow events;
* :mod:`~repro.telemetry.manifest` — the per-run JSON artifact (config,
  calibration, metrics, POP factors, timings) and its schema validation;
* :mod:`~repro.telemetry.exporters` — one registry over all output formats
  (``chrome``, ``prometheus``, ``prv``, ``manifest``).

Sessions
--------
Instrumented call sites read the *current* :class:`Telemetry` via
:func:`current` and guard on ``.enabled`` — a disabled session (the process
default) costs one attribute check per event.  The driver installs an
enabled session for the duration of a run when asked
(``RunConfig(telemetry=True)`` or ``run_fft_phase(..., telemetry=...)``)::

    from repro import telemetry
    with telemetry.session() as tel:
        result = run_fft_phase(config)
    tel.metrics.total("mpi.bytes_sent")
"""

from __future__ import annotations

import contextlib
import threading
import typing as _t

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.spans import Span, SpanLog
from repro.telemetry.trace import Trace, Tracer

__all__ = [
    "Telemetry",
    "current",
    "install",
    "session",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "SpanLog",
    "Trace",
    "Tracer",
]


class Telemetry:
    """One telemetry session: a metrics registry, a span log and a trace.

    ``enabled=False`` builds the inert variant every hot path checks; all of
    its stores refuse writes, so a disabled session stays empty even if a
    call site forgets its own guard.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.spans = SpanLog(enabled=enabled)
        self.trace = Trace()
        self.tracer = Tracer(self.trace)
        #: ``(sim_time, rank, depth)`` task-queue samples from the OmpSs
        #: runtime — the Chrome-trace counter track's data.
        self.queue_samples: list[tuple[float, int, int]] = []
        #: ``(rank, pred_tid, succ_tid)`` dependency edges exported by the
        #: OmpSs task graph — the substrate of the analysis layer's
        #: task-graph critical path (tids are rank-local).
        self.task_edges: list[tuple[int, int, int]] = []
        #: The run's :class:`repro.analysis.RunAnalysis`, stashed by the
        #: driver at finalization (``None`` until then).
        self.analysis = None

    def span(
        self,
        track: _t.Hashable,
        name: str,
        category: str,
        clock: _t.Callable[[], float],
        **args: _t.Any,
    ):
        """Shorthand for :meth:`SpanLog.span` on this session's log."""
        return self.spans.span(track, name, category, clock, **args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<Telemetry {state}: {len(self.metrics.families())} metric families, "
            f"{len(self.spans)} spans, {len(self.trace.compute)} compute records>"
        )


#: The inert default session; shared, never written to.
_DISABLED = Telemetry(enabled=False)


class _CurrentSession(threading.local):
    """Per-thread session slot (class attribute is the per-thread default).

    Thread-local so concurrent in-process runs — the sweep engine's thread
    mode — each see only their own session instead of trampling a shared
    global.
    """

    value: Telemetry = _DISABLED


_current = _CurrentSession()


def current() -> Telemetry:
    """The active session (the disabled singleton unless one is installed)."""
    return _current.value


def install(telemetry: Telemetry | None) -> Telemetry:
    """Install ``telemetry`` as this thread's session; returns the previous one.

    Passing ``None`` restores the disabled default.  Prefer :func:`session`
    where lexical scoping fits.
    """
    previous = _current.value
    _current.value = telemetry if telemetry is not None else _DISABLED
    return previous


@contextlib.contextmanager
def session(telemetry: Telemetry | None = None) -> _t.Iterator[Telemetry]:
    """Install a (fresh, enabled) session for the duration of a block."""
    tel = telemetry if telemetry is not None else Telemetry(enabled=True)
    previous = install(tel)
    try:
        yield tel
    finally:
        install(previous)
