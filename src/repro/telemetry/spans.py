"""Hierarchical spans over the simulated clock.

A :class:`Span` is one named interval on one *track* (an execution stream —
usually a ``(rank, thread)`` tuple — or a logical track like ``"driver"``).
Nesting is positional, as in Perfetto/Chrome tracing: spans on the same track
nest by time containment, so the run span contains each rank's executor span,
which contains its per-iteration spans, which contain the compute-phase and
MPI slices derived from the trace records.

Because rank programs are generators multiplexed on one simulator, there is
no usable thread-local "current span"; callers open and close spans
explicitly (or with :meth:`SpanLog.span`, whose context manager samples a
caller-supplied clock — safe across ``yield`` because the generator frame
owns the ``with`` block).
"""

from __future__ import annotations

import contextlib
import dataclasses
import typing as _t

__all__ = ["Span", "SpanLog"]


@dataclasses.dataclass
class Span:
    """One (possibly still open) interval on a track."""

    name: str
    category: str
    track: _t.Hashable
    t_begin: float
    t_end: float | None = None
    args: dict = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length; 0.0 while still open."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_begin


class SpanLog:
    """Append-only store of spans with explicit begin/end."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._spans: list[Span] = []

    def __len__(self) -> int:
        return len(self._spans)

    def begin(
        self,
        track: _t.Hashable,
        name: str,
        category: str,
        t: float,
        **args: _t.Any,
    ) -> Span | None:
        """Open a span at time ``t``; returns its handle (None if disabled)."""
        if not self.enabled:
            return None
        span = Span(name=name, category=category, track=track, t_begin=t, args=args)
        self._spans.append(span)
        return span

    def end(self, span: Span | None, t: float) -> None:
        """Close a span handle returned by :meth:`begin` (None is a no-op)."""
        if span is None:
            return
        if span.t_end is not None:
            raise ValueError(f"span {span.name!r} already closed")
        if t < span.t_begin:
            raise ValueError(
                f"span {span.name!r} would close at {t} before its begin {span.t_begin}"
            )
        span.t_end = t

    def add(
        self,
        track: _t.Hashable,
        name: str,
        category: str,
        t_begin: float,
        t_end: float,
        **args: _t.Any,
    ) -> None:
        """Record an already-complete span (no-op if disabled)."""
        if not self.enabled:
            return
        if t_end < t_begin:
            raise ValueError(f"span {name!r} ends ({t_end}) before it begins ({t_begin})")
        self._spans.append(
            Span(name=name, category=category, track=track, t_begin=t_begin, t_end=t_end, args=args)
        )

    @contextlib.contextmanager
    def span(
        self,
        track: _t.Hashable,
        name: str,
        category: str,
        clock: _t.Callable[[], float],
        **args: _t.Any,
    ) -> _t.Iterator[Span | None]:
        """Context manager sampling ``clock()`` at entry and exit."""
        handle = self.begin(track, name, category, clock(), **args)
        try:
            yield handle
        finally:
            if handle is not None:
                self.end(handle, clock())

    # -- queries -------------------------------------------------------------

    def all(self) -> list[Span]:
        """All spans in creation order (open ones included)."""
        return list(self._spans)

    def closed(self) -> list[Span]:
        """Completed spans sorted by (track, begin time, -duration)."""
        done = [s for s in self._spans if s.t_end is not None]
        return sorted(done, key=lambda s: (repr(s.track), s.t_begin, -s.duration))

    def tracks(self) -> list:
        """Distinct tracks, sorted by repr."""
        return sorted({s.track for s in self._spans}, key=repr)

    def of_track(self, track: _t.Hashable) -> list[Span]:
        """Closed spans of one track, outermost first at equal begin times."""
        return [s for s in self.closed() if s.track == track]
