"""Raw event records of one run (the Extrae analogue's storage).

:class:`Trace` holds every compute-phase record, MPI record and task record
a run produced, in completion order; :class:`Tracer` is the observer bundle
that fills one from the driver's three hooks.  These classes used to live in
:mod:`repro.perf.tracer` (which still re-exports them); they moved here so
the telemetry layer — which the driver imports — can own them without a
circular import, and so the Paraver writer, the Chrome-trace exporter and
the POP model are all plain consumers of the same record store.

Unlike real instrumentation the records are exact and overhead free (the
paper quotes 0.6-2.2 % monitor overhead; a simulator pays none).
"""

from __future__ import annotations

import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.cpu import ComputeRecord
    from repro.mpisim.world import MpiRecord
    from repro.ompss.task import TaskRecord

__all__ = ["Trace", "Tracer"]


@dataclasses.dataclass
class Trace:
    """All records of one run, in completion order."""

    compute: list["ComputeRecord"] = dataclasses.field(default_factory=list)
    mpi: list["MpiRecord"] = dataclasses.field(default_factory=list)
    tasks: list[tuple[int, "TaskRecord"]] = dataclasses.field(default_factory=list)

    @property
    def streams(self) -> list:
        """All streams that appear in compute or MPI records, sorted."""
        seen = {r.stream for r in self.compute} | {r.stream for r in self.mpi}
        return sorted(seen)

    @property
    def span(self) -> float:
        """Last record end time (the traced horizon)."""
        ends = [r.end for r in self.compute] + [r.t_end for r in self.mpi]
        return max(ends) if ends else 0.0

    def compute_of(self, stream) -> list["ComputeRecord"]:
        """Compute records of one stream, by start time."""
        return sorted(
            (r for r in self.compute if r.stream == stream), key=lambda r: r.start
        )

    def mpi_of(self, stream) -> list["MpiRecord"]:
        """MPI records of one stream, by begin time."""
        return sorted(
            (r for r in self.mpi if r.stream == stream), key=lambda r: r.t_begin
        )


class Tracer:
    """Observer bundle feeding a :class:`Trace`."""

    def __init__(self, trace: Trace | None = None) -> None:
        self.trace = trace if trace is not None else Trace()

    # The three hooks the driver accepts:

    def on_compute(self, record: "ComputeRecord") -> None:
        """Compute-phase completion hook."""
        self.trace.compute.append(record)

    def on_mpi(self, record: "MpiRecord") -> None:
        """MPI call completion hook."""
        self.trace.mpi.append(record)

    def on_task(self, rank: int, record: "TaskRecord") -> None:
        """OmpSs task completion hook."""
        self.trace.tasks.append((rank, record))
