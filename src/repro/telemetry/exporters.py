"""One registry over every run-artifact format.

The reproduction historically had a single bespoke output — the Paraver
``.prv`` writer.  This module makes that one exporter among several behind a
common call shape::

    from repro.telemetry.exporters import export_run
    export_run(result, "chrome", "run.json")      # Perfetto / chrome://tracing
    export_run(result, "prometheus", "run.prom")  # metrics text dump
    export_run(result, "prv", "run")              # Paraver .prv/.pcf/.row
    export_run(result, "manifest", "run.json")    # the regression-diff artifact

Every exporter takes the completed :class:`~repro.core.driver.RunResult` of
a telemetry-enabled run (``RunConfig(telemetry=True)``); formats that need
records raise cleanly when the run was executed without telemetry.
"""

from __future__ import annotations

import pathlib
import typing as _t

from repro.telemetry.chrometrace import write_chrome_trace
from repro.telemetry.manifest import build_manifest, write_manifest

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.driver import RunResult

__all__ = ["EXPORTERS", "export_run"]

Exporter = _t.Callable[["RunResult", pathlib.Path], pathlib.Path]


def _require_telemetry(result: "RunResult"):
    if result.telemetry is None or not result.telemetry.enabled:
        raise ValueError(
            "this export needs a telemetry-enabled run; pass "
            "RunConfig(telemetry=True) or run_fft_phase(..., telemetry=...)"
        )
    return result.telemetry


def _export_chrome(result: "RunResult", path: pathlib.Path) -> pathlib.Path:
    tel = _require_telemetry(result)
    return write_chrome_trace(
        path,
        tel.trace,
        spans=tel.spans,
        frequency_hz=result.cpu.frequency_hz,
        queue_depth_samples=getattr(tel, "queue_samples", ()),
        label=result.config.label(),
    )


def _export_prometheus(result: "RunResult", path: pathlib.Path) -> pathlib.Path:
    tel = _require_telemetry(result)
    path = pathlib.Path(path)
    if not path.suffix:
        path = path.with_suffix(".prom")
    path.write_text(tel.metrics.to_prometheus())
    return path


def _export_prv(result: "RunResult", path: pathlib.Path) -> pathlib.Path:
    tel = _require_telemetry(result)
    from repro.perf.paraver import write_prv

    return write_prv(path, tel.trace, label=result.config.version)


def _export_manifest(result: "RunResult", path: pathlib.Path) -> pathlib.Path:
    return write_manifest(path, build_manifest(result))


EXPORTERS: dict[str, Exporter] = {
    "chrome": _export_chrome,
    "prometheus": _export_prometheus,
    "prv": _export_prv,
    "manifest": _export_manifest,
}


def export_run(
    result: "RunResult", fmt: str, path: str | pathlib.Path
) -> pathlib.Path:
    """Write one artifact of ``result`` in format ``fmt``; returns its path."""
    try:
        exporter = EXPORTERS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown export format {fmt!r}; choose from {sorted(EXPORTERS)}"
        ) from None
    return exporter(result, pathlib.Path(path))
