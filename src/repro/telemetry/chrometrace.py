"""Perfetto / Chrome-trace JSON export (``chrome://tracing`` loadable).

One JSON object with a ``traceEvents`` array in the Trace Event Format:

* metadata events name the process ("simulated KNL node") and one thread
  (track) per hardware thread stream, plus a ``driver`` track for run-level
  spans;
* complete events (``ph: "X"``) for every compute phase, MPI call, OmpSs
  task and recorded span — tracks nest them by time containment, giving the
  run -> executor -> iteration -> task -> phase hierarchy directly in the UI;
* flow events (``ph: "s"``/``"t"``/``"f"``) stitch the participants of each
  MPI operation across tracks: all members of one collective share one flow,
  and every matched point-to-point pair gets its own arrow;
* counter events (``ph: "C"``) expose the per-rank task-queue depth when the
  OmpSs runtime recorded samples.

Timestamps are microseconds of simulated time, as the format expects.
"""

from __future__ import annotations

import json
import pathlib
import typing as _t

from repro.telemetry.spans import SpanLog
from repro.telemetry.trace import Trace

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.world import MpiRecord
    from repro.telemetry import Telemetry

__all__ = ["chrome_trace_events", "write_chrome_trace"]

_US = 1e6
_PID = 1
_DRIVER_TID = 1  # stream tids start at 2


def _tids(trace: Trace, spans: SpanLog) -> dict:
    """Stable tid per track: streams first (sorted), then logical tracks."""
    streams = set(trace.streams)
    for rank, rec in trace.tasks:
        if rec.worker_index is not None:
            streams.add((rank, rec.worker_index))
    for t in spans.tracks():
        if isinstance(t, tuple):
            streams.add(t)
    extra = [t for t in spans.tracks() if not isinstance(t, tuple)]
    tids: dict = {}
    tid = _DRIVER_TID + 1
    for s in sorted(streams):
        tids[s] = tid
        tid += 1
    for t in sorted(extra, key=repr):
        if t == "driver":
            tids[t] = _DRIVER_TID
        else:
            tids[t] = tid
            tid += 1
    tids.setdefault("driver", _DRIVER_TID)
    return tids


def _collective_flows(mpi: _t.Sequence["MpiRecord"]) -> list[list["MpiRecord"]]:
    """Group collective records into per-operation participant sets.

    Members of one collective complete together (the simulator releases
    them at the operation's finish time), so (communicator, call, end time)
    identifies the operation.
    """
    groups: dict[tuple, list] = {}
    for r in mpi:
        if r.call in ("send", "recv"):
            continue
        groups.setdefault((r.comm_id, r.call, round(r.t_end, 12)), []).append(r)
    return [g for g in groups.values() if len(g) > 1]


def _p2p_flows(mpi: _t.Sequence["MpiRecord"]) -> list[tuple["MpiRecord", "MpiRecord"]]:
    """Match send records to recv records by (comm, src, dst, tag) in order."""
    sends: dict[tuple, list] = {}
    for r in mpi:
        if r.call == "send":
            sends.setdefault((r.comm_id, r.src, r.dst, r.tag), []).append(r)
    pairs = []
    for r in mpi:
        if r.call != "recv":
            continue
        queue = sends.get((r.comm_id, r.src, r.dst, r.tag))
        if queue:
            pairs.append((queue.pop(0), r))
    return pairs


def chrome_trace_events(
    trace: Trace,
    spans: SpanLog | None = None,
    frequency_hz: float | None = None,
    queue_depth_samples: _t.Sequence[tuple[float, int, int]] = (),
) -> list[dict]:
    """Build the ``traceEvents`` list for one run.

    ``queue_depth_samples`` are ``(time, rank, depth)`` triples for the
    counter track.  ``frequency_hz`` adds per-slice IPC to compute events.
    """
    spans = spans if spans is not None else SpanLog(enabled=False)
    tids = _tids(trace, spans)
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "simulated KNL node"},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        if isinstance(track, tuple):
            label = f"rank {track[0]} / hw thread {track[1]}"
        else:
            label = str(track)
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": tid,
                "args": {"name": label},
            }
        )
        events.append(
            {"ph": "M", "name": "thread_sort_index", "pid": _PID, "tid": tid,
             "args": {"sort_index": tid}}
        )

    def x_event(tid: int, name: str, cat: str, begin: float, end: float, args: dict) -> dict:
        return {
            "ph": "X",
            "pid": _PID,
            "tid": tid,
            "name": name,
            "cat": cat,
            "ts": begin * _US,
            "dur": max(end - begin, 0.0) * _US,
            "args": args,
        }

    for span in spans.closed():
        events.append(
            x_event(
                tids[span.track],
                span.name,
                span.category,
                span.t_begin,
                span.t_end,  # type: ignore[arg-type]
                dict(span.args),
            )
        )

    for r in trace.compute:
        args: dict = {"instructions": r.instructions}
        if frequency_hz:
            args["ipc"] = round(r.ipc(frequency_hz), 4)
        events.append(x_event(tids[r.stream], r.phase, "compute", r.start, r.end, args))

    for r in trace.mpi:
        events.append(
            x_event(
                tids[r.stream],
                f"MPI_{r.call}",
                "mpi",
                r.t_begin,
                r.t_end,
                {
                    "comm": r.comm_name,
                    "bytes": r.bytes_sent,
                    "sync_time_us": r.sync_time * _US,
                },
            )
        )

    for rank, rec in trace.tasks:
        if rec.started_at is None or rec.finished_at is None or rec.worker_index is None:
            continue
        events.append(
            x_event(
                tids[(rank, rec.worker_index)],
                f"task {rec.name}",
                "task",
                rec.started_at,
                rec.finished_at,
                {"tid": rec.tid, "created_at_us": rec.created_at * _US},
            )
        )

    # MPI flow events: one flow per collective operation, one per p2p pair.
    flow_id = 0

    def flow(ph: str, r: "MpiRecord", fid: int) -> dict:
        # Bind to the middle of the slice so the arrow attaches to it.
        ts = (r.t_begin + r.t_end) / 2.0 * _US
        ev = {
            "ph": ph,
            "pid": _PID,
            "tid": tids[r.stream],
            "name": f"mpi:{r.call}",
            "cat": "mpi-flow",
            "id": fid,
            "ts": ts,
        }
        if ph == "f":
            ev["bp"] = "e"
        return ev

    for group in _collective_flows(trace.mpi):
        members = sorted(group, key=lambda r: (r.t_begin, repr(r.stream)))
        events.append(flow("s", members[0], flow_id))
        for r in members[1:-1]:
            events.append(flow("t", r, flow_id))
        events.append(flow("f", members[-1], flow_id))
        flow_id += 1
    for send, recv in _p2p_flows(trace.mpi):
        events.append(flow("s", send, flow_id))
        events.append(flow("f", recv, flow_id))
        flow_id += 1

    for t, rank, depth in queue_depth_samples:
        events.append(
            {
                "ph": "C",
                "pid": _PID,
                "tid": _DRIVER_TID,
                "name": f"task queue rank {rank}",
                "ts": t * _US,
                "args": {"depth": depth},
            }
        )

    events.sort(key=lambda e: (e.get("ts", -1.0), e["ph"] != "M"))
    return events


def write_chrome_trace(
    path: str | pathlib.Path,
    trace: Trace,
    spans: SpanLog | None = None,
    frequency_hz: float | None = None,
    queue_depth_samples: _t.Sequence[tuple[float, int, int]] = (),
    label: str = "fftxlib",
) -> pathlib.Path:
    """Write the run as ``<path>`` (``.json`` appended if no suffix)."""
    path = pathlib.Path(path)
    if not path.suffix:
        path = path.with_suffix(".json")
    doc = {
        "traceEvents": chrome_trace_events(
            trace, spans, frequency_hz, queue_depth_samples
        ),
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.telemetry", "label": label},
    }
    path.write_text(json.dumps(doc, indent=None, separators=(",", ":")) + "\n")
    return path
