"""Communicator-name → layer mapping shared by tracing and manifests.

Communicator instances carry an index in their name (``pack3``,
``scatter1``, ``pencil_row2``); aggregation wants the *family* (the
layer): all ``pack{r}`` communicators are one ``.prv``/POP layer.  The
old ``name.rstrip("0123456789")`` handled only trailing digits, so a
family whose index lands mid-name (``scatter1/c2`` from a split, or any
future infix) silently merged into a sibling layer.  The regex strips
every digit run wherever it appears:

    pack3          -> pack
    scatter12      -> scatter
    pencil_row3    -> pencil_row
    pencil_col12   -> pencil_col
    scatter1/c2    -> scatter/c
"""

from __future__ import annotations

import re

__all__ = ["comm_layer"]

_DIGITS = re.compile(r"\d+")


def comm_layer(comm_name: str) -> str:
    """The communicator family (layer) of an instance name."""
    return _DIGITS.sub("", comm_name)
