"""Run manifests: one JSON artifact per driver run.

A manifest is the machine-readable record of one :func:`run_fft_phase`
execution — the regression-diffing substrate every future performance PR
compares against.  It captures:

* the full :class:`~repro.core.config.RunConfig` (plus derived quantities),
* the calibration preset (:class:`~repro.machine.knl.KnlParameters`),
* wall and simulated times and the simulator's event count,
* the metrics-registry snapshot,
* per-phase compute aggregates (time, instructions, IPC — the "main phase
  IPC" the paper tracks is ``phases.fft_xy.ipc``),
* per-communicator-layer MPI aggregates,
* fluid-engine counters of the contended resources (rebalances, coalesced
  updates, skipped timer re-arms, allocation-cache hits/misses) under
  ``engine.cpu`` / ``engine.network`` — the observability hooks of the
  vectorized contention engine,
* the POP efficiency factors when the caller ran the ideal-network replay,
* the fault-injection report (scenario, injected/recovered counts, per-
  attempt outcomes) when the run carried a fault scenario,
* the data-plane arena statistics (buffer acquires/reuse-hits/releases,
  allocations avoided, bytes resident) under ``dataplane`` when the run
  executed in data mode with the workspace arena enabled.

Validation is hand-rolled (:func:`validate_manifest`) so the repository
needs no jsonschema dependency; ``docs/run_manifest.schema.json`` mirrors
the same rules as a standard JSON Schema for external tooling.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
import typing as _t

from repro.telemetry.layers import comm_layer

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.driver import RunResult
    from repro.perf.popmodel import FactorSet

__all__ = [
    "MANIFEST_KIND",
    "MANIFEST_SCHEMA_VERSION",
    "ManifestError",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
]

MANIFEST_KIND = "repro.run_manifest"
MANIFEST_SCHEMA_VERSION = 1


class ManifestError(ValueError):
    """A manifest failed schema validation."""


def _phase_aggregates(result: "RunResult") -> dict:
    """Per-phase time/instructions/IPC from the run's hardware counters."""
    counters = result.cpu.counters
    agg: dict[str, dict[str, float]] = {}
    for stream in counters.streams:
        for phase, c in counters.phases(stream).items():
            entry = agg.setdefault(
                phase, {"time_s": 0.0, "instructions": 0.0, "occurrences": 0.0}
            )
            entry["time_s"] += c.compute_time
            entry["instructions"] += c.instructions
            entry["occurrences"] += c.occurrences
    for entry in agg.values():
        entry["ipc"] = (
            entry["instructions"] / (entry["time_s"] * counters.frequency_hz)
            if entry["time_s"] > 0
            else 0.0
        )
    return agg


def _mpi_aggregates(result: "RunResult") -> dict:
    """Per-communicator-layer MPI aggregates from the telemetry trace."""
    tel = result.telemetry
    if tel is None:
        return {}
    out: dict[str, dict[str, float]] = {}
    for r in tel.trace.mpi:
        layer = comm_layer(r.comm_name)
        entry = out.setdefault(
            layer, {"calls": 0.0, "bytes": 0.0, "time_s": 0.0, "sync_s": 0.0}
        )
        entry["calls"] += 1
        entry["bytes"] += r.bytes_sent
        entry["time_s"] += r.duration
        entry["sync_s"] += r.sync_time
    return out


def build_manifest(
    result: "RunResult",
    wall_time_s: float | None = None,
    factors: "FactorSet | None" = None,
    ideal_time_s: float | None = None,
    created: str | None = None,
) -> dict:
    """Assemble the manifest dict for one completed run."""
    config = dataclasses.asdict(result.config)
    config["label"] = result.config.label()
    config["n_mpi_ranks"] = result.config.n_mpi_ranks
    config["threads_per_rank"] = result.config.threads_per_rank
    config["total_streams"] = result.config.total_streams
    config["n_iterations"] = result.config.n_iterations

    manifest: dict = {
        "kind": MANIFEST_KIND,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created": created
        if created is not None
        else time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": config,
        "calibration": dataclasses.asdict(result.knl) if result.knl is not None else {},
        "timing": {
            "phase_time_s": result.phase_time,
            "wall_time_s": wall_time_s,
            "sim_events": getattr(result.sim, "n_dispatched", None),
        },
        "phases": _phase_aggregates(result),
        "mpi": _mpi_aggregates(result),
        "engine": {
            "cpu": result.cpu.engine_stats(),
            "network": result.world.network.engine_stats(),
        },
        "average_ipc": result.average_ipc,
        "metrics": (
            result.telemetry.metrics.snapshot() if result.telemetry is not None else {}
        ),
    }
    if factors is not None:
        manifest["pop"] = {
            label: value for label, value in _factor_items(factors)
        }
        manifest["pop"]["ideal_time_s"] = ideal_time_s
    if result.fault_report is not None:
        manifest["fault_report"] = result.fault_report
        manifest["timing"]["n_attempts"] = result.n_attempts
        manifest["failed"] = result.failed
    if result.dataplane is not None:
        manifest["dataplane"] = result.dataplane
    internode = getattr(result.world.network, "internode_summary", None)
    if internode is not None:
        manifest["internode"] = internode()
    if result.tuning is not None:
        manifest["tuning"] = result.tuning
    analysis = _run_analysis(result, ideal_time_s)
    if analysis is not None:
        manifest["analysis"] = analysis
    return manifest


def _run_analysis(result: "RunResult", ideal_time_s: float | None) -> dict | None:
    """The ``analysis`` section: the session's stashed analytics, or a fresh
    computation for telemetry-enabled runs that bypassed the driver summary.

    Import is deferred — the analysis package consumes telemetry, not the
    other way round, and the manifest module must stay importable first.
    """
    tel = result.telemetry
    if tel is None or not tel.enabled:
        return None
    from repro import analysis as _analysis

    stashed = getattr(tel, "analysis", None)
    if stashed is None:
        stashed = _analysis.analyze_session(
            tel, result.phase_time, counters=result.cpu.counters,
            ideal_time_s=ideal_time_s,
        )
    return stashed.to_dict()


def _factor_items(factors: "FactorSet") -> list[tuple[str, float]]:
    return [
        (f.name, getattr(factors, f.name)) for f in dataclasses.fields(factors)
    ]


def write_manifest(path: str | pathlib.Path, manifest: dict) -> pathlib.Path:
    """Validate and write a manifest; returns the written path."""
    errors = validate_manifest(manifest)
    if errors:
        raise ManifestError("; ".join(errors))
    path = pathlib.Path(path)
    if not path.suffix:
        path = path.with_suffix(".json")
    path.write_text(json.dumps(manifest, indent=2, sort_keys=False) + "\n")
    return path


def load_manifest(path: str | pathlib.Path) -> dict:
    """Read and validate a manifest file."""
    manifest = json.loads(pathlib.Path(path).read_text())
    errors = validate_manifest(manifest)
    if errors:
        raise ManifestError(f"{path}: " + "; ".join(errors))
    return manifest


#: (dotted path, expected type(s), required) — the schema's load-bearing core.
_RULES: list[tuple[str, tuple[type, ...], bool]] = [
    ("kind", (str,), True),
    ("schema_version", (int,), True),
    ("created", (str,), True),
    ("config", (dict,), True),
    ("config.version", (str,), True),
    ("config.ranks", (int,), True),
    ("config.taskgroups", (int,), True),
    ("config.nbnd", (int,), True),
    ("config.label", (str,), True),
    ("config.fft_backend", (str,), False),
    ("config.kernel_workers", (int,), False),
    ("config.decomposition", (str,), False),
    ("config.redistribution", (str,), False),
    ("calibration", (dict,), True),
    ("timing", (dict,), True),
    ("timing.phase_time_s", (int, float), True),
    ("phases", (dict,), True),
    ("mpi", (dict,), True),
    ("engine", (dict,), False),
    ("engine.cpu", (dict,), False),
    ("engine.network", (dict,), False),
    ("average_ipc", (int, float), True),
    ("metrics", (dict,), True),
    ("pop", (dict,), False),
    ("fault_report", (dict,), False),
    ("fault_report.scenario", (dict,), False),
    ("failed", (bool,), False),
    ("dataplane", (dict,), False),
    ("dataplane.kernel_backend", (str,), False),
    ("dataplane.kernel_workers", (int,), False),
    ("dataplane.decomposition", (str,), False),
    ("dataplane.redistribution", (str,), False),
    ("dataplane.pack_copies", (int,), False),
    ("internode", (dict,), False),
    ("internode.inter_bytes", (int, float), False),
    ("internode.inter_messages", (int,), False),
    ("internode.link_bytes", (dict,), False),
    ("internode.link_messages", (dict,), False),
    ("tuning", (dict,), False),
    ("tuning.mode", (str,), False),
    ("tuning.digest", (str,), False),
    ("tuning.hit", (bool,), False),
    ("tuning.applied", (bool,), False),
    ("tuning.knobs", (dict, type(None)), False),
    ("tuning.score", (int, float, type(None)), False),
    ("tuning.predicted_s", (int, float, type(None)), False),
    ("tuning.measured_s", (int, float), False),
    ("analysis", (dict,), False),
    ("analysis.schema_version", (int,), False),
    ("analysis.unclosed_spans", (int,), False),
    ("analysis.pop", (dict, type(None)), False),
    ("analysis.critical_path", (dict, type(None)), False),
    ("analysis.task_graph", (dict, type(None)), False),
]


def _lookup(doc: dict, dotted: str):
    node: _t.Any = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None, False
        node = node[part]
    return node, True


def validate_manifest(manifest: object) -> list[str]:
    """Return schema violations (empty list = valid)."""
    if not isinstance(manifest, dict):
        return ["manifest must be a JSON object"]
    errors = []
    for dotted, types, required in _RULES:
        value, present = _lookup(manifest, dotted)
        if not present:
            if required:
                errors.append(f"missing required field {dotted!r}")
            continue
        if not isinstance(value, types):
            names = "/".join(t.__name__ for t in types)
            errors.append(f"{dotted!r} must be {names}, got {type(value).__name__}")
    if not errors:
        if manifest["kind"] != MANIFEST_KIND:
            errors.append(f"kind must be {MANIFEST_KIND!r}, got {manifest['kind']!r}")
        if manifest["schema_version"] > MANIFEST_SCHEMA_VERSION:
            errors.append(
                f"schema_version {manifest['schema_version']} is newer than "
                f"supported {MANIFEST_SCHEMA_VERSION}"
            )
        if manifest["timing"]["phase_time_s"] < 0:
            errors.append("timing.phase_time_s must be >= 0")
        for phase, entry in manifest["phases"].items():
            if not isinstance(entry, dict) or "time_s" not in entry:
                errors.append(f"phases.{phase} must be an object with 'time_s'")
        report = manifest.get("fault_report")
        if report is not None and isinstance(report, dict):
            for field in ("scenario", "injected", "recovered_events", "attempts"):
                if field not in report:
                    errors.append(f"fault_report missing field {field!r}")
        analysis = manifest.get("analysis")
        if analysis is not None and isinstance(analysis, dict):
            for field in (
                "schema_version",
                "unclosed_spans",
                "pop",
                "critical_path",
                "task_graph",
            ):
                if field not in analysis:
                    errors.append(f"analysis missing field {field!r}")
            pop = analysis.get("pop")
            if isinstance(pop, dict):
                for field in (
                    "parallel_efficiency",
                    "load_balance",
                    "serialization_efficiency",
                    "transfer_efficiency",
                    "phases",
                ):
                    if field not in pop:
                        errors.append(f"analysis.pop missing field {field!r}")
    return errors
