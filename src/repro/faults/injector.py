"""The runtime side of fault injection: draws, budgets, and the report.

One :class:`FaultInjector` lives for the whole driver run (across checkpoint
resumes); the machine, network, and OmpSs layers consult it at their
injection points:

* :meth:`compute_speed_factor` — per-rank straggler slowdown and OS-noise
  jitter, multiplied into the CPU model's per-phase speed;
* :meth:`transfer_work_factor` / :meth:`transfer_outcome` — link bandwidth
  degradation and the drop / hard-kill decision per transfer attempt;
* :meth:`task_should_fail` — transient OmpSs task failures.

Every concern draws from its own generator derived via
:func:`repro.simkit.rng.substream` from ``(config seed, scenario seed,
concern)``, so injections are independent of each other and of the data
streams — and, because the simulator dispatches events in a deterministic
order, two identical runs inject identically.

All injected, retried, and recovered events accumulate in the
:class:`FaultReport` that ends up on ``RunResult.fault_report`` and in the
run manifest.
"""

from __future__ import annotations

import typing as _t

from repro import telemetry as _telemetry
from repro.faults.plan import FaultScenario, LinkFault, scenario_to_dict
from repro.simkit.rng import substream

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.simulator import Simulator

__all__ = [
    "FaultError",
    "MpiLinkError",
    "MpiTimeoutError",
    "TaskFailedError",
    "FaultReport",
    "FaultInjector",
]


class FaultError(RuntimeError):
    """Base of all injected failures (the driver's resume trigger)."""


class MpiLinkError(FaultError):
    """A transfer was lost for good (retries exhausted or link killed)."""


class MpiTimeoutError(FaultError):
    """A transfer (including retries) exceeded the configured MPI timeout."""


class TaskFailedError(FaultError):
    """An OmpSs task exhausted its re-execution budget."""


class FaultReport:
    """Accumulated injection/recovery record of one driver run.

    ``events`` keeps the first :data:`MAX_EVENTS` events verbatim (each with
    its attempt index and simulated time); ``counters`` always count
    everything.  ``attempts`` records each driver attempt's simulated time
    and outcome; ``recovered`` / ``failure`` summarise the run.
    """

    #: Cap on stored events so manifests stay bounded under high drop rates.
    MAX_EVENTS = 200

    def __init__(self, scenario: FaultScenario):
        self.scenario = scenario
        self.events: list[dict] = []
        self.counters: dict[str, int] = {}
        self.attempts: list[dict] = []
        self.truncated_events = 0
        self.recovered: bool | None = None
        self.failure: str | None = None

    def record(self, kind: str, t: float, attempt: int, **detail: _t.Any) -> None:
        """Count one fault event (and store it, up to the cap)."""
        self.counters[kind] = self.counters.get(kind, 0) + 1
        if len(self.events) < self.MAX_EVENTS:
            event = {"kind": kind, "t": t, "attempt": attempt}
            event.update(detail)
            self.events.append(event)
        else:
            self.truncated_events += 1
        tel = _telemetry.current()
        if tel.enabled:
            tel.metrics.count("faults.events", 1.0, kind=kind)

    def attempt_done(self, phase_time: float, completed_units: int, error: str | None) -> None:
        """Close out one driver attempt."""
        self.attempts.append(
            {
                "phase_time_s": phase_time,
                "completed_units": completed_units,
                "error": error,
            }
        )

    @property
    def n_injected(self) -> int:
        """Injected failures (drops, kills, timeouts, task failures)."""
        return sum(
            self.counters.get(k, 0)
            for k in ("drop", "link_kill", "timeout", "task_failure")
        )

    @property
    def n_recovered(self) -> int:
        """Failures the run absorbed (retransmits, re-executions, resumes)."""
        return sum(
            self.counters.get(k, 0)
            for k in ("transfer_recovered", "task_recovered", "resume")
        )

    def to_dict(self) -> dict:
        """JSON-ready report for ``RunResult.fault_report`` / the manifest."""
        return {
            "scenario": scenario_to_dict(self.scenario),
            "injected": self.n_injected,
            "recovered_events": self.n_recovered,
            "counters": dict(sorted(self.counters.items())),
            "attempts": list(self.attempts),
            "events": list(self.events),
            "truncated_events": self.truncated_events,
            "recovered": self.recovered,
            "failure": self.failure,
        }


class FaultInjector:
    """Stateful decision-maker consulted by the injection hooks.

    The injector outlives attempts: its generators and the global transfer
    counter advance monotonically across checkpoint resumes, so a retry of
    the run does not replay the exact failure that triggered it (the
    ``kill_transfer`` counter in particular fires once).
    """

    def __init__(self, scenario: FaultScenario, config_seed: int):
        self.scenario = scenario
        self.report = FaultReport(scenario)
        root = (int(config_seed), int(scenario.seed))
        self._rng_compute = substream(root[0], "faults", root[1], "compute")
        self._rng_network = substream(root[0], "faults", root[1], "network")
        self._rng_task = substream(root[0], "faults", root[1], "task")
        self._slowdown = {s.rank: s.slowdown for s in scenario.stragglers}
        self._links = {l.rank: l for l in scenario.links if l.rank is not None}
        self._default_link = next(
            (l for l in scenario.links if l.rank is None), None
        )
        self.transfer_count = 0
        self._task_failures = 0
        self._sim: "Simulator | None" = None
        self.attempt = 0
        for s in scenario.stragglers:
            self.report.record("straggler", 0.0, 0, rank=s.rank, slowdown=s.slowdown)
        for l in scenario.links:
            if l.bandwidth_factor < 1.0:
                self.report.record(
                    "link_degraded", 0.0, 0,
                    rank=l.rank, bandwidth_factor=l.bandwidth_factor,
                )

    def bind(self, sim: "Simulator", attempt: int) -> None:
        """Attach the (fresh per attempt) simulator for event timestamps."""
        self._sim = sim
        self.attempt = attempt

    def _now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    def record(self, kind: str, **detail: _t.Any) -> None:
        """Record an event at the current simulated time."""
        self.report.record(kind, self._now(), self.attempt, **detail)

    # -- compute ---------------------------------------------------------------

    @staticmethod
    def _rank_of(stream: _t.Hashable) -> int | None:
        if isinstance(stream, tuple) and stream and isinstance(stream[0], int):
            return stream[0]
        return None

    def compute_speed_factor(self, stream: _t.Hashable) -> float:
        """Multiplicative speed factor for one compute phase on ``stream``."""
        s = self.scenario
        factor = 1.0
        rank = self._rank_of(stream)
        if rank is not None and rank in self._slowdown:
            factor /= self._slowdown[rank]
        if s.os_noise > 0.0:
            factor *= 1.0 - s.os_noise * self._rng_compute.random()
        return factor

    # -- network ---------------------------------------------------------------

    def _link_of(self, rank: object) -> LinkFault | None:
        if isinstance(rank, int) and rank in self._links:
            return self._links[rank]
        return self._default_link

    def transfer_work_factor(self, rank: object) -> float:
        """Work inflation for a degraded link (1.0 = healthy)."""
        link = self._link_of(rank)
        if link is None or link.bandwidth_factor >= 1.0:
            return 1.0
        return 1.0 / link.bandwidth_factor

    def transfer_outcome(self, rank: object) -> str:
        """Decide one transfer attempt's fate: ``"ok"``/``"drop"``/``"kill"``."""
        self.transfer_count += 1
        if self.scenario.kill_transfer == self.transfer_count:
            self.record("link_kill", rank=_rank_detail(rank), transfer=self.transfer_count)
            return "kill"
        link = self._link_of(rank)
        if link is not None and link.drop_probability > 0.0:
            if self._rng_network.random() < link.drop_probability:
                self.record("drop", rank=_rank_detail(rank), transfer=self.transfer_count)
                return "drop"
        return "ok"

    # -- tasks -----------------------------------------------------------------

    def task_should_fail(self, rank: int, task_name: str) -> bool:
        """Decide whether a completing task's result is discarded."""
        s = self.scenario
        if s.task_failure_rate <= 0.0:
            return False
        if s.task_max_failures is not None and self._task_failures >= s.task_max_failures:
            return False
        if self._rng_task.random() < s.task_failure_rate:
            self._task_failures += 1
            self.record("task_failure", rank=rank, task=task_name)
            return True
        return False


def _rank_detail(rank: object) -> object:
    """Normalise transfer sender ids for JSON (node tuples -> strings)."""
    if rank is None or isinstance(rank, (int, str)):
        return rank
    return repr(rank)
