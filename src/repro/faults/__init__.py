"""Deterministic fault injection and resilience (see docs/RESILIENCE.md).

The layer has two halves:

* :mod:`repro.faults.plan` — the declarative :class:`FaultScenario` model
  and its JSON round-trip (what goes wrong, and the recovery budgets);
* :mod:`repro.faults.injector` — the runtime :class:`FaultInjector` the
  machine/network/OmpSs hooks consult, the :class:`FaultError` hierarchy
  those hooks raise, and the :class:`FaultReport` that lands on
  ``RunResult.fault_report``.

Wiring happens in :func:`repro.core.driver.run_fft_phase`: pass a scenario
via ``RunConfig(faults=...)`` or the ``faults=`` argument (CLI:
``--faults scenario.json``) and the driver injects, retries, checkpoints,
and resumes — deterministically for a given ``(RunConfig.seed, scenario)``.
"""

from repro.faults.injector import (
    FaultError,
    FaultInjector,
    FaultReport,
    MpiLinkError,
    MpiTimeoutError,
    TaskFailedError,
)
from repro.faults.plan import (
    SCENARIO_KIND,
    FaultScenario,
    LinkFault,
    ScenarioError,
    Straggler,
    dump_scenario,
    load_scenario,
    scenario_from_dict,
    scenario_to_dict,
)

__all__ = [
    "SCENARIO_KIND",
    "FaultError",
    "FaultInjector",
    "FaultReport",
    "FaultScenario",
    "LinkFault",
    "MpiLinkError",
    "MpiTimeoutError",
    "ScenarioError",
    "Straggler",
    "TaskFailedError",
    "dump_scenario",
    "load_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
]
