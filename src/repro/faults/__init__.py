"""Deterministic fault injection and resilience (see docs/RESILIENCE.md).

The layer has two halves:

* :mod:`repro.faults.plan` — the declarative :class:`FaultScenario` model
  and its JSON round-trip (what goes wrong, and the recovery budgets);
* :mod:`repro.faults.injector` — the runtime :class:`FaultInjector` the
  machine/network/OmpSs hooks consult, the :class:`FaultError` hierarchy
  those hooks raise, and the :class:`FaultReport` that lands on
  ``RunResult.fault_report``.

A third, service-level half lives in :mod:`repro.faults.service`: the
:class:`ServiceChaos` plan (worker-attempt failure rates, executor outage
windows, and a fraction of requests carrying an embedded machine-level
scenario) that perturbs the :mod:`repro.service` front end around many
runs rather than the machine inside one.

Wiring happens in :func:`repro.core.driver.run_fft_phase`: pass a scenario
via ``RunConfig(faults=...)`` or the ``faults=`` argument (CLI:
``--faults scenario.json``) and the driver injects, retries, checkpoints,
and resumes — deterministically for a given ``(RunConfig.seed, scenario)``.
"""

from repro.faults.injector import (
    FaultError,
    FaultInjector,
    FaultReport,
    MpiLinkError,
    MpiTimeoutError,
    TaskFailedError,
)
from repro.faults.plan import (
    SCENARIO_KIND,
    FaultScenario,
    LinkFault,
    ScenarioError,
    Straggler,
    dump_scenario,
    load_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.faults.service import (
    SERVICE_CHAOS_KIND,
    Outage,
    ServiceChaos,
    chaos_from_dict,
    chaos_to_dict,
    dump_chaos,
    load_chaos,
)

__all__ = [
    "SCENARIO_KIND",
    "SERVICE_CHAOS_KIND",
    "FaultError",
    "FaultInjector",
    "FaultReport",
    "FaultScenario",
    "LinkFault",
    "MpiLinkError",
    "MpiTimeoutError",
    "Outage",
    "ScenarioError",
    "ServiceChaos",
    "Straggler",
    "TaskFailedError",
    "chaos_from_dict",
    "chaos_to_dict",
    "dump_chaos",
    "dump_scenario",
    "load_chaos",
    "load_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
]
