"""Fault scenarios: the declarative model of what goes wrong, and when.

A :class:`FaultScenario` describes a deterministic perturbation of the
simulated machine — which ranks straggle, how noisy the cores are, which
links degrade or drop messages, how often tasks fail — plus the resilience
budgets (retries, timeouts, resumes) the run may spend recovering.  It is a
frozen dataclass so it can live on :class:`~repro.core.config.RunConfig`
and be embedded verbatim in run manifests.

Scenarios round-trip through flat JSON (see ``docs/RESILIENCE.md`` for the
schema)::

    {
      "kind": "repro.fault_scenario",
      "name": "slow-rank0",
      "stragglers": [{"rank": 0, "slowdown": 2.0}],
      "os_noise": 0.02,
      "links": [{"bandwidth_factor": 0.7, "drop_probability": 0.01}],
      "mpi_max_retries": 3,
      "mpi_timeout_s": 0.05
    }

Validation is hand-rolled (like the run-manifest schema) so the repository
needs no jsonschema dependency; malformed input raises
:class:`ScenarioError` with a one-line message the CLI can surface.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as _t

__all__ = [
    "SCENARIO_KIND",
    "ScenarioError",
    "Straggler",
    "LinkFault",
    "FaultScenario",
    "load_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "dump_scenario",
]

SCENARIO_KIND = "repro.fault_scenario"


class ScenarioError(ValueError):
    """A fault scenario failed validation or could not be parsed."""


@dataclasses.dataclass(frozen=True)
class Straggler:
    """One persistently slow MPI rank.

    ``slowdown`` is the factor by which every compute phase on the rank's
    hardware threads stretches (2.0 = half speed); it must be >= 1.
    """

    rank: int
    slowdown: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ScenarioError(f"straggler rank must be >= 0, got {self.rank}")
        if self.slowdown < 1.0:
            raise ScenarioError(
                f"straggler slowdown must be >= 1, got {self.slowdown}"
            )


@dataclasses.dataclass(frozen=True)
class LinkFault:
    """Degradation of one rank's injection link (or every link).

    ``rank=None`` is the default link fault applying to all ranks without a
    specific entry.  ``bandwidth_factor`` scales the link's effective
    bandwidth (0.5 = half speed); ``drop_probability`` is the per-transfer
    chance the message is lost and must be retried.
    """

    rank: int | None = None
    bandwidth_factor: float = 1.0
    drop_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.rank is not None and self.rank < 0:
            raise ScenarioError(f"link rank must be >= 0 or null, got {self.rank}")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ScenarioError(
                f"bandwidth_factor must be in (0, 1], got {self.bandwidth_factor}"
            )
        if not 0.0 <= self.drop_probability < 1.0:
            raise ScenarioError(
                f"drop_probability must be in [0, 1), got {self.drop_probability}"
            )


@dataclasses.dataclass(frozen=True)
class FaultScenario:
    """A complete, seed-reproducible fault-injection plan."""

    #: Display name (embedded in manifests and reports).
    name: str = "scenario"
    #: Scenario-local seed, combined with ``RunConfig.seed`` so the same
    #: scenario produces independent draws under different run seeds.
    seed: int = 0
    #: Persistently slow ranks.
    stragglers: tuple[Straggler, ...] = ()
    #: Relative amplitude of extra OS-noise slowdown on every compute phase
    #: (uniform in ``[0, os_noise]``); 0 disables.
    os_noise: float = 0.0
    #: Link degradation / message loss (at most one ``rank=None`` default).
    links: tuple[LinkFault, ...] = ()
    #: Per-completion probability that a finished OmpSs task is discarded
    #: and must re-execute.
    task_failure_rate: float = 0.0
    #: Cap on injected task failures (``None`` = unlimited) — lets a
    #: ``task_failure_rate`` of 1.0 model "fails exactly N times".
    task_max_failures: int | None = None
    #: Re-executions allowed per task before the run aborts.
    task_max_retries: int = 2
    #: Retransmissions allowed per transfer before the link is declared dead.
    mpi_max_retries: int = 3
    #: Base backoff before the first retransmission; doubles per attempt.
    mpi_retry_backoff_s: float = 2.0e-5
    #: Deadline for one logical transfer including retries (``None`` = no
    #: timeout).  Exceeding it raises ``MpiTimeoutError`` — surfaced in the
    #: fault report, never a hang.
    mpi_timeout_s: float | None = None
    #: Hard-fail the Nth transfer attempt (1-based, counted across the run;
    #: ``None`` = never).  A deterministic unrecoverable-failure injection
    #: for checkpoint/resume tests.
    kill_transfer: int | None = None
    #: Checkpoint resumes the driver may spend before giving up.
    max_resumes: int = 1

    def __post_init__(self) -> None:
        # JSON decoding hands us lists; normalise to hashable tuples.
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(self, "links", tuple(self.links))
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        if self.seed < 0:
            raise ScenarioError(f"scenario seed must be >= 0, got {self.seed}")
        if not 0.0 <= self.os_noise < 1.0:
            raise ScenarioError(f"os_noise must be in [0, 1), got {self.os_noise}")
        ranks = [s.rank for s in self.stragglers]
        if len(set(ranks)) != len(ranks):
            raise ScenarioError(f"duplicate straggler ranks: {sorted(ranks)}")
        link_ranks = [l.rank for l in self.links]
        if len(set(link_ranks)) != len(link_ranks):
            raise ScenarioError("duplicate link-fault ranks (at most one per rank, "
                                "at most one default)")
        if not 0.0 <= self.task_failure_rate <= 1.0:
            raise ScenarioError(
                f"task_failure_rate must be in [0, 1], got {self.task_failure_rate}"
            )
        if self.task_max_failures is not None and self.task_max_failures < 0:
            raise ScenarioError(
                f"task_max_failures must be >= 0 or null, got {self.task_max_failures}"
            )
        if self.task_max_retries < 0:
            raise ScenarioError(
                f"task_max_retries must be >= 0, got {self.task_max_retries}"
            )
        if self.mpi_max_retries < 0:
            raise ScenarioError(
                f"mpi_max_retries must be >= 0, got {self.mpi_max_retries}"
            )
        if self.mpi_retry_backoff_s < 0:
            raise ScenarioError(
                f"mpi_retry_backoff_s must be >= 0, got {self.mpi_retry_backoff_s}"
            )
        if self.mpi_timeout_s is not None and self.mpi_timeout_s <= 0:
            raise ScenarioError(
                f"mpi_timeout_s must be > 0 or null, got {self.mpi_timeout_s}"
            )
        if self.kill_transfer is not None and self.kill_transfer < 1:
            raise ScenarioError(
                f"kill_transfer must be >= 1 or null, got {self.kill_transfer}"
            )
        if self.max_resumes < 0:
            raise ScenarioError(f"max_resumes must be >= 0, got {self.max_resumes}")

    # -- which injection layers does this scenario touch? ----------------------

    @property
    def compute_active(self) -> bool:
        """Whether compute phases need a speed factor."""
        return bool(self.stragglers) or self.os_noise > 0.0

    @property
    def degrades_links(self) -> bool:
        """Whether any link runs below full bandwidth."""
        return any(l.bandwidth_factor < 1.0 for l in self.links)

    @property
    def guards_transfers(self) -> bool:
        """Whether transfers need the drop/retry/timeout envelope."""
        return (
            self.kill_transfer is not None
            or self.mpi_timeout_s is not None
            or any(l.drop_probability > 0.0 for l in self.links)
        )

    @property
    def fails_tasks(self) -> bool:
        """Whether the OmpSs runtime injects task failures."""
        return self.task_failure_rate > 0.0 and self.task_max_failures != 0


# ---------------------------------------------------------------------------
# JSON round-trip.
# ---------------------------------------------------------------------------

_SCALAR_FIELDS = (
    "name",
    "seed",
    "os_noise",
    "task_failure_rate",
    "task_max_failures",
    "task_max_retries",
    "mpi_max_retries",
    "mpi_retry_backoff_s",
    "mpi_timeout_s",
    "kill_transfer",
    "max_resumes",
)


def _require(mapping: object, what: str) -> dict:
    if not isinstance(mapping, dict):
        raise ScenarioError(f"{what} must be a JSON object, got {type(mapping).__name__}")
    return mapping


def scenario_from_dict(doc: object) -> FaultScenario:
    """Build a validated scenario from a (JSON-decoded) dict."""
    doc = _require(doc, "scenario")
    kind = doc.get("kind")
    if kind is not None and kind != SCENARIO_KIND:
        raise ScenarioError(f"kind must be {SCENARIO_KIND!r}, got {kind!r}")
    known = set(_SCALAR_FIELDS) | {"kind", "stragglers", "links"}
    unknown = sorted(set(doc) - known)
    if unknown:
        raise ScenarioError(f"unknown scenario field(s): {', '.join(unknown)}")
    kwargs: dict[str, _t.Any] = {
        k: doc[k] for k in _SCALAR_FIELDS if k in doc
    }
    try:
        stragglers = tuple(
            Straggler(**_require(s, "straggler entry"))
            for s in doc.get("stragglers", [])
        )
        links = tuple(
            LinkFault(**_require(l, "link entry")) for l in doc.get("links", [])
        )
        return FaultScenario(stragglers=stragglers, links=links, **kwargs)
    except TypeError as exc:  # bad keys/arity inside an entry
        raise ScenarioError(str(exc)) from None


def scenario_to_dict(scenario: FaultScenario) -> dict:
    """Flat JSON-ready dict (inverse of :func:`scenario_from_dict`)."""
    doc: dict[str, _t.Any] = {"kind": SCENARIO_KIND}
    doc.update({k: getattr(scenario, k) for k in _SCALAR_FIELDS})
    doc["stragglers"] = [dataclasses.asdict(s) for s in scenario.stragglers]
    doc["links"] = [dataclasses.asdict(l) for l in scenario.links]
    return doc


def load_scenario(path: str | pathlib.Path) -> FaultScenario:
    """Read and validate a scenario JSON file."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario {path}: {exc}") from None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path} is not valid JSON: {exc}") from None
    try:
        return scenario_from_dict(doc)
    except ScenarioError as exc:
        raise ScenarioError(f"{path}: {exc}") from None


def dump_scenario(path: str | pathlib.Path, scenario: FaultScenario) -> pathlib.Path:
    """Write a scenario as JSON; returns the written path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(scenario_to_dict(scenario), indent=2) + "\n")
    return path
