"""Service-level chaos: what goes wrong *around* the runs, and when.

:class:`~repro.faults.plan.FaultScenario` perturbs the machine inside one
simulation; :class:`ServiceChaos` perturbs the *service* hosting many —
worker attempts that fail, executors that black out for a window (the
input that trips circuit breakers), and a fraction of requests carrying
an embedded machine-level scenario so real injected faults flow through
the retry path too.

Like fault scenarios, chaos plans are frozen, seed-reproducible and
round-trip through flat JSON (kind ``repro.service_chaos``)::

    {
      "kind": "repro.service_chaos",
      "name": "rush-hour",
      "seed": 7,
      "failure_rate": 0.1,
      "class_failure_rates": {"large": 0.3},
      "outages": [{"version": "ompss_perfft", "start_s": 2.0, "duration_s": 1.5}],
      "fault_fraction": 0.2,
      "run_faults": {"kind": "repro.fault_scenario", "links": [...]}
    }

All draws go through a caller-supplied ``random.Random`` so the soak
engine's single-threaded schedule stays byte-reproducible.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import random
import typing as _t

from repro.faults.plan import ScenarioError, scenario_from_dict

__all__ = [
    "SERVICE_CHAOS_KIND",
    "Outage",
    "ServiceChaos",
    "chaos_from_dict",
    "chaos_to_dict",
    "load_chaos",
    "dump_chaos",
]

SERVICE_CHAOS_KIND = "repro.service_chaos"


@dataclasses.dataclass(frozen=True)
class Outage:
    """One executor blackout window (``version=None`` = every executor).

    During ``[start_s, start_s + duration_s)`` — measured from service
    start — every attempt on the executor fails deterministically.  This
    is the designed input of the circuit breaker: consecutive failures
    trip it, and the half-open probe succeeds once the window has passed.
    """

    version: str | None = None
    start_s: float = 0.0
    duration_s: float = 1.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ScenarioError(f"outage start_s must be >= 0, got {self.start_s}")
        if self.duration_s <= 0:
            raise ScenarioError(
                f"outage duration_s must be > 0, got {self.duration_s}"
            )

    def covers(self, version: str, now: float) -> bool:
        """Whether an attempt on ``version`` at ``now`` falls in the window."""
        if self.version is not None and self.version != version:
            return False
        return self.start_s <= now < self.start_s + self.duration_s


@dataclasses.dataclass(frozen=True)
class ServiceChaos:
    """A complete, seed-reproducible service-level chaos plan."""

    #: Display name (embedded in service manifests).
    name: str = "chaos"
    #: Chaos-local seed; the service combines it with its own seed so one
    #: plan yields independent draws under different service seeds.
    seed: int = 0
    #: Per-attempt probability a worker attempt fails (service-injected).
    failure_rate: float = 0.0
    #: Per-grid-class overrides of ``failure_rate``.
    class_failure_rates: dict[str, float] = dataclasses.field(default_factory=dict)
    #: Executor blackout windows.
    outages: tuple[Outage, ...] = ()
    #: Fraction of generated requests that carry ``run_faults`` (the load
    #: generator applies this; direct submitters attach faults themselves).
    fault_fraction: float = 0.0
    #: Machine-level scenario (flat ``repro.fault_scenario`` dict) attached
    #: to that fraction, or ``None``.
    run_faults: dict | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "outages", tuple(self.outages))
        if not self.name:
            raise ScenarioError("chaos name must be non-empty")
        if self.seed < 0:
            raise ScenarioError(f"chaos seed must be >= 0, got {self.seed}")
        if not 0.0 <= self.failure_rate < 1.0:
            raise ScenarioError(
                f"failure_rate must be in [0, 1), got {self.failure_rate}"
            )
        for cls, rate in self.class_failure_rates.items():
            if not 0.0 <= rate < 1.0:
                raise ScenarioError(
                    f"class_failure_rates[{cls!r}] must be in [0, 1), got {rate}"
                )
        if not 0.0 <= self.fault_fraction <= 1.0:
            raise ScenarioError(
                f"fault_fraction must be in [0, 1], got {self.fault_fraction}"
            )
        if self.run_faults is not None:
            # Validate eagerly so a bad embedded scenario fails at load
            # time, not on the unlucky request that drew it.
            scenario_from_dict(self.run_faults)
        if self.fault_fraction > 0.0 and self.run_faults is None:
            raise ScenarioError("fault_fraction > 0 requires run_faults")

    @property
    def active(self) -> bool:
        """Whether this plan perturbs anything at all."""
        return (
            self.failure_rate > 0.0
            or bool(self.class_failure_rates)
            or bool(self.outages)
            or self.fault_fraction > 0.0
        )

    def rate_for(self, grid_class: str) -> float:
        """Per-attempt failure probability for a grid class."""
        return self.class_failure_rates.get(grid_class, self.failure_rate)

    def attempt_fails(
        self, rng: random.Random, grid_class: str, version: str, now: float
    ) -> str | None:
        """Failure cause of an attempt, or ``None`` when it may proceed.

        Outage windows are checked first (deterministic in ``now``); the
        stochastic rate draws one value from ``rng`` *only when the rate
        is positive*, keeping clean classes from consuming draws.
        """
        for outage in self.outages:
            if outage.covers(version, now):
                return f"outage:{outage.version or 'all'}"
        rate = self.rate_for(grid_class)
        if rate > 0.0 and rng.random() < rate:
            return "chaos"
        return None


# ---------------------------------------------------------------------------
# JSON round-trip (same shape as fault scenarios).
# ---------------------------------------------------------------------------

_SCALAR_FIELDS = ("name", "seed", "failure_rate", "fault_fraction")


def chaos_from_dict(doc: object) -> ServiceChaos:
    """Build a validated chaos plan from a (JSON-decoded) dict."""
    if not isinstance(doc, dict):
        raise ScenarioError(f"chaos must be a JSON object, got {type(doc).__name__}")
    kind = doc.get("kind")
    if kind is not None and kind != SERVICE_CHAOS_KIND:
        raise ScenarioError(f"kind must be {SERVICE_CHAOS_KIND!r}, got {kind!r}")
    known = set(_SCALAR_FIELDS) | {
        "kind",
        "class_failure_rates",
        "outages",
        "run_faults",
    }
    unknown = sorted(set(doc) - known)
    if unknown:
        raise ScenarioError(f"unknown chaos field(s): {', '.join(unknown)}")
    kwargs: dict[str, _t.Any] = {k: doc[k] for k in _SCALAR_FIELDS if k in doc}
    rates = doc.get("class_failure_rates", {})
    if not isinstance(rates, dict):
        raise ScenarioError("class_failure_rates must be a JSON object")
    try:
        outages = tuple(
            Outage(**o) if isinstance(o, dict) else _reject_outage(o)
            for o in doc.get("outages", [])
        )
        return ServiceChaos(
            class_failure_rates=dict(rates),
            outages=outages,
            run_faults=doc.get("run_faults"),
            **kwargs,
        )
    except TypeError as exc:
        raise ScenarioError(str(exc)) from None


def _reject_outage(entry: object) -> _t.NoReturn:
    raise ScenarioError(
        f"outage entry must be a JSON object, got {type(entry).__name__}"
    )


def chaos_to_dict(chaos: ServiceChaos) -> dict:
    """Flat JSON-ready dict (inverse of :func:`chaos_from_dict`)."""
    doc: dict[str, _t.Any] = {"kind": SERVICE_CHAOS_KIND}
    doc.update({k: getattr(chaos, k) for k in _SCALAR_FIELDS})
    doc["class_failure_rates"] = dict(chaos.class_failure_rates)
    doc["outages"] = [dataclasses.asdict(o) for o in chaos.outages]
    doc["run_faults"] = chaos.run_faults
    return doc


def load_chaos(path: str | pathlib.Path) -> ServiceChaos:
    """Read and validate a chaos JSON file."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read chaos plan {path}: {exc}") from None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path} is not valid JSON: {exc}") from None
    try:
        return chaos_from_dict(doc)
    except ScenarioError as exc:
        raise ScenarioError(f"{path}: {exc}") from None


def dump_chaos(path: str | pathlib.Path, chaos: ServiceChaos) -> pathlib.Path:
    """Write a chaos plan as JSON; returns the written path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(chaos_to_dict(chaos), indent=2) + "\n")
    return path
