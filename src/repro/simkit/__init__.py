"""Discrete-event simulation engine.

``simkit`` is the foundation of the whole reproduction: simulated MPI ranks,
OmpSs worker threads and hardware resources are all coroutine *processes*
driven by a single event queue.  The design follows the classic
process-interaction style (generators yield *events*; the simulator resumes
them when the event triggers) with one addition that the KNL contention model
needs: :class:`~repro.simkit.fluid.FluidResource`, a processor-sharing
resource whose per-task progress rates are recomputed every time the set of
active tasks changes.  This is what lets a compute phase's effective IPC
depend on *what else* is running on the node at the same instant.

Public API
----------
Simulator
    The event loop: ``now``, ``schedule``, ``process``, ``run``.
Event, Timeout, Process, AllOf, AnyOf
    Awaitable primitives for coroutine processes.
Resource, PriorityResource, Mutex
    Counting resources with FIFO queues.
FluidResource, FluidTask, RateAllocator
    Processor-sharing resources with state-dependent rates.
"""

from repro.simkit.events import Event, Timeout, EventCancelled, Interrupt
from repro.simkit.process import Process, AllOf, AnyOf, ConditionValue
from repro.simkit.resources import Mutex, Resource
from repro.simkit.stores import Store
from repro.simkit.fluid import FluidResource, FluidTask, RateAllocator, EqualShareAllocator
from repro.simkit.simulator import Simulator, SimulationError, DeadlockError

__all__ = [
    "Simulator",
    "SimulationError",
    "DeadlockError",
    "Event",
    "Timeout",
    "EventCancelled",
    "Interrupt",
    "Process",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Resource",
    "Mutex",
    "Store",
    "FluidResource",
    "FluidTask",
    "RateAllocator",
    "EqualShareAllocator",
]
