"""Seeded random substreams: every generator in the repository comes from here.

A simulation is only reproducible if all of its randomness flows from one
root seed.  :func:`substream` derives independent, deterministic
:class:`numpy.random.Generator` streams from a root seed plus a path of
labels (ints or strings)::

    substream(config.seed)                       # the root stream
    substream(config.seed, "potential")          # independent sub-stream
    substream(config.seed, "faults", 3, "net")   # nested concerns

With an empty path the generator is *bit-identical* to
``numpy.random.default_rng(seed)`` (numpy wraps a bare int seed in a
``SeedSequence([seed])``), so routing existing call sites through this
helper changes no stream.  String labels are hashed with SHA-256, so the
derivation is stable across processes and platforms (unlike ``hash()``).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["substream"]


def _entropy(label: int | str) -> int:
    if isinstance(label, (int, np.integer)):
        if label < 0:
            raise ValueError(f"substream labels must be >= 0, got {label}")
        return int(label)
    if isinstance(label, str):
        return int.from_bytes(hashlib.sha256(label.encode()).digest()[:8], "little")
    raise TypeError(f"substream labels must be int or str, got {type(label).__name__}")


def substream(seed: int, *path: int | str) -> np.random.Generator:
    """A deterministic generator for ``(seed, *path)``.

    ``substream(s)`` equals ``numpy.random.default_rng(s)``; any non-empty
    path yields a stream statistically independent of the root and of every
    other path.
    """
    if not path:
        return np.random.default_rng(int(seed))
    entropy = [int(seed)] + [_entropy(p) for p in path]
    return np.random.default_rng(np.random.SeedSequence(entropy))
