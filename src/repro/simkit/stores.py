"""Bounded FIFO channels between processes.

A :class:`Store` is the classic DES producer/consumer primitive: ``put``
blocks while the buffer is full, ``get`` blocks while it is empty, both in
FIFO order.  The FFTXlib pipeline itself communicates through MPI events,
but the engine would be an incomplete simulation toolkit without channels —
and they make writing new rank programs (e.g. streaming post-processing of
trace records) straightforward.

Usage::

    store = Store(sim, capacity=4)
    yield store.put(item)       # blocks while full
    item = yield store.get()    # blocks while empty
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.simkit.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.simulator import Simulator

__all__ = ["Store"]


class Store:
    """A bounded FIFO buffer with blocking put/get.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Maximum buffered items (``float('inf')`` for unbounded).
    name:
        Label for diagnostics.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf"), name: str = "store"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque = deque()
        self._putters: deque[tuple[Event, object]] = deque()
        self._getters: deque[Event] = deque()

    @property
    def level(self) -> int:
        """Items currently buffered."""
        return len(self._items)

    def put(self, item: object) -> Event:
        """Deposit ``item``; the event fires once it entered the buffer."""
        ev = Event(self.sim, name=f"put:{self.name}")
        self._putters.append((ev, item))
        self._drain()
        return ev

    def get(self) -> Event:
        """Withdraw the oldest item; the event fires with it."""
        ev = Event(self.sim, name=f"get:{self.name}")
        self._getters.append(ev)
        self._drain()
        return ev

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit pending puts while there is room.
            while self._putters and len(self._items) < self.capacity:
                ev, item = self._putters.popleft()
                self._items.append(item)
                ev.succeed(item)
                progressed = True
            # Serve pending gets while items exist.
            while self._getters and self._items:
                ev = self._getters.popleft()
                ev.succeed(self._items.popleft())
                progressed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Store {self.name!r} level={self.level}/{self.capacity} "
            f"waiting_put={len(self._putters)} waiting_get={len(self._getters)}>"
        )
