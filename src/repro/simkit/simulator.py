"""The event loop.

:class:`Simulator` owns the pending-event heap and the simulated clock.  All
other simkit objects reference a simulator; nothing in the engine uses wall
clock or global state, so independent simulations can coexist (the benchmark
harness runs many in one pytest process) and every run is deterministic.

Determinism rules
-----------------
* Events scheduled for the same time fire in schedule order (a monotonically
  increasing sequence number breaks ties).
* No randomness anywhere in the engine; schedulers that need tie-breaking use
  explicit seeded generators.
"""

from __future__ import annotations

import typing as _t
from heapq import heappop, heappush

from repro.simkit.events import CallbackEvent, Event, Timeout
from repro.simkit.process import AllOf, AnyOf, Process, ProcessGenerator

__all__ = ["Simulator", "SimulationError", "DeadlockError"]


class SimulationError(RuntimeError):
    """Base class for engine-level failures."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Simulator.run` when processes remain but no event is pending.

    The message lists the still-alive processes and what each is waiting on —
    the simulated-MPI analogue of a hung collective.
    """


#: Event priority: urgent events (resource bookkeeping) before normal ones.
URGENT = 0
NORMAL = 1
#: Runs after every URGENT/NORMAL event of the same timestamp — the slot used
#: by the fluid engine to coalesce a burst of same-time submits/cancels into a
#: single end-of-timestep rebalance.
LAZY = 2

#: Dispatches between two calls of :attr:`Simulator.interrupt` (power of two
#: so the hot loop's stride test is one mask).
INTERRUPT_STRIDE = 2048


class Simulator:
    """A discrete-event simulator instance.

    Attributes
    ----------
    now:
        Current simulated time (seconds, by convention of the callers).
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        self._alive_processes: set[Process] = set()
        #: Events processed so far — a plain int so the hot loop pays one
        #: increment; the telemetry layer snapshots it into the run manifest
        #: (``sim.events_dispatched``) after :meth:`run` returns.
        self.n_dispatched = 0
        #: Optional cooperative-interrupt hook: called every
        #: :data:`INTERRUPT_STRIDE` dispatched events inside :meth:`run` and
        #: may raise to abort the simulation (deadline/cancellation
        #: propagation from a hosting service).  ``None`` (the default) costs
        #: one local ``is None`` check per event.
        self.interrupt: _t.Callable[[], None] | None = None

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed (``None`` between resumptions)."""
        return self._active_process

    # -- factories --------------------------------------------------------------

    def event(self, name: str | None = None) -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None, name: str | None = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, generator: ProcessGenerator, name: str | None = None) -> Process:
        """Launch ``generator`` as a process starting at the current time."""
        proc = Process(self, generator, name=name)
        if proc.is_alive:
            self._alive_processes.add(proc)
            proc.add_callback(lambda ev: self._alive_processes.discard(proc))
        return proc

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        """Event that fires when all ``events`` fired."""
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fired."""
        return AnyOf(self, events)

    # -- scheduling (engine internal) ------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        self._seq += 1
        heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def defer(self, fn: _t.Callable[[], None], priority: int = LAZY) -> None:
        """Run ``fn()`` at the current time, after already-scheduled events.

        With the default :data:`LAZY` priority the callback runs once every
        URGENT/NORMAL event of the current timestamp has been processed —
        including those scheduled *after* this call.  This is the coalescing
        primitive of the fluid engine: k same-time changes of a resource fold
        into one deferred rebalance instead of k immediate ones.
        """
        self._schedule_event(CallbackEvent(fn), 0.0, priority)

    # -- execution --------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = heappop(self._heap)
        self._now = when
        self.n_dispatched += 1
        event._process()
        exc = event.exception
        if exc is not None and not event._defused:
            raise exc

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until no events remain.  If live processes then
              remain blocked, raise :class:`DeadlockError`.
            * a number — run until the clock reaches that time.
            * an :class:`Event` — run until that event is processed and
              return its value.

        Returns
        -------
        The value of the ``until`` event, if one was given.
        """
        stop_event: Event | None = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until={stop_time} is in the past (now={self._now})")

        # Hot loop: the body of step() is inlined with the heap and the
        # dispatch counter bound to locals — run() dominates every sweep's
        # wall-clock, and the extra attribute traffic of delegating to
        # step() costs ~8% of end-to-end simulation throughput.
        heap = self._heap
        interrupt = self.interrupt
        stride_mask = INTERRUPT_STRIDE - 1
        dispatched = 0
        try:
            while heap:
                if stop_event is not None and stop_event.processed:
                    return stop_event.value
                if heap[0][0] > stop_time:
                    self._now = stop_time
                    return None
                when, _prio, _seq, event = heappop(heap)
                self._now = when
                dispatched += 1
                if interrupt is not None and not (dispatched & stride_mask):
                    interrupt()
                event._process()
                exc = event._exception
                if exc is not None and not event._defused:
                    raise exc
        finally:
            self.n_dispatched += dispatched

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise DeadlockError(self._deadlock_message(f"'until' event {stop_event!r} never fired"))
        if until is None and self._alive_processes:
            raise DeadlockError(self._deadlock_message("no pending events"))
        if stop_time != float("inf"):
            self._now = stop_time
        return None

    def _deadlock_message(self, reason: str) -> str:
        lines = [f"simulation ended with blocked processes ({reason}); waiting processes:"]
        for proc in sorted(self._alive_processes, key=lambda p: p.name or ""):
            lines.append(f"  - {proc.name!r} waiting on {proc.target!r}")
        return "\n".join(lines)
