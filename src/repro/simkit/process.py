"""Coroutine processes and condition events.

A *process* wraps a Python generator.  The generator yields events; the
process suspends on each yielded event and is resumed with the event's value
(or the event's exception is thrown into the generator).  The process object
is itself an :class:`~repro.simkit.events.Event` that triggers with the
generator's return value, so processes can wait on each other.

:class:`AllOf` / :class:`AnyOf` are condition events used e.g. by simulated
MPI collectives ("resume when all participants arrived") and by the OmpSs
``taskwait``.
"""

from __future__ import annotations

import typing as _t

from repro.simkit.events import Event, Interrupt

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.simulator import Simulator

__all__ = ["Process", "AllOf", "AnyOf", "ConditionValue"]

ProcessGenerator = _t.Generator[Event, object, object]


class Process(Event):
    """A running coroutine; also an event that fires when the coroutine ends.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        A generator yielding :class:`Event` instances.
    name:
        Label for diagnostics.
    """

    __slots__ = ("generator", "_target")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str | None = None):
        if not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim, name=name or getattr(generator, "__name__", None))
        self.generator = generator
        #: The event this process is currently waiting on (``None`` if ready).
        self._target: Event | None = None
        # Bootstrap: resume the generator at the current simulation time.
        init = Event(sim, name=f"init:{self.name}")
        init.add_callback(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Event | None:
        """The event this process is waiting for (diagnostics / deadlock dump)."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current target (the target event is
        left untouched and may still fire; its value is then discarded).
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is None:
            raise RuntimeError(f"{self!r} is not waiting and cannot be interrupted")
        interrupt_ev = Event(self.sim, name=f"interrupt:{self.name}")
        interrupt_ev._exception = Interrupt(cause)
        interrupt_ev._defused = True
        # Detach from the old target: when it fires, ignore it.
        old_target = self._target
        self._target = None
        if old_target.callbacks is not None:
            try:
                old_target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        interrupt_ev.add_callback(self._resume)
        interrupt_ev.succeed()

    # -- engine internals ---------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.sim._active_process = self
        self._target = None
        while True:
            try:
                if event._exception is None:
                    next_event = self.generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self.generator.throw(event._exception)
            except StopIteration as stop:
                self.sim._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.sim._active_process = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                self.sim._active_process = None
                err = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self.fail(err)
                return
            if next_event.callbacks is not None:
                # Event still pending or not yet processed: wait for it.
                self._target = next_event
                next_event.add_callback(self._resume)
                break
            # Event already processed: loop and feed its value straight in.
            event = next_event
        self.sim._active_process = None


class ConditionValue:
    """Ordered mapping of the events collected by a fired condition."""

    def __init__(self, events: list[Event]):
        self.events = events

    def __getitem__(self, event: Event) -> object:
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def values(self) -> list[object]:
        """Values of the collected events, in construction order."""
        return [ev.value for ev in self.events]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {len(self.events)} events>"


class _Condition(Event):
    """Common machinery for AllOf / AnyOf."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: _t.Iterable[Event], name: str | None = None):
        super().__init__(sim, name=name)
        self._events = list(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise ValueError("all events of a condition must share one simulator")
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed(ConditionValue([]))
            return
        for ev in self._events:
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if event._exception is not None:
                event._defused = True
            return
        if event._exception is not None:
            event._defused = True
            self.fail(event._exception)
            return
        self._remaining -= 1
        self._on_progress(event)

    def _on_progress(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once *all* the given events have fired successfully.

    The value is a :class:`ConditionValue` over the triggered events.  If any
    event fails, the condition fails with that exception.
    """

    __slots__ = ()

    def _on_progress(self, event: Event) -> None:
        if self._remaining == 0:
            self.succeed(ConditionValue(list(self._events)))


class AnyOf(_Condition):
    """Fires as soon as *one* of the given events fires successfully."""

    __slots__ = ()

    def _on_progress(self, event: Event) -> None:
        # Note: filter on *processed*, not *triggered* — Timeouts are created
        # in the triggered state (their outcome is decided at construction)
        # but have not fired yet.
        self.succeed(ConditionValue([ev for ev in self._events if ev.processed and ev._exception is None]))
