"""Counting resources and mutexes.

These model exclusive or limited-capacity facilities (e.g. a hardware thread
executing at most one OmpSs task at a time, or a bounded injection queue in
the network model).  Requests are granted in FIFO order.

Usage from a process::

    req = resource.request()
    yield req              # granted when capacity is available
    ...                    # critical section
    resource.release(req)

or with the context-manager helper::

    with resource.request() as req:
        yield req
        ...
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.simkit.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.simulator import Simulator

__all__ = ["Resource", "Request", "Mutex"]


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim, name=f"request:{resource.name}")
        self.resource = resource
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.resource.release(self)

    def cancel(self) -> bool:
        """Withdraw a not-yet-granted request."""
        if self in self.resource._queue:
            self.resource._queue.remove(self)
        return super().cancel()


class Resource:
    """A counting resource with ``capacity`` concurrent users.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Maximum number of simultaneously granted requests (>= 1).
    name:
        Label for diagnostics.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._queue: deque[Request] = deque()
        self._users: set[Request] = set()

    @property
    def count(self) -> int:
        """Number of currently granted requests."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests still waiting."""
        return len(self._queue)

    def request(self) -> Request:
        """Create a request; yield it from a process to wait for the grant."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a granted request and wake the next waiter (if any)."""
        if request not in self._users:
            raise ValueError(f"{request!r} does not hold {self.name!r}")
        self._users.discard(request)
        self._grant_waiters()

    # -- internal -----------------------------------------------------------

    def _enqueue(self, request: Request) -> None:
        self._queue.append(request)
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            nxt = self._queue.popleft()
            self._users.add(nxt)
            nxt.succeed(nxt)


class Mutex(Resource):
    """A capacity-1 resource (convenience subclass)."""

    def __init__(self, sim: "Simulator", name: str = "mutex"):
        super().__init__(sim, capacity=1, name=name)
