"""Event primitives for the discrete-event engine.

An :class:`Event` is a one-shot occurrence in simulated time.  It starts
*pending*, is *triggered* with a value (or an exception) exactly once, and
then invokes its registered callbacks.  Processes (see
:mod:`repro.simkit.process`) suspend themselves by yielding an event and are
resumed by one of these callbacks.

Events support *cancellation* (``event.cancel()``): a cancelled event will
never fire and waiting processes receive :class:`EventCancelled` unless they
opted out.  The fluid-resource machinery relies on cancellation to re-arm
completion timers when progress rates change.
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.simkit.simulator import Simulator

__all__ = [
    "CallbackEvent",
    "Event",
    "Timeout",
    "EventCancelled",
    "Interrupt",
    "PENDING",
    "TRIGGERED",
    "PROCESSED",
]


#: Sentinel for an event that has not been triggered yet.
PENDING = "pending"
#: Sentinel for an event that has been scheduled to fire.
TRIGGERED = "triggered"
#: Sentinel for an event whose callbacks already ran.
PROCESSED = "processed"


class EventCancelled(Exception):
    """Raised inside a process waiting on an event that was cancelled."""


class Interrupt(Exception):
    """Raised inside a process that was interrupted by another process.

    The optional ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class CallbackEvent:
    """Minimal pre-triggered heap entry: calls ``fn`` when dispatched.

    A lightweight alternative to a full :class:`Event` for engine-internal
    wakeups (deferred rebalances, fluid completion timers): no callback
    list, no state machine, no value, no cancellation.  The simulator's run
    loop only touches ``_process``, ``_exception`` and ``_defused``, so the
    class satisfies that contract with class attributes and a single slot.
    Exceptions raised by ``fn`` propagate directly out of the run loop.
    """

    __slots__ = ("_fn",)

    _exception: BaseException | None = None
    exception: BaseException | None = None
    _defused = False

    def __init__(self, fn: _t.Callable[[], None]):
        self._fn = fn

    def _process(self) -> None:
        self._fn()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CallbackEvent {self._fn!r}>"


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.simkit.simulator.Simulator`.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_exception", "_state", "_defused")

    def __init__(self, sim: "Simulator", name: str | None = None):
        self.sim = sim
        self.name = name
        self.callbacks: list[_t.Callable[[Event], None]] | None = []
        self._value: object = None
        self._exception: BaseException | None = None
        self._state = PENDING
        # If an event fails and nobody waits on it the error must not be
        # silently lost; the simulator re-raises it unless "defused".
        self._defused = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been triggered (or processed)."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (valid only once triggered)."""
        if self._state == PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._exception is None

    @property
    def value(self) -> object:
        """The event's value (valid only once triggered and successful)."""
        if self._state == PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The failure exception, or ``None``."""
        return self._exception

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator won't re-raise."""
        self._defused = True

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._value = value
        self._state = TRIGGERED
        self.sim._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._exception = exception
        self._state = TRIGGERED
        self.sim._schedule_event(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (callback helper)."""
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(event._value)

    def cancel(self) -> bool:
        """Cancel a pending event.

        Returns ``True`` if the event was pending and is now cancelled;
        ``False`` if it had already been triggered (cancellation is then a
        no-op — the event will still fire).
        """
        if self._state != PENDING:
            return False
        exc = EventCancelled(self.name or repr(self))
        self._exception = exc
        self._defused = True
        self._state = TRIGGERED
        self.sim._schedule_event(self)
        return True

    # -- internal -----------------------------------------------------------

    def _process(self) -> None:
        """Run callbacks; called by the simulator's event loop."""
        callbacks, self.callbacks = self.callbacks, None
        self._state = PROCESSED
        for cb in callbacks:  # type: ignore[union-attr]
            cb(self)

    def add_callback(self, cb: _t.Callable[["Event"], None]) -> None:
        """Register ``cb`` to run when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self.callbacks is None:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} state={self._state}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None, name: str | None = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim, name=name)
        self.delay = delay
        self._value = value
        self._state = TRIGGERED
        sim._schedule_event(self, delay=delay)
