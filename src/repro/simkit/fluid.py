"""Fluid (processor-sharing) resources with state-dependent rates.

A :class:`FluidResource` executes *fluid tasks*: each task carries an amount
of abstract ``work`` and progresses continuously at a rate chosen by a
:class:`RateAllocator`.  Whenever the set of active tasks changes (a task is
submitted, cancelled or completes), the resource

1. advances every active task's progress at its previous rate,
2. asks the allocator for fresh rates given the *new* active set, and
3. re-arms a single completion timer for the earliest finisher.

This is the standard fluid-flow approximation used by network/host simulators
(SimGrid-style): it is what allows the KNL model to make a compute phase's
effective IPC depend on the concurrently executing phases — the mechanism
behind the paper's resource-contention analysis (Tables I/II, Fig. 7).

The engine is exact for piecewise-constant rates: between change points every
task progresses linearly, and change points are processed in order.

Engine layout (the contention hot path)
---------------------------------------
Per-task progress state lives in struct-of-arrays form — ``remaining``,
``rate``, ``work`` and ``active_time`` are numpy arrays indexed by position in
the active set, maintained incrementally on submit/cancel/finish — so the
progress integration of :meth:`FluidResource._advance`, the finished-task
scan and the completion-ETA reduction are whole-array operations instead of
per-task Python loops.  :class:`FluidTask` objects remain the public handles;
their ``remaining``/``rate``/``active_time`` attributes read through to the
arrays while the task is active and are written back on detach.

Changes that land at the same simulation timestamp are *coalesced*: a burst
of k submits (an OmpSs taskloop fan-out) marks the resource dirty and defers
one rebalance to the end of the timestep (:meth:`Simulator.defer`) instead of
running k full reallocations.  This is semantically free — intermediate rate
assignments would act over zero simulated time — and is counted in
``n_coalesced`` for the run manifest.

Allocators may additionally implement the *batch protocol* (``prepare`` +
``allocate_batch``): the resource then collects one static record per task at
submit time and hands the allocator the whole list per rebalance, so the
allocator never re-walks task metadata (see
:class:`~repro.machine.contention.BandwidthContentionAllocator`).
"""

from __future__ import annotations

import math
import typing as _t

import numpy as np

from repro.simkit.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.simulator import Simulator

__all__ = ["FluidTask", "RateAllocator", "EqualShareAllocator", "FluidResource"]

#: Relative tolerance used to decide a task's work is exhausted.
_REL_EPS = 1e-12
#: Absolute floor so zero-work tasks terminate immediately.
_ABS_EPS = 1e-15

#: Initial capacity of the struct-of-arrays buffers (doubled on demand).
_INITIAL_CAPACITY = 16


class _TimerEvent:
    """Completion-timer heap entry: one slot cheaper than a lambda closure.

    Satisfies the same minimal run-loop contract as
    :class:`~repro.simkit.events.CallbackEvent`.
    """

    __slots__ = ("_res", "_version")

    _exception: BaseException | None = None
    exception: BaseException | None = None
    _defused = False

    def __init__(self, res: "FluidResource", version: int):
        self._res = res
        self._version = version

    def _process(self) -> None:
        self._res._on_timer(self._version)


class FluidTask:
    """A unit of continuously progressing work on a :class:`FluidResource`.

    Attributes
    ----------
    work:
        Total work (engine-agnostic units; the machine layer uses
        *instructions*, the network layer uses *bytes*).
    remaining:
        Work still to do.
    meta:
        Arbitrary metadata the rate allocator may inspect (e.g. the phase
        profile and hardware-thread binding).
    done:
        Event that fires (with the task) on completion.
    rate:
        Current progress rate (work units per simulated second).
    active_time:
        Simulated time this task spent with a non-zero rate.
    """

    __slots__ = (
        "work",
        "_remaining",
        "meta",
        "done",
        "_rate",
        "_active_time",
        "start_time",
        "finish_time",
        "_res",
    )

    def __init__(self, sim: "Simulator", work: float, meta: dict | None = None):
        if work < 0:
            raise ValueError(f"negative work {work!r}")
        self.work = float(work)
        self._remaining = float(work)
        self.meta: dict = meta or {}
        self.done: Event = Event(sim, name="fluid-done")
        self._rate = 0.0
        self._active_time = 0.0
        self.start_time: float | None = None
        self.finish_time: float | None = None
        #: Owning resource while active (state then lives in its arrays).
        self._res: "FluidResource | None" = None

    # While a task is active its progress state lives in the owning
    # resource's arrays; the properties read through so diagnostics and
    # observers keep working.  Detached (finished/cancelled/never-started)
    # tasks fall back to the plain floats written back on detach.

    @property
    def remaining(self) -> float:
        res = self._res
        if res is None:
            return self._remaining
        return float(res._remaining[res._index_of(self)])

    @property
    def rate(self) -> float:
        res = self._res
        if res is None:
            return self._rate
        return float(res._rates[res._index_of(self)])

    @property
    def active_time(self) -> float:
        res = self._res
        if res is None:
            return self._active_time
        i = res._index_of(self)
        return (res._last_update - self.start_time) - float(res._zero_time[i])

    @property
    def progress(self) -> float:
        """Fraction of work completed in [0, 1]."""
        if self.work <= 0.0:
            return 1.0
        return 1.0 - self.remaining / self.work

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FluidTask work={self.work:.3g} remaining={self.remaining:.3g} rate={self.rate:.3g}>"


class RateAllocator(_t.Protocol):
    """Strategy assigning progress rates to the active tasks of a resource.

    ``allocate`` is the required interface.  Allocators may opt into the
    vectorized batch protocol by also providing::

        def prepare(self, task: FluidTask) -> object: ...
        def allocate_batch(self, statics: list) -> numpy.ndarray: ...

    ``prepare`` is called once per task at submit time and returns an opaque
    static record (everything the allocator needs that cannot change while
    the task runs); ``allocate_batch`` receives the records of the current
    active set, in order, and returns one rate per record.  The resource
    keeps the records compacted in lockstep with the active set, so the
    allocator never re-reads task metadata on the hot path.

    Allocators that additionally declare ``static_width: int`` promise that
    ``prepare`` returns a fixed-length tuple of ``static_width`` numbers; the
    resource then stores the records as rows of one 2-D float array and
    passes ``allocate_batch`` an ``(n, static_width)`` array view — no
    per-rebalance Python iteration over records at all.  Without
    ``static_width`` the records are kept in a plain list (opaque objects).
    """

    def allocate(self, tasks: _t.Sequence[FluidTask]) -> list[float]:
        """Return one non-negative rate per task (same order as ``tasks``)."""
        ...  # pragma: no cover


class EqualShareAllocator:
    """Classic processor sharing: ``capacity`` split equally, capped per task.

    Parameters
    ----------
    capacity:
        Total work-units per second the resource can sustain.
    per_task_cap:
        Optional ceiling for a single task (e.g. a single link cannot exceed
        its own bandwidth even when alone).
    """

    def __init__(self, capacity: float, per_task_cap: float | None = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if per_task_cap is not None and per_task_cap <= 0:
            raise ValueError(f"per_task_cap must be positive, got {per_task_cap}")
        self.capacity = float(capacity)
        self.per_task_cap = per_task_cap

    #: Batch-protocol static record width (no per-task statics needed).
    static_width = 0

    def prepare(self, task: FluidTask) -> tuple:
        return ()

    def allocate_batch(self, statics: _t.Sequence) -> np.ndarray:
        n = len(statics)
        if n == 0:
            return np.empty(0)
        share = self.capacity / n
        cap = self.per_task_cap
        if cap is not None and share >= cap - _ABS_EPS:
            share = cap
        return np.full(n, share)

    def allocate(self, tasks: _t.Sequence[FluidTask]) -> list[float]:
        return self.allocate_batch([()] * len(tasks)).tolist()


class FluidResource:
    """A shared facility executing fluid tasks under a rate allocator.

    Parameters
    ----------
    sim:
        Owning simulator.
    allocator:
        Rate strategy; consulted on every change of the active set.
    name:
        Label for diagnostics and tracing.
    observer:
        Optional callback ``observer(resource, now)`` invoked after every
        rebalance — used by the tracer to record rate/IPC changes.

    Counters (exported into run manifests as the ``engine`` section)
    ----------------------------------------------------------------
    ``n_rebalances``
        Allocator invocations actually performed.
    ``n_coalesced``
        Active-set changes absorbed into an already-pending same-timestamp
        rebalance (the burst savings of the coalescing engine).
    ``n_timer_skips``
        Rebalances that left the completion deadline unchanged and therefore
        re-used the armed timer instead of allocating a fresh one.
    """

    def __init__(
        self,
        sim: "Simulator",
        allocator: RateAllocator,
        name: str = "fluid",
        observer: _t.Callable[["FluidResource", float], None] | None = None,
    ):
        self.sim = sim
        self.allocator = allocator
        self.name = name
        self.observer = observer
        self._active: list[FluidTask] = []
        self._n = 0
        # One (5, capacity) matrix holds all per-task progress state; the
        # named attributes are row views, so element access stays readable
        # while compaction on task exit is a single two-dimensional memmove.
        # ``_zero_time`` is time spent at zero rate — active time is derived
        # as elapsed-minus-zero-time, so the common all-rates-positive case
        # never touches the row in :meth:`_advance`.
        self._state = np.zeros((5, _INITIAL_CAPACITY))
        (
            self._remaining,
            self._rates,
            self._work,
            self._zero_time,
            #: Static part of the completion threshold (see :meth:`_settle`).
            self._threshold,
        ) = self._state
        self._rates_have_zero = True
        self._last_update = sim.now
        self._last_settled = -math.inf
        self._timer_version = 0
        self._armed_deadline: float | None = None
        self._dirty = False
        prepare = getattr(allocator, "prepare", None)
        batch = getattr(allocator, "allocate_batch", None)
        self._prepare = prepare if (prepare is not None and batch is not None) else None
        self._batch = batch if self._prepare is not None else None
        self._static_width: int | None = (
            getattr(allocator, "static_width", None) if self._batch is not None else None
        )
        # Optional membership hooks: allocators that track incremental state
        # over the active set (e.g. per-core occupancy) receive every static
        # record on entry and exit.
        self._notify_attach = (
            getattr(allocator, "notify_attach", None) if self._batch is not None else None
        )
        self._notify_detach = (
            getattr(allocator, "notify_detach", None) if self._batch is not None else None
        )
        self._statics: list = []
        if self._static_width is not None:
            self._statics_arr = np.zeros((_INITIAL_CAPACITY, self._static_width))
        self.n_rebalances = 0
        self.n_coalesced = 0
        self.n_timer_skips = 0

    # -- public API -----------------------------------------------------------

    @property
    def active_tasks(self) -> tuple[FluidTask, ...]:
        """Snapshot of the currently executing tasks (rates up to date)."""
        if self._dirty:
            if self._last_update != self.sim.now:
                self._advance()
            self._flush()
        return tuple(self._active)

    def submit(self, work: float, meta: dict | None = None) -> FluidTask:
        """Start ``work`` units of fluid work; returns the task.

        Yield ``task.done`` from a process to wait for completion.  Zero-work
        tasks complete at the current time without entering the active set.
        """
        sim = self.sim
        now = sim._now
        task = FluidTask(sim, work, meta)
        task.start_time = now
        work = task.work
        if work <= _ABS_EPS:
            task.finish_time = now
            task.done.succeed(task)
            return task
        prepare = self._prepare
        if prepare is not None:
            # Resolve the allocator's static record first so metadata errors
            # surface at the submit call site, before any state changes.
            static = prepare(task)
        if self._last_update != now:
            self._advance()
        i = self._n
        if i == len(self._remaining):
            self._grow()
        self._remaining[i] = work
        self._rates[i] = 0.0
        self._work[i] = work
        self._zero_time[i] = 0.0
        self._threshold[i] = max(work * _REL_EPS, _ABS_EPS)
        self._active.append(task)
        if prepare is not None:
            width = self._static_width
            if width is not None:
                if width:
                    self._statics_arr[i] = static
            else:
                self._statics.append(static)
            notify = self._notify_attach
            if notify is not None:
                notify(static)
        task._res = self
        self._n = i + 1
        self._mark_dirty()
        return task

    def cancel(self, task: FluidTask) -> None:
        """Abort an active task; its ``done`` event is cancelled."""
        if task._res is not self:
            raise ValueError(f"{task!r} is not active on {self.name!r}")
        if self._last_update != self.sim.now:
            self._advance()
        i = self._active.index(task)
        self._detach(task, i)
        self._notify_gone(i)
        self._remove_indices([i])
        task.done.cancel()
        self._mark_dirty()

    def throughput(self) -> float:
        """Aggregate current rate over all active tasks."""
        if self._dirty:
            if self._last_update != self.sim.now:
                self._advance()
            self._flush()
        return float(self._rates[: self._n].sum())

    def stats(self) -> dict[str, int]:
        """Engine counters for manifests/telemetry (see class docstring)."""
        out = {
            "n_rebalances": self.n_rebalances,
            "n_coalesced": self.n_coalesced,
            "n_timer_skips": self.n_timer_skips,
        }
        cache_info = getattr(self.allocator, "cache_info", None)
        if cache_info is not None:
            out.update(cache_info())
        return out

    # -- engine internals -------------------------------------------------------

    def _index_of(self, task: FluidTask) -> int:
        return self._active.index(task)

    def _notify_gone(self, i: int) -> None:
        """Hand a departing task's static record to the allocator hook."""
        notify = self._notify_detach
        if notify is not None:
            if self._static_width is not None:
                notify(self._statics_arr[i])
            else:
                notify(self._statics[i])

    def _grow(self) -> None:
        cap = 2 * len(self._remaining)
        new = np.zeros((5, cap))
        new[:, : self._state.shape[1]] = self._state
        self._state = new
        (
            self._remaining,
            self._rates,
            self._work,
            self._zero_time,
            self._threshold,
        ) = new
        if self._static_width is not None:
            new_statics = np.zeros((cap, self._static_width))
            new_statics[: self._statics_arr.shape[0]] = self._statics_arr
            self._statics_arr = new_statics

    def _detach(self, task: FluidTask, i: int) -> None:
        """Write a task's array state back onto the object and release it."""
        task._remaining = float(self._remaining[i])
        task._rate = float(self._rates[i])
        task._active_time = (self._last_update - task.start_time) - float(
            self._zero_time[i]
        )
        task._res = None

    def _remove_indices(self, gone: _t.Sequence[int]) -> None:
        """Compact the arrays and the active/static lists, dropping ``gone``."""
        n = self._n
        m = n - len(gone)
        if m == 0:
            # Everything finished at once (a barrier): no compaction needed,
            # the live prefix is simply empty.
            self._active.clear()
            self._statics.clear()
            self._n = 0
            return
        if len(gone) == 1:
            # Single finisher (the steady-state case): one strided memmove
            # over the state matrix beats building a boolean mask.
            i = gone[0]
            self._state[:, i:m] = self._state[:, i + 1 : n]
            del self._active[i]
            if self._static_width is not None:
                self._statics_arr[i:m] = self._statics_arr[i + 1 : n]
            elif self._prepare is not None:
                del self._statics[i]
            self._n = m
            return
        keep = np.ones(n, dtype=bool)
        keep[list(gone)] = False
        self._state[:, :m] = self._state[:, :n][:, keep]
        gone_set = set(gone)
        self._active = [t for i, t in enumerate(self._active) if i not in gone_set]
        if self._static_width is not None:
            self._statics_arr[:m] = self._statics_arr[:n][keep]
        elif self._prepare is not None:
            self._statics = [
                s for i, s in enumerate(self._statics) if i not in gone_set
            ]
        self._n = m

    def _mark_dirty(self) -> None:
        """Request a rebalance at the end of the current timestep.

        Same-timestamp changes coalesce: the first change schedules one
        deferred flush, subsequent ones only bump the ``n_coalesced``
        counter.  Deferral is exact for the fluid model — between the change
        and the flush zero simulated time passes, so no progress is ever
        integrated under stale rates.
        """
        if self._dirty:
            self.n_coalesced += 1
            return
        self._dirty = True
        self.sim.defer(self._deferred_flush)

    def _deferred_flush(self) -> None:
        if not self._dirty:
            return  # a same-timestamp completion timer already flushed
        if self._last_update != self.sim._now:
            self._advance()
        self._flush()

    def _advance(self) -> None:
        """Integrate progress from the last change point to ``sim.now``."""
        now = self.sim._now
        dt = now - self._last_update
        if dt > 0.0:
            n = self._n
            if n:
                rates = self._rates[:n]
                self._remaining[:n] -= rates * dt
                if self._rates_have_zero:
                    self._zero_time[:n] += dt * (rates == 0.0)
        self._last_update = now

    def _settle(self) -> None:
        """Detach and complete every task whose residual work is exhausted.

        A task is done when its residual work is below numerical noise.  The
        rate*ulp term matters at non-dyadic clock values: integration over a
        dt that is off by one ulp of `now` leaves a residual of ~rate * ulp —
        without forgiving it, the resource would re-arm ever-shorter timers
        that no longer advance the clock (an infinite loop in finite time).
        """
        now = self.sim._now
        self._last_settled = now
        n = self._n
        if not n:
            return
        threshold = self._rates[:n] * (math.ulp(now) * 8.0)
        np.maximum(threshold, self._threshold[:n], out=threshold)
        gone = (self._remaining[:n] <= threshold).nonzero()[0]
        if gone.size == 0:
            return
        if gone.size == 1:
            # Single finisher — the steady-state case of a pipelined drain.
            i = int(gone[0])
            task = self._active[i]
            self._remaining[i] = 0.0
            self._detach(task, i)
            task.finish_time = now
            self._notify_gone(i)
            self._remove_indices((i,))
            task.done.succeed(task)
            return
        finished = [self._active[i] for i in gone]
        for i, task in zip(gone, finished):
            self._remaining[i] = 0.0
            self._detach(task, i)
            task.finish_time = now
            self._notify_gone(i)
        self._remove_indices(gone.tolist())
        for task in finished:
            task.done.succeed(task)

    def _flush(self) -> None:
        """Recompute rates for the active set and re-arm the completion timer."""
        self._dirty = False
        self.n_rebalances += 1
        now = self.sim._now
        deadline = self._armed_deadline
        if deadline is not None and now >= deadline and self._last_settled != now:
            # Tasks can only exhaust their work at or after the armed
            # completion deadline (rates are constant between flushes), so a
            # flush strictly before it skips the finished-task scan.
            self._settle()
        n = self._n
        if n:
            if self._batch is not None:
                if self._static_width is not None:
                    statics = self._statics_arr[:n]
                else:
                    statics = self._statics
                rates = self._batch(statics)
                if not isinstance(rates, np.ndarray):
                    rates = np.asarray(rates, dtype=float)
            else:
                rates = np.asarray(self.allocator.allocate(self._active), dtype=float)
            if rates.shape != (n,):
                raise RuntimeError(
                    f"allocator returned {rates.size} rates for {n} tasks"
                )
            rmin = rates.min()
            self._rates[:n] = rates
            if rmin > 0.0:
                self._rates_have_zero = False
                eta = float((self._remaining[:n] / rates).min())
            elif rmin < 0.0:
                raise RuntimeError(f"allocator produced a negative rate {float(rmin)!r}")
            else:
                self._rates_have_zero = True
                positive = rates > 0.0
                if positive.any():
                    eta = float((self._remaining[:n][positive] / rates[positive]).min())
                else:
                    eta = float("inf")
            self._arm_timer(eta)
        else:
            self._timer_version += 1  # disarm any outstanding timer
            self._armed_deadline = None

        if self.observer is not None:
            self.observer(self, now)

    def _arm_timer(self, eta: float) -> None:
        if eta == float("inf"):
            self._timer_version += 1
            self._armed_deadline = None
            return
        # Never arm a timer that cannot advance the float clock.
        now = self.sim._now
        eta = max(eta, math.ulp(now))
        deadline = now + eta
        if self._armed_deadline is not None and self._armed_deadline == deadline:
            # The earliest finisher did not move (e.g. a rebalance that left
            # rates unchanged): the already-armed timer stays valid, no fresh
            # Timeout allocation, no version churn.
            self.n_timer_skips += 1
            return
        self._timer_version += 1
        self._armed_deadline = deadline
        self.sim._schedule_event(_TimerEvent(self, self._timer_version), eta)

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # stale timer; rates changed since it was armed
        self._armed_deadline = None  # this timer is consumed
        if self._last_update != self.sim._now:
            self._advance()
        # Complete the finishers now (their callbacks run at NORMAL priority)
        # but *defer* the reallocation: completion callbacks routinely submit
        # successor work at this very timestamp, and the deferred LAZY flush
        # absorbs the finish and the resubmits into one allocator call — the
        # intermediate composition is never priced at all.
        self._settle()
        if self._n == 0 and not self._dirty:
            # Nothing left to price: disarm and notify observers now rather
            # than via a deferred event a caller's `run(until=...)` may never
            # drain.
            self._flush()
        else:
            self._mark_dirty()
