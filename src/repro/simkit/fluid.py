"""Fluid (processor-sharing) resources with state-dependent rates.

A :class:`FluidResource` executes *fluid tasks*: each task carries an amount
of abstract ``work`` and progresses continuously at a rate chosen by a
:class:`RateAllocator`.  Whenever the set of active tasks changes (a task is
submitted or completes), the resource

1. advances every active task's progress at its previous rate,
2. asks the allocator for fresh rates given the *new* active set, and
3. re-arms a single completion timer for the earliest finisher.

This is the standard fluid-flow approximation used by network/host simulators
(SimGrid-style): it is what allows the KNL model to make a compute phase's
effective IPC depend on the concurrently executing phases — the mechanism
behind the paper's resource-contention analysis (Tables I/II, Fig. 7).

The engine is exact for piecewise-constant rates: between change points every
task progresses linearly, and change points are processed in order.
"""

from __future__ import annotations

import math
import typing as _t

from repro.simkit.events import Event, Timeout

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.simulator import Simulator

__all__ = ["FluidTask", "RateAllocator", "EqualShareAllocator", "FluidResource"]

#: Relative tolerance used to decide a task's work is exhausted.
_REL_EPS = 1e-12
#: Absolute floor so zero-work tasks terminate immediately.
_ABS_EPS = 1e-15


class FluidTask:
    """A unit of continuously progressing work on a :class:`FluidResource`.

    Attributes
    ----------
    work:
        Total work (engine-agnostic units; the machine layer uses
        *instructions*, the network layer uses *bytes*).
    remaining:
        Work still to do.
    meta:
        Arbitrary metadata the rate allocator may inspect (e.g. the phase
        profile and hardware-thread binding).
    done:
        Event that fires (with the task) on completion.
    rate:
        Current progress rate (work units per simulated second).
    active_time:
        Simulated time this task spent with a non-zero rate.
    """

    __slots__ = ("work", "remaining", "meta", "done", "rate", "active_time", "start_time", "finish_time")

    def __init__(self, sim: "Simulator", work: float, meta: dict | None = None):
        if work < 0:
            raise ValueError(f"negative work {work!r}")
        self.work = float(work)
        self.remaining = float(work)
        self.meta: dict = meta or {}
        self.done: Event = Event(sim, name="fluid-done")
        self.rate = 0.0
        self.active_time = 0.0
        self.start_time: float | None = None
        self.finish_time: float | None = None

    @property
    def progress(self) -> float:
        """Fraction of work completed in [0, 1]."""
        if self.work <= 0.0:
            return 1.0
        return 1.0 - self.remaining / self.work

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FluidTask work={self.work:.3g} remaining={self.remaining:.3g} rate={self.rate:.3g}>"


class RateAllocator(_t.Protocol):
    """Strategy assigning progress rates to the active tasks of a resource."""

    def allocate(self, tasks: _t.Sequence[FluidTask]) -> list[float]:
        """Return one non-negative rate per task (same order as ``tasks``)."""
        ...  # pragma: no cover


class EqualShareAllocator:
    """Classic processor sharing: ``capacity`` split equally, capped per task.

    Parameters
    ----------
    capacity:
        Total work-units per second the resource can sustain.
    per_task_cap:
        Optional ceiling for a single task (e.g. a single link cannot exceed
        its own bandwidth even when alone).
    """

    def __init__(self, capacity: float, per_task_cap: float | None = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if per_task_cap is not None and per_task_cap <= 0:
            raise ValueError(f"per_task_cap must be positive, got {per_task_cap}")
        self.capacity = float(capacity)
        self.per_task_cap = per_task_cap

    def allocate(self, tasks: _t.Sequence[FluidTask]) -> list[float]:
        n = len(tasks)
        if n == 0:
            return []
        share = self.capacity / n
        if self.per_task_cap is not None:
            # Progressive filling: capped tasks return their slack to the rest.
            rates = [0.0] * n
            unsat = list(range(n))
            budget = self.capacity
            while unsat:
                fair = budget / len(unsat)
                if fair < self.per_task_cap - _ABS_EPS:
                    for i in unsat:
                        rates[i] = fair
                    break
                for i in unsat:
                    rates[i] = self.per_task_cap
                budget -= self.per_task_cap * len(unsat)
                # All remaining tasks saturated at the cap; nothing left to do.
                break
            return rates
        return [share] * n


class FluidResource:
    """A shared facility executing fluid tasks under a rate allocator.

    Parameters
    ----------
    sim:
        Owning simulator.
    allocator:
        Rate strategy; consulted on every change of the active set.
    name:
        Label for diagnostics and tracing.
    observer:
        Optional callback ``observer(resource, now)`` invoked after every
        rebalance — used by the tracer to record rate/IPC changes.
    """

    def __init__(
        self,
        sim: "Simulator",
        allocator: RateAllocator,
        name: str = "fluid",
        observer: _t.Callable[["FluidResource", float], None] | None = None,
    ):
        self.sim = sim
        self.allocator = allocator
        self.name = name
        self.observer = observer
        self._active: list[FluidTask] = []
        self._last_update = sim.now
        self._timer_version = 0

    # -- public API -----------------------------------------------------------

    @property
    def active_tasks(self) -> tuple[FluidTask, ...]:
        """Snapshot of the currently executing tasks."""
        return tuple(self._active)

    def submit(self, work: float, meta: dict | None = None) -> FluidTask:
        """Start ``work`` units of fluid work; returns the task.

        Yield ``task.done`` from a process to wait for completion.  Zero-work
        tasks complete at the current time without entering the active set.
        """
        task = FluidTask(self.sim, work, meta)
        task.start_time = self.sim.now
        if task.work <= _ABS_EPS:
            task.finish_time = self.sim.now
            task.done.succeed(task)
            return task
        self._advance()
        self._active.append(task)
        self._rebalance()
        return task

    def cancel(self, task: FluidTask) -> None:
        """Abort an active task; its ``done`` event is cancelled."""
        if task not in self._active:
            raise ValueError(f"{task!r} is not active on {self.name!r}")
        self._advance()
        self._active.remove(task)
        task.done.cancel()
        self._rebalance()

    def throughput(self) -> float:
        """Aggregate current rate over all active tasks."""
        return sum(t.rate for t in self._active)

    # -- engine internals -------------------------------------------------------

    def _advance(self) -> None:
        """Integrate progress from the last change point to ``sim.now``."""
        now = self.sim.now
        dt = now - self._last_update
        if dt > 0.0:
            for task in self._active:
                if task.rate > 0.0:
                    task.remaining -= task.rate * dt
                    task.active_time += dt
        self._last_update = now

    def _rebalance(self) -> None:
        """Recompute rates for the active set and re-arm the completion timer."""
        # A task is done when its residual work is below numerical noise.  The
        # third term matters at non-dyadic clock values: integration over a dt
        # that is off by one ulp of `now` leaves a residual of ~rate * ulp —
        # without forgiving it, the resource would re-arm ever-shorter timers
        # that no longer advance the clock (an infinite loop in finite time).
        now = self.sim.now
        ulp8 = math.ulp(now) * 8.0
        active = self._active
        finished: list[FluidTask] | None = None
        for t in active:
            # r <= max(a, b, c) unrolled to short-circuit comparisons — this
            # scan runs once per active task per change point.
            r = t.remaining
            if r <= _ABS_EPS or r <= _REL_EPS * t.work or r <= t.rate * ulp8:
                if finished is None:
                    finished = [t]
                else:
                    finished.append(t)
        if finished is not None:
            # One filtering pass instead of per-task .remove() — the common
            # submit path (nothing finished) never allocates here at all.
            gone = set(finished)
            self._active = active = [t for t in active if t not in gone]
            for task in finished:
                task.remaining = 0.0
                task.finish_time = now
                task.done.succeed(task)

        if active:
            rates = self.allocator.allocate(active)
            if len(rates) != len(active):
                raise RuntimeError(
                    f"allocator returned {len(rates)} rates for {len(active)} tasks"
                )
            eta = float("inf")
            for task, rate in zip(active, rates):
                if rate < 0:
                    raise RuntimeError(f"allocator produced a negative rate {rate!r}")
                task.rate = rate
                if rate > 0.0:
                    remaining_time = task.remaining / rate
                    if remaining_time < eta:
                        eta = remaining_time
            self._arm_timer(eta)
        else:
            self._timer_version += 1  # disarm any outstanding timer

        if self.observer is not None:
            self.observer(self, now)

    def _arm_timer(self, eta: float) -> None:
        self._timer_version += 1
        if eta == float("inf"):
            return
        version = self._timer_version
        # Never arm a timer that cannot advance the float clock.
        eta = max(eta, math.ulp(self.sim.now))
        timer = Timeout(self.sim, eta, name=f"{self.name}-completion")
        timer.add_callback(lambda ev: self._on_timer(version))

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # stale timer; rates changed since it was armed
        self._advance()
        self._rebalance()
