"""The task runtime: submit / taskloop / taskwait over a worker pool.

:class:`TaskRuntime` is the per-rank Nanos++ analogue.  Worker processes are
bound one-to-one to the rank's hardware threads; they pull ready tasks from
the policy queue and drive the task body generators (which may yield compute,
MPI, or timeout events).  Tasks may create nested tasks (the paper's first
optimization nests taskloops inside step tasks).

Lifecycle::

    rt = TaskRuntime(rank, n_workers=8)
    rt.start()
    for ...:
        rt.submit("fft", body, inouts=[("psis", i)])
    yield rt.taskwait()       # all tasks created so far have finished
    yield rt.shutdown()       # workers drain and exit

A small per-task dispatch overhead (default 3 us, the measured order of
Nanos++ task management on KNL-class cores) is charged on the executing
worker; it is what makes excessively fine task grains unprofitable in the
grainsize ablation, as in reality.
"""

from __future__ import annotations

import math
import typing as _t
from collections import deque

from repro import telemetry as _telemetry
from repro.faults.injector import TaskFailedError
from repro.ompss.deps import AccessMode
from repro.ompss.graph import TaskGraph
from repro.ompss.scheduler import make_queue
from repro.ompss.task import BodyFactory, Task, TaskRecord, TaskState
from repro.simkit.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.world import RankContext

__all__ = ["TaskRuntime", "Worker"]

_WAKE = "wake"


def _task_kind(name: str) -> str:
    """Low-cardinality metric label from a task name (``fft_z[0:10]`` -> ``fft_z``)."""
    return name.split("[", 1)[0].rstrip("0123456789")


class Worker:
    """One executing thread of the pool (bound to a hardware thread)."""

    def __init__(self, runtime: "TaskRuntime", index: int):
        self.runtime = runtime
        self.index = index

    @property
    def thread_index(self) -> int:
        """The rank-local hardware-thread index this worker runs on."""
        return self.index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Worker {self.index} of rank {self.runtime.rank.rank}>"


class TaskRuntime:
    """Dependency-driven task execution on one rank's threads.

    Parameters
    ----------
    rank:
        The owning :class:`~repro.mpisim.world.RankContext`.
    n_workers:
        Pool size; defaults to the rank's hardware-thread count.
    policy:
        Ready-queue policy (``"fifo"`` | ``"lifo"`` | ``"priority"``).
    task_overhead:
        Dispatch overhead charged per task on its worker (seconds).
    """

    def __init__(
        self,
        rank: "RankContext",
        n_workers: int | None = None,
        policy: str = "fifo",
        task_overhead: float = 3.0e-6,
        mpi_task_switching: bool = False,
    ):
        if task_overhead < 0:
            raise ValueError(f"task_overhead must be >= 0, got {task_overhead}")
        self.rank = rank
        self.n_workers = n_workers if n_workers is not None else rank.n_threads
        if not 1 <= self.n_workers <= rank.n_threads:
            raise ValueError(
                f"n_workers must be in [1, {rank.n_threads}], got {self.n_workers}"
            )
        self.policy = policy
        self.task_overhead = task_overhead
        #: The world's fault injector (``None`` on a healthy run): completed
        #: tasks may be discarded and re-executed, bounded by the scenario's
        #: ``task_max_retries``.
        self.faults = getattr(getattr(rank, "world", None), "faults", None)
        #: Suspend tasks that block in MPI and run other tasks meanwhile
        #: (the hybrid MPI/SMPSs technique of the paper's ref. [11]).  Also
        #: the deadlock cure when every worker would otherwise sit inside a
        #: collective that cannot complete until *this* rank joins another.
        self.mpi_task_switching = mpi_task_switching
        self.queue = make_queue(policy, n_workers=self.n_workers)
        self.graph = TaskGraph(on_ready=self._on_ready, on_edge=self._on_edge)
        self._next_tid = 0
        self._idle: dict[int, Event] = {}
        self._started = False
        self._stopping = False
        self._taskwaits: list[Event] = []
        self._observers: list[_t.Callable[[TaskRecord], None]] = []
        self._worker_procs: list = []
        self._resume_qs: dict[int, deque] = {}

    # -- observation --------------------------------------------------------

    def add_observer(self, observer: _t.Callable[[TaskRecord], None]) -> None:
        """Register a callback receiving each finished task's record."""
        self._observers.append(observer)

    # -- pool control ----------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker processes (idempotent)."""
        if self._started:
            return
        self._started = True
        sim = self.rank.sim
        for w in range(self.n_workers):
            worker = Worker(self, w)
            self._resume_qs[w] = deque()
            proc = sim.process(
                self._worker_loop(worker), name=f"rank{self.rank.rank}-worker{w}"
            )
            self._worker_procs.append(proc)

    def shutdown(self) -> Event:
        """Stop accepting tasks; event fires when all workers exited."""
        self._stopping = True
        self._wake_all()
        return self.rank.sim.all_of(self._worker_procs)

    # -- task creation -------------------------------------------------------------

    def submit(
        self,
        name: str,
        body: BodyFactory,
        ins: _t.Sequence[_t.Hashable] = (),
        outs: _t.Sequence[_t.Hashable] = (),
        inouts: _t.Sequence[_t.Hashable] = (),
        priority: int = 0,
    ) -> Task:
        """Create a task (the ``$omp task`` pragma).

        ``body(worker)`` must return a generator; its return value becomes
        the value of ``task.done``.
        """
        if self._stopping:
            raise RuntimeError("submit() after shutdown()")
        if not self._started:
            raise RuntimeError("start() the runtime before submitting tasks")
        accesses = (
            [(r, AccessMode.IN) for r in ins]
            + [(r, AccessMode.OUT) for r in outs]
            + [(r, AccessMode.INOUT) for r in inouts]
        )
        task = Task(
            tid=self._next_tid,
            name=name,
            body=body,
            accesses=accesses,
            done=Event(self.rank.sim, name=f"task:{name}"),
            priority=priority,
            created_at=self.rank.sim.now,
        )
        self._next_tid += 1
        tel = _telemetry.current()
        if tel.enabled:
            tel.metrics.count("ompss.tasks_submitted", 1.0, name=_task_kind(name))
        self.graph.add(task)
        return task

    def taskloop(
        self,
        name: str,
        n_items: int,
        make_body: _t.Callable[[int, int], BodyFactory],
        grainsize: int,
        ins: _t.Sequence[_t.Hashable] = (),
        outs: _t.Sequence[_t.Hashable] = (),
        inouts: _t.Sequence[_t.Hashable] = (),
    ) -> list[Task]:
        """The ``$omp taskloop`` construct: one task per grainsize chunk.

        ``make_body(start, stop)`` builds the body for the half-open chunk
        ``[start, stop)``.
        """
        if n_items < 0:
            raise ValueError(f"n_items must be >= 0, got {n_items}")
        if grainsize < 1:
            raise ValueError(f"grainsize must be >= 1, got {grainsize}")
        n_chunks = max(1, math.ceil(n_items / grainsize)) if n_items else 0
        tasks = []
        for c in range(n_chunks):
            start = c * grainsize
            stop = min(n_items, start + grainsize)
            tasks.append(
                self.submit(
                    f"{name}[{start}:{stop}]",
                    make_body(start, stop),
                    ins=ins,
                    outs=outs,
                    inouts=inouts,
                )
            )
        return tasks

    def taskwait(self) -> Event:
        """Event firing when every task created so far has finished."""
        ev = Event(self.rank.sim, name=f"taskwait:rank{self.rank.rank}")
        if self.graph.n_outstanding == 0:
            ev.succeed(None)
        else:
            self._taskwaits.append(ev)
        return ev

    # -- scheduler internals -----------------------------------------------------

    def _on_ready(self, task: Task) -> None:
        self.queue.push(task)
        self._sample_queue_depth()
        self._wake_one()

    def _on_edge(self, pred: Task, succ: Task) -> None:
        tel = _telemetry.current()
        if tel.enabled:
            tel.task_edges.append((self.rank.rank, pred.tid, succ.tid))

    def _sample_queue_depth(self) -> None:
        tel = _telemetry.current()
        if tel.enabled:
            depth = len(self.queue)
            rank = self.rank.rank
            tel.metrics.set_gauge("ompss.task_queue_depth", depth, rank=rank)
            tel.metrics.max_gauge("ompss.task_queue_depth_max", depth, rank=rank)
            tel.queue_samples.append((self.rank.sim.now, rank, depth))

    def _wake_one(self) -> None:
        if self._idle:
            _w, ev = self._idle.popitem()
            ev.succeed(_WAKE)

    def _wake_worker(self, worker_index: int) -> None:
        ev = self._idle.pop(worker_index, None)
        if ev is not None:
            ev.succeed(_WAKE)
        else:
            self._wake_one()

    def _wake_all(self) -> None:
        while self._idle:
            _w, ev = self._idle.popitem()
            ev.succeed(_WAKE)

    def _worker_loop(self, worker: Worker) -> _t.Generator:
        sim = self.rank.sim
        resume_q = self._resume_qs[worker.index]
        while True:
            if resume_q:
                task, gen, mpi_event = resume_q.popleft()
                yield from self._drive(worker, task, gen, resume_from=mpi_event)
                continue
            task = self.queue.pop(worker.index)
            if task is not None:
                self._sample_queue_depth()
            if task is None:
                if (
                    self._stopping
                    and self.graph.n_outstanding == 0
                    and not resume_q
                ):
                    return
                ev = Event(sim, name=f"idle:rank{self.rank.rank}-w{worker.index}")
                self._idle[worker.index] = ev
                yield ev
                continue  # re-check resume queue, ready queue, exit condition

            task.state = TaskState.RUNNING
            task.worker_index = worker.index
            task.started_at = sim.now
            if self.task_overhead > 0:
                yield sim.timeout(self.task_overhead)
            yield from self._drive(worker, task, task.body(worker), resume_from=None)

    def _drive(
        self,
        worker: Worker,
        task: Task,
        gen: _t.Generator,
        resume_from: Event | None,
    ) -> _t.Generator:
        """Advance a task body until it completes or parks on an MPI event.

        With :attr:`mpi_task_switching` on, a body that yields a blocking
        MPI event is *suspended* and its worker freed — the Marjanović
        hybrid MPI/task technique the paper cites as ref. [11]; the
        continuation re-runs on the same worker (its compute calls are
        bound to that hardware thread) once the communication completes.
        """
        sim = self.rank.sim
        throw: BaseException | None = None
        to_send: object = None
        if resume_from is not None:
            if resume_from.exception is not None:
                resume_from.defuse()
                throw = resume_from.exception
            else:
                to_send = resume_from.value
        while True:
            try:
                event = gen.send(to_send) if throw is None else gen.throw(throw)
            except StopIteration as stop:
                self._complete_task(task, stop.value)
                return
            throw = None
            is_mpi = (
                isinstance(event, Event)
                and event.name is not None
                and event.name.startswith("mpi:")
            )
            if is_mpi:
                task.did_mpi = True
            if self.mpi_task_switching and is_mpi:
                event.add_callback(
                    lambda ev, t=task, g=gen, w=worker.index: self._park_resume(w, t, g, ev)
                )
                self._count_switch()
                return  # worker freed; the continuation is queued on completion
            try:
                to_send = yield event
            except BaseException as exc:  # forward inline-event failures
                throw = exc

    def _park_resume(self, worker_index: int, task: Task, gen: _t.Generator, event: Event) -> None:
        self._resume_qs[worker_index].append((task, gen, event))
        self._wake_worker(worker_index)

    def _count_switch(self) -> None:
        tel = _telemetry.current()
        if tel.enabled:
            tel.metrics.count("ompss.task_switches")

    def _complete_task(self, task: Task, result: object) -> None:
        faults = self.faults
        if (
            faults is not None
            and faults.scenario.fails_tasks
            and not task.did_mpi  # comm tasks can't replay; see Task.did_mpi
            and faults.task_should_fail(self.rank.rank, task.name)
        ):
            self._discard_execution(task)
            return
        task.finished_at = self.rank.sim.now
        self.graph.complete(task)
        record = task.record()
        for obs in self._observers:
            obs(record)
        tel = _telemetry.current()
        if tel.enabled:
            kind = _task_kind(task.name)
            tel.metrics.count("ompss.tasks_completed", 1.0, name=kind)
            tel.metrics.observe("ompss.task_seconds", record.duration, name=kind)
        if faults is not None and task.retries > 0:
            faults.record(
                "task_recovered",
                rank=self.rank.rank,
                task=task.name,
                retries=task.retries,
            )
        task.done.succeed(result)
        self._after_completion()

    def _discard_execution(self, task: Task) -> None:
        """Fault injection rejected the execution: re-enqueue or abort.

        Re-enqueueing is dependency-safe: the task never reached
        ``graph.complete``, so successors stay blocked and taskwaits keep
        counting it as outstanding; the body factory builds a fresh
        generator for the re-execution.
        """
        faults = self.faults
        assert faults is not None
        task.retries += 1
        if task.retries > faults.scenario.task_max_retries:
            faults.record(
                "task_abort",
                rank=self.rank.rank,
                task=task.name,
                executions=task.retries,
            )
            # The undefused failure surfaces through the simulator — the
            # run ends with a structured error, never a hang.
            task.done.fail(
                TaskFailedError(
                    f"task {task.name!r} on rank {self.rank.rank} failed "
                    f"{task.retries} times (task_max_retries="
                    f"{faults.scenario.task_max_retries})"
                )
            )
            return
        faults.record(
            "task_reexec", rank=self.rank.rank, task=task.name, retry=task.retries
        )
        tel = _telemetry.current()
        if tel.enabled:
            tel.metrics.count("ompss.task_reexecutions", 1.0, name=_task_kind(task.name))
        task.state = TaskState.READY
        task.started_at = None
        task.worker_index = None
        self.queue.push(task)
        self._sample_queue_depth()

    def _after_completion(self) -> None:
        if self.graph.n_outstanding == 0:
            waiters, self._taskwaits = self._taskwaits, []
            for ev in waiters:
                ev.succeed(None)
            if self._stopping:
                self._wake_all()
