"""Task objects and lifecycle records."""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

from repro.ompss.deps import AccessMode

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.events import Event

__all__ = ["Task", "TaskState", "TaskRecord", "BodyFactory"]


class TaskState(enum.Enum):
    """Lifecycle of a task."""

    CREATED = "created"  # waiting on predecessors
    READY = "ready"  # in the scheduler's queue
    RUNNING = "running"  # executing on a worker
    FINISHED = "finished"


#: A task body: called with the executing worker, returns a generator that
#: may yield simkit events (compute, MPI, timeouts).
BodyFactory = _t.Callable[["_t.Any"], _t.Generator]


class Task:
    """One unit of work in the dependency graph.

    Attributes
    ----------
    tid:
        Runtime-unique id (creation order).
    name:
        Label for traces.
    body:
        The :data:`BodyFactory` executed by a worker.
    accesses:
        ``(region, mode)`` pairs from the in/out/inout clauses.
    priority:
        Larger runs earlier under the priority queue policy.
    done:
        Event fired (with the body's return value) on completion.
    """

    __slots__ = (
        "tid",
        "name",
        "body",
        "accesses",
        "priority",
        "state",
        "done",
        "n_pending",
        "successors",
        "created_at",
        "started_at",
        "finished_at",
        "worker_index",
        "retries",
        "did_mpi",
    )

    def __init__(
        self,
        tid: int,
        name: str,
        body: BodyFactory,
        accesses: _t.Sequence[tuple[_t.Hashable, AccessMode]],
        done: "Event",
        priority: int = 0,
        created_at: float = 0.0,
    ):
        self.tid = tid
        self.name = name
        self.body = body
        self.accesses = list(accesses)
        self.priority = priority
        self.state = TaskState.CREATED
        self.done = done
        self.n_pending = 0
        self.successors: list["Task"] = []
        self.created_at = created_at
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.worker_index: int | None = None
        #: Completed executions discarded by fault injection; the body
        #: factory makes re-execution safe (a fresh generator per run).
        self.retries = 0
        #: Whether an execution yielded an MPI event.  Such a task is never
        #: discarded by fault injection: its peers will not replay the
        #: matched communication, so re-execution would deadlock — recovery
        #: for communication faults lives in the mpisim retry layer and the
        #: driver's checkpoint resume instead.
        self.did_mpi = False

    @property
    def is_finished(self) -> bool:
        """Whether the task has completed execution."""
        return self.state is TaskState.FINISHED

    def record(self) -> "TaskRecord":
        """Immutable lifecycle snapshot for observers/tracing."""
        return TaskRecord(
            tid=self.tid,
            name=self.name,
            worker_index=self.worker_index,
            created_at=self.created_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            retries=self.retries,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task #{self.tid} {self.name!r} {self.state.value}>"


@dataclasses.dataclass(frozen=True)
class TaskRecord:
    """Completed-task data as reported to observers."""

    tid: int
    name: str
    worker_index: int | None
    created_at: float
    started_at: float | None
    finished_at: float | None
    #: Discarded executions before this (successful) one (fault injection).
    retries: int = 0

    @property
    def duration(self) -> float:
        """Execution span (0 if never ran)."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at
