"""The dynamic task-dependency graph.

Built incrementally as tasks are created (OmpSs evaluates clauses "at runtime
whenever a task is created"); a task with no unfinished predecessors is
handed to the ready callback immediately, otherwise it waits until its last
predecessor finishes.  The graph also keeps simple aggregate statistics used
by the tests and the analysis tooling (edges, widths).
"""

from __future__ import annotations

import typing as _t

from repro.ompss.deps import DependencyTracker
from repro.ompss.task import Task, TaskState

__all__ = ["TaskGraph"]


class TaskGraph:
    """Dependency bookkeeping: registration, completion, ready propagation.

    Parameters
    ----------
    on_ready:
        Callback invoked with each task the moment it becomes ready.
    on_edge:
        Optional callback invoked with ``(predecessor, successor)`` for
        every dependency edge as it is discovered — the analysis layer's
        export hook (the edges are not recoverable from task records alone
        once the run finishes).
    """

    def __init__(
        self,
        on_ready: _t.Callable[[Task], None],
        on_edge: _t.Callable[[Task, Task], None] | None = None,
    ):
        self._tracker = DependencyTracker()
        self._on_ready = on_ready
        self._on_edge = on_edge
        self.n_created = 0
        self.n_finished = 0
        self.n_edges = 0

    def add(self, task: Task) -> None:
        """Register a new task; may immediately mark it ready."""
        predecessors = self._tracker.register(task)
        self.n_created += 1
        task.n_pending = len(predecessors)
        self.n_edges += len(predecessors)
        for pred in predecessors:
            pred.successors.append(task)
            if self._on_edge is not None:
                self._on_edge(pred, task)
        if task.n_pending == 0:
            self._make_ready(task)

    def complete(self, task: Task) -> None:
        """Mark a task finished and release its successors."""
        if task.state is not TaskState.RUNNING:
            raise RuntimeError(f"{task!r} completed while not running")
        task.state = TaskState.FINISHED
        self.n_finished += 1
        for succ in task.successors:
            succ.n_pending -= 1
            if succ.n_pending == 0 and succ.state is TaskState.CREATED:
                self._make_ready(succ)

    def _make_ready(self, task: Task) -> None:
        task.state = TaskState.READY
        self._on_ready(task)

    @property
    def n_outstanding(self) -> int:
        """Tasks created but not yet finished."""
        return self.n_created - self.n_finished
