"""Ready-queue policies.

Nanos++ ships several schedulers; the behaviours that matter for this
reproduction are the order in which ready tasks are dispatched:

* ``fifo`` (breadth-first, the Nanos++ default) — creation order.  This is
  what keeps concurrent per-FFT tasks on different ranks working on
  *overlapping* band windows, so their keyed Alltoalls pair up promptly.
* ``lifo`` (depth-first) — newest first; favours cache locality, included
  for the scheduler-policy ablation.
* ``priority`` — explicit task priorities, creation order within a class.

All policies are deterministic; there is no work stealing because workers
share a single per-rank queue (Nanos++'s central-queue configuration).
"""

from __future__ import annotations

import heapq
import typing as _t
from collections import deque

from repro import telemetry as _telemetry
from repro.ompss.task import Task

__all__ = [
    "FifoQueue",
    "LifoQueue",
    "PriorityQueue",
    "LocalityQueue",
    "WorkStealingQueue",
    "make_queue",
    "ReadyQueue",
]


class ReadyQueue(_t.Protocol):
    """Interface of a ready queue."""

    def push(self, task: Task) -> None:
        """Add a ready task."""
        ...  # pragma: no cover

    def pop(self, worker_index: int | None = None) -> Task | None:
        """Remove and return the next task for this worker, or ``None``."""
        ...  # pragma: no cover

    def __len__(self) -> int: ...  # pragma: no cover


class FifoQueue:
    """Dispatch in creation order."""

    def __init__(self) -> None:
        self._q: deque[Task] = deque()

    def push(self, task: Task) -> None:
        self._q.append(task)

    def pop(self, worker_index: int | None = None) -> Task | None:
        return self._q.popleft() if self._q else None

    def __len__(self) -> int:
        return len(self._q)


class LifoQueue:
    """Dispatch newest-first (depth-first)."""

    def __init__(self) -> None:
        self._q: list[Task] = []

    def push(self, task: Task) -> None:
        self._q.append(task)

    def pop(self, worker_index: int | None = None) -> Task | None:
        return self._q.pop() if self._q else None

    def __len__(self) -> int:
        return len(self._q)


class PriorityQueue:
    """Dispatch by descending priority, then creation order."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Task]] = []

    def push(self, task: Task) -> None:
        heapq.heappush(self._heap, (-task.priority, task.tid, task))

    def pop(self, worker_index: int | None = None) -> Task | None:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class LocalityQueue:
    """Affinity dispatch (Nanos++ "affinity" scheduler).

    Each worker remembers the dependency regions of its recently executed
    tasks; on pop, the oldest queued task sharing a region with the worker's
    recent set is preferred (the data is presumed warm in its cache), with
    FIFO as the fallback.  The scan window is bounded so dispatch stays
    cheap even with long queues.
    """

    SCAN_WINDOW = 32
    MEMORY = 4  # recent tasks remembered per worker

    def __init__(self) -> None:
        self._q: deque[Task] = deque()
        self._recent: dict[int, deque] = {}

    def push(self, task: Task) -> None:
        self._q.append(task)

    def pop(self, worker_index: int | None = None) -> Task | None:
        if not self._q:
            return None
        if worker_index is None:
            return self._q.popleft()
        recent = self._recent.setdefault(worker_index, deque(maxlen=self.MEMORY))
        warm = {region for regions in recent for region in regions}
        chosen = None
        for i, task in enumerate(self._q):
            if i >= self.SCAN_WINDOW:
                break
            if any(region in warm for region, _mode in task.accesses):
                chosen = task
                break
        if chosen is None:
            chosen = self._q.popleft()
        else:
            self._q.remove(chosen)
        recent.append(tuple(region for region, _mode in chosen.accesses))
        return chosen

    def __len__(self) -> int:
        return len(self._q)


class WorkStealingQueue:
    """Per-worker deques with stealing (Nanos++'s distributed scheduler).

    Ready tasks are dealt round-robin onto per-worker deques; a worker pops
    its own deque LIFO (depth-first, cache friendly) and, when empty, steals
    FIFO from the victim with the most queued work (breadth-first steals
    take the oldest — likely largest — subtree, the classic Cilk rule).
    """

    def __init__(self, n_workers: int = 1):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self._deques: list[deque[Task]] = [deque() for _ in range(n_workers)]
        self._next = 0

    def push(self, task: Task) -> None:
        self._deques[self._next].append(task)
        self._next = (self._next + 1) % self.n_workers

    def pop(self, worker_index: int | None = None) -> Task | None:
        if worker_index is None or not 0 <= worker_index < self.n_workers:
            worker_index = 0
        own = self._deques[worker_index]
        if own:
            return own.pop()  # LIFO on the own deque
        victim = max(
            (d for d in self._deques if d), key=len, default=None
        )
        if victim is None:
            return None
        _telemetry.current().metrics.count("ompss.steals")
        return victim.popleft()  # FIFO steal

    def __len__(self) -> int:
        return sum(len(d) for d in self._deques)


_POLICIES: dict[str, type] = {
    "fifo": FifoQueue,
    "lifo": LifoQueue,
    "priority": PriorityQueue,
    "locality": LocalityQueue,
    "wsteal": WorkStealingQueue,
}


def make_queue(policy: str, n_workers: int = 1) -> ReadyQueue:
    """Instantiate a ready queue by policy name."""
    try:
        cls = _POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown scheduler policy {policy!r}; choose from {sorted(_POLICIES)}"
        ) from None
    if cls is WorkStealingQueue:
        return cls(n_workers)
    return cls()
