"""OmpSs-style task runtime (the Nanos++ substitute).

The paper's optimizations annotate the FFTXlib loop with OmpSs ``task``
constructs whose ``in``/``out``/``inout`` clauses build a *dynamic task
dependency graph*; the Nanos++ runtime then schedules ready tasks onto
threads with no user-defined order.  This package reproduces those semantics
on the simulated machine:

* :mod:`~repro.ompss.deps` — dependency regions and the RAW/WAR/WAW rules;
* :mod:`~repro.ompss.task` — task objects and lifecycle records;
* :mod:`~repro.ompss.graph` — the dynamic dependency graph (successor
  tracking, ready propagation);
* :mod:`~repro.ompss.scheduler` — ready-queue policies (FIFO / LIFO /
  priority) feeding the worker threads;
* :mod:`~repro.ompss.runtime` — :class:`TaskRuntime`: ``submit`` (the task
  pragma), ``taskloop`` (with grainsize), ``taskwait``, and the worker pool
  bound to a rank's hardware threads.

Task bodies are generator factories ``body(worker) -> generator`` so they
can issue simulated compute and MPI calls from whichever hardware thread the
scheduler placed them on — exactly how the per-FFT tasks of the paper's
second optimization run their Alltoalls from inside tasks.
"""

from repro.ompss.deps import AccessMode, DependencyTracker
from repro.ompss.task import Task, TaskRecord, TaskState
from repro.ompss.graph import TaskGraph
from repro.ompss.scheduler import (
    FifoQueue,
    LifoQueue,
    LocalityQueue,
    PriorityQueue,
    WorkStealingQueue,
    make_queue,
)
from repro.ompss.runtime import TaskRuntime

__all__ = [
    "AccessMode",
    "DependencyTracker",
    "Task",
    "TaskState",
    "TaskRecord",
    "TaskGraph",
    "FifoQueue",
    "LifoQueue",
    "PriorityQueue",
    "LocalityQueue",
    "WorkStealingQueue",
    "make_queue",
    "TaskRuntime",
]
