"""Dependency regions and the in/out/inout conflict rules.

OmpSs data dependencies are declared over *regions* — here any hashable
token naming a piece of data, e.g. ``("psis", band)`` or ``"aux"``.  The
:class:`DependencyTracker` applies the standard rules when a task is created:

* ``in``    (read)  — depends on the region's last writer (RAW);
* ``out``   (write) — depends on the last writer (WAW) *and* on every reader
  since that write (WAR); becomes the new last writer;
* ``inout`` — both.

Only *predecessor* edges ever matter at run time (a task becomes ready when
its predecessors finished), so the tracker returns the predecessor set for
each new task and keeps per-region writer/reader state.
"""

from __future__ import annotations

import enum
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.ompss.task import Task

__all__ = ["AccessMode", "DependencyTracker"]


class AccessMode(enum.Enum):
    """How a task accesses a dependency region."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"


class _RegionState:
    __slots__ = ("last_writer", "readers")

    def __init__(self) -> None:
        self.last_writer: "Task | None" = None
        self.readers: list["Task"] = []


class DependencyTracker:
    """Per-runtime region state; computes predecessor sets for new tasks."""

    def __init__(self) -> None:
        self._regions: dict[_t.Hashable, _RegionState] = {}

    def register(self, task: "Task") -> set["Task"]:
        """Apply the task's clauses; returns the set of predecessor tasks.

        Finished tasks are excluded from the result (they can't gate
        readiness) but still update writer/reader bookkeeping.
        """
        predecessors: set["Task"] = set()
        for region, mode in task.accesses:
            state = self._regions.setdefault(region, _RegionState())
            if mode is AccessMode.IN:
                if state.last_writer is not None:
                    predecessors.add(state.last_writer)
                state.readers.append(task)
            else:  # OUT / INOUT: RAW for inout is covered by the writer dep
                if state.last_writer is not None:
                    predecessors.add(state.last_writer)
                predecessors.update(state.readers)
                state.last_writer = task
                state.readers = []
        predecessors.discard(task)
        return {p for p in predecessors if not p.is_finished}

    def regions(self) -> list[_t.Hashable]:
        """All regions seen so far (diagnostics)."""
        return list(self._regions)
