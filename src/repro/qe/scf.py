"""A minimal self-consistent field loop (toy Kohn–Sham fixed point).

The band solver diagonalises H for a *fixed* potential; real DFT iterates:
the occupied bands' density feeds back into the potential.  This module
closes that loop with the simplest physically sensible model problem,

    V[rho](r) = V_ext(r) + g * rho(r),

a local ("Hartree-like") mean-field coupling of strength ``g`` on top of a
fixed external potential.  The SCF cycle is textbook:

1. solve the lowest ``n_bands`` of ``H[V]`` (every H application is the FFT
   kernel — on the simulated machine if an engine config is given);
2. build the density ``rho(r) = sum_b |psi_b(r)|^2 / volume_element``;
3. linear-mix ``rho <- (1 - beta) rho_old + beta rho_new``;
4. repeat until the density residual and the band-energy sum stabilise.

The total energy of this model,

    E[rho] = sum_b eps_b - (g/2) * integral rho^2,

(the usual double-counting correction for an interaction linear in rho) is
variational under mixing, which the tests check along with fixed-point
consistency (the converged density reproduces itself) and the g -> 0 limit
(plain band solve).
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.core.config import RunConfig
from repro.fft import cfft3d
from repro.grids.descriptor import FftDescriptor
from repro.qe.bands import BandSolveResult, solve_bands
from repro.qe.hamiltonian import Hamiltonian

__all__ = ["ScfResult", "run_scf", "density_from_bands", "fermi_occupations"]


def fermi_occupations(
    eigenvalues: np.ndarray, n_electrons: float, sigma: float
) -> np.ndarray:
    """Fermi–Dirac occupations summing to ``n_electrons``.

    Smearing is the standard cure for SCF oscillation across (near-)
    degenerate shells: fractional occupations make the density insensitive
    to arbitrary rotations within the shell (QE's ``occupations='smearing'``).
    The chemical potential is found by bisection.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    eps = np.asarray(eigenvalues, dtype=float)
    if not 0 < n_electrons <= len(eps):
        raise ValueError(
            f"n_electrons must be in (0, {len(eps)}], got {n_electrons}"
        )

    def total(mu: float) -> float:
        x = np.clip((eps - mu) / sigma, -60.0, 60.0)
        return float(np.sum(1.0 / (1.0 + np.exp(x))))

    lo, hi = eps.min() - 60 * sigma, eps.max() + 60 * sigma
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if total(mid) < n_electrons:
            lo = mid
        else:
            hi = mid
    mu = 0.5 * (lo + hi)
    x = np.clip((eps - mu) / sigma, -60.0, 60.0)
    return 1.0 / (1.0 + np.exp(x))


def density_from_bands(
    desc: FftDescriptor,
    eigenvectors: np.ndarray,
    occupations: np.ndarray | None = None,
) -> np.ndarray:
    """Real-space density ``rho[iz, ix, iy]`` of orthonormal bands.

    ``occupations`` weights each band (default 1); with unit weights
    ``mean(rho) * volume`` equals the band count (one electron each).
    """
    bands = np.atleast_2d(eigenvectors)
    if occupations is None:
        occupations = np.ones(len(bands))
    idx = desc.grid_idx
    volume = desc.cell.volume
    rho = np.zeros((desc.nr1, desc.nr2, desc.nr3))
    for weight, band in zip(occupations, bands):
        if weight <= 1e-14:
            continue
        field = np.zeros(desc.grid_shape, dtype=np.complex128)
        field[idx[:, 0], idx[:, 1], idx[:, 2]] = band
        field = cfft3d(field, +1)
        rho += weight * np.abs(field) ** 2
    # Plane-wave normalisation: sum_G |c|^2 = 1 -> mean_r |psi(r)|^2 = 1,
    # so dividing by the volume makes each unit-weight band one electron.
    return rho.transpose(2, 0, 1) / volume


@dataclasses.dataclass
class ScfResult:
    """Outcome of a self-consistent cycle."""

    bands: BandSolveResult
    occupations: np.ndarray
    density: np.ndarray  # rho[iz, ix, iy]
    potential: np.ndarray  # converged V[iz, ix, iy]
    total_energy: float  # Ry
    energy_history: list[float]
    residual_history: list[float]
    n_iterations: int
    converged: bool
    simulated_time: float


def run_scf(
    desc: FftDescriptor,
    v_ext: np.ndarray,
    n_electrons: int,
    coupling: float = 1.0,
    mixing: float = 0.4,
    smearing: float = 0.05,
    n_extra_bands: int = 4,
    tol: float = 1e-8,
    max_iterations: int = 60,
    engine: _t.Union[str, RunConfig] = "dense",
    band_tol: float = 1e-10,
) -> ScfResult:
    """Iterate the density to self-consistency (see module docstring).

    ``n_electrons`` bands' worth of charge is distributed over
    ``n_electrons + n_extra_bands`` states with Fermi smearing ``smearing``
    (Ry) — fractional occupations keep the density stable across
    near-degenerate shells, exactly as in production plane-wave codes.
    ``v_ext`` must keep the total potential positive-ish for the model to
    be well posed; the usual workload potentials (>= 1 everywhere) are.
    """
    if not 0.0 < mixing <= 1.0:
        raise ValueError(f"mixing must be in (0, 1], got {mixing}")
    if coupling < 0.0:
        raise ValueError(f"coupling must be >= 0, got {coupling}")
    if n_electrons < 1:
        raise ValueError(f"n_electrons must be >= 1, got {n_electrons}")
    expected = (desc.nr3, desc.nr1, desc.nr2)
    if v_ext.shape != expected:
        raise ValueError(f"v_ext shape {v_ext.shape}; expected {expected}")

    n_bands = n_electrons + max(n_extra_bands, 0)
    volume_element = desc.cell.volume / desc.nnr
    rho = np.zeros(expected)
    energy_history: list[float] = []
    residual_history: list[float] = []
    simulated_time = 0.0
    bands: BandSolveResult | None = None
    occupations = np.zeros(n_bands)
    converged = False
    iteration = 0

    for iteration in range(1, max_iterations + 1):
        ham = Hamiltonian(desc, v_ext + coupling * rho)
        bands = solve_bands(ham, n_bands, engine=engine, tol=band_tol)
        simulated_time += bands.simulated_time

        occupations = fermi_occupations(bands.eigenvalues, n_electrons, smearing)
        rho_new = density_from_bands(desc, bands.eigenvectors, occupations)
        residual = float(np.abs(rho_new - rho).max())
        residual_history.append(residual)

        rho = (1.0 - mixing) * rho + mixing * rho_new
        double_count = 0.5 * coupling * float(np.sum(rho * rho)) * volume_element
        energy = float(occupations @ bands.eigenvalues) - double_count
        energy_history.append(energy)

        if residual < tol:
            converged = True
            break

    assert bands is not None  # max_iterations >= 1
    return ScfResult(
        bands=bands,
        occupations=occupations,
        density=rho,
        potential=v_ext + coupling * rho,
        total_energy=energy_history[-1],
        energy_history=energy_history,
        residual_history=residual_history,
        n_iterations=iteration,
        converged=converged,
        simulated_time=simulated_time,
    )
