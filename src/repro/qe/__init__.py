"""A miniature plane-wave band solver on top of the FFT kernel.

The paper's motivation is that FFTXlib's kernel is *the* inner loop of
Quantum ESPRESSO: "the FFT kernel needed when an operator diagonal in real
space should be applied to the wave functions."  This package closes that
loop — a non-self-consistent band-structure solver (QE's ``nscf`` mode on a
fixed potential) whose Hamiltonian applications run through the simulated
distributed pipeline:

* :mod:`~repro.qe.hamiltonian` — ``H = T + V(r)``: the kinetic term is
  diagonal in G space (``|G|^2`` in Rydberg units); the potential term is
  exactly the kernel the paper optimizes, executed either densely (fast,
  for the math) or through :func:`repro.core.run_fft_phase` on any executor
  (which also yields the simulated time a QE run would spend per
  iteration);
* :mod:`~repro.qe.bands` — blocked subspace iteration with Rayleigh–Ritz
  rotation, orthonormalization, and convergence tracking: the lowest
  ``n_bands`` eigenpairs of H;
* :mod:`~repro.qe.dense` — the brute-force ``ngw x ngw`` Hamiltonian matrix
  (via the convolution structure ``V_{GG'} = Vtilde(G - G')``) used by the
  tests to verify the solver's eigenvalues.
"""

from repro.qe.hamiltonian import Hamiltonian, kinetic_spectrum
from repro.qe.bands import BandSolveResult, solve_bands
from repro.qe.dense import dense_hamiltonian_matrix
from repro.qe.scf import ScfResult, density_from_bands, fermi_occupations, run_scf
from repro.qe.kpath import CUBIC_POINTS, BandStructure, band_structure, k_path
from repro.qe.dos import DensityOfStates, density_of_states, monkhorst_pack

__all__ = [
    "k_path",
    "band_structure",
    "BandStructure",
    "CUBIC_POINTS",
    "density_of_states",
    "DensityOfStates",
    "monkhorst_pack",
    "Hamiltonian",
    "kinetic_spectrum",
    "solve_bands",
    "BandSolveResult",
    "dense_hamiltonian_matrix",
    "run_scf",
    "ScfResult",
    "density_from_bands",
    "fermi_occupations",
]
