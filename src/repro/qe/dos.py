"""Density of states from sampled eigenvalues (Gaussian broadening).

The standard post-processing of a band calculation: sample eigenvalues on a
k-grid (every point another pass of the FFT kernel through the solver) and
histogram them with Gaussian smearing,

    DOS(E) = (1/N_k) sum_{k,b} g_sigma(E - eps_{k,b}),

normalised so that integrating DOS over energy counts states per k-point.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.core.config import RunConfig
from repro.grids.descriptor import FftDescriptor
from repro.qe.bands import solve_bands
from repro.qe.hamiltonian import Hamiltonian

__all__ = ["DensityOfStates", "monkhorst_pack", "density_of_states"]


def monkhorst_pack(n1: int, n2: int, n3: int) -> np.ndarray:
    """A Gamma-centred uniform k-grid in cartesian tpiba units (cubic cell).

    Returns ``(n1*n2*n3, 3)`` points in ``[0, 1)`` per axis.
    """
    if min(n1, n2, n3) < 1:
        raise ValueError(f"grid dimensions must be >= 1, got ({n1}, {n2}, {n3})")
    axes = [np.arange(n) / n for n in (n1, n2, n3)]
    k1, k2, k3 = np.meshgrid(*axes, indexing="ij")
    return np.column_stack([k1.ravel(), k2.ravel(), k3.ravel()])


@dataclasses.dataclass
class DensityOfStates:
    """A broadened DOS on an energy grid."""

    energies: np.ndarray  # (n_e,) grid (Ry)
    dos: np.ndarray  # (n_e,) states per Ry per k-point
    eigenvalues: np.ndarray  # (n_k, n_bands) raw samples
    simulated_time: float

    def integrated(self) -> float:
        """Integral of the DOS over the energy window (states per k-point)."""
        return float(np.trapezoid(self.dos, self.energies))


def density_of_states(
    desc: FftDescriptor,
    potential: np.ndarray,
    kpoints: np.ndarray,
    n_bands: int,
    sigma: float = 0.1,
    n_energies: int = 200,
    engine: _t.Union[str, RunConfig] = "dense",
    tol: float = 1e-8,
) -> DensityOfStates:
    """Solve every k-point and broaden the spectrum into a DOS."""
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    kpoints = np.atleast_2d(np.asarray(kpoints, dtype=float))
    eigenvalues = np.empty((len(kpoints), n_bands))
    simulated_time = 0.0
    for i, k in enumerate(kpoints):
        ham = Hamiltonian(desc, potential, k=k)
        res = solve_bands(ham, n_bands, engine=engine, tol=tol)
        eigenvalues[i] = res.eigenvalues
        simulated_time += res.simulated_time

    lo = eigenvalues.min() - 5 * sigma
    hi = eigenvalues.max() + 5 * sigma
    grid = np.linspace(lo, hi, n_energies)
    norm = 1.0 / (sigma * np.sqrt(2 * np.pi) * len(kpoints))
    diffs = grid[:, None] - eigenvalues.ravel()[None, :]
    dos = norm * np.exp(-0.5 * (diffs / sigma) ** 2).sum(axis=1)
    return DensityOfStates(
        energies=grid,
        dos=dos,
        eigenvalues=eigenvalues,
        simulated_time=simulated_time,
    )
