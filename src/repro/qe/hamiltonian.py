"""The plane-wave Hamiltonian ``H = T + V(r)``.

Rydberg atomic units, QE conventions: a plane wave ``|G>`` has kinetic
energy ``|G|^2`` with G in Bohr^-1, i.e. ``g2 * tpiba^2`` for the sphere's
``g2`` (stored in tpiba^2 units).  The local potential is diagonal in real
space, so ``V|psi>`` is precisely the FFTXlib kernel: backward transform,
multiply, forward transform.

``apply`` evaluates ``H @ coeffs`` for a block of bands.  Two engines:

* ``engine="dense"`` — single-grid transforms (fast; used inside the
  eigensolver's inner loop);
* ``engine=<RunConfig>`` — the full simulated distributed pipeline of
  :mod:`repro.core`; numerically identical (the integration tests assert
  it), and each application also reports the simulated FFT-phase time, so
  the solver doubles as a "what would this cost on the KNL node" model for
  an actual QE workload.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.core.config import RunConfig
from repro.core.driver import run_fft_phase
from repro.core.validate import dense_reference
from repro.grids.descriptor import FftDescriptor

__all__ = ["Hamiltonian", "kinetic_spectrum"]


def kinetic_spectrum(desc: FftDescriptor, k: np.ndarray | None = None) -> np.ndarray:
    """Kinetic energies ``|k + G|^2`` (Ry) of the sphere, in canonical order.

    ``k`` is a crystal-momentum vector in tpiba units (crystal coordinates
    are ``bg @ k_cryst``; pass the cartesian tpiba vector here).  ``None``
    or zero is the Gamma point.
    """
    if k is None:
        return desc.sphere.g2 * desc.cell.tpiba2
    k = np.asarray(k, dtype=float)
    if k.shape != (3,):
        raise ValueError(f"k must be a 3-vector, got shape {k.shape}")
    g = desc.sphere.millers @ desc.cell.bg.T  # cartesian, tpiba units
    kg = g + k
    return np.einsum("ij,ij->i", kg, kg) * desc.cell.tpiba2


@dataclasses.dataclass
class Hamiltonian:
    """``H = T + V(r)`` over a descriptor's G-sphere.

    Attributes
    ----------
    desc:
        FFT geometry (defines the basis).
    potential:
        ``V[iz, ix, iy]`` real local potential (Ry).
    k:
        Crystal momentum in cartesian tpiba units (``None`` = Gamma).  The
        kinetic term becomes ``|k + G|^2``; the potential term is k
        independent, so the same FFT kernel serves every k-point — which is
        exactly why Quantum ESPRESSO's k-point loop hammers FFTXlib.
    """

    desc: FftDescriptor
    potential: np.ndarray
    k: np.ndarray | None = None

    def __post_init__(self) -> None:
        expected = (self.desc.nr3, self.desc.nr1, self.desc.nr2)
        if self.potential.shape != expected:
            raise ValueError(
                f"potential shape {self.potential.shape}; expected {expected}"
            )
        self._kinetic = kinetic_spectrum(self.desc, self.k)
        #: Accumulated simulated FFT-phase seconds (distributed engine only).
        self.simulated_time = 0.0

    @property
    def ngw(self) -> int:
        """Basis size."""
        return self.desc.ngw

    @property
    def kinetic(self) -> np.ndarray:
        """The kinetic diagonal ``|k + G|^2`` (Ry) of this Hamiltonian."""
        return self._kinetic

    def apply(
        self, coeffs: np.ndarray, engine: _t.Union[str, RunConfig] = "dense"
    ) -> np.ndarray:
        """``H @ coeffs`` for a ``(n_bands, ngw)`` block.

        ``engine="dense"`` uses single-grid transforms; an explicit
        :class:`RunConfig` routes the potential term through the simulated
        distributed pipeline (and accumulates :attr:`simulated_time`).
        """
        coeffs = np.atleast_2d(np.asarray(coeffs, dtype=np.complex128))
        if coeffs.shape[1] != self.ngw:
            raise ValueError(f"coefficient blocks need {self.ngw} columns, got {coeffs.shape[1]}")
        v_psi = self._apply_potential(coeffs, engine)
        return self._kinetic[None, :] * coeffs + v_psi

    def _apply_potential(
        self, coeffs: np.ndarray, engine: _t.Union[str, RunConfig]
    ) -> np.ndarray:
        if isinstance(engine, str):
            if engine != "dense":
                raise ValueError(f"unknown engine {engine!r}; use 'dense' or a RunConfig")
            return dense_reference(self.desc, coeffs, self.potential)
        config = self._pipeline_config(engine, coeffs.shape[0])
        result = run_fft_phase(
            config, input_coeffs=coeffs, potential=self.potential
        )
        self.simulated_time += result.phase_time
        return result.output_coefficients()

    def _pipeline_config(self, engine: RunConfig, n_bands: int) -> RunConfig:
        """Adapt the engine config to this Hamiltonian's workload."""
        if engine.n_complex_bands != n_bands or not engine.data_mode:
            engine = dataclasses.replace(
                engine, nbnd=2 * n_bands, data_mode=True
            )
        if (engine.ecutwfc, engine.alat, engine.dual) != (
            self.desc.ecutwfc,
            self.desc.cell.alat,
            self.desc.dual,
        ):
            engine = dataclasses.replace(
                engine,
                ecutwfc=self.desc.ecutwfc,
                alat=self.desc.cell.alat,
                dual=self.desc.dual,
            )
        return engine

    def expectation(self, coeffs: np.ndarray, engine: _t.Union[str, RunConfig] = "dense") -> np.ndarray:
        """Per-band ``<psi|H|psi> / <psi|psi>`` (Ry)."""
        coeffs = np.atleast_2d(coeffs)
        h_psi = self.apply(coeffs, engine)
        num = np.einsum("bg,bg->b", np.conj(coeffs), h_psi)
        den = np.einsum("bg,bg->b", np.conj(coeffs), coeffs)
        return (num / den).real
