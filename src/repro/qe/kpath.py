"""Band structure along a k-path (the nscf band-plot workflow).

Quantum ESPRESSO's band-structure runs solve ``H(k) = |k+G|^2 + V(r)`` on a
polyline through the Brillouin zone; only the kinetic diagonal changes with
k, so the FFT kernel (the V*psi application the paper optimizes) is hit
identically at every point — a production workload's worth of kernel
invocations per plot.

:func:`k_path` samples a polyline between named points;
:func:`band_structure` solves every point with the subspace solver and
returns the ``(n_k, n_bands)`` energy array plus path distances for
plotting.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.core.config import RunConfig
from repro.grids.descriptor import FftDescriptor
from repro.qe.bands import solve_bands
from repro.qe.hamiltonian import Hamiltonian

__all__ = ["k_path", "band_structure", "BandStructure", "CUBIC_POINTS"]

#: High-symmetry points of the simple-cubic Brillouin zone (tpiba units).
CUBIC_POINTS: dict[str, tuple[float, float, float]] = {
    "G": (0.0, 0.0, 0.0),
    "X": (0.5, 0.0, 0.0),
    "M": (0.5, 0.5, 0.0),
    "R": (0.5, 0.5, 0.5),
}


def k_path(
    points: _t.Sequence[_t.Sequence[float] | str],
    n_per_segment: int = 8,
    labels: _t.Mapping[str, _t.Sequence[float]] | None = None,
) -> np.ndarray:
    """Sample a polyline through the given k-points (tpiba units).

    Entries may be explicit 3-vectors or names resolved via ``labels``
    (default :data:`CUBIC_POINTS`).  Returns ``(n_k, 3)`` including both
    endpoints of every segment (shared corners deduplicated).
    """
    if n_per_segment < 2:
        raise ValueError(f"n_per_segment must be >= 2, got {n_per_segment}")
    table = dict(CUBIC_POINTS if labels is None else labels)
    resolved = []
    for p in points:
        if isinstance(p, str):
            try:
                resolved.append(np.asarray(table[p], dtype=float))
            except KeyError:
                raise ValueError(f"unknown k-point label {p!r}; known: {sorted(table)}") from None
        else:
            vec = np.asarray(p, dtype=float)
            if vec.shape != (3,):
                raise ValueError(f"k-points must be 3-vectors, got shape {vec.shape}")
            resolved.append(vec)
    if len(resolved) < 2:
        raise ValueError("a path needs at least two points")
    samples = [resolved[0]]
    for a, b in zip(resolved, resolved[1:]):
        for i in range(1, n_per_segment):
            samples.append(a + (b - a) * i / (n_per_segment - 1))
    return np.array(samples)


@dataclasses.dataclass
class BandStructure:
    """Energies along a k-path."""

    kpoints: np.ndarray  # (n_k, 3) tpiba units
    energies: np.ndarray  # (n_k, n_bands) Ry, ascending per row
    distances: np.ndarray  # (n_k,) cumulative path length (tpiba units)
    simulated_time: float

    @property
    def band_width(self) -> np.ndarray:
        """max - min of each band across the path (dispersion)."""
        return self.energies.max(axis=0) - self.energies.min(axis=0)


def band_structure(
    desc: FftDescriptor,
    potential: np.ndarray,
    kpoints: np.ndarray,
    n_bands: int,
    engine: _t.Union[str, RunConfig] = "dense",
    tol: float = 1e-9,
) -> BandStructure:
    """Solve the lowest bands at every k-point of a path."""
    kpoints = np.atleast_2d(np.asarray(kpoints, dtype=float))
    energies = np.empty((len(kpoints), n_bands))
    simulated_time = 0.0
    for i, k in enumerate(kpoints):
        ham = Hamiltonian(desc, potential, k=k)
        res = solve_bands(ham, n_bands, engine=engine, tol=tol)
        energies[i] = res.eigenvalues
        simulated_time += res.simulated_time
    steps = np.linalg.norm(np.diff(kpoints, axis=0), axis=1)
    distances = np.concatenate([[0.0], np.cumsum(steps)])
    return BandStructure(
        kpoints=kpoints,
        energies=energies,
        distances=distances,
        simulated_time=simulated_time,
    )
