"""Blocked subspace iteration for the lowest bands (QE's nscf analogue).

The classic Rayleigh–Ritz scheme iterated to convergence:

1. orthonormalize the current block X (QR);
2. form H X (every application is the FFT kernel — the paper's hot loop);
3. build the subspace matrices ``S = X^H H X`` and rotate X onto the Ritz
   vectors;
4. refine with a preconditioned residual step
   ``X <- X - R / (T + v0 - eps)`` (the standard kinetic preconditioner:
   exact where the kinetic term dominates, damped elsewhere);
5. repeat until the eigenvalue sum stabilises.

Deliberately simple (single-shot Davidson expansion, fixed potential), but
the numerics are real: the tests check the converged eigenvalues against
exact diagonalisation of the dense Hamiltonian matrix to ~1e-8 Ry, at the
Gamma point and along k-paths (see :mod:`repro.qe.kpath`).
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.core.config import RunConfig
from repro.qe.hamiltonian import Hamiltonian
from repro.simkit.rng import substream

__all__ = ["solve_bands", "BandSolveResult"]


@dataclasses.dataclass
class BandSolveResult:
    """Outcome of a band solve."""

    eigenvalues: np.ndarray  # (n_bands,), ascending (Ry)
    eigenvectors: np.ndarray  # (n_bands, ngw), orthonormal rows
    n_iterations: int
    converged: bool
    residual_norms: np.ndarray  # (n_bands,)
    history: list[float]  # eigenvalue-sum per iteration
    simulated_time: float  # accumulated simulated FFT-phase seconds (if any)


def solve_bands(
    ham: Hamiltonian,
    n_bands: int,
    engine: _t.Union[str, RunConfig] = "dense",
    tol: float = 1e-9,
    max_iterations: int = 200,
    seed: int = 11,
    n_extra: int | None = None,
) -> BandSolveResult:
    """Lowest ``n_bands`` eigenpairs of ``ham`` by subspace iteration.

    ``n_extra`` guard vectors (default ``max(4, n_bands // 4)``) are carried
    in the block but not returned — the standard trick that keeps the
    *requested* bands from stalling at the block edge; generous enough by
    default to swallow small degenerate clusters (cubic cells have many).
    """
    if n_bands < 1:
        raise ValueError(f"n_bands must be >= 1, got {n_bands}")
    ngw = ham.ngw
    if n_extra is None:
        n_extra = max(4, n_bands // 4)
    block = min(n_bands + n_extra, ngw)
    if n_bands > ngw:
        raise ValueError(f"n_bands={n_bands} exceeds the basis size {ngw}")

    rng = substream(seed)
    kinetic = ham.kinetic  # |k + G|^2 of *this* Hamiltonian's k-point
    # Start from the lowest-kinetic-energy plane waves plus a little noise —
    # the standard atomic-wfc-free initialisation.
    order = np.argsort(kinetic)
    x = np.zeros((block, ngw), dtype=np.complex128)
    x[np.arange(block), order[:block]] = 1.0
    x += 0.01 * (rng.standard_normal(x.shape) + 1j * rng.standard_normal(x.shape))

    v0 = float(np.mean(ham.potential))
    history: list[float] = []
    eigenvalues = np.zeros(block)
    residuals = np.full(block, np.inf)
    converged = False
    iteration = 0
    x = _orthonormalize(x)

    for iteration in range(1, max_iterations + 1):
        hx = ham.apply(x, engine=engine)
        # Ritz values/residuals of the current block.
        s = x.conj() @ hx.T
        s = 0.5 * (s + s.conj().T)
        eigenvalues, rotation = np.linalg.eigh(s)
        # Row convention: the k-th Ritz vector is sum_i R[i, k] * x_i, i.e.
        # R.T @ x (no conjugate — R's columns are the coefficients).
        x = rotation.T @ x
        hx = rotation.T @ hx
        residual = hx - eigenvalues[:, None] * x
        residuals = np.linalg.norm(residual, axis=1)

        history.append(float(eigenvalues[:n_bands].sum()))
        if len(history) >= 2 and abs(history[-1] - history[-2]) < tol * max(
            1.0, abs(history[-1])
        ):
            converged = True
            break

        # Davidson-style expansion: Rayleigh-Ritz over [x, K^-1 residual]
        # with the kinetic preconditioner, keep the lowest `block` pairs.
        denom = kinetic[None, :] + v0 - eigenvalues[:, None]
        denom = np.where(np.abs(denom) < 0.5, 0.5 * np.sign(denom + 1e-30), denom)
        w = residual / denom
        basis = _orthonormalize(np.vstack([x, w]))
        hb = ham.apply(basis, engine=engine)
        s2 = basis.conj() @ hb.T
        s2 = 0.5 * (s2 + s2.conj().T)
        _theta, vectors = np.linalg.eigh(s2)
        x = vectors[:, :block].T @ basis

    return BandSolveResult(
        eigenvalues=eigenvalues[:n_bands],
        eigenvectors=x[:n_bands],
        n_iterations=iteration,
        converged=converged,
        residual_norms=residuals[:n_bands],
        history=history,
        simulated_time=ham.simulated_time,
    )


def _orthonormalize(x: np.ndarray) -> np.ndarray:
    """Row-orthonormalize a coefficient block (thin QR)."""
    q, _r = np.linalg.qr(x.T)
    return np.ascontiguousarray(q.T)
