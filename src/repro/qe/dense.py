"""Brute-force Hamiltonian matrix (the band solver's ground truth).

For a local potential, the plane-wave Hamiltonian has the explicit form::

    H_{GG'} = |G|^2 delta_{GG'} + Vtilde(G - G')

where ``Vtilde`` is the potential's (forward, 1/N-scaled) Fourier transform
evaluated at the Miller-index difference, wrapped onto the FFT grid.  For
test-sized spheres (ngw of a few hundred) the full ``ngw x ngw`` Hermitian
matrix is cheap to build and diagonalise exactly — the reference the
subspace solver is validated against.
"""

from __future__ import annotations

import numpy as np

from repro.fft import cfft3d
from repro.grids.descriptor import FftDescriptor
from repro.qe.hamiltonian import kinetic_spectrum

__all__ = ["dense_hamiltonian_matrix"]


def dense_hamiltonian_matrix(
    desc: FftDescriptor, potential: np.ndarray, k: np.ndarray | None = None
) -> np.ndarray:
    """The explicit ``(ngw, ngw)`` Hamiltonian (Ry) for ``V[iz, ix, iy]``.

    ``k`` (cartesian tpiba units) shifts the kinetic diagonal to
    ``|k + G|^2``; the potential block is k independent.
    """
    expected = (desc.nr3, desc.nr1, desc.nr2)
    if potential.shape != expected:
        raise ValueError(f"potential shape {potential.shape}; expected {expected}")
    v_xyz = potential.transpose(1, 2, 0).astype(np.complex128)
    v_tilde = cfft3d(v_xyz, -1)  # Vtilde[qx, qy, qz], 1/N scaled

    m = desc.sphere.millers
    nr = np.array([desc.nr1, desc.nr2, desc.nr3])
    # q = G_i - G_j wrapped onto the grid, per axis.
    diff = (m[:, None, :] - m[None, :, :]) % nr
    h = v_tilde[diff[..., 0], diff[..., 1], diff[..., 2]]
    h[np.arange(desc.ngw), np.arange(desc.ngw)] += kinetic_spectrum(desc, k)
    return h
