"""Shared plumbing for experiment runners."""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.config import RunConfig

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.driver import RunResult
    from repro.perf.tracer import Trace
    from repro.sweep.engine import SweepTask

__all__ = ["ExperimentReport", "paper_config", "reduce_timing", "sweep_summaries"]


@dataclasses.dataclass
class ExperimentReport:
    """A rendered experiment: machine-readable data + printable text."""

    name: str
    data: dict
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def paper_config(ranks: int, version: str = "original", **overrides: _t.Any) -> RunConfig:
    """The paper's workload (ecut 80 Ry, alat 20 Bohr, 128 bands, ntg 8).

    ``overrides`` may shrink the workload for quick runs; the benchmark
    harness always uses the full one.
    """
    params: dict[str, _t.Any] = dict(
        ecutwfc=80.0,
        alat=20.0,
        nbnd=128,
        taskgroups=8,
        ranks=ranks,
        version=version,
    )
    params.update(overrides)
    return RunConfig(**params)


def reduce_timing(
    task: "SweepTask",
    result: "RunResult",
    ideal: "RunResult | None",
    trace: "Trace | None",
) -> dict:
    """The workhorse sweep reduction: runtime + average IPC + failure flag."""
    return {
        "phase_time_s": result.phase_time,
        "average_ipc": result.average_ipc,
        "failed": result.failed,
    }


def sweep_summaries(
    tasks: _t.Sequence["SweepTask"], jobs: int = 1, mode: str | None = None
) -> dict[str, dict]:
    """Run a grid through the sweep engine; point key -> reduced summary.

    Every experiment runner funnels its configurations through here, so one
    ``jobs=`` argument parallelizes any of them.
    """
    from repro.sweep import run_sweep

    return run_sweep(tasks, jobs=jobs, mode=mode).summaries()
