"""Shared plumbing for experiment runners."""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.config import RunConfig

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.driver import RunResult
    from repro.perf.tracer import Trace
    from repro.sweep.engine import SweepTask

__all__ = [
    "ExperimentReport",
    "paper_config",
    "reduce_timing",
    "reduce_efficiency",
    "sweep_summaries",
]


@dataclasses.dataclass
class ExperimentReport:
    """A rendered experiment: machine-readable data + printable text."""

    name: str
    data: dict
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def paper_config(ranks: int, version: str = "original", **overrides: _t.Any) -> RunConfig:
    """The paper's workload (ecut 80 Ry, alat 20 Bohr, 128 bands, ntg 8).

    ``overrides`` may shrink the workload for quick runs; the benchmark
    harness always uses the full one.
    """
    params: dict[str, _t.Any] = dict(
        ecutwfc=80.0,
        alat=20.0,
        nbnd=128,
        taskgroups=8,
        ranks=ranks,
        version=version,
    )
    params.update(overrides)
    return RunConfig(**params)


def reduce_timing(
    task: "SweepTask",
    result: "RunResult",
    ideal: "RunResult | None",
    trace: "Trace | None",
) -> dict:
    """The workhorse sweep reduction: runtime + average IPC + failure flag."""
    return {
        "phase_time_s": result.phase_time,
        "average_ipc": result.average_ipc,
        "failed": result.failed,
    }


def reduce_efficiency(
    task: "SweepTask",
    result: "RunResult",
    ideal: "RunResult | None",
    trace: "Trace | None",
) -> dict:
    """Timing reduction plus the point's POP efficiency factors.

    Factors come from :func:`repro.analysis.analyze_run`: the full
    sync/transfer split when the point carried a trace or an ideal-network
    replay, the counters-only decomposition (load balance + communication
    efficiency, neutral transfer) otherwise.
    """
    from repro.analysis import analyze_run

    out = reduce_timing(task, result, ideal, trace)
    analysis = analyze_run(
        result, ideal_time_s=ideal.phase_time if ideal is not None else None
    )
    pop = analysis.pop
    out["efficiency"] = (
        {
            "parallel_efficiency": pop.parallel_efficiency,
            "load_balance": pop.load_balance,
            "serialization_efficiency": pop.serialization_efficiency,
            "transfer_efficiency": pop.transfer_efficiency,
            "communication_efficiency": pop.communication_efficiency,
            "split_source": pop.split_source,
        }
        if pop is not None
        else None
    )
    return out


def sweep_summaries(
    tasks: _t.Sequence["SweepTask"], jobs: int = 1, mode: str | None = None
) -> dict[str, dict]:
    """Run a grid through the sweep engine; point key -> reduced summary.

    Every experiment runner funnels its configurations through here, so one
    ``jobs=`` argument parallelizes any of them.
    """
    from repro.sweep import run_sweep

    return run_sweep(tasks, jobs=jobs, mode=mode).summaries()
