"""Shared plumbing for experiment runners."""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.config import RunConfig

__all__ = ["ExperimentReport", "paper_config"]


@dataclasses.dataclass
class ExperimentReport:
    """A rendered experiment: machine-readable data + printable text."""

    name: str
    data: dict
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def paper_config(ranks: int, version: str = "original", **overrides: _t.Any) -> RunConfig:
    """The paper's workload (ecut 80 Ry, alat 20 Bohr, 128 bands, ntg 8).

    ``overrides`` may shrink the workload for quick runs; the benchmark
    harness always uses the full one.
    """
    params: dict[str, _t.Any] = dict(
        ecutwfc=80.0,
        alat=20.0,
        nbnd=128,
        taskgroups=8,
        ranks=ranks,
        version=version,
    )
    params.update(overrides)
    return RunConfig(**params)
