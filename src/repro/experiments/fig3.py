"""Figure 3: the trace view of the original version's FFT phase.

The paper zooms into one of the "8 repeating phases" of the 8x8 run and
reads off: (a) the phase structure with its IPCs (Psi preparation ~0.06,
FFT-Z ~0.52, the central FFT-XY/VOFR block ~0.77), (b) the MPI call
pattern (Alltoallv in pack/unpack, Alltoall in the scatters), and (c) the
two-layer communicator structure (R pack sub-communicators of T neighboring
ranks; T scatter sub-communicators of R strided ranks).  This runner
regenerates all three from a traced run.
"""

from __future__ import annotations

import typing as _t

from repro.experiments.common import ExperimentReport, paper_config
from repro.experiments.paperdata import PAPER
from repro.machine import knl_parameters
from repro.perf.report import format_comparison
from repro.perf.timeline import communicator_structure, phase_summary
from repro.perf.tracer import trace_run

__all__ = ["run_fig3"]


def run_fig3(ranks: int = 8, **overrides: _t.Any) -> ExperimentReport:
    """Trace the 8x8 original run and extract the Fig. 3 artifacts."""
    cfg = paper_config(ranks, "original", **overrides)
    result, trace = trace_run(cfg)
    freq = knl_parameters().frequency_hz

    summary = phase_summary(trace, freq)
    # The paper's "central phase" groups fw-XY + inner loop (VOFR) + bw-XY.
    central = {k: summary[k] for k in ("fft_xy", "vofr") if k in summary}
    central_time = sum(v["time"] for v in central.values())
    central_instr = sum(v["instructions"] for v in central.values())
    central_ipc = central_instr / (central_time * freq) if central_time else 0.0

    comms = communicator_structure(trace)
    pack_comms = {k: v for k, v in comms.items() if k.startswith("pack")}
    scatter_comms = {k: v for k, v in comms.items() if k.startswith("scatter")}

    # "8 repeating phases": one prepare_psis per stream per outer iteration.
    stream0 = trace.streams[0]
    repeats = sum(
        1 for r in trace.compute if r.stream == stream0 and r.phase == "prepare_psis"
    )

    anchors = PAPER["fig3"]
    rows = [
        ("prepare_psis IPC", summary["prepare_psis"]["ipc"], anchors["prepare_psis_ipc"]),
        ("fft_z IPC", summary["fft_z"]["ipc"], anchors["fft_z_ipc"]),
        ("central phase IPC", central_ipc, anchors["central_phase_ipc"]),
        ("pack sub-comms", len(pack_comms), anchors["pack_comms_of_8x8"]),
        ("pack comm size", len(pack_comms.get("pack0", {}).get("streams", [])), anchors["pack_comm_size_8x8"]),
        ("scatter sub-comms", len(scatter_comms), anchors["scatter_comms_of_8x8"]),
        ("scatter comm size", len(scatter_comms.get("scatter0", {}).get("streams", [])), anchors["scatter_comm_size_8x8"]),
        ("repeating phases", repeats, PAPER["workload"]["repeating_phases"]),
    ]
    lines = [
        format_comparison(rows, title="Fig. 3 — trace structure of the 8x8 original run"),
        "",
        f"pack0 members:    {pack_comms.get('pack0', {}).get('streams')}",
        f"scatter1 members: {scatter_comms.get('scatter1', {}).get('streams')} (strided by T)",
    ]
    return ExperimentReport(
        name="fig3",
        data={
            "phase_summary": summary,
            "central_phase_ipc": central_ipc,
            "pack_comms": pack_comms,
            "scatter_comms": scatter_comms,
            "repeating_phases": repeats,
            "phase_time": result.phase_time,
        },
        text="\n".join(lines),
    )
