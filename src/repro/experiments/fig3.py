"""Figure 3: the trace view of the original version's FFT phase.

The paper zooms into one of the "8 repeating phases" of the 8x8 run and
reads off: (a) the phase structure with its IPCs (Psi preparation ~0.06,
FFT-Z ~0.52, the central FFT-XY/VOFR block ~0.77), (b) the MPI call
pattern (Alltoallv in pack/unpack, Alltoall in the scatters), and (c) the
two-layer communicator structure (R pack sub-communicators of T neighboring
ranks; T scatter sub-communicators of R strided ranks).  This runner
regenerates all three from a traced run executed through the sweep engine
(a one-point grid; the trace reduction happens in the worker).
"""

from __future__ import annotations

import typing as _t

from repro.experiments.common import ExperimentReport, paper_config, sweep_summaries
from repro.experiments.paperdata import PAPER
from repro.machine import knl_parameters
from repro.perf.report import format_comparison
from repro.sweep import SweepTask

__all__ = ["run_fig3", "reduce_fig3"]


def reduce_fig3(task, result, ideal, trace) -> dict:
    """In-worker reduction of the traced run to the Fig. 3 artifacts."""
    from repro.perf.timeline import communicator_structure, phase_summary

    freq = knl_parameters().frequency_hz
    summary = phase_summary(trace, freq)
    # The paper's "central phase" groups fw-XY + inner loop (VOFR) + bw-XY.
    central = {k: summary[k] for k in ("fft_xy", "vofr") if k in summary}
    central_time = sum(v["time"] for v in central.values())
    central_instr = sum(v["instructions"] for v in central.values())
    central_ipc = central_instr / (central_time * freq) if central_time else 0.0

    comms = communicator_structure(trace)
    # "8 repeating phases": one prepare_psis per stream per outer iteration.
    stream0 = trace.streams[0]
    repeats = sum(
        1 for r in trace.compute if r.stream == stream0 and r.phase == "prepare_psis"
    )
    return {
        "phase_summary": summary,
        "central_phase_ipc": central_ipc,
        "pack_comms": {k: v for k, v in comms.items() if k.startswith("pack")},
        "scatter_comms": {k: v for k, v in comms.items() if k.startswith("scatter")},
        "repeating_phases": repeats,
        "phase_time": result.phase_time,
    }


def run_fig3(ranks: int = 8, jobs: int = 1, **overrides: _t.Any) -> ExperimentReport:
    """Trace the 8x8 original run and extract the Fig. 3 artifacts."""
    task = SweepTask(
        key=f"ranks={ranks}",
        config=paper_config(ranks, "original", **overrides),
        reducer="repro.experiments.fig3:reduce_fig3",
        trace=True,
    )
    data = sweep_summaries([task], jobs=jobs)[task.key]
    summary = data["phase_summary"]
    pack_comms = data["pack_comms"]
    scatter_comms = data["scatter_comms"]

    anchors = PAPER["fig3"]
    rows = [
        ("prepare_psis IPC", summary["prepare_psis"]["ipc"], anchors["prepare_psis_ipc"]),
        ("fft_z IPC", summary["fft_z"]["ipc"], anchors["fft_z_ipc"]),
        ("central phase IPC", data["central_phase_ipc"], anchors["central_phase_ipc"]),
        ("pack sub-comms", len(pack_comms), anchors["pack_comms_of_8x8"]),
        ("pack comm size", len(pack_comms.get("pack0", {}).get("streams", [])), anchors["pack_comm_size_8x8"]),
        ("scatter sub-comms", len(scatter_comms), anchors["scatter_comms_of_8x8"]),
        ("scatter comm size", len(scatter_comms.get("scatter0", {}).get("streams", [])), anchors["scatter_comm_size_8x8"]),
        ("repeating phases", data["repeating_phases"], PAPER["workload"]["repeating_phases"]),
    ]
    lines = [
        format_comparison(rows, title="Fig. 3 — trace structure of the 8x8 original run"),
        "",
        f"pack0 members:    {pack_comms.get('pack0', {}).get('streams')}",
        f"scatter1 members: {scatter_comms.get('scatter1', {}).get('streams')} (strided by T)",
    ]
    return ExperimentReport(name="fig3", data=data, text="\n".join(lines))
