"""Tuned-vs-default: what the autotuner buys across a workload matrix.

For every cell of a grid x band x node matrix, run the cost-model-guided
search (:func:`repro.tuning.search.search`) against a fresh in-memory
wisdom DB and compare the recorded winner's full-workload time against the
cell's hand-picked default configuration (the incumbent).  The incumbent
always competes in the search's final rung, so a correct search never
loses — the interesting outputs are *how often* it strictly wins and by
how much (the win rate and speedup distribution that ``BENCH_tuning.json``
ratchets).

Everything is simulated and seeded: a given matrix produces byte-identical
cell records at any ``jobs`` (the searches themselves fan their rungs out
through the deterministic sweep engine).
"""

from __future__ import annotations

import statistics
import typing as _t

from repro.core.config import RunConfig
from repro.experiments.common import ExperimentReport
from repro.tuning.digest import knobs_of
from repro.tuning.search import search

__all__ = ["run_tuning"]

#: (label, ranks, version, taskgroups, n_nodes) — the executor/node axes.
_DEFAULT_CELLS: tuple[tuple[str, int, str, int, int], ...] = (
    ("2x8 original", 2, "original", 8, 1),
    ("4x8 original", 4, "original", 8, 1),
    ("8 ompss_perfft", 8, "ompss_perfft", 8, 1),
    ("4x8 original 2n", 4, "original", 8, 2),
)


def run_tuning(
    ecutwfc: float = 80.0,
    alat: float = 20.0,
    nbnd: int = 128,
    cells: _t.Sequence[tuple[str, int, str, int, int]] = _DEFAULT_CELLS,
    bands: _t.Sequence[int] | None = None,
    jobs: int = 1,
    mode: str | None = None,
    top_k: int = 6,
    survivors: int = 2,
) -> ExperimentReport:
    """Search every matrix cell; report win rate and speedup distribution.

    ``bands`` extends the matrix along the band axis (each cell runs once
    per band count); the default is the single ``nbnd`` column.
    """
    band_axis = tuple(bands) if bands is not None else (nbnd,)
    records: list[dict] = []
    for label, ranks, version, taskgroups, n_nodes in cells:
        for nb in band_axis:
            config = RunConfig(
                ecutwfc=ecutwfc,
                alat=alat,
                nbnd=nb,
                ranks=ranks,
                taskgroups=taskgroups,
                version=version,
                n_nodes=n_nodes,
            )
            entry = search(
                config, jobs=jobs, mode=mode, top_k=top_k, survivors=survivors
            )
            default_s = entry.provenance.get("incumbent_s")
            if default_s is None:
                # The incumbent fell out of the final rung (it failed);
                # score it directly so the comparison stays honest.
                from repro.core.driver import run_fft_phase

                default_s = run_fft_phase(config).phase_time
            speedup = default_s / entry.score if entry.score > 0 else 1.0
            records.append({
                "cell": f"{label} nbnd={nb}",
                "default_s": default_s,
                "tuned_s": entry.score,
                "speedup": speedup,
                "won": bool(entry.score <= default_s),
                "changed": entry.knobs != knobs_of(config),
                "tuned_knobs": {
                    k: v for k, v in entry.knobs.items()
                    if v != knobs_of(config)[k]
                },
                "evaluated": entry.provenance.get("evaluated"),
            })

    speedups = [r["speedup"] for r in records]
    win_rate = sum(1 for r in records if r["won"]) / len(records)
    data = {
        "cells": records,
        "n_cells": len(records),
        "win_rate": win_rate,
        "median_speedup": statistics.median(speedups),
        "max_speedup": max(speedups),
        "changed_cells": sum(1 for r in records if r["changed"]),
    }

    lines = ["Tuned vs default (simulated phase time)", ""]
    lines.append(f"{'cell':<28} {'default':>10} {'tuned':>10} {'speedup':>8}  knobs moved")
    for r in records:
        moved = ", ".join(f"{k}={v}" for k, v in r["tuned_knobs"].items()) or "(none)"
        lines.append(
            f"{r['cell']:<28} {r['default_s'] * 1e3:8.2f} ms {r['tuned_s'] * 1e3:8.2f} ms "
            f"{r['speedup']:7.2f}x  {moved}"
        )
    lines.append("")
    lines.append(
        f"win rate {win_rate:.0%} over {len(records)} cell(s); "
        f"median speedup {data['median_speedup']:.2f}x, "
        f"max {data['max_speedup']:.2f}x; "
        f"{data['changed_cells']} cell(s) moved off the default knobs"
    )
    return ExperimentReport(name="tuning", data=data, text="\n".join(lines))
