"""Table I: POP efficiency/scalability factors for the original version.

Executions with 1-16 ranks x 8 FFT task groups (32x8 is excluded in the
paper because "it does not provide any additional benefit or information
over 16x8").  Each column needs two runs: the measured one and the
ideal-network replay identifying the sync/transfer split.
"""

from __future__ import annotations

import typing as _t

from repro.core.driver import run_fft_phase
from repro.experiments.common import ExperimentReport, paper_config
from repro.experiments.paperdata import PAPER
from repro.perf.popmodel import BaseMetrics, factors_from_run, ideal_network
from repro.perf.report import format_factor_table

__all__ = ["run_table1", "factor_columns"]


def factor_columns(
    version: str,
    ranks: _t.Sequence[int],
    with_reference: bool = True,
    **overrides: _t.Any,
) -> tuple[list, dict]:
    """Measured factor columns for one executor version over a rank sweep."""
    columns = []
    base: BaseMetrics | None = None
    runtimes = {}
    for n in ranks:
        cfg = paper_config(n, version, **overrides)
        result = run_fft_phase(cfg)
        ideal = run_fft_phase(cfg, knl=ideal_network())
        if base is None:
            base = BaseMetrics.from_run(result)
        fs = factors_from_run(result, ideal_time=ideal.phase_time, base=base)
        label = f"{n}x8"
        columns.append((label, fs))
        runtimes[label] = result.phase_time
    return columns, runtimes


def run_table1(ranks: _t.Sequence[int] = (1, 2, 4, 8, 16), **overrides: _t.Any) -> ExperimentReport:
    """Reproduce Table I (original version)."""
    columns, runtimes = factor_columns("original", ranks, **overrides)
    reference = PAPER["table1"] if tuple(f"{n}x8" for n in ranks) == PAPER["config_labels"] else None
    text = format_factor_table(
        columns,
        title="Table I — efficiency and scalability factors, original version",
        reference=reference,
    )
    return ExperimentReport(
        name="table1",
        data={
            "columns": {label: dict(fs.as_rows()) for label, fs in columns},
            "runtime_s": runtimes,
        },
        text=text,
    )
