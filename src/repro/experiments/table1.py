"""Table I: POP efficiency/scalability factors for the original version.

Executions with 1-16 ranks x 8 FFT task groups (32x8 is excluded in the
paper because "it does not provide any additional benefit or information
over 16x8").  Each column needs two runs: the measured one and the
ideal-network replay identifying the sync/transfer split.

The rank sweep runs through :mod:`repro.sweep`: each point executes the
measured + ideal pair in a worker and reduces to
:class:`~repro.perf.popmodel.RunAggregates`; the factor columns are then
computed here in the parent, because every column's scalability factors are
relative to the *first* point's aggregates (the base run).
"""

from __future__ import annotations

import typing as _t

from repro.experiments.common import ExperimentReport, paper_config, sweep_summaries
from repro.experiments.paperdata import PAPER
from repro.perf.popmodel import BaseMetrics, RunAggregates, factors_from_aggregates
from repro.perf.report import format_factor_table
from repro.sweep import SweepTask

__all__ = ["run_table1", "factor_columns", "reduce_pop"]


def reduce_pop(task, result, ideal, trace) -> dict:
    """Sweep reduction for a POP column: aggregates + the ideal replay time."""
    return {
        "aggregates": RunAggregates.from_run(result).to_dict(),
        "ideal_time_s": ideal.phase_time if ideal is not None else None,
    }


def factor_columns(
    version: str,
    ranks: _t.Sequence[int],
    with_reference: bool = True,
    jobs: int = 1,
    **overrides: _t.Any,
) -> tuple[list, dict]:
    """Measured factor columns for one executor version over a rank sweep."""
    tasks = [
        SweepTask(
            key=f"ranks={n}",
            config=paper_config(n, version, **overrides),
            reducer="repro.experiments.table1:reduce_pop",
            ideal_replay=True,
        )
        for n in ranks
    ]
    summaries = sweep_summaries(tasks, jobs=jobs)

    columns = []
    base: BaseMetrics | None = None
    runtimes = {}
    for n in ranks:
        summary = summaries[f"ranks={n}"]
        agg = RunAggregates.from_dict(summary["aggregates"])
        if base is None:
            base = agg.base_metrics()
        fs = factors_from_aggregates(agg, ideal_time=summary["ideal_time_s"], base=base)
        label = f"{n}x8"
        columns.append((label, fs))
        runtimes[label] = agg.runtime
    return columns, runtimes


def run_table1(
    ranks: _t.Sequence[int] = (1, 2, 4, 8, 16), jobs: int = 1, **overrides: _t.Any
) -> ExperimentReport:
    """Reproduce Table I (original version)."""
    columns, runtimes = factor_columns("original", ranks, jobs=jobs, **overrides)
    reference = PAPER["table1"] if tuple(f"{n}x8" for n in ranks) == PAPER["config_labels"] else None
    text = format_factor_table(
        columns,
        title="Table I — efficiency and scalability factors, original version",
        reference=reference,
    )
    return ExperimentReport(
        name="table1",
        data={
            "columns": {label: dict(fs.as_rows()) for label, fs in columns},
            "runtime_s": runtimes,
        },
        text=text,
    )
