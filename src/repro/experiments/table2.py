"""Table II: POP factors for the OmpSs per-FFT version.

"Executions with 1-16 ranks with 8 OmpSs tasks each" — N MPI ranks whose 8
threads replace the FFT task groups (ntg = 1).
"""

from __future__ import annotations

import typing as _t

from repro.experiments.common import ExperimentReport
from repro.experiments.paperdata import PAPER
from repro.experiments.table1 import factor_columns
from repro.perf.report import format_factor_table

__all__ = ["run_table2"]


def run_table2(
    ranks: _t.Sequence[int] = (1, 2, 4, 8, 16), jobs: int = 1, **overrides: _t.Any
) -> ExperimentReport:
    """Reproduce Table II (OmpSs per-FFT version)."""
    columns, runtimes = factor_columns("ompss_perfft", ranks, jobs=jobs, **overrides)
    reference = PAPER["table2"] if tuple(f"{n}x8" for n in ranks) == PAPER["config_labels"] else None
    text = format_factor_table(
        columns,
        title="Table II — efficiency and scalability factors, OmpSs per-FFT version",
        reference=reference,
    )
    return ExperimentReport(
        name="table2",
        data={
            "columns": {label: dict(fs.as_rows()) for label, fs in columns},
            "runtime_s": runtimes,
        },
        text=text,
    )
