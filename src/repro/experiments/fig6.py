"""Figure 6: runtime of the original vs. the OmpSs per-FFT version.

Claims under test (Section V): "the version using OmpSs performs the FFT
phase about 7-10 % faster (not counting hyper-threading), in particular,
the fastest version with OmpSs (16x8) is about 10 % faster as the fastest
original version (8x8)", and the OmpSs version gains "about 3 %" more from
two-time hyper-threading.
"""

from __future__ import annotations

import typing as _t

from repro.experiments.common import ExperimentReport, paper_config, sweep_summaries
from repro.experiments.paperdata import PAPER
from repro.perf.report import format_series
from repro.sweep import SweepTask

__all__ = ["run_fig6"]

TIMING_REDUCER = "repro.experiments.common:reduce_efficiency"


def run_fig6(
    ranks: _t.Sequence[int] = (1, 2, 4, 8, 16, 32), jobs: int = 1, **overrides: _t.Any
) -> ExperimentReport:
    """Run both versions over the rank sweep and check the claims."""
    tasks = [
        SweepTask(
            key=f"ranks={n},version={version}",
            config=paper_config(n, version, **overrides),
            reducer=TIMING_REDUCER,
        )
        for n in ranks
        for version in ("original", "ompss_perfft")
    ]
    summaries = sweep_summaries(tasks, jobs=jobs)
    original: dict[str, float] = {}
    ompss: dict[str, float] = {}
    efficiency: dict[str, dict[str, dict | None]] = {
        "original": {},
        "ompss_perfft": {},
    }
    for n in ranks:
        label = f"{n}x8"
        original[label] = summaries[f"ranks={n},version=original"]["phase_time_s"]
        ompss[label] = summaries[f"ranks={n},version=ompss_perfft"]["phase_time_s"]
        for version in ("original", "ompss_perfft"):
            efficiency[version][label] = summaries[
                f"ranks={n},version={version}"
            ].get("efficiency")

    speedups = {
        label: 1.0 - ompss[label] / original[label]
        for label in original
    }
    no_ht = [f"{n}x8" for n in ranks if n * 8 <= 68]
    best_orig = min(original, key=original.get)
    best_ompss = min(ompss, key=ompss.get)
    best_vs_best = 1.0 - ompss[best_ompss] / original[best_orig]
    ht_gain = None
    if "8x8" in ompss and "16x8" in ompss:
        ht_gain = 1.0 - ompss["16x8"] / ompss["8x8"]

    series = [(f"{l} orig", t) for l, t in original.items()] + [
        (f"{l} ompss", t) for l, t in ompss.items()
    ]
    claim = PAPER["fig6"]
    lines = [
        format_series(series, title="Fig. 6 — FFT phase runtime, original vs OmpSs"),
        "",
        "per-configuration OmpSs speedup: "
        + ", ".join(f"{l}: {s * 100:.1f}%" for l, s in speedups.items()),
        f"best original: {best_orig} ({original[best_orig] * 1e3:.2f} ms); "
        f"best OmpSs: {best_ompss} ({ompss[best_ompss] * 1e3:.2f} ms)",
        f"best-vs-best speedup: {best_vs_best * 100:.1f}%  (paper: ~{claim['best_vs_best'] * 100:.0f}%)",
    ]
    if ht_gain is not None:
        lines.append(
            f"OmpSs gain from 2x hyper-threading: {ht_gain * 100:.1f}%  "
            f"(paper: ~{claim['ht_gain_ompss'] * 100:.0f}%)"
        )
    lines.append(
        f"paper claim: OmpSs 7-10% faster without hyper-threading "
        f"(measured on {no_ht}: "
        + ", ".join(f"{l}: {speedups[l] * 100:.1f}%" for l in no_ht if l in speedups)
        + ")"
    )
    for version, title in (("original", "orig"), ("ompss_perfft", "ompss")):
        cells = [
            f"{label}: {eff['parallel_efficiency']:.3f}"
            for label, eff in efficiency[version].items()
            if eff is not None
        ]
        if cells:
            lines.append(f"POP parallel efficiency ({title}): " + ", ".join(cells))
    return ExperimentReport(
        name="fig6",
        data={
            "original_s": original,
            "ompss_s": ompss,
            "speedups": speedups,
            "best_original": best_orig,
            "best_ompss": best_ompss,
            "best_vs_best": best_vs_best,
            "ht_gain_ompss": ht_gain,
            "efficiency": efficiency,
        },
        text="\n".join(lines),
    )
