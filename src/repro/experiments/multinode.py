"""Multi-node extension: testing the paper's §IV scale claim.

"The first optimization strategy is especially targeting large scales where
the impact of the communication is very high and the computational load is
relatively rather small.  The second optimization is especially targeting
scenarios with high computational load."  The paper could only evaluate the
second (one 68-core node); this experiment runs both — plus the §VI
combination (per-FFT tasks with MPI task switching) — on simulated clusters
of 1, 2 and 4 KNL nodes at fixed per-node occupancy (64 processes/node),
where the inter-node fabric makes communication progressively dominant.

Expected (and asserted in the benchmark): the overlap-based Opt 1's
advantage over the original *grows* with scale, and it overtakes the
de-synchronization-based Opt 2 once communication dominates — the paper's
prediction, observable here because the simulator has the multi-node fabric
the authors' testbed lacked.
"""

from __future__ import annotations

import typing as _t

from repro.core.config import RunConfig
from repro.experiments.common import ExperimentReport, paper_config, sweep_summaries
from repro.perf.report import format_series
from repro.sweep import SweepTask

__all__ = ["run_multinode", "reduce_multinode"]

VARIANTS: tuple[tuple[str, str, bool | None], ...] = (
    ("original", "original", None),
    ("opt1 per-step", "ompss_steps", None),
    ("opt2 per-fft", "ompss_perfft", None),
    ("combined (ts)", "ompss_perfft", True),
)

#: Data-plane comparison: decomposition x redistribution on the original
#: executor.  "slab packfree" is the executor variants' default above; the
#: packed twin isolates the staging-copy cost (identical simulated network
#: traffic by construction) and the pencil rows probe the Pr x Pc grid whose
#: row/col transposes keep more traffic intra-node at scale.
DATAPLANE_VARIANTS: tuple[tuple[str, dict], ...] = (
    ("slab packed", {"redistribution": "packed"}),
    ("slab packfree", {"redistribution": "packfree"}),
    ("pencil packfree", {"decomposition": "pencil"}),
)


def reduce_multinode(task, result, ideal, trace) -> dict:
    """Runtime, inter-node fabric traffic and POP factors of one cluster run."""
    from repro.experiments.common import reduce_efficiency

    out = reduce_efficiency(task, result, ideal, trace)
    out["inter_bytes"] = getattr(result.world.network, "inter_bytes", 0.0)
    return out


def run_multinode(
    nodes: _t.Sequence[int] = (1, 2, 4), jobs: int = 1, **overrides: _t.Any
) -> ExperimentReport:
    """Sweep node counts at fixed per-node occupancy for all variants."""
    tasks = [
        SweepTask(
            key=f"nodes={n},variant={label}",
            config=paper_config(
                8 * n, version, n_nodes=n, task_switching=switching, **overrides
            ),
            reducer="repro.experiments.multinode:reduce_multinode",
        )
        for n in nodes
        for label, version, switching in VARIANTS
    ]
    tasks += [
        SweepTask(
            key=f"nodes={n},dataplane={label}",
            config=paper_config(
                8 * n, "original", n_nodes=n, **{**extra, **overrides}
            ),
            reducer="repro.experiments.multinode:reduce_multinode",
        )
        for n in nodes
        for label, extra in DATAPLANE_VARIANTS
    ]
    summaries = sweep_summaries(tasks, jobs=jobs)
    runtimes: dict[str, dict[int, float]] = {label: {} for label, _v, _t2 in VARIANTS}
    inter_bytes: dict[int, float] = {}
    efficiency: dict[str, dict[int, dict | None]] = {
        label: {} for label, _v, _t2 in VARIANTS
    }
    dp_runtimes: dict[str, dict[int, float]] = {
        label: {} for label, _e in DATAPLANE_VARIANTS
    }
    dp_efficiency: dict[str, dict[int, dict | None]] = {
        label: {} for label, _e in DATAPLANE_VARIANTS
    }
    dp_inter_bytes: dict[str, dict[int, float]] = {
        label: {} for label, _e in DATAPLANE_VARIANTS
    }
    for n in nodes:
        for label, _version, _switching in VARIANTS:
            summary = summaries[f"nodes={n},variant={label}"]
            runtimes[label][n] = summary["phase_time_s"]
            inter_bytes[n] = summary["inter_bytes"]
            efficiency[label][n] = summary.get("efficiency")
        for label, _extra in DATAPLANE_VARIANTS:
            summary = summaries[f"nodes={n},dataplane={label}"]
            dp_runtimes[label][n] = summary["phase_time_s"]
            dp_efficiency[label][n] = summary.get("efficiency")
            dp_inter_bytes[label][n] = summary["inter_bytes"]

    speedups = {
        label: {
            n: 1.0 - runtimes[label][n] / runtimes["original"][n] for n in nodes
        }
        for label, _v, _t2 in VARIANTS
        if label != "original"
    }

    series = [
        (f"{n} node(s) {label}", runtimes[label][n])
        for n in nodes
        for label, _v, _t2 in VARIANTS
    ]
    lines = [
        format_series(series, title="Multi-node sweep (64 processes per node)"),
        "",
        "speedup over the original version:",
    ]
    for label, per_node in speedups.items():
        lines.append(
            f"  {label:<14} "
            + "  ".join(f"{n}n: {s * 100:+5.1f}%" for n, s in per_node.items())
        )
    lines += [
        "",
        "fabric traffic: "
        + ", ".join(f"{n}n: {inter_bytes[n] / 1e6:.0f} MB" for n in nodes),
        "POP parallel efficiency per node count:",
    ]
    for label, per_node in efficiency.items():
        cells = [
            f"{n}n: {eff['parallel_efficiency']:.3f} (LB {eff['load_balance']:.3f})"
            for n, eff in per_node.items()
            if eff is not None
        ]
        if cells:
            lines.append(f"  {label:<14} " + "  ".join(cells))
    lines += [
        "paper §IV: Opt 1 (overlap) targets communication-dominated scales;",
        "Opt 2 (de-sync) targets compute-dominated ones — watch the crossover.",
        "",
        "data plane (original executor, decomposition x redistribution):",
    ]
    for label, per_node in dp_runtimes.items():
        cells = []
        for n in nodes:
            eff = dp_efficiency[label][n]
            pe = f" PE {eff['parallel_efficiency']:.3f}" if eff else ""
            cells.append(f"{n}n: {per_node[n] * 1e3:.2f} ms{pe}")
        lines.append(f"  {label:<16} " + "  ".join(cells))
    return ExperimentReport(
        name="multinode",
        data={
            "runtime_s": runtimes,
            "speedups": speedups,
            "inter_bytes": inter_bytes,
            "efficiency": efficiency,
            "dataplane": {
                "runtime_s": dp_runtimes,
                "efficiency": dp_efficiency,
                "inter_bytes": dp_inter_bytes,
            },
        },
        text="\n".join(lines),
    )
