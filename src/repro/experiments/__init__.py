"""Experiment runners: one module per paper artifact.

Each runner executes the simulated configurations behind one table or
figure of the paper, packages the measured series/factors together with the
paper's published values (:mod:`~repro.experiments.paperdata`), and renders
a printable report.  The benchmark harness under ``benchmarks/`` and the
CLI both dispatch here.

| Module    | Paper artifact                                                |
|-----------|---------------------------------------------------------------|
| fig2      | Fig. 2 — FFT-phase runtime vs. ranks, original               |
| table1    | Table I — POP factors, original, 1x8..16x8                   |
| fig3      | Fig. 3 — timeline: phase IPCs, MPI calls, communicators      |
| table2    | Table II — POP factors, OmpSs per-FFT, 1x8..16x8             |
| fig6      | Fig. 6 — runtime original vs. OmpSs (+ the 7-10 % claim)     |
| fig7      | Fig. 7 — de-synchronization timelines + IPC histograms       |
| ablations | ntg sweep, grainsize, hyper-threading, scheduler, versions   |
| resilience| fault-scenario degradation, original vs OmpSs per-FFT        |
"""

from repro.experiments.paperdata import PAPER
from repro.experiments.fig2 import run_fig2
from repro.experiments.table1 import run_table1
from repro.experiments.fig3 import run_fig3
from repro.experiments.table2 import run_table2
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.ablations import (
    run_ablation_grainsize,
    run_ablation_hyperthreading,
    run_ablation_ntg,
    run_ablation_scheduler,
    run_ablation_versions,
)
from repro.experiments.whatif import run_ablation_whatif
from repro.experiments.multinode import run_multinode
from repro.experiments.validation import run_validation
from repro.experiments.resilience import run_resilience
from repro.experiments.tuning import run_tuning

__all__ = [
    "PAPER",
    "run_fig2",
    "run_table1",
    "run_fig3",
    "run_table2",
    "run_fig6",
    "run_fig7",
    "run_ablation_ntg",
    "run_ablation_grainsize",
    "run_ablation_hyperthreading",
    "run_ablation_scheduler",
    "run_ablation_versions",
    "run_ablation_whatif",
    "run_multinode",
    "run_validation",
    "run_resilience",
    "run_tuning",
]
