"""Numerical certification: every executor against the dense reference.

Not a paper artifact — the reproduction's own acceptance gate, runnable
from the CLI.  Executes the full data-mode matrix (all five executors over
several process grids, plus a multi-node run and both scheduler families)
on a mid-size workload, checks the distributed output against the dense
single-grid reference and the G-space <psi|V|psi> observable against its
real-space definition, and prints a certification table.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.core.config import RunConfig
from repro.core.driver import run_fft_phase
from repro.core.observables import potential_expectation, potential_expectation_dense
from repro.experiments.common import ExperimentReport

__all__ = ["run_validation"]

#: Mid-size workload: big enough to exercise uneven distributions, small
#: enough that the dense reference stays quick.
WORKLOAD = dict(ecutwfc=30.0, alat=10.0, nbnd=16)


def run_validation(**overrides: _t.Any) -> ExperimentReport:
    """Run the certification matrix; returns per-case errors."""
    workload = {**WORKLOAD, **overrides}
    cases: list[tuple[str, RunConfig]] = []
    for version in ("original", "pipelined", "ompss_perfft", "ompss_steps", "ompss_combined"):
        cases.append(
            (f"{version} 2x2", RunConfig(**workload, ranks=2, taskgroups=2, version=version, data_mode=True))
        )
    wide_tg = min(8, workload["nbnd"] // 2)  # widest pack group the bands allow
    cases += [
        ("original 4x2", RunConfig(**workload, ranks=4, taskgroups=2, data_mode=True)),
        (f"original 1x{wide_tg}", RunConfig(**workload, ranks=1, taskgroups=wide_tg, data_mode=True)),
        ("perfft lifo", RunConfig(**workload, ranks=2, taskgroups=4, version="ompss_perfft", scheduler="lifo", data_mode=True)),
        ("perfft wsteal", RunConfig(**workload, ranks=2, taskgroups=4, version="ompss_perfft", scheduler="wsteal", data_mode=True)),
        ("original 2 nodes", RunConfig(**workload, ranks=2, taskgroups=2, n_nodes=2, data_mode=True)),
    ]

    rows = []
    worst = 0.0
    for label, cfg in cases:
        result = run_fft_phase(cfg)
        err = result.validate()
        obs_err = float(
            np.abs(
                potential_expectation(result) - potential_expectation_dense(result)
            ).max()
        )
        rows.append((label, err, obs_err))
        worst = max(worst, err)

    lines = [
        "Numerical certification (distributed vs dense reference)",
        f"{'case':<22}{'max rel error':>16}{'observable err':>16}",
        "-" * 54,
    ]
    for label, err, obs_err in rows:
        lines.append(f"{label:<22}{err:>16.2e}{obs_err:>16.2e}")
    lines.append("-" * 54)
    verdict = "PASS" if worst < 1e-11 else "FAIL"
    lines.append(f"worst case: {worst:.2e}  ->  {verdict}")

    return ExperimentReport(
        name="validation",
        data={"cases": {label: {"error": e, "observable": o} for label, e, o in rows},
              "worst": worst,
              "passed": worst < 1e-11},
        text="\n".join(lines),
    )
