"""The paper's published numbers (the reproduction targets).

Tables I/II are transcribed verbatim; figure-level claims are taken from
the text of Sections III and V.  EXPERIMENTS.md records measured-vs-paper
for every entry here.
"""

from __future__ import annotations

__all__ = ["PAPER"]

#: Column labels of both tables.
CONFIG_LABELS = ("1x8", "2x8", "4x8", "8x8", "16x8")

#: Table I — original version, percentages.
TABLE1 = {
    "Parallel efficiency": (95.75, 91.21, 92.70, 90.97, 86.15),
    "-> Load Balance": (97.31, 95.04, 98.31, 98.18, 96.91),
    "-> Communication Efficiency": (98.40, 95.97, 94.29, 92.66, 88.90),
    "   -> Synchronization": (99.56, 98.88, 98.09, 97.76, 95.81),
    "   -> Transfer": (98.83, 97.06, 96.13, 94.78, 92.78),
    "Computation Scalability": (100.00, 91.87, 78.09, 54.74, 27.32),
    "-> IPC Scalability": (100.00, 92.78, 78.68, 56.28, 28.26),
    "-> Instructions Scalability": (100.00, 99.78, 99.62, 99.42, 98.88),
    "Global Efficiency": (95.75, 83.80, 72.39, 49.79, 23.54),
}

#: Table II — OmpSs per-FFT version, percentages.
TABLE2 = {
    "Parallel efficiency": (99.13, 95.53, 91.67, 83.33, 70.47),
    "-> Load Balance": (99.86, 98.25, 95.52, 91.81, 90.32),
    "-> Communication Efficiency": (99.26, 97.23, 95.97, 90.77, 78.03),
    "   -> Synchronization": (100.00, 99.84, 99.85, 97.52, 92.17),
    "   -> Transfer": (99.26, 97.39, 96.11, 93.07, 84.66),
    "Computation Scalability": (100.00, 92.56, 81.16, 61.36, 37.29),
    "-> IPC Scalability": (100.00, 94.04, 84.05, 66.14, 42.57),
    "-> Instructions Scalability": (100.00, 99.46, 98.55, 97.19, 91.18),
    "Global Efficiency": (99.13, 88.42, 74.40, 51.13, 26.28),
}

PAPER = {
    "workload": {
        "ecutwfc": 80.0,
        "alat": 20.0,
        "nbnd": 128,
        "taskgroups": 8,
        "n_complex_ffts": 64,  # "the 64 FFTs are executed with 8 FFTs at the same time"
        "repeating_phases": 8,
    },
    "machine": {
        "n_cores": 68,
        "frequency_ghz": 1.4,
        "hyperthreads": 4,
    },
    "config_labels": CONFIG_LABELS,
    "table1": TABLE1,
    "table2": TABLE2,
    "fig3": {
        # Per-phase IPC anchors read off the Fig. 3 timeline (full node).
        "prepare_psis_ipc": 0.06,
        "fft_z_ipc": 0.52,
        "central_phase_ipc": 0.77,  # fw-XY + inner loop + bw-XY
        # Communicator structure: "for a setup of R x T there are R
        # sub-communicators with T ranks each" (pack) and "T
        # sub-communicators with R ranks each" (scatter, strided).
        "pack_comms_of_8x8": 8,
        "pack_comm_size_8x8": 8,
        "scatter_comms_of_8x8": 8,
        "scatter_comm_size_8x8": 8,
    },
    "avg_ipc": {
        # Section V text: compute IPC of the original and OmpSs versions.
        ("original", "1x8"): 1.1,
        ("original", "8x8"): 0.6,
        ("original", "16x8"): 0.3,
        ("ompss_perfft", "8x8"): 0.8,
        ("ompss_perfft", "16x8"): 0.5,
    },
    "fig6": {
        "speedup_range": (0.07, 0.10),  # "about 7-10 % faster"
        "best_vs_best": 0.10,  # OmpSs 16x8 ~10 % over original 8x8
        "ht_gain_ompss": 0.03,  # "additional runtime reduction ... of about 3 %"
    },
    "fig7": {
        "main_phase_ipc_original": 0.75,
        "main_phase_ipc_ompss": 0.85,
    },
}
