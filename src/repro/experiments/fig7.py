"""Figure 7: the de-synchronization effect, 8x8 original vs. OmpSs.

Left panels (timelines): the original executes the compute phases in
synchronized blocks across processes; the OmpSs version executes them
asynchronously.  Right panels (histograms): the per-phase IPC distribution
— tightly clustered for the original, scattered and shifted right for
OmpSs; "the average IPC for these phases is increased from about 0.75 to
0.85 IPC".

We quantify both: the main-phase IPC shift, the IPC spread, and a
synchrony index (what fraction of main-phase compute time overlaps with
more than 3/4 of the node also being in the main phase).  The two traced
runs execute through the sweep engine (one point per version).
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.experiments.common import ExperimentReport, paper_config, sweep_summaries
from repro.experiments.paperdata import PAPER
from repro.machine import knl_parameters
from repro.perf.report import format_comparison
from repro.perf.timeline import ipc_histogram, phase_intervals
from repro.perf.tracer import Trace
from repro.sweep import SweepTask

__all__ = ["run_fig7", "synchrony_index", "reduce_fig7"]

MAIN_PHASES = ("fft_xy",)


def synchrony_index(trace: Trace, phases: _t.Collection[str], threshold: float = 0.75) -> float:
    """Fraction of phase time spent while >= threshold of streams run the same phases.

    1.0 means perfectly synchronized execution (the original's lock-step
    blocks); lower values mean de-synchronization.
    """
    intervals = [iv for iv in phase_intervals(trace, 1.0) if iv.phase in phases]
    if not intervals:
        return 0.0
    n_streams = len(trace.streams)
    edges = sorted({iv.begin for iv in intervals} | {iv.end for iv in intervals})
    synced = 0.0
    total = 0.0
    for a, b in zip(edges, edges[1:]):
        mid = 0.5 * (a + b)
        active = sum(1 for iv in intervals if iv.begin <= mid < iv.end)
        span = (b - a) * active
        total += span
        if active >= threshold * n_streams:
            synced += span
    return synced / total if total > 0 else 0.0


def reduce_fig7(task, result, ideal, trace) -> dict:
    """In-worker reduction: main-phase IPC statistics of one traced version."""
    freq = knl_parameters().frequency_hz
    hist, edges, _streams = ipc_histogram(trace, freq, phases=MAIN_PHASES)
    weights = hist.sum(axis=0)
    centers = 0.5 * (edges[:-1] + edges[1:])
    total = weights.sum()
    mean = float((weights * centers).sum() / total) if total > 0 else 0.0
    var = float((weights * (centers - mean) ** 2).sum() / total) if total > 0 else 0.0
    out = {
        "mean_ipc": mean,
        "ipc_std": float(np.sqrt(var)),
        "synchrony": synchrony_index(trace, MAIN_PHASES),
        "efficiency": None,
    }
    # The traced records carry the full sync/transfer split, so the POP
    # factors here are the trace-estimated decomposition, not the neutral
    # counters-only one.
    from repro.analysis import decompose, timelines_from_trace

    timelines = timelines_from_trace(trace) if trace is not None else []
    if timelines and result.phase_time > 0:
        pop = decompose(timelines, result.phase_time)
        out["efficiency"] = {
            "parallel_efficiency": pop.parallel_efficiency,
            "load_balance": pop.load_balance,
            "serialization_efficiency": pop.serialization_efficiency,
            "transfer_efficiency": pop.transfer_efficiency,
            "communication_efficiency": pop.communication_efficiency,
            "split_source": pop.split_source,
        }
    return out


def run_fig7(ranks: int = 8, jobs: int = 1, **overrides: _t.Any) -> ExperimentReport:
    """Trace both versions at 8x8 and compare the main-phase behaviour."""
    tasks = [
        SweepTask(
            key=f"version={version}",
            config=paper_config(ranks, version, **overrides),
            reducer="repro.experiments.fig7:reduce_fig7",
            trace=True,
        )
        for version in ("original", "ompss_perfft")
    ]
    summaries = sweep_summaries(tasks, jobs=jobs)
    stats = {
        version: summaries[f"version={version}"]
        for version in ("original", "ompss_perfft")
    }
    anchors = PAPER["fig7"]
    rows = [
        ("main-phase IPC (original)", stats["original"]["mean_ipc"], anchors["main_phase_ipc_original"]),
        ("main-phase IPC (OmpSs)", stats["ompss_perfft"]["mean_ipc"], anchors["main_phase_ipc_ompss"]),
    ]
    lines = [
        format_comparison(rows, title="Fig. 7 — de-synchronization of the main compute phase (8x8)"),
        "",
        f"IPC spread (std): original {stats['original']['ipc_std']:.3f} -> "
        f"OmpSs {stats['ompss_perfft']['ipc_std']:.3f} (paper: 'much more scattered')",
        f"synchrony index:  original {stats['original']['synchrony']:.2f} -> "
        f"OmpSs {stats['ompss_perfft']['synchrony']:.2f} (paper: synchronized blocks -> asynchronous)",
    ]
    for version, title in (("original", "original"), ("ompss_perfft", "OmpSs   ")):
        eff = stats[version].get("efficiency")
        if eff:
            lines.append(
                f"POP factors ({title}): parallel {eff['parallel_efficiency']:.3f} = "
                f"LB {eff['load_balance']:.3f} x ser {eff['serialization_efficiency']:.3f}"
                f" x xfer {eff['transfer_efficiency']:.3f}"
            )
    return ExperimentReport(
        name="fig7",
        data=stats,
        text="\n".join(lines),
    )
