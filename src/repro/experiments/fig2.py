"""Figure 2: FFT-phase runtime of the original version vs. MPI ranks.

"The FFT phase does not scale very well with an increasing number of MPI
ranks and there is no benefit from using the hyper-threading; in fact the
runtime is increased again."  Configurations 1x8 .. 32x8; 16x8 and 32x8 use
2 and 4 hyper-threads per core.  The rank axis runs through the sweep
engine, so ``jobs=N`` executes the configurations concurrently.
"""

from __future__ import annotations

import typing as _t

from repro.experiments.common import ExperimentReport, paper_config, sweep_summaries
from repro.perf.report import format_series
from repro.sweep import SweepTask

__all__ = ["run_fig2"]

TIMING_REDUCER = "repro.experiments.common:reduce_timing"


def run_fig2(
    ranks: _t.Sequence[int] = (1, 2, 4, 8, 16, 32), jobs: int = 1, **overrides: _t.Any
) -> ExperimentReport:
    """Run the Fig. 2 sweep; returns the runtime series."""
    tasks = [
        SweepTask(
            key=f"ranks={n}",
            config=paper_config(n, "original", **overrides),
            reducer=TIMING_REDUCER,
        )
        for n in ranks
    ]
    summaries = sweep_summaries(tasks, jobs=jobs)
    series = []
    ipcs = []
    for n in ranks:
        summary = summaries[f"ranks={n}"]
        label = f"{n}x8"
        series.append((label, summary["phase_time_s"]))
        ipcs.append((label, summary["average_ipc"]))

    best = min(series, key=lambda kv: kv[1])
    lines = [
        format_series(series, title="Fig. 2 — FFT phase runtime, original version"),
        "",
        f"best configuration: {best[0]} ({best[1] * 1e3:.2f} ms)",
        "paper claim: poor scaling; hyper-threaded entries (16x8, 32x8) do not improve",
    ]
    return ExperimentReport(
        name="fig2",
        data={"runtime_s": dict(series), "avg_ipc": dict(ipcs), "best": best[0]},
        text="\n".join(lines),
    )
