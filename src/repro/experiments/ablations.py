"""Ablations: the design knobs DESIGN.md calls out.

* ``run_ablation_ntg`` — §II.A's discussion of the task-group knob: ntg=1
  shifts all communication cost into the scatter (involving all processes),
  ntg=P shifts it into pack/unpack; "all the options between these two
  extreme cases should be benchmarked."
* ``run_ablation_grainsize`` — the taskloop grainsizes of Opt 1 (paper
  uses 10 for the xy loops and 200 for the z loops).
* ``run_ablation_hyperthreading`` — 1/2/4 hyper-threads for both versions
  (the tails of Figs. 2/6).
* ``run_ablation_scheduler`` — Nanos++ ready-queue policies for Opt 2.
* ``run_ablation_versions`` — baseline vs. Opt 1 vs. Opt 2 vs. the §VI
  combined version.

Every sweep here declares its grid through :mod:`repro.sweep`; pass
``jobs=N`` to run the points concurrently.
"""

from __future__ import annotations

import typing as _t

from repro.experiments.common import ExperimentReport, paper_config, sweep_summaries
from repro.perf.report import format_series
from repro.sweep import SweepTask

__all__ = [
    "run_ablation_ntg",
    "run_ablation_grainsize",
    "run_ablation_hyperthreading",
    "run_ablation_scheduler",
    "run_ablation_versions",
]

TIMING_REDUCER = "repro.experiments.common:reduce_timing"


def reduce_ntg(task, result, ideal, trace) -> dict:
    """Runtime plus the pack/scatter MPI-time split from the trace."""
    return {
        "phase_time_s": result.phase_time,
        "pack_s": sum(r.duration for r in trace.mpi if r.comm_name.startswith("pack")),
        "scatter_s": sum(
            r.duration for r in trace.mpi if r.comm_name.startswith("scatter")
        ),
    }


def run_ablation_ntg(
    total_procs: int = 64,
    ntgs: _t.Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    jobs: int = 1,
    **overrides: _t.Any,
) -> ExperimentReport:
    """Sweep the task-group count at a fixed process count (original version)."""
    valid_ntgs = [ntg for ntg in ntgs if not total_procs % ntg]
    tasks = [
        SweepTask(
            key=f"ntg={ntg}",
            config=paper_config(
                total_procs // ntg, "original", taskgroups=ntg, **overrides
            ),
            reducer="repro.experiments.ablations:reduce_ntg",
            trace=True,
        )
        for ntg in valid_ntgs
    ]
    summaries = sweep_summaries(tasks, jobs=jobs)
    series = []
    comm_split = {}
    for ntg in valid_ntgs:
        label = f"ntg={ntg}"
        summary = summaries[label]
        series.append((label, summary["phase_time_s"]))
        comm_split[label] = {
            "pack_s": summary["pack_s"],
            "scatter_s": summary["scatter_s"],
        }

    lines = [
        format_series(series, title=f"ntg sweep at {total_procs} processes (original)"),
        "",
        "MPI time split (accumulated over ranks):",
    ]
    for label, split in comm_split.items():
        lines.append(
            f"  {label:<8} pack {split['pack_s'] * 1e3:8.2f} ms   "
            f"scatter {split['scatter_s'] * 1e3:8.2f} ms"
        )
    lines.append(
        "paper (II.A): ntg=1 -> all cost in the scatter; ntg=P -> all cost in pack/unpack"
    )
    return ExperimentReport(
        name="ablation-ntg",
        data={"runtime_s": dict(series), "comm_split": comm_split},
        text="\n".join(lines),
    )


def run_ablation_grainsize(
    ranks: int = 8,
    grains: _t.Sequence[tuple[int, int]] = ((1, 10), (10, 200), (50, 500), (1000, 10000)),
    jobs: int = 1,
    **overrides: _t.Any,
) -> ExperimentReport:
    """Sweep the Opt 1 taskloop grainsizes (xy, z); paper uses (10, 200)."""
    tasks = [
        SweepTask(
            key=f"xy={gxy},z={gz}",
            config=paper_config(
                ranks, "ompss_steps", grainsize_xy=gxy, grainsize_z=gz, **overrides
            ),
            reducer=TIMING_REDUCER,
        )
        for gxy, gz in grains
    ]
    summaries = sweep_summaries(tasks, jobs=jobs)
    series = [
        (f"xy={gxy},z={gz}", summaries[f"xy={gxy},z={gz}"]["phase_time_s"])
        for gxy, gz in grains
    ]
    lines = [
        format_series(series, title=f"Opt 1 taskloop grainsize sweep ({ranks}x8)"),
        "paper: grainsize 10 (xy) and 200 (z); too-fine grains pay dispatch overhead,",
        "too-coarse grains lose worker parallelism.",
    ]
    return ExperimentReport(
        name="ablation-grainsize",
        data={"runtime_s": dict(series)},
        text="\n".join(lines),
    )


def run_ablation_hyperthreading(jobs: int = 1, **overrides: _t.Any) -> ExperimentReport:
    """1/2/4 hyper-threads per core for both versions (8/16/32 ranks x 8)."""
    points = [
        (version, n, ht)
        for version in ("original", "ompss_perfft")
        for n, ht in ((8, 1), (16, 2), (32, 4))
    ]
    tasks = [
        SweepTask(
            key=f"version={version},ht={ht}",
            config=paper_config(n, version, **overrides),
            reducer=TIMING_REDUCER,
        )
        for version, n, ht in points
    ]
    summaries = sweep_summaries(tasks, jobs=jobs)
    rows = {
        (version, ht): summaries[f"version={version},ht={ht}"]["phase_time_s"]
        for version, _n, ht in points
    }
    series = [
        (f"{v} {ht}xHT", t) for (v, ht), t in rows.items()
    ]
    orig_delta = rows[("original", 2)] / rows[("original", 1)] - 1.0
    ompss_delta = rows[("ompss_perfft", 2)] / rows[("ompss_perfft", 1)] - 1.0
    lines = [
        format_series(series, title="Hyper-threading ablation (full node)"),
        "",
        f"2xHT runtime change: original {orig_delta * +100:+.1f}%, OmpSs {ompss_delta * 100:+.1f}%",
        "paper: original gains nothing (runtime increases); OmpSs gains ~3%",
    ]
    return ExperimentReport(
        name="ablation-ht",
        data={"runtime_s": {f"{v}-{ht}ht": t for (v, ht), t in rows.items()}},
        text="\n".join(lines),
    )


def run_ablation_scheduler(
    ranks: int = 8,
    policies: _t.Sequence[str] = ("fifo", "lifo", "priority", "locality", "wsteal"),
    jobs: int = 1,
    **overrides: _t.Any,
) -> ExperimentReport:
    """Ready-queue policy sweep for the per-FFT version."""
    tasks = [
        SweepTask(
            key=f"scheduler={policy}",
            config=paper_config(ranks, "ompss_perfft", scheduler=policy, **overrides),
            reducer=TIMING_REDUCER,
        )
        for policy in policies
    ]
    summaries = sweep_summaries(tasks, jobs=jobs)
    series = [
        (policy, summaries[f"scheduler={policy}"]["phase_time_s"]) for policy in policies
    ]
    lines = [
        format_series(series, title=f"Scheduler policy sweep, per-FFT tasks ({ranks}x8)"),
        "FIFO keeps all ranks on overlapping band windows, so keyed scatters pair",
        "promptly; depth-first orders delay cross-rank matching.",
    ]
    return ExperimentReport(
        name="ablation-scheduler",
        data={"runtime_s": dict(series)},
        text="\n".join(lines),
    )


def run_ablation_versions(
    ranks: int = 8, jobs: int = 1, **overrides: _t.Any
) -> ExperimentReport:
    """All four executors at the same node occupancy."""
    versions = ("original", "pipelined", "ompss_steps", "ompss_perfft", "ompss_combined")
    tasks = [
        SweepTask(
            key=f"version={version}",
            config=paper_config(ranks, version, **overrides),
            reducer=TIMING_REDUCER,
        )
        for version in versions
    ]
    summaries = sweep_summaries(tasks, jobs=jobs)
    series = []
    ipcs = {}
    for version in versions:
        summary = summaries[f"version={version}"]
        series.append((version, summary["phase_time_s"]))
        ipcs[version] = summary["average_ipc"]
    lines = [
        format_series(series, title=f"Executor comparison ({ranks}x8 workload)"),
        "",
        "average compute IPC: "
        + ", ".join(f"{v}: {i:.3f}" for v, i in ipcs.items()),
        "paper §IV: Opt 1 targets communication-dominated scales, Opt 2 targets",
        "compute-dominated scales (and is the one evaluated on KNL); §VI proposes",
        "combining them.",
    ]
    return ExperimentReport(
        name="ablation-versions",
        data={"runtime_s": dict(series), "avg_ipc": ipcs},
        text="\n".join(lines),
    )
