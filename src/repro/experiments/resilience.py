"""Resilience under injected faults: static vs. dynamic scheduling.

The paper's Section V shows OmpSs tasking de-synchronising the FFT phase to
soften resource contention.  The same mechanism buys *graceful degradation*:
when part of the node slows down (a straggler rank, OS noise on compute),
the original lock-step schedule pays the slowest participant at every
collective, while dynamically scheduled per-FFT tasks keep independent
bands in flight and absorb part of the perturbation.

This experiment runs the original and the OmpSs per-FFT executors under
*identical* fault scenarios (same scenario seed, same injected node share)
and compares the added runtime:

* ``straggler`` — one node share slowed by ``slowdown``: for the per-FFT
  version that is MPI rank 0 (one process, all its worker threads); for
  the original version it is ranks ``0..T-1`` — the T single-threaded
  processes occupying the *same cores* under the paper's N x T mapping.
* ``os_noise`` — multiplicative uniform noise on every compute phase,
  everywhere; the lock-step schedule synchronises on the unluckiest draw
  each iteration.

Fault injection never fires MPI retries or task re-execution here — the
scenarios only perturb compute speed — so the comparison isolates the
scheduling response to slowdown.
"""

from __future__ import annotations

import typing as _t

import dataclasses

from repro.experiments.common import ExperimentReport, paper_config, sweep_summaries
from repro.faults import FaultScenario, Straggler
from repro.sweep import SweepTask

__all__ = ["run_resilience", "reduce_resilience"]


def _degradation(base: float, slow: float) -> float:
    return slow / base - 1.0


def reduce_resilience(task, result, ideal, trace) -> dict:
    """Runtime plus the fault report (``None`` for the fault-free baseline)."""
    return {
        "phase_time_s": result.phase_time,
        "fault_report": result.fault_report,
        "failed": result.failed,
    }


def run_resilience(
    ranks: int = 4,
    slowdown: float = 4.0,
    os_noise: float = 0.5,
    scenario_seed: int = 0,
    jobs: int = 1,
    **overrides: _t.Any,
) -> ExperimentReport:
    """Measure fault-scenario degradation, original vs. OmpSs per-FFT."""
    taskgroups = int(overrides.get("taskgroups", 8))
    configs = {
        "original": paper_config(ranks, "original", **overrides),
        "ompss_perfft": paper_config(ranks, "ompss_perfft", **overrides),
    }
    # The same node share straggles in both versions: per-FFT rank 0 owns
    # the cores that original ranks 0..T-1 run on.
    stragglers = {
        "original": FaultScenario(
            name="straggler",
            seed=scenario_seed,
            stragglers=[Straggler(rank=r, slowdown=slowdown) for r in range(taskgroups)],
        ),
        "ompss_perfft": FaultScenario(
            name="straggler",
            seed=scenario_seed,
            stragglers=[Straggler(rank=0, slowdown=slowdown)],
        ),
    }
    noise = FaultScenario(name="os_noise", seed=scenario_seed, os_noise=os_noise)

    scenarios: dict[str, _t.Callable[[str], FaultScenario | None]] = {
        "baseline": lambda version: None,
        "straggler": lambda version: stragglers[version],
        "os_noise": lambda version: noise,
    }
    tasks = [
        SweepTask(
            key=f"version={version},scenario={name}",
            config=dataclasses.replace(config, faults=scenario_of(version)),
            reducer="repro.experiments.resilience:reduce_resilience",
        )
        for version, config in configs.items()
        for name, scenario_of in scenarios.items()
    ]
    summaries = sweep_summaries(tasks, jobs=jobs)

    baseline: dict[str, float] = {}
    straggled: dict[str, float] = {}
    noisy: dict[str, float] = {}
    reports: dict[str, dict] = {}
    for version in configs:
        baseline[version] = summaries[f"version={version},scenario=baseline"]["phase_time_s"]
        res_s = summaries[f"version={version},scenario=straggler"]
        res_n = summaries[f"version={version},scenario=os_noise"]
        straggled[version] = res_s["phase_time_s"]
        noisy[version] = res_n["phase_time_s"]
        reports[version] = {
            "straggler": res_s["fault_report"],
            "os_noise": res_n["fault_report"],
        }

    degr_straggler = {
        v: _degradation(baseline[v], straggled[v]) for v in configs
    }
    degr_noise = {v: _degradation(baseline[v], noisy[v]) for v in configs}
    added_straggler = {v: straggled[v] - baseline[v] for v in configs}
    graceful_straggler = degr_straggler["ompss_perfft"] < degr_straggler["original"]
    graceful_noise = degr_noise["ompss_perfft"] < degr_noise["original"]

    lines = [
        f"Resilience — {ranks}x{taskgroups}, straggler x{slowdown:g} on one "
        f"node share, os_noise {os_noise:g} (scenario seed {scenario_seed})",
        "",
        f"{'version':<14} {'baseline':>10} {'straggler':>10} {'degr':>8} "
        f"{'os_noise':>10} {'degr':>8}",
    ]
    for v in configs:
        lines.append(
            f"{v:<14} {baseline[v] * 1e3:>8.2f}ms {straggled[v] * 1e3:>8.2f}ms "
            f"{degr_straggler[v] * 100:>7.1f}% {noisy[v] * 1e3:>8.2f}ms "
            f"{degr_noise[v] * 100:>7.1f}%"
        )
    lines += [
        "",
        "claim: dynamic per-FFT tasks degrade more gracefully than the "
        "lock-step original under the same straggler — "
        + (
            f"HOLDS ({degr_straggler['ompss_perfft'] * 100:.1f}% vs "
            f"{degr_straggler['original'] * 100:.1f}% added runtime)"
            if graceful_straggler
            else f"DOES NOT HOLD here ({degr_straggler['ompss_perfft'] * 100:.1f}% vs "
            f"{degr_straggler['original'] * 100:.1f}%)"
        ),
        "under OS noise: "
        + (
            f"per-FFT absorbs more ({degr_noise['ompss_perfft'] * 100:.1f}% vs "
            f"{degr_noise['original'] * 100:.1f}%)"
            if graceful_noise
            else f"no advantage ({degr_noise['ompss_perfft'] * 100:.1f}% vs "
            f"{degr_noise['original'] * 100:.1f}%)"
        ),
    ]
    return ExperimentReport(
        name="resilience",
        data={
            "baseline_s": baseline,
            "straggler_s": straggled,
            "os_noise_s": noisy,
            "degradation_straggler": degr_straggler,
            "degradation_os_noise": degr_noise,
            "added_runtime_straggler_s": added_straggler,
            "graceful_straggler": graceful_straggler,
            "graceful_os_noise": graceful_noise,
            "fault_reports": reports,
        },
        text="\n".join(lines),
    )
