"""What-if ablation: which bottleneck owns the runtime, per version.

For the 8x8 original and per-FFT runs, lift one modelled mechanism at a
time (ideal network / infinite memory bandwidth / no jitter) and report the
runtime share each is responsible for.  This quantifies the paper's
narrative directly: the original's runtime is dominated by the contention
the per-FFT version softens, and neither is network-bound on a single node.

The version x machine grid (2 x 4 points) runs through the sweep engine:
each point carries its what-if :class:`~repro.machine.knl.KnlParameters`
variant, so with ``jobs=N`` the whole attribution matrix runs concurrently.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.experiments.common import ExperimentReport, paper_config, sweep_summaries
from repro.machine.knl import KnlParameters
from repro.sweep import SweepTask

__all__ = ["run_ablation_whatif"]

TIMING_REDUCER = "repro.experiments.common:reduce_timing"

#: The attribution's machine variants, in report order (see
#: :func:`repro.perf.whatif.runtime_attribution`, whose variants these mirror).
ATTRIBUTION_MACHINES: tuple[str, ...] = (
    "measured",
    "ideal_network",
    "infinite_bandwidth",
    "no_jitter",
)


def _machine_variant(name: str, base: KnlParameters) -> KnlParameters:
    if name == "measured":
        return base
    if name == "ideal_network":
        return dataclasses.replace(
            base, net_latency=0.0, net_injection_bw=1e18, net_capacity=1e18
        )
    if name == "infinite_bandwidth":
        return dataclasses.replace(base, mem_bandwidth=1e18, mem_bw_rampup_max=None)
    if name == "no_jitter":
        return dataclasses.replace(base, compute_jitter=0.0)
    raise ValueError(f"unknown machine variant {name!r}")


def run_ablation_whatif(
    ranks: int = 8, jobs: int = 1, **overrides: _t.Any
) -> ExperimentReport:
    """Runtime attribution for both headline versions at ``ranks`` x 8."""
    base = KnlParameters()
    versions = ("original", "ompss_perfft")
    tasks = [
        SweepTask(
            key=f"version={version},machine={machine}",
            config=paper_config(ranks, version, **overrides),
            knl=_machine_variant(machine, base),
            reducer=TIMING_REDUCER,
        )
        for version in versions
        for machine in ATTRIBUTION_MACHINES
    ]
    summaries = sweep_summaries(tasks, jobs=jobs)

    data = {}
    lines = [f"What-if runtime attribution ({ranks}x8 workload)"]
    for version in versions:
        attr = {
            machine: summaries[f"version={version},machine={machine}"]["phase_time_s"]
            for machine in ATTRIBUTION_MACHINES
        }
        data[version] = attr
        measured = attr["measured"]
        lines.append(f"\n{version}: measured {measured * 1e3:.2f} ms")
        for name in ("ideal_network", "infinite_bandwidth", "no_jitter"):
            gain = 1.0 - attr[name] / measured
            lines.append(
                f"  {name:<20} {attr[name] * 1e3:9.2f} ms   ({gain * 100:+5.1f}% if lifted)"
            )
    contention_orig = 1.0 - data["original"]["infinite_bandwidth"] / data["original"]["measured"]
    contention_ompss = (
        1.0 - data["ompss_perfft"]["infinite_bandwidth"] / data["ompss_perfft"]["measured"]
    )
    lines += [
        "",
        f"memory-contention share: original {contention_orig * 100:.1f}%, "
        f"OmpSs {contention_ompss * 100:.1f}% — the per-FFT schedule recovers part "
        "of the contention loss, as the paper claims.",
    ]
    return ExperimentReport(name="ablation-whatif", data=data, text="\n".join(lines))
