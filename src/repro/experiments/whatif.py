"""What-if ablation: which bottleneck owns the runtime, per version.

For the 8x8 original and per-FFT runs, lift one modelled mechanism at a
time (ideal network / infinite memory bandwidth / no jitter) and report the
runtime share each is responsible for.  This quantifies the paper's
narrative directly: the original's runtime is dominated by the contention
the per-FFT version softens, and neither is network-bound on a single node.
"""

from __future__ import annotations

import typing as _t

from repro.experiments.common import ExperimentReport, paper_config
from repro.perf.whatif import runtime_attribution

__all__ = ["run_ablation_whatif"]


def run_ablation_whatif(ranks: int = 8, **overrides: _t.Any) -> ExperimentReport:
    """Runtime attribution for both headline versions at ``ranks`` x 8."""
    data = {}
    lines = [f"What-if runtime attribution ({ranks}x8 workload)"]
    for version in ("original", "ompss_perfft"):
        attr = runtime_attribution(paper_config(ranks, version, **overrides))
        data[version] = attr
        measured = attr["measured"]
        lines.append(f"\n{version}: measured {measured * 1e3:.2f} ms")
        for name in ("ideal_network", "infinite_bandwidth", "no_jitter"):
            gain = 1.0 - attr[name] / measured
            lines.append(
                f"  {name:<20} {attr[name] * 1e3:9.2f} ms   ({gain * 100:+5.1f}% if lifted)"
            )
    contention_orig = 1.0 - data["original"]["infinite_bandwidth"] / data["original"]["measured"]
    contention_ompss = (
        1.0 - data["ompss_perfft"]["infinite_bandwidth"] / data["ompss_perfft"]["measured"]
    )
    lines += [
        "",
        f"memory-contention share: original {contention_orig * 100:.1f}%, "
        f"OmpSs {contention_ompss * 100:.1f}% — the per-FFT schedule recovers part "
        "of the contention loss, as the paper claims.",
    ]
    return ExperimentReport(name="ablation-whatif", data=data, text="\n".join(lines))
