"""Command-line entry point: run any paper experiment from the shell.

::

    fftxlib-repro list
    fftxlib-repro fig2 [--quick]
    fftxlib-repro table1 --jobs 4
    fftxlib-repro all --quick --jobs 4
    fftxlib-repro run --ranks 8 --version ompss_perfft --validate
    fftxlib-repro run --ranks 8 --nodes 4 --decomposition pencil --validate
    fftxlib-repro run --quick --manifest run.json --chrome trace.json --pop
    fftxlib-repro run --quick --faults scenario.json --manifest run.json
    fftxlib-repro sweep --ranks 2,4,8 --versions original,ompss_perfft --jobs 4 --out sweep.json
    fftxlib-repro sweep --out sweep.json --resume
    fftxlib-repro faults validate scenario.json
    fftxlib-repro perf diff baseline.json candidate.json
    fftxlib-repro perf check --baseline baseline.json candidate.json
    fftxlib-repro analyze run.json
    fftxlib-repro analyze baseline.json candidate.json --format markdown
    fftxlib-repro analyze sweep.json --out efficiency.md --format markdown
    fftxlib-repro serve --requests requests.jsonl --manifest service.json
    fftxlib-repro loadgen --mode soak --rate 50 --duration 4 --chaos chaos.json
    fftxlib-repro loadgen --mode live --rate 25 --duration 3 --report slo.json

``--quick`` shrinks the workload (30 Ry / 10 Bohr / 32 bands and a reduced
rank sweep) so every experiment finishes in seconds; the full workload is
the paper's (80 Ry / 20 Bohr / 128 bands / ntg 8).  The ``perf`` group
works offline on run-manifest JSON files (see
:mod:`repro.telemetry.manifest`): ``diff`` prints the runtime/IPC report,
``check`` exits non-zero on a regression beyond the threshold, ``validate``
checks a manifest against the schema (run *or* sweep manifests).

``analyze`` is the POP analytics front end (:mod:`repro.analysis`): one run
manifest prints its efficiency factors, critical path and task-graph view;
two manifests produce the A/B triage report (which phase, which factor,
which counter moved); a sweep manifest prints the efficiency scaling
series.  ``--format text|json|markdown`` picks the renderer, ``--out``
writes to a file, and ``--check`` (two manifests) exits 1 on a regression
verdict.

``serve`` runs the resilient async front end (:mod:`repro.service`) over a
JSON-lines request stream; ``loadgen`` replays a seeded open-loop arrival
process against it — ``--mode live`` on the wall clock, ``--mode soak`` on
a deterministic virtual clock whose service manifests are byte-identical
for a given (seed, chaos plan).  Both accept ``--chaos plan.json``
(``repro.service_chaos``) for worker failures and executor outages; see
docs/RESILIENCE.md for the full resilience model and exit-code contract.

``sweep`` expands a ranks x version x taskgroups grid and executes the
points concurrently through :mod:`repro.sweep` (``--jobs N``, process pool
by default); ``--out`` streams a sweep manifest after every finished point
and ``--resume`` skips the points already recorded there.  Per-point
summaries are byte-identical whatever ``--jobs`` is.  Experiment
subcommands (and ``all``) accept ``--jobs`` too and run their own grids
through the same engine.

Exit codes: 0 success, 1 a run or check failed (validation error, perf
regression, unrecovered fault scenario), 2 bad input (invalid configuration
or malformed scenario/manifest file) — always a one-line ``error: ...`` on
stderr, never a traceback.
"""

from __future__ import annotations

import argparse
import sys
import typing as _t

from repro.core import RunConfig, run_fft_phase
from repro.experiments import (
    run_multinode,
    run_validation,
    run_ablation_grainsize,
    run_ablation_hyperthreading,
    run_ablation_ntg,
    run_ablation_scheduler,
    run_ablation_versions,
    run_ablation_whatif,
    run_fig2,
    run_fig3,
    run_fig6,
    run_fig7,
    run_resilience,
    run_table1,
    run_table2,
    run_tuning,
)

__all__ = ["main"]

QUICK_WORKLOAD = dict(ecutwfc=30.0, alat=10.0, nbnd=32)
QUICK_RANKS = (1, 2, 4, 8)
VERSIONS = ("original", "pipelined", "ompss_perfft", "ompss_steps", "ompss_combined")

_EXPERIMENTS: dict[str, tuple[_t.Callable, str]] = {
    "fig2": (run_fig2, "Fig. 2 - runtime vs ranks, original"),
    "table1": (run_table1, "Table I - POP factors, original"),
    "fig3": (run_fig3, "Fig. 3 - trace structure at 8x8"),
    "table2": (run_table2, "Table II - POP factors, OmpSs per-FFT"),
    "fig6": (run_fig6, "Fig. 6 - original vs OmpSs runtimes"),
    "fig7": (run_fig7, "Fig. 7 - de-synchronization at 8x8"),
    "ablation-ntg": (run_ablation_ntg, "task-group knob sweep"),
    "ablation-grainsize": (run_ablation_grainsize, "Opt 1 taskloop grainsize sweep"),
    "ablation-ht": (run_ablation_hyperthreading, "hyper-threading 1/2/4"),
    "ablation-scheduler": (run_ablation_scheduler, "ready-queue policies"),
    "ablation-versions": (run_ablation_versions, "all four executors"),
    "ablation-whatif": (run_ablation_whatif, "runtime attribution by bottleneck"),
    "multinode": (run_multinode, "multi-node scale sweep (the paper's IV claim)"),
    "validation": (run_validation, "numerical certification vs the dense reference"),
    "resilience": (run_resilience, "fault-scenario degradation, original vs OmpSs"),
    "tuning": (run_tuning, "tuned-vs-default win rate across a workload matrix"),
}


def _experiment_kwargs(name: str, quick: bool) -> dict:
    if not quick:
        return {}
    kwargs: dict = dict(QUICK_WORKLOAD)
    if name in ("fig2", "table1", "table2", "fig6"):
        kwargs["ranks"] = QUICK_RANKS
    if name == "ablation-ntg":
        kwargs["total_procs"] = 16
    if name == "multinode":
        kwargs["nodes"] = (1, 2)
    if name == "validation":
        kwargs.update(ecutwfc=15.0, alat=6.0, nbnd=8)
    if name == "resilience":
        kwargs.update(nbnd=16, taskgroups=4)
    if name == "tuning":
        kwargs.update(
            ecutwfc=12.0,
            alat=5.0,
            nbnd=8,
            cells=(
                ("2x2 original", 2, "original", 2, 1),
                ("4x2 original 2n", 4, "original", 2, 2),
            ),
            top_k=4,
            survivors=2,
        )
    return kwargs


def main(argv: _t.Sequence[str] | None = None) -> int:
    """CLI dispatch; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="fftxlib-repro",
        description="Reproduction of 'Performance Analysis and Optimization of "
        "the FFTXlib on the Intel Knights Landing Architecture' (ICPPW 2017).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    for name, (_fn, help_text) in _EXPERIMENTS.items():
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--quick", action="store_true", help="reduced workload")
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="concurrent sweep workers (default 1; ignored by 'validation')",
        )

    p_all = sub.add_parser("all", help="run every experiment")
    p_all.add_argument("--quick", action="store_true", help="reduced workload")
    p_all.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="concurrent sweep workers per experiment (default 1)",
    )

    p_sweep = sub.add_parser(
        "sweep", help="run a grid of configurations concurrently"
    )
    p_sweep.add_argument(
        "--ranks", default="8",
        help="comma-separated rank counts (axis; default '8')",
    )
    p_sweep.add_argument(
        "--versions", default="original",
        help="comma-separated executor versions (axis; default 'original')",
    )
    p_sweep.add_argument(
        "--taskgroups", default="8",
        help="comma-separated task-group counts (axis; default '8')",
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="concurrent workers (default 1)",
    )
    p_sweep.add_argument(
        "--mode", choices=["process", "thread", "serial"], default=None,
        help="worker pool kind (default: process when --jobs > 1, else serial)",
    )
    p_sweep.add_argument(
        "--out", metavar="PATH", default=None,
        help="stream the sweep manifest JSON here after every finished point",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="skip points already recorded in the --out manifest",
    )
    p_sweep.add_argument(
        "--pop", action="store_true",
        help="replay each point on an ideal network and record POP factors",
    )
    p_sweep.add_argument(
        "--faults", metavar="PATH", default=None,
        help="inject the fault scenario from a JSON file into every point",
    )
    p_sweep.add_argument("--quick", action="store_true", help="reduced workload")
    p_sweep.add_argument(
        "--stable", action="store_true",
        help="omit wall-clock fields so identical sweeps produce "
        "byte-identical manifests",
    )
    p_sweep.add_argument(
        "--fft-backend", default="numpy", metavar="NAME",
        help="FFT kernel backend for every point (see 'backends'; default numpy)",
    )
    p_sweep.add_argument(
        "--kernel-workers", type=int, default=1, metavar="N",
        help="real cores per batched kernel call (default 1)",
    )
    p_sweep.add_argument(
        "--decomposition", default="slab", choices=["slab", "pencil"],
        help="grid decomposition for every point (default slab)",
    )
    p_sweep.add_argument(
        "--redistribution", default="packfree", choices=["packed", "packfree"],
        help="data-plane redistribution strategy (default packfree)",
    )
    p_sweep.add_argument(
        "--tuning", default="off", choices=["off", "consult", "search"],
        help="autotuner mode for every point (default off; see 'tune')",
    )
    p_sweep.add_argument(
        "--wisdom", metavar="PATH", default=None,
        help="wisdom DB path ($REPRO_WISDOM or ./wisdom.jsonl when unset)",
    )
    p_sweep.add_argument(
        "--link-capacity", type=float, default=None, metavar="BPS",
        help="per-link fabric capacity (B/s) for multi-node points "
        "(default: aggregate-capacity model)",
    )

    p_run = sub.add_parser("run", help="run a single configuration")
    p_run.add_argument("--ranks", type=int, default=8)
    p_run.add_argument("--taskgroups", type=int, default=8)
    p_run.add_argument("--version", default="original", choices=list(VERSIONS))
    p_run.add_argument("--quick", action="store_true", help="reduced workload")
    p_run.add_argument(
        "--validate", action="store_true", help="data mode + dense-reference check"
    )
    p_run.add_argument("--nodes", type=int, default=1, help="simulated KNL nodes")
    p_run.add_argument(
        "--prv", metavar="PATH", default=None,
        help="write a Paraver-style trace (.prv/.pcf/.row) of the run",
    )
    p_run.add_argument(
        "--telemetry", action="store_true",
        help="record metrics/spans/trace even without an export flag",
    )
    p_run.add_argument(
        "--manifest", metavar="PATH", default=None,
        help="write the run manifest JSON (implies telemetry)",
    )
    p_run.add_argument(
        "--chrome", metavar="PATH", default=None,
        help="write a Perfetto/Chrome-trace JSON (implies telemetry)",
    )
    p_run.add_argument(
        "--prometheus", metavar="PATH", default=None,
        help="write the metrics registry in Prometheus text format",
    )
    p_run.add_argument(
        "--pop", action="store_true",
        help="replay on an ideal network and add POP factors to the manifest",
    )
    p_run.add_argument(
        "--faults", metavar="PATH", default=None,
        help="inject the fault scenario from a JSON file (see docs/RESILIENCE.md)",
    )
    p_run.add_argument(
        "--stable-manifest", action="store_true",
        help="omit wall-clock fields from the manifest so identical seeded "
        "runs produce byte-identical files",
    )
    p_run.add_argument(
        "--fft-backend", default="numpy", metavar="NAME",
        help="FFT kernel backend for data-mode runs (see 'backends'; "
        "default numpy)",
    )
    p_run.add_argument(
        "--kernel-workers", type=int, default=1, metavar="N",
        help="real cores per batched kernel call: scipy/pyFFTW thread "
        "in-library, numpy/native fan out over the shared-memory process "
        "pool (default 1)",
    )
    p_run.add_argument(
        "--decomposition", default="slab", choices=["slab", "pencil"],
        help="grid decomposition: z-slabs (default) or a 2D pencil grid",
    )
    p_run.add_argument(
        "--redistribution", default="packfree", choices=["packed", "packfree"],
        help="data-plane redistribution: staged pack/unpack copies or "
        "pack-free Alltoallw datatypes (default packfree)",
    )
    p_run.add_argument(
        "--tuning", default="off", choices=["off", "consult", "search"],
        help="autotuner mode: consult the wisdom DB, or search on a miss "
        "(default off; see 'tune' and docs/TUNING.md)",
    )
    p_run.add_argument(
        "--wisdom", metavar="PATH", default=None,
        help="wisdom DB path ($REPRO_WISDOM or ./wisdom.jsonl when unset)",
    )
    p_run.add_argument(
        "--link-capacity", type=float, default=None, metavar="BPS",
        help="per-link fabric capacity (B/s) for multi-node runs "
        "(default: aggregate-capacity model)",
    )

    sub.add_parser(
        "backends",
        help="list FFT kernel backends and their availability on this host",
    )

    p_tune = sub.add_parser(
        "tune", help="autotuner wisdom DB: search / show / export / import"
    )
    tune_sub = p_tune.add_subparsers(dest="tune_command", required=True)
    p_tsearch = tune_sub.add_parser(
        "search", help="search the knob space for a workload and persist the winner"
    )
    p_tsearch.add_argument("--ranks", type=int, default=8)
    p_tsearch.add_argument("--taskgroups", type=int, default=8)
    p_tsearch.add_argument("--version", default="original", choices=list(VERSIONS))
    p_tsearch.add_argument("--quick", action="store_true", help="reduced workload")
    p_tsearch.add_argument("--nodes", type=int, default=1, help="simulated KNL nodes")
    p_tsearch.add_argument(
        "--wisdom", metavar="PATH", default=None,
        help="wisdom DB to record into ($REPRO_WISDOM or ./wisdom.jsonl)",
    )
    p_tsearch.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="concurrent rung evaluations (default 1)",
    )
    p_tsearch.add_argument(
        "--mode", choices=["process", "thread", "serial"], default=None,
        help="worker pool kind (default: process when --jobs > 1, else serial)",
    )
    p_tsearch.add_argument(
        "--top-k", type=int, default=8, metavar="K",
        help="cost-model shortlist simulated in rung 0 (default 8)",
    )
    p_tsearch.add_argument(
        "--survivors", type=int, default=3, metavar="S",
        help="rung-0 survivors promoted to the full-workload rung (default 3)",
    )
    p_tsearch.add_argument(
        "--link-capacity", type=float, default=None, metavar="BPS",
        help="per-link fabric capacity (part of the machine-profile digest)",
    )
    p_tshow = tune_sub.add_parser(
        "show", help="print the best-per-digest entries of a wisdom DB"
    )
    p_tshow.add_argument(
        "--wisdom", metavar="PATH", default=None,
        help="wisdom DB to read ($REPRO_WISDOM or ./wisdom.jsonl)",
    )
    p_texport = tune_sub.add_parser(
        "export", help="write the best-per-digest view as fresh JSONL"
    )
    p_texport.add_argument("out", metavar="OUT")
    p_texport.add_argument("--wisdom", metavar="PATH", default=None)
    p_timport = tune_sub.add_parser(
        "import", help="merge another wisdom file (better scores win)"
    )
    p_timport.add_argument("src", metavar="SRC")
    p_timport.add_argument("--wisdom", metavar="PATH", default=None)

    p_faults = sub.add_parser(
        "faults", help="fault-scenario utilities (see docs/RESILIENCE.md)"
    )
    faults_sub = p_faults.add_subparsers(dest="faults_command", required=True)
    p_fvalidate = faults_sub.add_parser(
        "validate", help="check a scenario JSON file (exit 2 when invalid)"
    )
    p_fvalidate.add_argument("scenario")

    p_perf = sub.add_parser(
        "perf", help="offline analysis of run-manifest JSON files"
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)
    p_diff = perf_sub.add_parser(
        "diff", help="compare two manifests (runtime, per-phase time/IPC, POP)"
    )
    p_diff.add_argument("manifest_a")
    p_diff.add_argument("manifest_b")
    p_check = perf_sub.add_parser(
        "check", help="fail (exit 1) when the candidate regresses vs the baseline"
    )
    p_check.add_argument("--baseline", required=True, metavar="PATH")
    p_check.add_argument("candidate")
    p_check.add_argument(
        "--threshold", type=float, default=0.05,
        help="relative slowdown tolerated before failing (default 0.05)",
    )
    p_check.add_argument(
        "--triage", metavar="PATH", default=None,
        help="write the structured triage (blame) report JSON here on failure",
    )
    p_validate = perf_sub.add_parser(
        "validate", help="check a manifest file against the schema"
    )
    p_validate.add_argument("manifest")

    p_analyze = sub.add_parser(
        "analyze",
        help="POP analytics over manifests: one run, an A/B pair, or a sweep",
    )
    p_analyze.add_argument(
        "manifests", nargs="+", metavar="MANIFEST",
        help="one run/sweep manifest, or two run manifests (baseline candidate)",
    )
    p_analyze.add_argument(
        "--format", choices=["text", "json", "markdown"], default="text",
        dest="fmt", help="output renderer (default text)",
    )
    p_analyze.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the report here instead of stdout",
    )
    p_analyze.add_argument(
        "--threshold", type=float, default=0.02,
        help="A/B: relative runtime change below which the verdict is "
        "neutral (default 0.02)",
    )
    p_analyze.add_argument(
        "--top", type=int, default=8,
        help="A/B: findings shown in text/markdown output (default 8)",
    )
    p_analyze.add_argument(
        "--check", action="store_true",
        help="A/B: exit 1 when the verdict is a regression",
    )

    p_cmp = sub.add_parser(
        "compare", help="trace two versions and print the phase-delta table"
    )
    p_cmp.add_argument("version_a")
    p_cmp.add_argument("version_b")
    p_cmp.add_argument("--ranks", type=int, default=8)
    p_cmp.add_argument("--taskgroups", type=int, default=8)
    p_cmp.add_argument("--quick", action="store_true", help="reduced workload")

    p_serve = sub.add_parser(
        "serve",
        help="serve a JSONL stream of run requests through the async front end",
    )
    p_serve.add_argument(
        "--requests", metavar="PATH", default="-",
        help="JSON-lines request file ('-' = stdin, the default)",
    )
    p_serve.add_argument(
        "--responses", metavar="PATH", default=None,
        help="write per-request verdict JSON lines here (default stdout)",
    )
    p_serve.add_argument(
        "--manifest", metavar="PATH", default=None,
        help="write the (live) service manifest JSON after drain",
    )
    p_serve.add_argument(
        "--chaos", metavar="PATH", default=None,
        help="service-chaos plan JSON to inject (see docs/RESILIENCE.md)",
    )
    p_serve.add_argument("--workers", type=int, default=2, metavar="N")
    p_serve.add_argument("--queue-depth", type=int, default=32, metavar="N")
    p_serve.add_argument(
        "--deadline", type=float, default=2.0, metavar="S",
        help="default per-request latency budget in seconds (default 2.0)",
    )
    p_serve.add_argument("--seed", type=int, default=0)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="seeded open-loop load generator (live service or virtual soak)",
    )
    p_loadgen.add_argument(
        "--mode", choices=["live", "soak"], default="soak",
        help="'soak' = deterministic virtual-time replica (default); "
        "'live' = real asyncio service on the wall clock",
    )
    p_loadgen.add_argument(
        "--rate", type=float, default=20.0, metavar="RPS",
        help="mean Poisson arrival rate (default 20 req/s)",
    )
    p_loadgen.add_argument(
        "--duration", type=float, default=5.0, metavar="S",
        help="arrival window in seconds; the service drains at its end",
    )
    p_loadgen.add_argument(
        "--mix", default="small=0.7,medium=0.25,large=0.05",
        help="grid-class weights, e.g. 'small=0.8,large=0.2'",
    )
    p_loadgen.add_argument(
        "--versions", default="original,ompss_perfft",
        help="comma-separated executor versions drawn uniformly",
    )
    p_loadgen.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="per-request latency budget (default: the service default)",
    )
    p_loadgen.add_argument(
        "--chaos", metavar="PATH", default=None,
        help="service-chaos plan JSON to inject",
    )
    p_loadgen.add_argument("--workers", type=int, default=2, metavar="N")
    p_loadgen.add_argument("--queue-depth", type=int, default=32, metavar="N")
    p_loadgen.add_argument("--seed", type=int, default=42)
    p_loadgen.add_argument(
        "--manifest", metavar="PATH", default=None,
        help="write the service manifest JSON (soak manifests are stable: "
        "same seed + chaos => byte-identical)",
    )
    p_loadgen.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the SLO report JSON here (also printed)",
    )

    args = parser.parse_args(argv)

    if args.command == "list":
        for name, (_fn, help_text) in _EXPERIMENTS.items():
            print(f"{name:<22} {help_text}")
        return 0

    if args.command == "faults":
        import json

        from repro.faults import (
            SERVICE_CHAOS_KIND,
            ScenarioError,
            load_chaos,
            load_scenario,
        )

        # faults validate (machine-level scenarios and service chaos plans)
        try:
            with open(args.scenario, encoding="utf-8") as fh:
                doc = json.load(fh)
            kind = doc.get("kind") if isinstance(doc, dict) else None
        except (OSError, json.JSONDecodeError):
            kind = None
        if kind == SERVICE_CHAOS_KIND:
            try:
                chaos = load_chaos(args.scenario)
            except (ScenarioError, OSError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(
                f"{args.scenario}: valid service chaos plan "
                f"({len(chaos.outages)} outage(s), "
                f"failure_rate {chaos.failure_rate:g}, "
                f"fault_fraction {chaos.fault_fraction:g})"
            )
            return 0
        try:
            scenario = load_scenario(args.scenario)
        except (ScenarioError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        n_stragglers = len(scenario.stragglers)
        n_links = len(scenario.links)
        print(
            f"{args.scenario}: valid fault scenario "
            f"({n_stragglers} straggler(s), {n_links} link fault(s), "
            f"os_noise {scenario.os_noise:g}, "
            f"task_failure_rate {scenario.task_failure_rate:g})"
        )
        return 0

    if args.command == "backends":
        from repro.fft.backends import DEFAULT_BACKEND, backend_info

        for row in backend_info():
            status = "available" if row["available"] else "unavailable"
            marker = " (default)" if row["name"] == DEFAULT_BACKEND else ""
            workers = "in-library workers" if row["supports_workers"] else "process pool"
            print(
                f"{row['name']:<8} {status:<12} {row['note']}{marker}\n"
                f"{'':<8} kinds: {', '.join(row['kinds'])}; "
                f"layouts: {', '.join(row['layouts'])}; multicore via {workers}"
            )
        return 0

    if args.command == "tune":
        return _cmd_tune(args)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "loadgen":
        return _cmd_loadgen(args)

    if args.command == "run":
        import dataclasses
        import time

        scenario = None
        if args.faults is not None:
            from repro.faults import ScenarioError, load_scenario

            try:
                scenario = load_scenario(args.faults)
            except (ScenarioError, OSError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

        workload = dict(QUICK_WORKLOAD) if args.quick else {}
        want_telemetry = bool(
            args.telemetry
            or args.manifest
            or args.chrome
            or args.prometheus
            or args.prv
            or args.pop
        )
        try:
            config = RunConfig(
                ranks=args.ranks,
                taskgroups=args.taskgroups,
                version=args.version,
                data_mode=args.validate,
                n_nodes=args.nodes,
                telemetry=want_telemetry,
                faults=scenario,
                fft_backend=args.fft_backend,
                kernel_workers=args.kernel_workers,
                decomposition=args.decomposition,
                redistribution=args.redistribution,
                tuning=args.tuning,
                wisdom_path=args.wisdom,
                link_capacity=args.link_capacity,
                **workload,
            )
        except ValueError as exc:
            print(f"error: invalid configuration: {exc}", file=sys.stderr)
            return 2
        t0 = time.perf_counter()
        result = run_fft_phase(config)
        wall = time.perf_counter() - t0
        print(f"{result.config.label()}: FFT phase {result.phase_time * 1e3:.2f} ms "
              f"(simulated), avg IPC {result.average_ipc:.3f}")
        if result.tuning is not None:
            info = result.tuning
            outcome = (
                "hit" if info["hit"] else
                ("searched" if info["source"] == "search" else "miss")
            )
            applied = "applied" if info["applied"] else "not applied"
            print(
                f"tuning: {info['mode']} -> {outcome} ({applied}); "
                f"digest {info['digest'][:19]}..."
            )
        if result.fault_report is not None:
            report = result.fault_report
            print(
                f"faults: scenario '{report['scenario'].get('name', '')}' "
                f"injected {report['injected']} event(s), "
                f"recovered {report['recovered_events']}, "
                f"{result.n_attempts} attempt(s)"
            )

        factors = None
        ideal_time = None
        if args.pop:
            from repro.perf import factors_from_run, ideal_network

            ideal = run_fft_phase(
                dataclasses.replace(config, telemetry=False),
                knl=ideal_network(),
            )
            ideal_time = ideal.phase_time
            factors = factors_from_run(result, ideal_time=ideal_time)
        if args.manifest:
            from repro.telemetry.manifest import build_manifest, write_manifest

            path = write_manifest(
                args.manifest,
                build_manifest(
                    result,
                    wall_time_s=None if args.stable_manifest else wall,
                    factors=factors,
                    ideal_time_s=ideal_time,
                    created="(stable)" if args.stable_manifest else None,
                ),
            )
            print(f"manifest written: {path}")
        if args.chrome or args.prometheus or args.prv:
            from repro.telemetry.exporters import export_run

            if args.chrome:
                print(f"chrome trace written: {export_run(result, 'chrome', args.chrome)}")
            if args.prometheus:
                print(f"metrics written: {export_run(result, 'prometheus', args.prometheus)}")
            if args.prv:
                prv = export_run(result, "prv", args.prv)
                print(f"trace written: {prv} (+ .pcf, .row)")
        if result.failed:
            failure = (result.fault_report or {}).get("failure")
            print(
                f"error: run did not recover from the injected fault scenario"
                f" ({failure})" if failure else
                "error: run did not recover from the injected fault scenario",
                file=sys.stderr,
            )
            return 1
        if args.validate:
            err = result.validate()
            print(f"max relative error vs dense reference: {err:.2e}")
            if err > 1e-10:
                print("VALIDATION FAILED", file=sys.stderr)
                return 1
        return 0

    if args.command == "sweep":
        import pathlib

        from repro.sweep import (
            GridSpec,
            SweepError,
            SweepManifestError,
            SweepTask,
            load_sweep_manifest,
            run_sweep,
        )

        scenario = None
        if args.faults is not None:
            from repro.faults import ScenarioError, load_scenario

            try:
                scenario = load_scenario(args.faults)
            except (ScenarioError, OSError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2

        def _int_axis(raw: str, flag: str) -> tuple[int, ...]:
            try:
                values = tuple(int(part) for part in raw.split(",") if part.strip())
            except ValueError:
                raise ValueError(f"{flag} expects comma-separated integers, got {raw!r}")
            if not values:
                raise ValueError(f"{flag} needs at least one value")
            return values

        try:
            ranks = _int_axis(args.ranks, "--ranks")
            taskgroups = _int_axis(args.taskgroups, "--taskgroups")
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        versions = tuple(v for v in args.versions.split(",") if v.strip())
        unknown = [v for v in versions if v not in VERSIONS]
        if unknown or not versions:
            print(
                f"error: --versions must name executors from {', '.join(VERSIONS)}; "
                f"got {args.versions!r}",
                file=sys.stderr,
            )
            return 2

        base: dict[str, _t.Any] = dict(QUICK_WORKLOAD) if args.quick else {}
        base["telemetry"] = True
        base["fft_backend"] = args.fft_backend
        base["kernel_workers"] = args.kernel_workers
        base["decomposition"] = args.decomposition
        base["redistribution"] = args.redistribution
        base["tuning"] = args.tuning
        if args.wisdom is not None:
            base["wisdom_path"] = args.wisdom
        if args.link_capacity is not None:
            base["link_capacity"] = args.link_capacity
        if scenario is not None:
            base["faults"] = scenario
        try:
            grid = GridSpec(
                axes={"ranks": ranks, "version": versions, "taskgroups": taskgroups},
                base=base,
            )
            points = grid.points()
        except ValueError as exc:
            print(f"error: invalid configuration: {exc}", file=sys.stderr)
            return 2
        tasks = [
            SweepTask(key=p.key, config=p.config, ideal_replay=args.pop)
            for p in points
        ]

        resume = None
        if args.resume:
            if args.out is None:
                print("error: --resume needs --out (the manifest to resume)", file=sys.stderr)
                return 2
            if pathlib.Path(args.out).exists():
                try:
                    resume = load_sweep_manifest(args.out)
                except SweepManifestError as exc:
                    print(f"error: cannot resume from {args.out}: {exc}", file=sys.stderr)
                    return 2

        def _progress(record) -> None:
            status = "reused" if record.reused else (
                "FAILED" if record.failed else f"{record.phase_time_s * 1e3:8.2f} ms"
            )
            print(f"  [{record.key}] {status}")

        print(
            f"sweep: {grid.n_points} point(s) "
            f"(ranks {','.join(map(str, ranks))} x versions "
            f"{','.join(versions)} x taskgroups {','.join(map(str, taskgroups))}), "
            f"jobs {args.jobs}"
        )
        try:
            result = run_sweep(
                tasks,
                jobs=args.jobs,
                mode=args.mode,
                resume=resume,
                out=args.out,
                grid=grid,
                stable=args.stable,
                on_point=_progress,
            )
        except SweepError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        n_reused = len(result.reused_keys)
        line = (
            f"{len(result.records)} point(s) in {result.wall_time_s:.2f} s "
            f"wall ({result.mode} mode, {result.jobs} job(s)"
        )
        line += f", {n_reused} reused)" if n_reused else ")"
        print(line)
        if args.out:
            print(f"sweep manifest written: {args.out}")
        failed = [r.key for r in result.records if r.failed]
        if failed:
            print(
                "error: point(s) did not recover from the injected fault scenario: "
                + ", ".join(failed),
                file=sys.stderr,
            )
            return 1
        return 0

    if args.command == "perf":
        import json

        from repro.telemetry.manifest import ManifestError, load_manifest

        def _load(path):
            try:
                return load_manifest(path)
            except FileNotFoundError:
                raise SystemExit(f"error: no such manifest: {path}")
            except json.JSONDecodeError as exc:
                raise SystemExit(f"error: {path} is not JSON: {exc}")

        if args.perf_command == "validate":
            try:
                with open(args.manifest, encoding="utf-8") as fh:
                    doc = json.load(fh)
                kind = doc.get("kind") if isinstance(doc, dict) else None
            except FileNotFoundError:
                print(f"error: no such manifest: {args.manifest}", file=sys.stderr)
                return 2
            except json.JSONDecodeError as exc:
                print(f"error: {args.manifest} is not JSON: {exc}", file=sys.stderr)
                return 2
            if kind == "repro.sweep_manifest":
                from repro.sweep import SweepManifestError, load_sweep_manifest

                try:
                    load_sweep_manifest(args.manifest)
                except SweepManifestError as exc:
                    print(f"INVALID: {exc}", file=sys.stderr)
                    return 1
                print(f"{args.manifest}: valid sweep manifest")
                return 0
            if kind == "repro.service_manifest":
                from repro.service.manifest import (
                    ServiceManifestError,
                    load_service_manifest,
                )

                try:
                    load_service_manifest(args.manifest)
                except ServiceManifestError as exc:
                    print(f"INVALID: {exc}", file=sys.stderr)
                    return 1
                print(f"{args.manifest}: valid service manifest")
                return 0
            try:
                _load(args.manifest)
            except ManifestError as exc:
                print(f"INVALID: {exc}", file=sys.stderr)
                return 1
            print(f"{args.manifest}: valid run manifest")
            return 0
        if args.perf_command == "diff":
            from repro.analysis import analyze_pair
            from repro.perf import diff_manifests, format_manifest_diff

            doc_a, doc_b = _load(args.manifest_a), _load(args.manifest_b)
            print(format_manifest_diff(diff_manifests(doc_a, doc_b)))
            report = analyze_pair(doc_a, doc_b)
            dom = report.dominant
            line = f"\ntriage: {report.verdict.upper()}"
            if dom is not None:
                line += f" — dominant mover: {dom.kind} {dom.subject} ({dom.detail})"
            print(line)
            if report.dominant_factor:
                print(f"triage: dominant efficiency factor: {report.dominant_factor}")
            return 0
        # perf check
        from repro.perf import manifest_regressions

        baseline_doc = _load(args.baseline)
        candidate_doc = _load(args.candidate)
        violations = manifest_regressions(
            baseline_doc,
            candidate_doc,
            threshold=args.threshold,
        )
        if violations:
            from repro.analysis import analyze_pair
            from repro.analysis.render import render_triage_text

            for v in violations:
                print(f"REGRESSION: {v}", file=sys.stderr)
            report = analyze_pair(
                baseline_doc, candidate_doc, threshold=args.threshold
            )
            print("\n" + render_triage_text(report.to_dict()), file=sys.stderr)
            if args.triage:
                import pathlib

                pathlib.Path(args.triage).write_text(
                    json.dumps(report.to_dict(), indent=2) + "\n"
                )
                print(f"triage report written: {args.triage}", file=sys.stderr)
            return 1
        print(
            f"{args.candidate}: no regression vs {args.baseline} "
            f"(threshold {args.threshold * 100:.1f}%)"
        )
        return 0

    if args.command == "analyze":
        import json
        import pathlib

        from repro import analysis as _analysis
        from repro.analysis import render as _render
        from repro.telemetry.manifest import ManifestError, load_manifest

        if len(args.manifests) > 2:
            print(
                "error: analyze takes one manifest (run or sweep) or two run "
                f"manifests (baseline candidate); got {len(args.manifests)}",
                file=sys.stderr,
            )
            return 2
        if args.check and len(args.manifests) != 2:
            print("error: --check needs two manifests (A/B mode)", file=sys.stderr)
            return 2

        def _load_doc(path: str) -> dict:
            try:
                with open(path, encoding="utf-8") as fh:
                    doc = json.load(fh)
            except FileNotFoundError:
                raise SystemExit(f"error: no such manifest: {path}")
            except json.JSONDecodeError as exc:
                raise SystemExit(f"error: {path} is not JSON: {exc}")
            if not isinstance(doc, dict):
                raise SystemExit(f"error: {path} is not a manifest object")
            return doc

        def _load_run(path: str) -> dict:
            try:
                return load_manifest(path)
            except FileNotFoundError:
                raise SystemExit(f"error: no such manifest: {path}")
            except json.JSONDecodeError as exc:
                raise SystemExit(f"error: {path} is not JSON: {exc}")
            except ManifestError as exc:
                raise SystemExit(f"error: {exc}")

        exit_code = 0
        if len(args.manifests) == 2:
            report = _analysis.analyze_pair(
                _load_run(args.manifests[0]),
                _load_run(args.manifests[1]),
                threshold=args.threshold,
            ).to_dict()
            if args.fmt == "json":
                output = json.dumps(report, indent=2) + "\n"
            elif args.fmt == "markdown":
                output = _render.render_triage_markdown(report, top=args.top)
            else:
                output = _render.render_triage_text(report, top=args.top) + "\n"
            if args.check and report["verdict"] == "regression":
                exit_code = 1
        else:
            doc = _load_doc(args.manifests[0])
            if doc.get("kind") == "repro.sweep_manifest":
                rows = _analysis.analyze_sweep(doc)
                if args.fmt == "json":
                    output = json.dumps(rows, indent=2) + "\n"
                elif args.fmt == "markdown":
                    output = _render.render_sweep_markdown(rows)
                else:
                    output = _render.render_sweep_text(rows) + "\n"
            else:
                run_doc = _load_run(args.manifests[0])
                try:
                    info = _analysis.analyze_manifest(run_doc)
                except ValueError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                if args.fmt == "json":
                    output = json.dumps(info, indent=2) + "\n"
                elif args.fmt == "markdown":
                    output = _render.render_analysis_markdown(info)
                else:
                    output = _render.render_analysis_text(info) + "\n"
        if args.out:
            pathlib.Path(args.out).write_text(output)
            print(f"analysis written: {args.out}")
        else:
            sys.stdout.write(output)
        return exit_code

    if args.command == "compare":
        from repro.machine import knl_parameters
        from repro.perf import compare_runs, format_run_comparison, trace_run

        workload = dict(QUICK_WORKLOAD) if args.quick else {}
        traces = {}
        times = {}
        for version in (args.version_a, args.version_b):
            cfg = RunConfig(
                ranks=args.ranks, taskgroups=args.taskgroups, version=version, **workload
            )
            result, trace = trace_run(cfg)
            traces[version] = trace
            times[version] = result.phase_time
        cmp = compare_runs(
            traces[args.version_a],
            traces[args.version_b],
            knl_parameters().frequency_hz,
        )
        print(
            f"phase time: {args.version_a} {times[args.version_a] * 1e3:.2f} ms, "
            f"{args.version_b} {times[args.version_b] * 1e3:.2f} ms"
        )
        print(format_run_comparison(cmp, labels=(args.version_a[:8], args.version_b[:8])))
        return 0

    names = list(_EXPERIMENTS) if args.command == "all" else [args.command]
    for name in names:
        fn, _help = _EXPERIMENTS[name]
        kwargs = _experiment_kwargs(name, args.quick)
        if name != "validation":  # validation checks full results; no sweep grid
            kwargs["jobs"] = args.jobs
        report = fn(**kwargs)
        print(f"\n{'=' * 72}\n{report.text}")
    return 0


def _load_chaos_arg(path: str | None):
    """Load a --chaos plan, or exit 2 on bad input (returns (chaos, code))."""
    if path is None:
        return None, None
    from repro.faults import ScenarioError, load_chaos

    try:
        return load_chaos(path), None
    except (ScenarioError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None, 2


def _parse_mix(text: str) -> dict[str, float]:
    mix: dict[str, float] = {}
    for part in text.split(","):
        name, _, weight = part.partition("=")
        mix[name.strip()] = float(weight)
    return mix


def _cmd_tune(args) -> int:
    """The ``tune`` group: wisdom search / show / export / import."""
    from repro.tuning import (
        WisdomDB,
        default_wisdom_path,
        knobs_of,
        search,
        workload_digest,
    )

    path = args.wisdom or str(default_wisdom_path())

    if args.tune_command == "search":
        workload = dict(QUICK_WORKLOAD) if args.quick else {}
        try:
            config = RunConfig(
                ranks=args.ranks,
                taskgroups=args.taskgroups,
                version=args.version,
                n_nodes=args.nodes,
                link_capacity=args.link_capacity,
                **workload,
            )
        except ValueError as exc:
            print(f"error: invalid configuration: {exc}", file=sys.stderr)
            return 2
        db = WisdomDB(path)
        digest = workload_digest(config)
        held = db.lookup(digest)
        if held is not None:
            print(f"already tuned ({held.score * 1e3:.2f} ms); searching again")
        try:
            entry = search(
                config, db=db, jobs=args.jobs, mode=args.mode,
                top_k=args.top_k, survivors=args.survivors,
            )
        except (RuntimeError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        incumbent_s = entry.provenance.get("incumbent_s")
        print(f"digest: {entry.digest}")
        print(f"winner: {entry.knobs}")
        line = f"score: {entry.score * 1e3:.2f} ms (simulated)"
        if incumbent_s:
            line += f"; default {incumbent_s * 1e3:.2f} ms"
            if entry.knobs != knobs_of(config):
                line += f" ({incumbent_s / entry.score:.2f}x speedup)"
        print(line)
        print(f"recorded in {path}")
        return 0

    if args.tune_command == "show":
        db = WisdomDB(path)
        if db.skipped_lines:
            print(f"({db.skipped_lines} unreadable line(s) skipped)")
        if not len(db):
            print(f"{path}: no wisdom entries")
            return 0
        for entry in db.entries():
            print(f"{entry.digest}  {entry.score * 1e3:10.3f} ms  "
                  f"[{entry.source}]  {entry.knobs}")
        return 0

    if args.tune_command == "export":
        n = WisdomDB(path).export(args.out)
        print(f"{n} entr{'y' if n == 1 else 'ies'} written to {args.out}")
        return 0

    # import
    try:
        merged = WisdomDB(path).import_from(args.src)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{merged} entr{'y' if merged == 1 else 'ies'} merged into {path}")
    return 0


def _cmd_serve(args) -> int:
    """Serve a JSONL request stream through the live async front end."""
    import asyncio
    import json

    from repro.service import AsyncService, ServiceConfig, request_from_dict
    from repro.service.manifest import build_service_manifest, write_service_manifest
    from repro.service.request import RequestError

    chaos, code = _load_chaos_arg(args.chaos)
    if code is not None:
        return code
    try:
        config = ServiceConfig(
            workers=args.workers,
            max_queue_depth=args.queue_depth,
            default_deadline_s=args.deadline,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: invalid configuration: {exc}", file=sys.stderr)
        return 2

    if args.requests == "-":
        lines = sys.stdin.read().splitlines()
        source = "<stdin>"
    else:
        try:
            with open(args.requests, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError as exc:
            print(f"error: cannot read requests: {exc}", file=sys.stderr)
            return 2
        source = args.requests
    requests = []
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            requests.append(request_from_dict(json.loads(line)))
        except (json.JSONDecodeError, RequestError) as exc:
            print(f"error: {source}:{lineno}: {exc}", file=sys.stderr)
            return 2

    async def run() -> tuple[list[dict], dict]:
        service = AsyncService(config, chaos)
        await service.start()
        results = await asyncio.gather(*[service.submit(r) for r in requests])
        report = await service.drain()
        if args.manifest:
            write_service_manifest(
                args.manifest,
                build_service_manifest(
                    service.core, load={"source": source}, stable=False, slo=report
                ),
            )
        return list(results), report

    results, report = asyncio.run(run())
    out = open(args.responses, "w", encoding="utf-8") if args.responses else sys.stdout
    try:
        for response in results:
            out.write(json.dumps(response, sort_keys=True) + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
    counts = report["counts"]
    print(
        f"served {report['served']}/{counts['submitted']} request(s) at "
        f"{report['requests_per_s']:g} req/s "
        f"(shed {counts['shed']}, failed {counts['failed']}, "
        f"expired {counts['expired']})",
        file=sys.stderr,
    )
    if args.manifest:
        print(f"service manifest written: {args.manifest}", file=sys.stderr)
    # Exit contract: 0 only when every request was served (ok / memoized /
    # batched); degraded-but-completed sessions report 1 for scripting.
    return 0 if report["served"] == counts["submitted"] else 1


def _cmd_loadgen(args) -> int:
    """Open-loop load generation: live wall-clock or deterministic soak."""
    import asyncio
    import json

    from repro.service import (
        AsyncService,
        LoadSpec,
        ServiceConfig,
        SoakEngine,
        generate_arrivals,
        run_loadgen,
    )
    from repro.service.manifest import build_service_manifest, write_service_manifest
    from repro.service.request import RequestError
    from repro.service.server import latency_percentiles

    chaos, code = _load_chaos_arg(args.chaos)
    if code is not None:
        return code
    try:
        spec = LoadSpec(
            rate_rps=args.rate,
            duration_s=args.duration,
            mix=_parse_mix(args.mix),
            versions=tuple(v.strip() for v in args.versions.split(",") if v.strip()),
            deadline_s=args.deadline,
            seed=args.seed,
        )
        config = ServiceConfig(
            workers=args.workers,
            max_queue_depth=args.queue_depth,
            seed=args.seed,
        )
    except (RequestError, ValueError) as exc:
        print(f"error: invalid load spec: {exc}", file=sys.stderr)
        return 2

    if args.mode == "soak":
        engine = SoakEngine(config, chaos)
        core = engine.run(generate_arrivals(spec, chaos), drain_at=spec.duration_s)
        report = {
            "mode": "soak",
            "virtual_makespan_s": round(engine.makespan, 9),
            "latency": latency_percentiles(core.latencies),
            "counts": dict(core.counts),
            "shed_reasons": dict(core.shed_reasons),
            "breaker_trips": core.breakers.total_trips(),
        }
        manifest = build_service_manifest(core, load=spec.to_dict(), stable=True)
    else:

        async def run() -> tuple[dict, _t.Any]:
            service = AsyncService(config, chaos)
            await service.start()
            slo = await run_loadgen(service, spec, chaos)
            return slo, service.core

        slo, core = asyncio.run(run())
        report = {"mode": "live", **slo}
        manifest = build_service_manifest(
            core, load=spec.to_dict(), stable=False, slo=slo
        )

    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    if args.manifest:
        write_service_manifest(args.manifest, manifest)
        print(f"service manifest written: {args.manifest}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
