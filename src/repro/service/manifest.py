"""The service manifest: one JSON artifact per service session.

Built from a :class:`~repro.service.server.ServiceCore` after drain, it
records the policy configuration, the load spec, every request's terminal
verdict, and the resilience counters — queue peaks, shed breakdown,
retries, breaker trips, memo and retry-budget stats.

Two modes:

* **stable** (the soak engine's default) — only virtual-clock and
  policy-deterministic fields, so the same (seed, spec, chaos) always
  produces byte-identical JSON; the chaos-soak CI job and
  ``tests/service/test_soak_determinism.py`` pin this.
* **live** — adds wall-clock SLO numbers and process-warmth diagnostics
  (the FFT plan-cache hit/miss counters), which vary run to run and are
  therefore excluded from stable manifests.

Validation is hand-rolled like the run-manifest schema (no jsonschema
dependency); the conservation law ``submitted == sum(verdicts)`` and
``accepted == ok + batched + expired + failed (+ memoized)`` are checked
structurally, so an engine that loses an accepted request cannot produce
a valid manifest.
"""

from __future__ import annotations

import json
import pathlib
import typing as _t

from repro.service.request import SHED_REASONS, VERDICTS
from repro.service.server import ServiceCore, latency_percentiles

__all__ = [
    "SERVICE_MANIFEST_KIND",
    "SERVICE_SCHEMA_VERSION",
    "ServiceManifestError",
    "build_service_manifest",
    "validate_service_manifest",
    "write_service_manifest",
    "load_service_manifest",
]

SERVICE_MANIFEST_KIND = "repro.service_manifest"
SERVICE_SCHEMA_VERSION = 1


class ServiceManifestError(ValueError):
    """A service manifest failed validation or could not be parsed."""


def build_service_manifest(
    core: ServiceCore,
    load: dict | None = None,
    stable: bool = True,
    slo: dict | None = None,
) -> dict:
    """Assemble the manifest dict from a drained core.

    ``load`` is the load spec's ``to_dict()`` (or any provenance dict);
    ``slo`` is the live engine's wall-clock report, ignored in stable
    mode.
    """
    chaos = core.chaos
    doc: dict[str, _t.Any] = {
        "kind": SERVICE_MANIFEST_KIND,
        "schema_version": SERVICE_SCHEMA_VERSION,
        "stable": stable,
        "service": core.config.to_dict(),
        "load": load or {},
        "chaos": None,
        "counts": dict(core.counts),
        "shed_reasons": {r: core.shed_reasons.get(r, 0) for r in SHED_REASONS},
        "admission": core.admission.stats(),
        "retry": core.retry.stats(),
        "breakers": core.breakers.stats(),
        "memo": core.memo.stats(),
        "latency": latency_percentiles(core.latencies),
        "requests": list(core.records),
    }
    if chaos is not None:
        from repro.faults.service import chaos_to_dict

        doc["chaos"] = chaos_to_dict(chaos)
    if not stable:
        from repro.fft.plan import plan_cache_stats

        doc["slo"] = slo or {}
        doc["plan_cache"] = plan_cache_stats()
    return doc


_RULES: list[tuple[str, tuple[type, ...], bool]] = [
    ("kind", (str,), True),
    ("schema_version", (int,), True),
    ("stable", (bool,), True),
    ("service", (dict,), True),
    ("service.workers", (int,), True),
    ("service.max_queue_depth", (int,), True),
    ("load", (dict,), True),
    ("chaos", (dict, type(None)), True),
    ("counts", (dict,), True),
    ("shed_reasons", (dict,), True),
    ("admission", (dict,), True),
    ("retry", (dict,), True),
    ("breakers", (dict,), True),
    ("memo", (dict,), True),
    ("latency", (dict,), True),
    ("requests", (list,), True),
    ("slo", (dict,), False),
    ("plan_cache", (dict,), False),
]


def _lookup(doc: dict, dotted: str):
    node: _t.Any = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None, False
        node = node[part]
    return node, True


def validate_service_manifest(manifest: object) -> list[str]:
    """Return schema violations (empty list = valid)."""
    if not isinstance(manifest, dict):
        return ["service manifest must be a JSON object"]
    errors: list[str] = []
    for dotted, types, required in _RULES:
        value, present = _lookup(manifest, dotted)
        if not present:
            if required:
                errors.append(f"missing required field {dotted!r}")
            continue
        if not isinstance(value, types):
            names = "/".join(t.__name__ for t in types)
            errors.append(f"{dotted!r} must be {names}, got {type(value).__name__}")
    if errors:
        return errors
    if manifest["kind"] != SERVICE_MANIFEST_KIND:
        errors.append(
            f"kind must be {SERVICE_MANIFEST_KIND!r}, got {manifest['kind']!r}"
        )
    if manifest["schema_version"] > SERVICE_SCHEMA_VERSION:
        errors.append(
            f"schema_version {manifest['schema_version']} is newer than "
            f"supported {SERVICE_SCHEMA_VERSION}"
        )
    counts = manifest["counts"]
    for name in ("submitted", "accepted", *VERDICTS):
        if not isinstance(counts.get(name), int):
            errors.append(f"counts.{name} must be an int")
    if errors:
        return errors
    # Conservation laws: no request vanishes, no accepted request is lost.
    terminal = sum(counts[v] for v in VERDICTS)
    if counts["submitted"] != terminal:
        errors.append(
            f"counts.submitted ({counts['submitted']}) != sum of verdicts ({terminal})"
        )
    served = (
        counts["ok"]
        + counts["batched"]
        + counts["expired"]
        + counts["failed"]
        + counts["memoized"]
    )
    if counts["accepted"] != served:
        errors.append(
            f"counts.accepted ({counts['accepted']}) != ok+batched+expired+"
            f"failed+memoized ({served})"
        )
    shed = sum(manifest["shed_reasons"].values())
    if counts["shed"] != shed:
        errors.append(
            f"counts.shed ({counts['shed']}) != sum of shed_reasons ({shed})"
        )
    requests = manifest["requests"]
    if len(requests) != counts["submitted"]:
        errors.append(
            f"{len(requests)} request records != counts.submitted "
            f"({counts['submitted']})"
        )
    for i, rec in enumerate(requests):
        if not isinstance(rec, dict):
            errors.append(f"requests[{i}] must be an object")
            continue
        verdict = rec.get("verdict")
        if verdict not in VERDICTS:
            errors.append(f"requests[{i}].verdict {verdict!r} not in {VERDICTS}")
        for field in ("rid", "grid_class", "version", "digest", "attempts"):
            if field not in rec:
                errors.append(f"requests[{i}] missing field {field!r}")
    return errors


def write_service_manifest(path: str | pathlib.Path, manifest: dict) -> pathlib.Path:
    """Validate and write (sorted keys, so stable manifests are byte-stable)."""
    errors = validate_service_manifest(manifest)
    if errors:
        raise ServiceManifestError("; ".join(errors))
    path = pathlib.Path(path)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def load_service_manifest(path: str | pathlib.Path) -> dict:
    """Read and validate a service manifest."""
    path = pathlib.Path(path)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ServiceManifestError(f"{path} is not valid JSON: {exc}") from None
    errors = validate_service_manifest(doc)
    if errors:
        raise ServiceManifestError(f"{path}: " + "; ".join(errors))
    return doc
