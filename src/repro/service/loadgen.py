"""Seeded open-loop load generation.

Open-loop means arrivals are scheduled from a Poisson process fixed in
advance — the generator does *not* wait for responses, so an overloaded
service faces mounting pressure exactly as real traffic would (a
closed-loop generator self-throttles and hides overload; see the
admission layer it is meant to exercise).

:func:`generate_arrivals` is pure and seed-deterministic: the same
:class:`LoadSpec` always yields the same ``(time, request)`` schedule.
The soak engine replays it on the virtual clock; :func:`run_loadgen`
replays it on the wall clock against a live :class:`~repro.service.
server.AsyncService`.
"""

from __future__ import annotations

import dataclasses
import random
import typing as _t

from repro.faults.service import ServiceChaos
from repro.service.request import (
    GRID_CLASSES,
    RequestError,
    ServiceRequest,
    preset_request,
)

__all__ = ["LoadSpec", "generate_arrivals", "run_loadgen"]


@dataclasses.dataclass(frozen=True)
class LoadSpec:
    """One load scenario: how much traffic, of what shape, for how long."""

    #: Mean arrival rate (requests/second, Poisson).
    rate_rps: float = 20.0
    #: Arrival window (seconds); the service drains at its end.
    duration_s: float = 5.0
    #: Grid-class mix (weights, normalized internally).
    mix: dict[str, float] = dataclasses.field(
        default_factory=lambda: {"small": 0.7, "medium": 0.25, "large": 0.05}
    )
    #: Executor versions drawn uniformly.
    versions: tuple[str, ...] = ("original", "ompss_perfft")
    #: Per-request latency budget (``None`` = service default).
    deadline_s: float | None = None
    #: Ranks/taskgroups of every generated request (kept small: the
    #: service's unit of work is one modest simulation, many times).
    ranks: int = 2
    taskgroups: int = 2
    #: Fraction of requests repeating an earlier digest (memo food).
    repeat_fraction: float = 0.2
    #: Arrival-schedule seed.
    seed: int = 42

    def __post_init__(self) -> None:
        if self.rate_rps <= 0 or self.duration_s <= 0:
            raise RequestError("rate_rps and duration_s must be > 0")
        if not self.mix:
            raise RequestError("mix must name at least one grid class")
        for cls in self.mix:
            if cls not in GRID_CLASSES:
                raise RequestError(f"unknown grid class in mix: {cls!r}")
        if not self.versions:
            raise RequestError("versions must be non-empty")
        if not 0.0 <= self.repeat_fraction < 1.0:
            raise RequestError(
                f"repeat_fraction must be in [0, 1), got {self.repeat_fraction}"
            )

    def to_dict(self) -> dict:
        doc = dataclasses.asdict(self)
        doc["versions"] = list(self.versions)
        return doc


def generate_arrivals(
    spec: LoadSpec, chaos: ServiceChaos | None = None
) -> list[tuple[float, ServiceRequest]]:
    """The deterministic ``(arrival_time, request)`` schedule of ``spec``.

    ``chaos.fault_fraction`` tags that fraction of requests with the
    plan's embedded machine-level scenario.  Repeats re-issue an earlier
    request verbatim (same digest ⇒ memoizable).
    """
    rng = random.Random(spec.seed)
    classes = sorted(spec.mix)
    weights = [spec.mix[c] for c in classes]
    arrivals: list[tuple[float, ServiceRequest]] = []
    issued: list[ServiceRequest] = []
    t = 0.0
    while True:
        t += rng.expovariate(spec.rate_rps)
        if t >= spec.duration_s:
            break
        if issued and rng.random() < spec.repeat_fraction:
            request = issued[rng.randrange(len(issued))]
        else:
            grid_class = rng.choices(classes, weights)[0]
            faults = None
            if (
                chaos is not None
                and chaos.run_faults is not None
                and rng.random() < chaos.fault_fraction
            ):
                faults = chaos.run_faults
            request = preset_request(
                grid_class,
                ranks=spec.ranks,
                taskgroups=spec.taskgroups,
                version=spec.versions[rng.randrange(len(spec.versions))],
                deadline_s=spec.deadline_s,
                # Distinct seeds keep non-repeat requests un-memoizable;
                # bounded so the digest space still collides across runs.
                seed=2017 + rng.randrange(10_000),
                faults=faults,
            )
            issued.append(request)
        arrivals.append((round(t, 9), request))
    return arrivals


async def run_loadgen(
    service: _t.Any, spec: LoadSpec, chaos: ServiceChaos | None = None
) -> dict:
    """Replay ``spec`` open-loop against a started live service, then drain.

    Returns the service's SLO report.  Submission times follow the
    schedule on the wall clock; responses are gathered but never waited
    on in-line (open-loop).
    """
    import asyncio
    import time

    arrivals = generate_arrivals(spec, chaos)
    t0 = time.monotonic()
    tasks = []
    for t, request in arrivals:
        delay = t0 + t - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(service.submit(request)))
    await asyncio.gather(*tasks)
    return await service.drain()
