"""Graceful degradation: do less per request instead of refusing requests.

Two mechanisms, both observable in the manifest:

* :class:`MemoCache` — an LRU of completed result summaries keyed by the
  request's canonical sha256 digest (:attr:`~repro.service.request.
  ServiceRequest.digest`).  Identical digests provably yield identical
  results (the whole simulation is seed-deterministic), so a hit is
  served instantly with verdict ``memoized`` — the cheapest possible way
  to absorb a retry storm of identical requests.

* :func:`should_degrade` — under queue pressure the worker switches to
  the fast path: telemetry off, leaning fully on the process-cached
  layouts and FFT plan LRU.  The run result is identical (telemetry is
  observational); only per-request observability is sacrificed, which is
  the correct thing to shed last.
"""

from __future__ import annotations

import collections
import typing as _t

__all__ = ["MemoCache", "should_degrade"]


class MemoCache:
    """Digest-keyed LRU of completed result summaries."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self._entries: collections.OrderedDict[str, dict] = collections.OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, digest: str) -> dict | None:
        """The memoized summary for ``digest``, or ``None`` (counts both)."""
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        return entry

    def put(self, digest: str, summary: dict) -> None:
        """Insert/refresh a summary (evicts the LRU entry at capacity)."""
        if self.max_entries == 0:
            return
        if digest in self._entries:
            self._entries.move_to_end(digest)
        self._entries[digest] = summary
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "max_entries": self.max_entries,
        }


def should_degrade(
    depth: int, max_depth: int, threshold: float = 0.5
) -> bool:
    """Switch to the telemetry-off fast path above this queue-pressure knee.

    ``threshold`` is the occupied fraction of the main queue at which the
    service stops paying per-request telemetry.  0 degrades always, 1
    effectively never (only at a completely full queue).
    """
    if max_depth <= 0:
        return False
    return depth >= max_depth * threshold


def summarize_result(result: _t.Any) -> dict:
    """Reduce a :class:`~repro.core.driver.RunResult` to a memoizable dict.

    Only simulation outputs (deterministic for a digest) — never wall
    times or process-warmth counters, which would poison the memo.
    """
    return {
        "phase_time_s": result.phase_time,
        "failed": bool(result.failed),
        "n_attempts": int(result.n_attempts),
        "fault_failure": (result.fault_report or {}).get("failure"),
    }
