"""The service engines: one policy core, two clocks.

:class:`ServiceCore` owns every resilience decision — admission, memo,
deadline accounting, retry budgets, breakers — and all request-level
bookkeeping, but never reads a clock or touches I/O: engines feed it
``now`` values.  Two engines drive it:

* :class:`AsyncService` — the live asyncio front end.  Requests arrive
  via :meth:`~AsyncService.submit`, workers fan out over a thread pool
  (the simulator releases the GIL rarely, but runs are milliseconds and
  the pool gives real overlap of marshalling with policy work), each
  attempt carries its wall-clock deadline into
  :func:`repro.core.driver.run_fft_phase` as a cooperative cancellation
  hook, and :meth:`~AsyncService.drain` completes all accepted work
  before returning (the zero accepted-then-lost invariant).

* :class:`SoakEngine` — a single-threaded virtual-time replica used for
  deterministic chaos soaks.  Service times come from the calibrated
  cost model instead of wall clock, every stochastic draw comes from one
  seeded generator consumed in event-heap order, and the resulting
  service manifest is byte-identical for a given (seed, load spec,
  chaos plan) — the service-layer analogue of the chaos CI job's
  reproducibility pin.  Machine-level fault scenarios embedded in
  requests are *modelled* here (a deterministic service-time surcharge),
  not injected; the live engine injects them for real.

Accounting conservation law (validated by the manifest checker)::

    submitted == ok + memoized + batched + shed + expired + failed
    accepted  == ok + batched + expired + failed
"""

from __future__ import annotations

import dataclasses
import heapq
import random
import typing as _t

from repro import telemetry as _telemetry
from repro.faults.service import ServiceChaos
from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.degrade import MemoCache, should_degrade, summarize_result
from repro.service.request import SHED_REASONS, ServiceRequest
from repro.service.retry import BreakerBoard, RetryPolicy

__all__ = ["ServiceConfig", "Admitted", "ServiceCore", "AsyncService", "SoakEngine"]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Every policy knob of the service, in one embeddable object."""

    #: Concurrent worker lanes.
    workers: int = 2
    #: Main-lane queue bound (admission sheds past it).
    max_queue_depth: int = 32
    #: Batch-lane bound (deadline-waived downgrades for large requests).
    batch_depth: int = 64
    #: Latency budget for requests that do not name one.
    default_deadline_s: float = 2.0
    #: Cost-model calibration (see :func:`repro.service.request.estimate_seconds`).
    overhead_s: float = 0.012
    per_unit_s: float = 3.0e-9
    #: Retry policy.
    retry_max_attempts: int = 3
    retry_base_backoff_s: float = 0.05
    retry_multiplier: float = 2.0
    retry_max_backoff_s: float = 1.0
    retry_jitter: float = 0.25
    retry_budget_cap: float = 8.0
    retry_refill_per_success: float = 0.2
    #: Circuit breaker per (grid-class, executor).
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 1.0
    breaker_probe_quota: int = 1
    #: Degradation.
    memo_entries: int = 256
    degrade_threshold: float = 0.5
    #: Service seed (combined with the chaos plan's seed for all draws).
    seed: int = 0
    #: Autotuner mode stamped on every admitted run's :class:`RunConfig`
    #: (``"off"`` | ``"consult"`` | ``"search"``).  ``"consult"`` is the
    #: service-friendly setting: the wisdom lookup is memoized per
    #: (path, mtime, digest), so the warm admission path pays two dict
    #: probes; ``"search"`` would run sweeps inside worker lanes — only
    #: sensible for a dedicated tuning service.
    tuning: str = "off"
    #: Wisdom DB path handed to the driver (``None`` = the tuner default).
    wisdom_path: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not 0.0 <= self.degrade_threshold <= 1.0:
            raise ValueError(
                f"degrade_threshold must be in [0, 1], got {self.degrade_threshold}"
            )
        if self.tuning not in ("off", "consult", "search"):
            raise ValueError(
                f"tuning must be 'off', 'consult' or 'search', got {self.tuning!r}"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class Admitted:
    """One accepted request's mutable in-flight state."""

    rid: str
    request: ServiceRequest
    decision: AdmissionDecision
    t_submit: float
    #: Absolute deadline on the engine's clock (``None`` = batch lane).
    abs_deadline: float | None
    attempts: int = 0
    degraded: bool = False
    #: Failure cause of the last attempt (manifest breadcrumb).
    last_cause: str | None = None


class ServiceCore:
    """Engine-agnostic resilience policy + request accounting."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        chaos: ServiceChaos | None = None,
        telemetry: _telemetry.Telemetry | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.chaos = chaos
        self.tel = telemetry
        cfg = self.config
        self.admission = AdmissionController(
            max_queue_depth=cfg.max_queue_depth,
            batch_depth=cfg.batch_depth,
            default_deadline_s=cfg.default_deadline_s,
            overhead_s=cfg.overhead_s,
            per_unit_s=cfg.per_unit_s,
            workers=cfg.workers,
        )
        self.retry = RetryPolicy(
            max_attempts=cfg.retry_max_attempts,
            base_backoff_s=cfg.retry_base_backoff_s,
            multiplier=cfg.retry_multiplier,
            max_backoff_s=cfg.retry_max_backoff_s,
            jitter=cfg.retry_jitter,
            budget_cap=cfg.retry_budget_cap,
            refill_per_success=cfg.retry_refill_per_success,
        )
        self.breakers = BreakerBoard(
            failure_threshold=cfg.breaker_failure_threshold,
            cooldown_s=cfg.breaker_cooldown_s,
            probe_quota=cfg.breaker_probe_quota,
        )
        self.memo = MemoCache(cfg.memo_entries)
        #: One seeded stream for every stochastic decision (jitter, chaos).
        chaos_seed = chaos.seed if chaos is not None else 0
        self.rng = random.Random((cfg.seed << 20) ^ chaos_seed ^ 0x5F3759DF)
        self.counts: dict[str, int] = {
            "submitted": 0,
            "accepted": 0,
            "ok": 0,
            "memoized": 0,
            "batched": 0,
            "shed": 0,
            "expired": 0,
            "failed": 0,
            "retries": 0,
            "degraded": 0,
            "cancelled_mid_run": 0,
        }
        self.shed_reasons: dict[str, int] = {r: 0 for r in SHED_REASONS}
        self.records: list[dict] = []
        self.latencies: list[float] = []
        self._next_rid = 0

    # -- telemetry plumbing ----------------------------------------------------

    def _count(self, name: str, **labels: _t.Any) -> None:
        if self.tel is not None and self.tel.enabled:
            self.tel.metrics.count(name, 1, **labels)

    def _gauge(self, name: str, value: float) -> None:
        if self.tel is not None and self.tel.enabled:
            self.tel.metrics.gauge(name).set(value)

    def _sync_gauges(self) -> None:
        if self.tel is None or not self.tel.enabled:
            return
        adm = self.admission
        self._gauge("service.queue_depth", adm.depth)
        self._gauge("service.batch_occupancy", adm.batch_occupancy)
        self._gauge("service.backlog_s", adm.backlog_s)
        # Distinct from the labeled `service.breaker_trips` counter: one
        # registry name cannot be both a counter and a gauge.
        self._gauge("service.breaker_trips_total", self.breakers.total_trips())

    # -- admission -------------------------------------------------------------

    def submit(
        self, request: ServiceRequest, now: float
    ) -> tuple[str, Admitted | dict | str]:
        """Admit one request.

        Returns ``("memo", summary)``, ``("shed", reason)``, or
        ``("accept" | "batch", admitted)``.
        """
        self.counts["submitted"] += 1
        rid = f"r{self._next_rid:05d}"
        self._next_rid += 1

        hit = self.memo.get(request.digest)
        if hit is not None:
            self.counts["memoized"] += 1
            self.counts["accepted"] += 1
            self._count("service.memo_hits")
            self._record(
                rid, request, "memoized", "", lane="memo", attempts=0,
                t_submit=now, t_done=now,
            )
            return ("memo", hit)

        breaker = self.breakers.breaker(request.grid_class, request.version)
        if not breaker.allow(now):
            return ("shed", self._shed(rid, request, "breaker_open", now))

        decision = self.admission.decide(request)
        if decision.action == "shed":
            # Hand back the probe slot allow() may have reserved half-open.
            breaker.release_probe()
            return ("shed", self._shed(rid, request, decision.reason, now))

        self.counts["accepted"] += 1
        deadline = (
            None
            if decision.action == "batch"
            else now + self.admission.deadline_of(request)
        )
        self._count("service.accepted", lane=decision.action)
        self._sync_gauges()
        return (
            decision.action,
            Admitted(rid, request, decision, now, deadline),
        )

    def _shed(self, rid: str, request: ServiceRequest, reason: str, now: float) -> str:
        self.counts["shed"] += 1
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
        self._count("service.shed", reason=reason)
        self._record(
            rid, request, "shed", reason, lane="", attempts=0,
            t_submit=now, t_done=now,
        )
        return reason

    # -- attempt outcomes ------------------------------------------------------

    def should_degrade(self) -> bool:
        """Current queue pressure says: run the telemetry-off fast path."""
        return should_degrade(
            self.admission.depth,
            self.admission.max_queue_depth,
            self.config.degrade_threshold,
        )

    def retry_backoff(self, admitted: Admitted, now: float) -> float | None:
        """Backoff before the next attempt, or ``None`` for a final failure.

        A retry must fit the request's remaining deadline (batch lane has
        none), stay under ``retry_max_attempts`` and win a token from the
        per-class budget.
        """
        backoff = self.retry.backoff_s(admitted.attempts, self.rng)
        if admitted.abs_deadline is not None:
            remaining = admitted.abs_deadline - now
            if backoff + admitted.decision.est_cost_s > remaining:
                return None
        if not self.retry.try_spend(admitted.request.grid_class, admitted.attempts):
            return None
        self.counts["retries"] += 1
        self._count("service.retries", grid_class=admitted.request.grid_class)
        return backoff

    def finish(
        self,
        admitted: Admitted,
        verdict: str,
        now: float,
        summary: dict | None = None,
        cancelled_mid_run: bool = False,
    ) -> None:
        """Record a terminal verdict for an accepted request."""
        request = admitted.request
        breaker = self.breakers.breaker(request.grid_class, request.version)
        if verdict in ("ok", "batched"):
            breaker.record_success(now)
            self.retry.record_success(request.grid_class)
            if summary is not None:
                self.memo.put(request.digest, summary)
            self.latencies.append(now - admitted.t_submit)
        elif verdict == "failed":
            breaker.record_failure(now)
            if breaker.state == "open" and breaker.transitions and (
                breaker.transitions[-1][0] == round(now, 9)
            ):
                self._count(
                    "service.breaker_trips",
                    grid_class=request.grid_class,
                    version=request.version,
                )
        elif verdict == "expired":
            # Expiry is the service's fault (admission mispricing), not the
            # backend's — it does not count against the breaker, but a
            # half-open probe slot it held must come back.
            breaker.release_probe()
            if cancelled_mid_run:
                self.counts["cancelled_mid_run"] += 1
        self.counts[verdict] += 1
        if admitted.degraded:
            self.counts["degraded"] += 1
            self._count("service.degraded")
        self.admission.finish(admitted.decision)
        self._count("service.finished", verdict=verdict)
        self._sync_gauges()
        self._record(
            admitted.rid, request, verdict,
            admitted.last_cause or "", lane=admitted.decision.action,
            attempts=admitted.attempts, t_submit=admitted.t_submit, t_done=now,
            degraded=admitted.degraded,
        )

    def _record(
        self,
        rid: str,
        request: ServiceRequest,
        verdict: str,
        reason: str,
        lane: str,
        attempts: int,
        t_submit: float,
        t_done: float,
        degraded: bool = False,
    ) -> None:
        self.records.append(
            {
                "rid": rid,
                "grid_class": request.grid_class,
                "version": request.version,
                "digest": request.digest,
                "verdict": verdict,
                "reason": reason,
                "lane": lane,
                "attempts": attempts,
                "degraded": degraded,
                "faulted": request.faults is not None,
                "t_submit": round(t_submit, 9),
                "t_done": round(t_done, 9),
                "latency_s": round(t_done - t_submit, 9),
            }
        )


# ---------------------------------------------------------------------------
# Live engine (asyncio + thread pool, wall clock).
# ---------------------------------------------------------------------------


class AsyncService:
    """The live asyncio front end over :func:`repro.core.driver.run_fft_phase`.

    Lifecycle::

        service = AsyncService(config, chaos=None)
        await service.start()
        verdict = await service.submit(request)   # dict: verdict + summary
        report = await service.drain()            # completes accepted work

    ``submit`` resolves when the request reaches a terminal verdict —
    memo hits and sheds immediately, everything else after its run (and
    retries) finish.  Workers prefer the main lane and only take batch
    work when the main queue is empty.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        chaos: ServiceChaos | None = None,
        telemetry: _telemetry.Telemetry | None = None,
    ) -> None:
        self.core = ServiceCore(config, chaos, telemetry)
        self._started_mono = 0.0
        self._workers: list = []
        self._pending: _t.Any = None  # asyncio.Queue-like signal
        self._main: list = []
        self._batch: list = []
        self._inflight: set = set()
        self._drained = False
        self._executor = None

    # Imports deferred so the module stays importable in contexts that
    # never touch the live engine (the soak path is pure computation).
    def _now(self) -> float:
        import time

        return time.monotonic() - self._started_mono

    async def start(self) -> None:
        import asyncio
        import concurrent.futures
        import time

        self._started_mono = time.monotonic()
        self._pending = asyncio.Condition()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.core.config.workers,
            thread_name_prefix="fft-service",
        )
        self._workers = [
            asyncio.create_task(self._worker_loop(i))
            for i in range(self.core.config.workers)
        ]

    async def submit(self, request: ServiceRequest) -> dict:
        """Admit and (eventually) serve one request; returns its verdict."""
        import asyncio

        now = self._now()
        action, payload = self.core.submit(request, now)
        if action == "memo":
            return {"verdict": "memoized", "summary": payload}
        if action == "shed":
            return {"verdict": "shed", "reason": payload}
        admitted: Admitted = payload
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        item = (admitted, future)
        self._inflight.add(future)
        future.add_done_callback(self._inflight.discard)
        async with self._pending:
            (self._main if action == "accept" else self._batch).append(item)
            self._pending.notify()
        return await future

    async def _take(self) -> tuple[Admitted, _t.Any] | None:
        async with self._pending:
            while not self._main and not self._batch:
                if self._drained:
                    return None
                await self._pending.wait()
            return self._main.pop(0) if self._main else self._batch.pop(0)

    async def _worker_loop(self, index: int) -> None:
        import asyncio

        while True:
            item = await self._take()
            if item is None:
                return
            admitted, future = item
            now = self._now()
            if admitted.abs_deadline is not None and now >= admitted.abs_deadline:
                self.core.finish(admitted, "expired", now)
                future.set_result({"verdict": "expired"})
                continue
            try:
                await self._run_attempts(admitted, future)
            except Exception as exc:  # defensive: never lose an accepted request
                now = self._now()
                admitted.last_cause = f"internal:{type(exc).__name__}"
                self.core.finish(admitted, "failed", now)
                if not future.done():
                    future.set_result({"verdict": "failed", "cause": str(exc)})

    async def _run_attempts(self, admitted: Admitted, future: _t.Any) -> None:
        import asyncio

        core = self.core
        request = admitted.request
        while True:
            admitted.attempts += 1
            admitted.degraded = admitted.degraded or core.should_degrade()
            now = self._now()
            cause = None
            if core.chaos is not None:
                cause = core.chaos.attempt_fails(
                    core.rng, request.grid_class, request.version, now
                )
            summary: dict | None = None
            cancelled = False
            if cause is None:
                loop = asyncio.get_running_loop()
                try:
                    result = await loop.run_in_executor(
                        self._executor, self._run_once, admitted
                    )
                except _RunExpired:
                    cancelled = True
                    cause = "deadline"
                else:
                    if result["failed"]:
                        cause = result.get("fault_failure") or "run_failed"
                    else:
                        summary = result
            now = self._now()
            if cause is None:
                verdict = "batched" if admitted.decision.action == "batch" else "ok"
                core.finish(admitted, verdict, now, summary=summary)
                future.set_result({"verdict": verdict, "summary": summary})
                return
            admitted.last_cause = cause
            if cancelled:
                core.finish(admitted, "expired", now, cancelled_mid_run=True)
                future.set_result({"verdict": "expired"})
                return
            backoff = core.retry_backoff(admitted, now)
            if backoff is None:
                core.finish(admitted, "failed", now)
                future.set_result({"verdict": "failed", "cause": cause})
                return
            await asyncio.sleep(backoff)

    def _run_once(self, admitted: Admitted) -> dict:
        """One driver attempt on a pool thread (wall deadline enforced)."""
        import time

        from repro.core.config import RunConfig
        from repro.core.driver import RunCancelled, run_fft_phase
        from repro.faults.plan import scenario_from_dict

        request = admitted.request
        scenario = (
            scenario_from_dict(request.faults) if request.faults is not None else None
        )
        config = RunConfig(
            ecutwfc=request.ecutwfc,
            alat=request.alat,
            nbnd=request.nbnd,
            ranks=request.ranks,
            taskgroups=request.taskgroups,
            version=request.version,
            # Retries bump the seed: a deterministic replay of a failed
            # draw would fail identically, so each attempt is a fresh one.
            seed=request.seed + (admitted.attempts - 1),
            telemetry=not admitted.degraded,
            tuning=self.core.config.tuning,
            wisdom_path=self.core.config.wisdom_path,
        )
        deadline = None
        if admitted.abs_deadline is not None:
            deadline = self._started_mono + admitted.abs_deadline
            if time.monotonic() >= deadline:
                raise _RunExpired()
        try:
            result = run_fft_phase(config, faults=scenario, deadline=deadline)
        except RunCancelled:
            raise _RunExpired() from None
        return summarize_result(result)

    async def drain(self) -> dict:
        """Stop admitting, finish all accepted work, stop workers."""
        import asyncio

        self.core.admission.draining = True
        if self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        self._drained = True
        async with self._pending:
            self._pending.notify_all()
        await asyncio.gather(*self._workers)
        self._executor.shutdown(wait=True)
        return self.slo_report()

    def slo_report(self) -> dict:
        """Wall-clock SLO summary of everything served so far."""
        elapsed = self._now()
        served = self.core.counts["ok"] + self.core.counts["batched"]
        served += self.core.counts["memoized"]
        return {
            "elapsed_s": round(elapsed, 6),
            "served": served,
            "requests_per_s": round(served / elapsed, 3) if elapsed > 0 else 0.0,
            "latency": latency_percentiles(self.core.latencies),
            "counts": dict(self.core.counts),
            "shed_reasons": dict(self.core.shed_reasons),
        }


class _RunExpired(Exception):
    """Internal: a pool attempt hit its wall-clock deadline."""


# ---------------------------------------------------------------------------
# Soak engine (virtual time, byte-reproducible).
# ---------------------------------------------------------------------------

#: Virtual service-time multipliers: the telemetry-off fast path saves the
#: per-record bookkeeping, a failing attempt aborts partway through, and an
#: embedded machine-fault scenario pays retry/checkpoint overhead.
_DEGRADED_FACTOR = 0.7
_FAILED_ATTEMPT_FACTOR = 0.5
_FAULTED_FACTOR = 1.2


class SoakEngine:
    """Deterministic virtual-time replica of the live engine.

    Feeds :class:`ServiceCore` from an event heap: arrivals at the load
    spec's seeded times, ``workers`` virtual lanes, service times from
    the calibrated cost model, chaos failures/outages from the shared
    seeded stream.  ``run()`` returns the core after the drain completes;
    the manifest built from it is byte-identical across runs and hosts.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        chaos: ServiceChaos | None = None,
        telemetry: _telemetry.Telemetry | None = None,
    ) -> None:
        self.core = ServiceCore(config, chaos, telemetry)
        self._heap: list[tuple[float, int, int, _t.Any]] = []
        self._seq = 0
        self._main: list[Admitted] = []
        self._batch: list[Admitted] = []
        self._free_workers = self.core.config.workers
        self.now = 0.0
        self.makespan = 0.0

    _ARRIVAL, _DRAIN, _COMPLETE, _REQUEUE = range(4)

    def _push(self, t: float, kind: int, payload: _t.Any = None) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (t, kind, self._seq, payload))

    def run(
        self, arrivals: _t.Sequence[tuple[float, ServiceRequest]], drain_at: float
    ) -> ServiceCore:
        """Process all arrivals, drain at ``drain_at``, finish everything."""
        for t, request in arrivals:
            self._push(t, self._ARRIVAL, request)
        self._push(drain_at, self._DRAIN)
        while self._heap:
            t, kind, _seq, payload = heapq.heappop(self._heap)
            self.now = t
            if kind == self._ARRIVAL:
                self._arrive(payload)
            elif kind == self._DRAIN:
                self.core.admission.draining = True
            elif kind == self._COMPLETE:
                self._complete(*payload)
            else:  # _REQUEUE after a backoff
                self._main.append(payload)
                self._dispatch()
        self.makespan = self.now
        return self.core

    def _arrive(self, request: ServiceRequest) -> None:
        action, payload = self.core.submit(request, self.now)
        if action in ("memo", "shed"):
            return
        admitted: Admitted = payload
        (self._main if action == "accept" else self._batch).append(admitted)
        self._dispatch()

    def _dispatch(self) -> None:
        core = self.core
        while self._free_workers > 0 and (self._main or self._batch):
            admitted = self._main.pop(0) if self._main else self._batch.pop(0)
            if admitted.abs_deadline is not None and self.now >= admitted.abs_deadline:
                core.finish(admitted, "expired", self.now)
                continue
            self._free_workers -= 1
            admitted.attempts += 1
            admitted.degraded = admitted.degraded or core.should_degrade()
            cause = None
            if core.chaos is not None:
                cause = core.chaos.attempt_fails(
                    core.rng,
                    admitted.request.grid_class,
                    admitted.request.version,
                    self.now,
                )
            service_s = admitted.decision.est_cost_s
            if admitted.degraded:
                service_s *= _DEGRADED_FACTOR
            if admitted.request.faults is not None:
                service_s *= _FAULTED_FACTOR
            if cause is not None:
                service_s *= _FAILED_ATTEMPT_FACTOR
            t_end = self.now + service_s
            if (
                cause is None
                and admitted.abs_deadline is not None
                and t_end > admitted.abs_deadline
            ):
                # The deadline lands mid-run: the cancellation hook aborts
                # the attempt there (live: within one interrupt stride).
                self._push(
                    admitted.abs_deadline, self._COMPLETE, (admitted, "deadline")
                )
            else:
                self._push(t_end, self._COMPLETE, (admitted, cause))

    def _complete(self, admitted: Admitted, cause: str | None) -> None:
        core = self.core
        self._free_workers += 1
        if cause is None:
            verdict = "batched" if admitted.decision.action == "batch" else "ok"
            # A virtual run's memoizable summary: the simulated phase time
            # is deterministic per digest, so price it from the cost model.
            summary = {
                "phase_time_s": round(admitted.decision.est_cost_s, 9),
                "failed": False,
                "n_attempts": 1,
                "fault_failure": None,
            }
            core.finish(admitted, verdict, self.now, summary=summary)
        elif cause == "deadline":
            admitted.last_cause = cause
            core.finish(admitted, "expired", self.now, cancelled_mid_run=True)
        else:
            admitted.last_cause = cause
            backoff = core.retry_backoff(admitted, self.now)
            if backoff is None:
                core.finish(admitted, "failed", self.now)
            else:
                self._push(self.now + backoff, self._REQUEUE, admitted)
        self._dispatch()


def latency_percentiles(latencies: _t.Sequence[float]) -> dict:
    """Nearest-rank p50/p95/p99 + mean, rounded for manifest stability."""
    if not latencies:
        return {"count": 0, "p50_s": None, "p95_s": None, "p99_s": None, "mean_s": None}
    values = sorted(latencies)
    n = len(values)

    def rank(q: float) -> float:
        return values[min(n - 1, int(q * (n - 1) + 0.5))]

    return {
        "count": n,
        "p50_s": round(rank(0.50), 9),
        "p95_s": round(rank(0.95), 9),
        "p99_s": round(rank(0.99), 9),
        "mean_s": round(sum(values) / n, 9),
    }
