"""Service requests: the unit of work the front end admits, runs and bills.

A :class:`ServiceRequest` names a workload (cutoff, lattice, bands), an
executor, a latency budget and optionally a fault scenario to inject.  It
is frozen so it can sit in queues, key memo caches and embed verbatim in
the service manifest.

Cost model
----------
Admission control needs to price a request before running it.  The FFT
phase's work scales with the number of (band, stick/plane) elements, which
the workload parameters determine as::

    units = nbnd * alat**3 * ecutwfc**1.5

(``alat**3`` tracks the real-space grid volume, ``ecutwfc**1.5`` the
G-vector sphere).  Measured wall time is affine in units — a fixed
~10 ms geometry/setup overhead plus ~3 ns/unit of marshalling and event
dispatch — which :func:`estimate_seconds` encodes; the soak engine uses
the same formula as its deterministic virtual service time, so live and
virtual runs share one admission policy.

Digests
-------
``ServiceRequest.digest`` is a sha256 over the canonical JSON of every
result-determining field (workload, executor, seed, faults — not the
deadline), the same construction as the sweep engine's point digests.
Identical digests ⇒ identical results, which is what makes memoization
(:mod:`~repro.service.degrade`) sound.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing as _t

__all__ = [
    "GRID_CLASSES",
    "REQUEST_KIND",
    "VERDICTS",
    "SHED_REASONS",
    "RequestError",
    "ServiceRequest",
    "cost_units",
    "estimate_seconds",
    "grid_class_of",
    "preset_request",
    "request_from_dict",
    "request_to_dict",
]

REQUEST_KIND = "repro.service_request"


class RequestError(ValueError):
    """A service request failed validation or could not be parsed."""


#: Named workload presets the load generator mixes.  Units span ~125x so
#: the classes exercise genuinely different admission/batching paths.
GRID_CLASSES: dict[str, dict[str, _t.Any]] = {
    "small": {"ecutwfc": 12.0, "alat": 5.0, "nbnd": 8},
    "medium": {"ecutwfc": 20.0, "alat": 8.0, "nbnd": 16},
    "large": {"ecutwfc": 30.0, "alat": 10.0, "nbnd": 32},
}

#: Class boundaries in cost units (small < first, large >= second).
_CLASS_BOUNDS = (1.0e5, 2.0e6)

#: Terminal verdicts a request can end with.  Exactly one per request;
#: ``submitted == sum(verdict counts)`` is the service's conservation law.
VERDICTS = ("ok", "memoized", "batched", "shed", "expired", "failed")

#: Why admission refused a request.
SHED_REASONS = ("queue_full", "backlog", "breaker_open", "shutdown")


def cost_units(ecutwfc: float, alat: float, nbnd: int) -> float:
    """Workload size in cost units (see module docstring)."""
    return float(nbnd) * float(alat) ** 3 * float(ecutwfc) ** 1.5


def estimate_seconds(
    units: float, overhead_s: float = 0.012, per_unit_s: float = 3.0e-9
) -> float:
    """Predicted wall seconds for one attempt (affine calibration)."""
    return overhead_s + units * per_unit_s


def grid_class_of(units: float) -> str:
    """Bucket a request's cost units into small / medium / large."""
    if units < _CLASS_BOUNDS[0]:
        return "small"
    if units < _CLASS_BOUNDS[1]:
        return "medium"
    return "large"


@dataclasses.dataclass(frozen=True)
class ServiceRequest:
    """One run request as submitted to the service front end."""

    #: Wave-function cutoff (Ry).
    ecutwfc: float = 12.0
    #: Lattice parameter (Bohr).
    alat: float = 5.0
    #: Real bands (even — bands pack in pairs).
    nbnd: int = 8
    #: First-layer MPI ranks.
    ranks: int = 2
    #: Task groups / OmpSs threads.
    taskgroups: int = 2
    #: Executor version (original / ompss_perfft / ...).
    version: str = "original"
    #: Latency budget in seconds from admission (``None`` = the service
    #: default).  Batch-lane requests have their deadline waived.
    deadline_s: float | None = None
    #: Base seed of the run (retries bump it per attempt so a retry is a
    #: fresh draw, not a pointless deterministic replay).
    seed: int = 2017
    #: Fault scenario to inject (flat JSON dict as in ``repro.faults``),
    #: or ``None`` for a clean run.
    faults: dict | None = None

    def __post_init__(self) -> None:
        if self.ecutwfc <= 0 or self.alat <= 0:
            raise RequestError(
                f"ecutwfc/alat must be > 0, got {self.ecutwfc}/{self.alat}"
            )
        if self.nbnd < 2 or self.nbnd % 2:
            raise RequestError(f"nbnd must be even and >= 2, got {self.nbnd}")
        if self.ranks < 1 or self.taskgroups < 1:
            raise RequestError(
                f"ranks/taskgroups must be >= 1, got {self.ranks}/{self.taskgroups}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise RequestError(f"deadline_s must be > 0 or null, got {self.deadline_s}")
        if self.seed < 0:
            raise RequestError(f"seed must be >= 0, got {self.seed}")
        if self.faults is not None and not isinstance(self.faults, dict):
            raise RequestError("faults must be a JSON object or null")

    @property
    def units(self) -> float:
        """Cost units of one attempt."""
        return cost_units(self.ecutwfc, self.alat, self.nbnd)

    @property
    def grid_class(self) -> str:
        """small / medium / large bucket (admission + breaker key)."""
        return grid_class_of(self.units)

    @property
    def digest(self) -> str:
        """Canonical sha256 identity over result-determining fields."""
        payload = {
            "ecutwfc": self.ecutwfc,
            "alat": self.alat,
            "nbnd": self.nbnd,
            "ranks": self.ranks,
            "taskgroups": self.taskgroups,
            "version": self.version,
            "seed": self.seed,
            "faults": self.faults,
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return "sha256:" + hashlib.sha256(text.encode()).hexdigest()


def preset_request(grid_class: str, **overrides: _t.Any) -> ServiceRequest:
    """A :class:`ServiceRequest` from a named :data:`GRID_CLASSES` preset."""
    try:
        preset = GRID_CLASSES[grid_class]
    except KeyError:
        raise RequestError(
            f"unknown grid class {grid_class!r} (have {', '.join(GRID_CLASSES)})"
        ) from None
    return ServiceRequest(**{**preset, **overrides})


_FIELDS = tuple(f.name for f in dataclasses.fields(ServiceRequest))


def request_from_dict(doc: object) -> ServiceRequest:
    """Build a validated request from a (JSON-decoded) dict."""
    if not isinstance(doc, dict):
        raise RequestError(f"request must be a JSON object, got {type(doc).__name__}")
    kind = doc.get("kind")
    if kind is not None and kind != REQUEST_KIND:
        raise RequestError(f"kind must be {REQUEST_KIND!r}, got {kind!r}")
    unknown = sorted(set(doc) - set(_FIELDS) - {"kind"})
    if unknown:
        raise RequestError(f"unknown request field(s): {', '.join(unknown)}")
    try:
        return ServiceRequest(**{k: doc[k] for k in _FIELDS if k in doc})
    except TypeError as exc:
        raise RequestError(str(exc)) from None


def request_to_dict(request: ServiceRequest) -> dict:
    """Flat JSON-ready dict (inverse of :func:`request_from_dict`)."""
    doc: dict[str, _t.Any] = {"kind": REQUEST_KIND}
    doc.update(dataclasses.asdict(request))
    return doc
