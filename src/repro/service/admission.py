"""Admission control: the bounded front door.

The controller prices every arriving request (:func:`~repro.service.
request.estimate_seconds`) and keeps a running estimate of the backlog —
the seconds of work already admitted but not yet finished.  A request is
shed when serving it would blow its own deadline anyway; shedding early
is strictly kinder than accepting work the deadline layer would kill
half-done (the load generator's SLO report counts both, so the trade is
observable).

Decision order (first match wins; the server consults the memo cache and
breaker board *before* asking the controller, see
:meth:`~repro.service.server.ServiceCore.submit`):

1. draining → shed ``shutdown``;
2. main queue at ``max_queue_depth`` → batch lane for large requests
   (bounded by ``batch_depth``), shed ``queue_full`` otherwise;
3. estimated backlog + this request's cost > its deadline → batch lane
   for large requests, shed ``backlog`` otherwise;
4. accept into the main lane.

The controller is pure bookkeeping — no clock, no I/O — so the asyncio
live engine and the virtual-time soak engine share one instance and one
policy.  All mutation happens under the server's single-threaded control
(asyncio event loop or the soak heap), so there is no internal lock.
"""

from __future__ import annotations

import dataclasses

from repro.service.request import ServiceRequest, estimate_seconds

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclasses.dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    #: ``accept`` (main lane), ``batch`` (deadline-waived lane) or ``shed``.
    action: str
    #: Shed reason (``queue_full`` / ``backlog`` / ``shutdown``), else ``""``.
    reason: str = ""
    #: Estimated attempt cost in seconds (recorded for the manifest).
    est_cost_s: float = 0.0


class AdmissionController:
    """Bounded-queue admission with a deadline-derived backlog budget."""

    def __init__(
        self,
        max_queue_depth: int = 32,
        batch_depth: int = 64,
        default_deadline_s: float = 2.0,
        overhead_s: float = 0.012,
        per_unit_s: float = 3.0e-9,
        workers: int = 1,
    ) -> None:
        if max_queue_depth < 1 or batch_depth < 0:
            raise ValueError("max_queue_depth >= 1 and batch_depth >= 0 required")
        self.max_queue_depth = max_queue_depth
        self.batch_depth = batch_depth
        self.default_deadline_s = default_deadline_s
        self.overhead_s = overhead_s
        self.per_unit_s = per_unit_s
        self.workers = max(1, workers)
        #: Requests admitted to the main lane and not yet finished.
        self.depth = 0
        #: Batch-lane occupancy.
        self.batch_occupancy = 0
        #: Seconds of admitted-but-unfinished work (both lanes).
        self.backlog_s = 0.0
        self.draining = False
        #: High-water marks for the manifest.
        self.depth_peak = 0
        self.backlog_peak_s = 0.0

    # -- pricing ---------------------------------------------------------------

    def price(self, request: ServiceRequest) -> float:
        """Estimated seconds one attempt of ``request`` costs."""
        return estimate_seconds(request.units, self.overhead_s, self.per_unit_s)

    def deadline_of(self, request: ServiceRequest) -> float:
        """The request's latency budget (service default when unset)."""
        return request.deadline_s if request.deadline_s is not None else self.default_deadline_s

    # -- the decision ----------------------------------------------------------

    def decide(self, request: ServiceRequest) -> AdmissionDecision:
        """Admit, batch or shed; updates occupancy on accept/batch."""
        cost = self.price(request)
        if self.draining:
            return AdmissionDecision("shed", "shutdown", cost)
        is_large = request.grid_class == "large"
        if self.depth >= self.max_queue_depth:
            if is_large and self.batch_occupancy < self.batch_depth:
                return self._admit_batch(cost)
            return AdmissionDecision("shed", "queue_full", cost)
        # The backlog is drained by `workers` lanes in parallel; a request's
        # wait is roughly backlog / workers, plus its own service time.
        wait_s = self.backlog_s / self.workers + cost
        if wait_s > self.deadline_of(request):
            if is_large and self.batch_occupancy < self.batch_depth:
                return self._admit_batch(cost)
            return AdmissionDecision("shed", "backlog", cost)
        self.depth += 1
        self.depth_peak = max(self.depth_peak, self.depth)
        self._add_backlog(cost)
        return AdmissionDecision("accept", "", cost)

    def _admit_batch(self, cost: float) -> AdmissionDecision:
        self.batch_occupancy += 1
        self._add_backlog(cost)
        return AdmissionDecision("batch", "", cost)

    def _add_backlog(self, cost: float) -> None:
        self.backlog_s += cost
        self.backlog_peak_s = max(self.backlog_peak_s, self.backlog_s)

    # -- completion bookkeeping ------------------------------------------------

    def finish(self, decision: AdmissionDecision) -> None:
        """Release the occupancy an accept/batch decision reserved."""
        if decision.action == "accept":
            self.depth -= 1
        elif decision.action == "batch":
            self.batch_occupancy -= 1
        else:
            return
        self.backlog_s = max(0.0, self.backlog_s - decision.est_cost_s)

    def stats(self) -> dict:
        """Occupancy snapshot for gauges and the manifest."""
        return {
            "depth": self.depth,
            "depth_peak": self.depth_peak,
            "batch_occupancy": self.batch_occupancy,
            "backlog_s": round(self.backlog_s, 9),
            "backlog_peak_s": round(self.backlog_peak_s, 9),
            "draining": self.draining,
        }
