"""Retry with bounded budgets, and the per-(grid-class, executor) breaker.

Retries amplify load exactly when the system can least afford it, so both
mechanisms here are *budgeted*:

* :class:`RetryPolicy` — exponential backoff with seeded jitter, capped
  per attempt count, and spent from a per-grid-class token bucket that
  only successful completions refill.  A class failing 100% of the time
  exhausts its bucket and fails fast instead of doubling traffic.
* :class:`CircuitBreaker` — the classic three-state machine per
  (grid-class, executor): ``closed`` (counting consecutive failures) →
  ``open`` after ``failure_threshold`` (requests shed without running) →
  ``half_open`` after ``cooldown_s`` (up to ``probe_quota`` probes run;
  one success closes, one failure re-opens).

Both are clock-free except through ``now`` values the caller passes, so
the wall-clock live engine and the virtual-time soak engine reuse them
unchanged — and the soak engine's decisions stay byte-reproducible.
"""

from __future__ import annotations

import random
import typing as _t

__all__ = ["RetryPolicy", "CircuitBreaker", "BreakerBoard"]


class RetryPolicy:
    """Exponential backoff + jitter, spent from per-class token buckets."""

    def __init__(
        self,
        max_attempts: int = 3,
        base_backoff_s: float = 0.05,
        multiplier: float = 2.0,
        max_backoff_s: float = 1.0,
        jitter: float = 0.25,
        budget_cap: float = 8.0,
        refill_per_success: float = 0.2,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_backoff_s = base_backoff_s
        self.multiplier = multiplier
        self.max_backoff_s = max_backoff_s
        self.jitter = jitter
        self.budget_cap = budget_cap
        self.refill_per_success = refill_per_success
        #: grid class -> remaining retry tokens (starts full).
        self._tokens: dict[str, float] = {}
        #: grid class -> retries denied because the bucket was empty.
        self.budget_denials: dict[str, int] = {}

    def _bucket(self, grid_class: str) -> float:
        return self._tokens.setdefault(grid_class, self.budget_cap)

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based), with jitter."""
        base = min(
            self.max_backoff_s, self.base_backoff_s * self.multiplier ** (attempt - 1)
        )
        return base * (1.0 + self.jitter * rng.random())

    def try_spend(self, grid_class: str, attempt: int) -> bool:
        """Whether a retry may run; spends one token when allowed."""
        if attempt >= self.max_attempts:
            return False
        tokens = self._bucket(grid_class)
        if tokens < 1.0:
            self.budget_denials[grid_class] = self.budget_denials.get(grid_class, 0) + 1
            return False
        self._tokens[grid_class] = tokens - 1.0
        return True

    def record_success(self, grid_class: str) -> None:
        """Refill the class bucket a little (never past the cap)."""
        tokens = self._bucket(grid_class)
        self._tokens[grid_class] = min(self.budget_cap, tokens + self.refill_per_success)

    def stats(self) -> dict:
        """Bucket levels + denial counts, keyed by grid class."""
        return {
            "tokens": {k: round(v, 6) for k, v in sorted(self._tokens.items())},
            "budget_denials": dict(sorted(self.budget_denials.items())),
        }


class CircuitBreaker:
    """closed → open → half_open state machine for one (class, executor)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        probe_quota: int = 1,
    ) -> None:
        if failure_threshold < 1 or probe_quota < 1:
            raise ValueError("failure_threshold and probe_quota must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.probe_quota = probe_quota
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probes_in_flight = 0
        #: Lifetime trip count and transition log (``(now, from, to)``).
        self.trips = 0
        self.transitions: list[tuple[float, str, str]] = []

    def _move(self, now: float, state: str) -> None:
        self.transitions.append((round(now, 9), self.state, state))
        self.state = state

    def allow(self, now: float) -> bool:
        """May an attempt run now?  Half-opens an expired ``open`` breaker."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now - self.opened_at < self.cooldown_s:
                return False
            self._move(now, self.HALF_OPEN)
            self.probes_in_flight = 0
        # half-open: admit up to probe_quota concurrent probes.
        if self.probes_in_flight < self.probe_quota:
            self.probes_in_flight += 1
            return True
        return False

    def release_probe(self) -> None:
        """Hand back a half-open probe slot that never ran (shed upstream)."""
        if self.state == self.HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self._move(now, self.CLOSED)

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self._trip(now)
        elif self.state == self.CLOSED and (
            self.consecutive_failures >= self.failure_threshold
        ):
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.trips += 1
        self.opened_at = now
        self._move(now, self.OPEN)

    def stats(self) -> dict:
        return {
            "state": self.state,
            "trips": self.trips,
            "consecutive_failures": self.consecutive_failures,
            "transitions": len(self.transitions),
        }


class BreakerBoard:
    """All the service's breakers, keyed ``(grid_class, executor)``."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        probe_quota: int = 1,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.probe_quota = probe_quota
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}

    def breaker(self, grid_class: str, version: str) -> CircuitBreaker:
        key = (grid_class, version)
        brk = self._breakers.get(key)
        if brk is None:
            brk = CircuitBreaker(
                self.failure_threshold, self.cooldown_s, self.probe_quota
            )
            self._breakers[key] = brk
        return brk

    def items(self) -> _t.Iterator[tuple[tuple[str, str], CircuitBreaker]]:
        return iter(sorted(self._breakers.items()))

    def stats(self) -> dict:
        """Per-breaker snapshot keyed ``"class/executor"`` (sorted, stable)."""
        return {f"{c}/{v}": brk.stats() for (c, v), brk in self.items()}

    def total_trips(self) -> int:
        return sum(b.trips for b in self._breakers.values())
