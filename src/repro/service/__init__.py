"""FFT-as-a-service: a resilient front end over the simulation driver.

ROADMAP open item 1: the driver is one-shot (build layout, run, exit);
this package turns it into an always-on service that bears a stream of
concurrent run requests and defends itself end to end.  The defence
layers, in the order a request meets them (``docs/RESILIENCE.md`` has the
full model):

1. **Admission** (:mod:`~repro.service.admission`) — bounded queue and
   load-shedding when depth or the estimated backlog exceeds the
   request's deadline-derived budget; oversized requests are downgraded
   to a queued batch lane instead of rejected.
2. **Deadlines** — every accepted request carries a latency budget that
   propagates into the worker as a cooperative cancellation hook
   (:class:`repro.core.driver.RunCancelled`); expiry mid-run aborts the
   simulation within one interrupt stride.
3. **Retry** (:mod:`~repro.service.retry`) — failed attempts back off
   exponentially with seeded jitter, capped by a per-grid-class retry
   budget so a failing class cannot amplify load.
4. **Circuit breaker** (:mod:`~repro.service.retry`) — per
   (grid-class, executor) breaker trips on consecutive failures, cools
   down, then half-opens with a probe quota.
5. **Degradation** (:mod:`~repro.service.degrade`) — under pressure the
   service serves memoized results for identical request digests (the
   sweep engine's canonical sha256 digests) and switches to the
   telemetry-off fast path that leans on the process plan/layout caches.
6. **Drain** — shutdown rejects new work but completes every accepted
   request (the zero accepted-then-lost invariant, pinned in CI).

Two engines drive one policy core (:class:`~repro.service.server.
ServiceCore`): the asyncio live engine (:class:`~repro.service.server.
AsyncService`) on the wall clock, and a single-threaded virtual-time soak
engine (:class:`~repro.service.server.SoakEngine`) whose manifests are
byte-identical for a given seed + scenario — the service analogue of the
chaos CI job's reproducibility pin.
"""

from __future__ import annotations

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.degrade import MemoCache
from repro.service.loadgen import LoadSpec, generate_arrivals, run_loadgen
from repro.service.manifest import (
    SERVICE_MANIFEST_KIND,
    ServiceManifestError,
    validate_service_manifest,
)
from repro.service.request import (
    GRID_CLASSES,
    RequestError,
    ServiceRequest,
    cost_units,
    grid_class_of,
    preset_request,
    request_from_dict,
    request_to_dict,
)
from repro.service.retry import BreakerBoard, CircuitBreaker, RetryPolicy
from repro.service.server import AsyncService, ServiceConfig, ServiceCore, SoakEngine

__all__ = [
    "GRID_CLASSES",
    "SERVICE_MANIFEST_KIND",
    "AdmissionController",
    "AdmissionDecision",
    "AsyncService",
    "BreakerBoard",
    "CircuitBreaker",
    "LoadSpec",
    "MemoCache",
    "RequestError",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceCore",
    "ServiceManifestError",
    "ServiceRequest",
    "SoakEngine",
    "cost_units",
    "generate_arrivals",
    "grid_class_of",
    "preset_request",
    "request_from_dict",
    "request_to_dict",
    "run_loadgen",
    "validate_service_manifest",
]
