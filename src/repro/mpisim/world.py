"""The MPI world: ranks, their hardware binding, and the rank-facing API.

:class:`MpiWorld` wires together the machine model (CPU + network) and the
communicator machinery, and launches *rank programs* — generator functions
receiving a :class:`RankContext`.  A rank context is the simulated analogue
of "an MPI process": it knows its world rank, its hardware threads (one for
the original FFTXlib, several for the OmpSs versions), and exposes compute
and communication verbs that all return simkit events::

    def program(rank: RankContext):
        yield rank.compute("fft_z", 1.0e9)
        recv = yield rank.alltoall(comm, parts)
        yield rank.barrier(comm)

Every MPI call is reported to registered observers as an :class:`MpiRecord`
(begin/end time, bytes, synchronization share) — the raw material of the
Extrae-like tracer and the POP model's communication-efficiency factors.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro import telemetry as _telemetry
from repro.machine.cpu import CpuModel
from repro.telemetry.layers import comm_layer
from repro.machine.topology import HwThread, Placement
from repro.mpisim.communicator import CollectiveResult, Communicator, MpiSimError
from repro.mpisim.network import NetworkModel
from repro.mpisim.p2p import P2PEngine
from repro.simkit.events import Event
from repro.simkit.process import Process
from repro.simkit.simulator import Simulator

__all__ = ["MpiWorld", "RankContext", "MpiRecord"]


@dataclasses.dataclass(frozen=True)
class MpiRecord:
    """One completed MPI call, as reported to observers."""

    stream: tuple
    call: str
    comm_id: int
    comm_name: str
    t_begin: float
    t_end: float
    bytes_sent: float
    sync_time: float
    #: Point-to-point endpoints (world ranks) and tag; ``None`` for
    #: collectives.  These let the exporters pair sends with receives
    #: (Paraver communication records, Chrome-trace flow arrows).
    src: int | None = None
    dst: int | None = None
    tag: int | None = None

    @property
    def duration(self) -> float:
        """Wall (simulated) time spent inside the call."""
        return self.t_end - self.t_begin

    @property
    def transfer_time(self) -> float:
        """Non-synchronization share of the call."""
        return self.duration - self.sync_time


class MpiWorld:
    """A set of simulated MPI ranks bound to one machine.

    Parameters
    ----------
    sim:
        The simulator shared by machine, network and ranks.
    cpu:
        Machine compute model (provides topology and counters).
    network:
        Communication cost model.
    n_ranks:
        Number of MPI ranks.
    threads_per_rank:
        Hardware threads owned by each rank (1 for the pure-MPI FFTXlib,
        the OmpSs thread count for the task versions).
    placement:
        Optional explicit binding; defaults to
        ``cpu.topology.place(n_ranks * threads_per_rank)`` with the block
        layout (rank r, thread t) -> stream ``r * threads_per_rank + t``.
    """

    def __init__(
        self,
        sim: Simulator,
        cpu: CpuModel,
        network: NetworkModel,
        n_ranks: int,
        threads_per_rank: int = 1,
        placement: Placement | None = None,
    ):
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        if threads_per_rank < 1:
            raise ValueError(f"threads_per_rank must be >= 1, got {threads_per_rank}")
        self.sim = sim
        self.cpu = cpu
        self.network = network
        self.n_ranks = n_ranks
        self.threads_per_rank = threads_per_rank
        self.placement = placement or cpu.topology.place(n_ranks * threads_per_rank)
        if len(self.placement) < n_ranks * threads_per_rank:
            raise ValueError(
                f"placement provides {len(self.placement)} threads; "
                f"{n_ranks * threads_per_rank} needed"
            )
        #: Fault injector shared by this world's layers (set by the driver
        #: when a fault scenario is active); the OmpSs runtime reads it for
        #: task-failure injection.
        self.faults = None
        self.p2p = P2PEngine(self)
        self._comms: dict[int, Communicator] = {}
        self._next_comm_id = 0
        self.comm_world = self._register_comm(list(range(n_ranks)), "world")
        self.ranks = [RankContext(self, r) for r in range(n_ranks)]
        self._mpi_observers: list[_t.Callable[[MpiRecord], None]] = []

    # -- communicator registry ----------------------------------------------

    def _register_comm(self, ranks: _t.Sequence[int], name: str) -> Communicator:
        comm = Communicator(self, self._next_comm_id, ranks, name)
        self._comms[comm.id] = comm
        self._next_comm_id += 1
        return comm

    @property
    def communicators(self) -> dict[int, Communicator]:
        """All communicators ever created (id -> communicator)."""
        return dict(self._comms)

    # -- observation -------------------------------------------------------------

    def add_mpi_observer(self, observer: _t.Callable[[MpiRecord], None]) -> None:
        """Register a callback receiving every completed :class:`MpiRecord`."""
        self._mpi_observers.append(observer)

    def _notify(self, record: MpiRecord) -> None:
        for obs in self._mpi_observers:
            obs(record)
        tel = _telemetry.current()
        if tel.enabled:
            layer = comm_layer(record.comm_name)  # pack3 -> pack
            metrics = tel.metrics
            metrics.count("mpi.calls", 1.0, call=record.call, comm=layer)
            metrics.count(
                "mpi.bytes_sent", record.bytes_sent, call=record.call, comm=layer
            )
            metrics.count(
                "mpi.time_seconds", record.duration, call=record.call, comm=layer
            )
            metrics.count(
                "mpi.sync_seconds", record.sync_time, call=record.call, comm=layer
            )
            metrics.observe("mpi.call_seconds", record.duration, call=record.call)

    # -- program launch ------------------------------------------------------------

    def launch(
        self,
        program: _t.Callable[["RankContext"], _t.Generator],
        ranks: _t.Iterable[int] | None = None,
    ) -> list[Process]:
        """Start ``program(rank_context)`` as a process on each rank."""
        selected = list(ranks) if ranks is not None else list(range(self.n_ranks))
        procs = []
        for r in selected:
            ctx = self.ranks[r]
            procs.append(self.sim.process(program(ctx), name=f"rank{r}"))
        return procs

    def run(self) -> float:
        """Run the simulation to completion; returns the final time."""
        self.sim.run()
        return self.sim.now


class RankContext:
    """The rank-facing API: compute and communication verbs returning events."""

    def __init__(self, world: MpiWorld, rank: int):
        self.world = world
        self.rank = rank

    @property
    def sim(self) -> Simulator:
        """The shared simulator (for timeouts and bookkeeping)."""
        return self.world.sim

    @property
    def n_threads(self) -> int:
        """Hardware threads owned by this rank."""
        return self.world.threads_per_rank

    def thread(self, t: int = 0) -> HwThread:
        """The ``t``-th hardware thread of this rank."""
        if not 0 <= t < self.world.threads_per_rank:
            raise ValueError(
                f"thread {t} out of range [0, {self.world.threads_per_rank}) on rank {self.rank}"
            )
        return self.world.placement[self.rank * self.world.threads_per_rank + t]

    def stream(self, t: int = 0) -> tuple:
        """Analysis stream id of (this rank, thread ``t``)."""
        return (self.rank, t)

    # -- compute --------------------------------------------------------------

    def compute(self, phase: str, instructions: float, thread: int = 0) -> Event:
        """Execute a compute phase on one of this rank's hardware threads."""
        return self.world.cpu.compute(
            self.stream(thread), self.thread(thread), phase, instructions
        )

    # -- collectives -------------------------------------------------------------

    def alltoall(self, comm: Communicator, parts: _t.Sequence, key: object = None, thread: int = 0) -> Event:
        """MPI_Alltoall(v); resolves to the list of received parts."""
        return self._traced("alltoall", comm, comm.alltoall(self.rank, parts, key=key), thread)

    def alltoallw(
        self,
        comm: Communicator,
        sendbuf,
        recvbuf,
        send_blocks: _t.Sequence,
        recv_blocks: _t.Sequence,
        key: object = None,
        thread: int = 0,
    ) -> Event:
        """MPI_Alltoallw (pack-free block redistribution); resolves to ``recvbuf``."""
        return self._traced(
            "alltoallw",
            comm,
            comm.alltoallw(self.rank, sendbuf, recvbuf, send_blocks, recv_blocks, key=key),
            thread,
        )

    def barrier(self, comm: Communicator, key: object = None, thread: int = 0) -> Event:
        """MPI_Barrier."""
        return self._traced("barrier", comm, comm.barrier(self.rank, key=key), thread)

    def bcast(self, comm: Communicator, root: int, payload: object = None, key: object = None, thread: int = 0) -> Event:
        """MPI_Bcast; resolves to the payload on every member."""
        return self._traced("bcast", comm, comm.bcast(self.rank, root, payload, key=key), thread)

    def allreduce(self, comm: Communicator, array: object, op: str = "sum", key: object = None, thread: int = 0) -> Event:
        """MPI_Allreduce; resolves to the reduced array."""
        return self._traced("allreduce", comm, comm.allreduce(self.rank, array, op=op, key=key), thread)

    def gather(self, comm: Communicator, root: int, payload: object, key: object = None, thread: int = 0) -> Event:
        """MPI_Gather; resolves to the payload list at root, ``None`` elsewhere."""
        return self._traced("gather", comm, comm.gather(self.rank, root, payload, key=key), thread)

    def allgather(self, comm: Communicator, payload: object, key: object = None, thread: int = 0) -> Event:
        """MPI_Allgather; resolves to every member's payload in local order."""
        return self._traced("allgather", comm, comm.allgather(self.rank, payload, key=key), thread)

    def reduce(self, comm: Communicator, root: int, array: object, op: str = "sum", key: object = None, thread: int = 0) -> Event:
        """MPI_Reduce; resolves to the result at root, ``None`` elsewhere."""
        return self._traced("reduce", comm, comm.reduce(self.rank, root, array, op=op, key=key), thread)

    def scatter_from_root(self, comm: Communicator, root: int, parts: _t.Sequence | None = None, key: object = None, thread: int = 0) -> Event:
        """MPI_Scatter; resolves to this member's part."""
        return self._traced("rscatter", comm, comm.scatter_from_root(self.rank, root, parts, key=key), thread)

    def split(self, comm: Communicator, color: int, order_key: int = 0, key: object = None, thread: int = 0) -> Event:
        """MPI_Comm_split; resolves to the new communicator (or ``None``)."""
        return self._traced("split", comm, comm.split(self.rank, color, order_key, key=key), thread)

    def dup(self, comm: Communicator, key: object = None, thread: int = 0) -> Event:
        """MPI_Comm_dup; resolves to a same-group communicator."""
        return self._traced("dup", comm, comm.dup(self.rank, key=key), thread)

    # -- point to point -----------------------------------------------------------

    def send(self, comm: Communicator, dst_local: int, payload: object, tag: int = 0, thread: int = 0) -> Event:
        """Post a send to a local rank of ``comm``."""
        t0 = self.sim.now
        inner = self.world.p2p.send(comm, self.rank, dst_local, payload, tag)
        dst = comm.world_rank(dst_local)
        return self._wrap_p2p("send", comm, inner, t0, thread, self.rank, dst, tag)

    def recv(self, comm: Communicator, src_local: int, tag: int = 0, thread: int = 0) -> Event:
        """Post a receive; resolves to the received payload."""
        t0 = self.sim.now
        inner = self.world.p2p.recv(comm, self.rank, src_local, tag)
        src = comm.world_rank(src_local)
        return self._wrap_p2p("recv", comm, inner, t0, thread, src, self.rank, tag)

    # -- internal: trace wrapping -----------------------------------------------

    def _traced(self, call: str, comm: Communicator, inner: Event, thread: int) -> Event:
        t0 = self.sim.now
        outer = Event(self.sim, name=f"mpi:{call}")
        stream = self.stream(thread)

        def _complete(ev: Event) -> None:
            if ev.exception is not None:
                ev.defuse()
                outer.fail(ev.exception)
                return
            result: CollectiveResult = ev.value  # type: ignore[assignment]
            self.world._notify(
                MpiRecord(
                    stream=stream,
                    call=call,
                    comm_id=comm.id,
                    comm_name=comm.name,
                    t_begin=t0,
                    t_end=self.sim.now,
                    bytes_sent=result.bytes_sent,
                    sync_time=result.sync_time,
                )
            )
            outer.succeed(result.value)

        inner.add_callback(_complete)
        return outer

    def _wrap_p2p(
        self,
        call: str,
        comm: Communicator,
        inner: Event,
        t0: float,
        thread: int,
        src: int | None,
        dst: int | None,
        tag: int,
    ) -> Event:
        outer = Event(self.sim, name=f"mpi:{call}")
        stream = self.stream(thread)

        def _complete(ev: Event) -> None:
            if ev.exception is not None:
                ev.defuse()
                outer.fail(ev.exception)
                return
            nbytes = ev.value if call == "send" else 0.0
            self.world._notify(
                MpiRecord(
                    stream=stream,
                    call=call,
                    comm_id=comm.id,
                    comm_name=comm.name,
                    t_begin=t0,
                    t_end=self.sim.now,
                    bytes_sent=float(nbytes),  # type: ignore[arg-type]
                    sync_time=0.0,
                    src=src,
                    dst=dst,
                    tag=tag,
                )
            )
            outer.succeed(ev.value)

        inner.add_callback(_complete)
        return outer
