"""Point-to-point messaging (send/recv with tag matching).

The FFTXlib kernel itself is collective-only, but the MPI substrate would be
incomplete without p2p — and the test suite uses it to validate the transport
cost model in isolation.  Matching follows MPI: a receive posted for
``(source, tag)`` matches the oldest pending send with that signature on the
same communicator; sends and receives may be posted in either order.

Timing: the pair completes ``latency + transfer(nbytes)`` after both sides
have posted (an eager/rendezvous distinction is below this model's
granularity on a single node).
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.mpisim.datatypes import nbytes_of, payload_like
from repro.simkit.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.communicator import Communicator
    from repro.mpisim.world import MpiWorld

__all__ = ["P2PEngine"]


class P2PEngine:
    """Pending-message matching for all communicators of one world."""

    def __init__(self, world: "MpiWorld"):
        self.world = world
        # (comm_id, src_local, dst_local, tag) -> queue of (payload, send_event, post_time)
        self._sends: dict[tuple, deque] = {}
        # (comm_id, src_local, dst_local, tag) -> queue of (recv_event, post_time)
        self._recvs: dict[tuple, deque] = {}

    def send(self, comm: "Communicator", caller: int, dst_local: int, payload: object, tag: int) -> Event:
        """Post a send; the returned event fires when the message is delivered."""
        src_local = comm.local_rank(caller)
        if not 0 <= dst_local < comm.size:
            from repro.mpisim.communicator import MpiSimError

            raise MpiSimError(f"send destination {dst_local} out of range on {comm.name!r}")
        sig = (comm.id, src_local, dst_local, tag)
        event = Event(self.world.sim, name=f"send:{comm.name}:{tag}")
        waiting = self._recvs.get(sig)
        if waiting:
            recv_event, _t0 = waiting.popleft()
            self._deliver(payload, event, recv_event, caller, comm.world_rank(dst_local))
        else:
            self._sends.setdefault(sig, deque()).append((payload, event, self.world.sim.now))
        return event

    def recv(self, comm: "Communicator", caller: int, src_local: int, tag: int) -> Event:
        """Post a receive; the returned event fires with the received payload."""
        dst_local = comm.local_rank(caller)
        if not 0 <= src_local < comm.size:
            from repro.mpisim.communicator import MpiSimError

            raise MpiSimError(f"recv source {src_local} out of range on {comm.name!r}")
        sig = (comm.id, src_local, dst_local, tag)
        event = Event(self.world.sim, name=f"recv:{comm.name}:{tag}")
        pending = self._sends.get(sig)
        if pending:
            payload, send_event, _t0 = pending.popleft()
            self._deliver(
                payload, send_event, event, comm.world_rank(src_local), comm.world_rank(dst_local)
            )
        else:
            self._recvs.setdefault(sig, deque()).append((event, self.world.sim.now))
        return event

    def _deliver(
        self,
        payload: object,
        send_event: Event,
        recv_event: Event,
        sender_rank: int,
        dest_rank: int,
    ) -> None:
        net = self.world.network
        nbytes = nbytes_of(payload)
        latency = net.message_latency([sender_rank, dest_rank])
        if nbytes > 0:
            moved = net.transfer_parts(sender_rank, [(dest_rank, nbytes)])
            done = Event(self.world.sim, name="p2p-done")

            def _after_move(ev: Event) -> None:
                if ev.exception is not None:
                    ev.defuse()
                    done.fail(ev.exception)
                    return
                self.world.sim.timeout(latency).add_callback(
                    lambda _t: done.succeed(None)
                )

            moved.add_callback(_after_move)
        else:
            done = self.world.sim.timeout(latency)

        def _complete(_ev: Event) -> None:
            if _ev.exception is not None:
                # A lost message fails both endpoints (the matched pair is
                # one logical operation); each side's wrapper defuses.
                _ev.defuse()
                send_event.fail(_ev.exception)
                recv_event.fail(_ev.exception)
                return
            send_event.succeed(nbytes)
            recv_event.succeed(payload_like(payload))

        done.add_callback(_complete)
