"""On-node communication cost model.

MPI on a single KNL node moves data through the shared memory system.  The
model has three calibrated constants (see :class:`~repro.machine.knl.KnlParameters`):

``latency``
    Per-message software overhead of the MPI stack (s).
``injection_bw``
    Peak copy bandwidth of a single rank (B/s) — the per-task cap of the
    transport fluid resource.
``capacity``
    Aggregate transport bandwidth (B/s) shared by *all* concurrent transfers
    through the :class:`~repro.simkit.fluid.FluidResource`.

Latency terms for collectives follow the usual flat/tree counts:
``alltoall`` pays ``latency * (P - 1)`` (pairwise exchange pattern),
``barrier``/``bcast`` pay ``latency * ceil(log2 P)``, ``allreduce`` twice
that.  Transfer time is not a formula — it comes out of the fluid resource,
so overlapping communication genuinely contends for bandwidth (this is what
makes the paper's Opt 1 overlap question non-trivial in the model).
"""

from __future__ import annotations

import math
import typing as _t

import numpy as np

from repro.faults.injector import MpiLinkError, MpiTimeoutError
from repro.machine.contention import waterfill, waterfill_vec
from repro.simkit.events import Event
from repro.simkit.fluid import FluidResource, FluidTask

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.simkit.simulator import Simulator

__all__ = ["NetworkModel", "ClusterNetworkModel", "RankAwareAllocator"]


def _detail(rank: object) -> object:
    """JSON-safe sender id for fault-report events."""
    return rank if rank is None or isinstance(rank, (int, str)) else repr(rank)


class RankAwareAllocator:
    """Transport rate allocator with per-process injection sharing.

    A transfer's rate is capped by its sending process's injection bandwidth
    *divided among that process's concurrent transfers* (a multi-threaded MPI
    process does not inject N times faster because N tasks call MPI at once),
    then the aggregate capacity is divided max-min fairly over the resulting
    demands.  Transfers without a known sender (``rank=None``) are treated as
    separate one-transfer processes.

    Implements the fluid engine's batch protocol: sender ranks are interned
    to small integer ids at submit time and the rate computation is memoized
    on the active-set composition (the same handful of concurrent-transfer
    mixes — one rank alone, the all-ranks alltoall burst — recurs for the
    whole run).  Anonymous transfers are the pseudo-id ``-1``: each is its
    own single-transfer process, demanding the full injection bandwidth.
    """

    def __init__(self, capacity: float, injection_bw: float):
        self.capacity = capacity
        self.injection_bw = injection_bw
        self._rank_ids: dict[object, int] = {}
        self._cache: dict[bytes, np.ndarray] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def cache_info(self) -> dict[str, int]:
        return {
            "alloc_cache_hits": self.cache_hits,
            "alloc_cache_misses": self.cache_misses,
            "alloc_cache_size": len(self._cache),
        }

    def prepare(self, task: FluidTask) -> int:
        rank = task.meta.get("rank")
        if rank is None:
            return -1
        sid = self._rank_ids.get(rank)
        if sid is None:
            sid = len(self._rank_ids)
            self._rank_ids[rank] = sid
            self._cache.clear()  # luts are sized to the known-rank space
        return sid

    def allocate_batch(self, statics: _t.Sequence[int]) -> np.ndarray:
        n = len(statics)
        if n == 0:
            return np.empty(0)
        sids = np.fromiter(statics, dtype=np.intp, count=n)
        sorted_sids = np.sort(sids)
        key = sorted_sids.tobytes()
        lut = self._cache.get(key)
        if lut is None:
            self.cache_misses += 1
            lut = self._rate_lut(sorted_sids)
            self._cache[key] = lut
        else:
            self.cache_hits += 1
        # ``lut[-1]`` (numpy wrap-around) is deliberately the anonymous-rank
        # rate, so one fancy index serves interned and anonymous senders.
        return lut[sids]

    def _rate_lut(self, sorted_sids: np.ndarray) -> np.ndarray:
        """Per-sender-id rate table for one concurrent-transfer composition.

        Transfers of the same sender have identical injection demands and so
        receive identical max-min grants; the water filling runs per unique
        sender with the transfer count as weight.  The table's last slot
        holds the anonymous-transfer rate (or 0 when none are present).
        """
        uniq, counts = np.unique(sorted_sids, return_counts=True)
        # Demand per transfer: the sender's injection bandwidth split over
        # its concurrent transfers; anonymous senders (-1) are one-transfer
        # processes, so each demands the full injection bandwidth.
        demands = self.injection_bw / counts
        anon = uniq == -1
        demands[anon] = self.injection_bw
        grants = waterfill_vec(demands, self.capacity, counts)
        lut = np.zeros(len(self._rank_ids) + 1)
        lut[uniq] = grants  # uniq may include -1 -> wraps to the last slot
        return lut

    def allocate(self, tasks: _t.Sequence[FluidTask]) -> list[float]:
        if not tasks:
            return []
        per_rank: dict[object, int] = {}
        keys = []
        for i, task in enumerate(tasks):
            rank = task.meta.get("rank")
            key = rank if rank is not None else ("anon", i)
            keys.append(key)
            per_rank[key] = per_rank.get(key, 0) + 1
        demands = [self.injection_bw / per_rank[key] for key in keys]
        return waterfill(demands, self.capacity)


class NetworkModel:
    """Shared transport resource + latency bookkeeping for simulated MPI."""

    def __init__(
        self,
        sim: "Simulator",
        capacity: float,
        injection_bw: float,
        latency: float,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if injection_bw <= 0:
            raise ValueError(f"injection_bw must be positive, got {injection_bw}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.sim = sim
        self.capacity = capacity
        self.injection_bw = injection_bw
        self.latency = latency
        #: World rank -> node index (constant 0 on a single node); cluster
        #: subclasses override.  Collectives use it to route per-node traffic.
        self.node_of: _t.Callable[[object], int] = lambda rank: 0
        self.resource = FluidResource(
            sim,
            RankAwareAllocator(capacity, injection_bw),
            name="network",
        )
        #: Total bytes ever injected (diagnostics / tests).
        self.bytes_transferred = 0.0
        #: Fault injector consulted per transfer (set by the driver when a
        #: fault scenario is active).  Degraded links inflate the fluid
        #: work of their transfers; droppable/killable links additionally
        #: wrap every transfer in the retry/timeout envelope of
        #: :meth:`_guarded`.
        self.faults: "FaultInjector | None" = None

    # -- building blocks ----------------------------------------------------

    def transfer_parts(
        self, src_rank: object, parts: _t.Sequence[tuple[int, float]]
    ) -> Event:
        """Move per-destination payloads from one sender; fires when all moved.

        The single-fabric model ignores destinations and moves the total;
        :class:`ClusterNetworkModel` splits intra- from inter-node traffic.
        """
        total = sum(nbytes for _dst, nbytes in parts)
        return self.transfer(total, rank=src_rank)

    def message_latency(self, ranks: _t.Sequence[int]) -> float:
        """Per-message latency for a communicator spanning ``ranks``."""
        return self.latency

    def transfer(self, nbytes: float, rank: object = None) -> Event:
        """Move ``nbytes`` through the shared transport; event fires when done.

        ``rank`` identifies the sending process for injection sharing (see
        :class:`RankAwareAllocator`).  Zero-byte transfers complete
        immediately (no latency — latency is accounted separately by the
        callers, per *message*, not per byte).

        With an active fault scenario the transfer may retransmit with
        exponential backoff (dropped messages), fail with
        :class:`~repro.faults.injector.MpiLinkError` /
        :class:`~repro.faults.injector.MpiTimeoutError`, or simply run
        slower (degraded link).
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes!r}")
        if self.faults is not None and self.faults.scenario.guards_transfers:
            return self._guarded(rank, lambda: self._attempt(nbytes, rank))
        return self._attempt(nbytes, rank)

    def _attempt(self, nbytes: float, rank: object) -> Event:
        """One unconditional pass of ``nbytes`` through the transport."""
        self.bytes_transferred += nbytes
        work = nbytes
        if self.faults is not None:
            work *= self.faults.transfer_work_factor(rank)
        done = Event(self.sim, name="net-transfer")
        task = self.resource.submit(work, meta={"rank": rank})
        task.done.add_callback(lambda ev: done.succeed(nbytes))
        return done

    def _guarded(self, rank: object, attempt: _t.Callable[[], Event]) -> Event:
        """Drop/retry/timeout envelope around one-shot transfer attempts.

        Each attempt pays its full transport cost before the drop decision
        (the bytes moved, then were found corrupt/lost); retries back off
        exponentially from ``mpi_retry_backoff_s``.  Timeouts are checked at
        attempt boundaries against ``mpi_timeout_s`` — transfers always
        complete in simulated time, so a deadline check needs no watchdog
        timer (and the error carries the actual elapsed time).
        """
        faults = self.faults
        assert faults is not None
        scenario = faults.scenario
        sim = self.sim
        done = Event(sim, name="net-transfer")
        t0 = sim.now
        attempt_no = [0]

        def start() -> None:
            if done.triggered:
                return
            attempt_no[0] += 1
            attempt().add_callback(finish)

        def finish(ev: Event) -> None:
            if done.triggered:
                return
            elapsed = sim.now - t0
            timeout = scenario.mpi_timeout_s
            if timeout is not None and elapsed > timeout:
                faults.record("timeout", rank=_detail(rank), elapsed=elapsed)
                done.fail(
                    MpiTimeoutError(
                        f"transfer from rank {rank} exceeded the MPI timeout "
                        f"({elapsed:.3g} s > {timeout:g} s)"
                    )
                )
                return
            outcome = faults.transfer_outcome(rank)
            if outcome == "ok":
                if attempt_no[0] > 1:
                    faults.record(
                        "transfer_recovered", rank=_detail(rank), attempts=attempt_no[0]
                    )
                done.succeed(ev.value)
                return
            if outcome == "kill":
                done.fail(
                    MpiLinkError(
                        f"injected hard link failure on transfer "
                        f"#{faults.transfer_count} (rank {rank})"
                    )
                )
                return
            # Dropped: retransmit after exponential backoff, within budgets.
            if attempt_no[0] > scenario.mpi_max_retries:
                done.fail(
                    MpiLinkError(
                        f"transfer from rank {rank} lost after "
                        f"{attempt_no[0]} attempts"
                    )
                )
                return
            backoff = scenario.mpi_retry_backoff_s * (2.0 ** (attempt_no[0] - 1))
            if timeout is not None and elapsed + backoff > timeout:
                faults.record("timeout", rank=_detail(rank), elapsed=elapsed)
                done.fail(
                    MpiTimeoutError(
                        f"transfer from rank {rank} cannot retry within the "
                        f"MPI timeout ({timeout:g} s)"
                    )
                )
                return
            faults.record(
                "retry", rank=_detail(rank), attempts=attempt_no[0], backoff=backoff
            )
            sim.timeout(backoff).add_callback(lambda _ev: start())

        start()
        return done

    def after_latency(self, n_messages: float, event: Event | None = None) -> Event:
        """Event firing ``n_messages * latency`` after now (or after ``event``)."""
        delay = n_messages * self.latency
        if event is None:
            return self.sim.timeout(delay, name="net-latency")
        out = Event(self.sim, name="net-latency")

        def _chain(ev: Event) -> None:
            t = self.sim.timeout(delay)
            t.add_callback(lambda _: out.succeed(ev._value))

        event.add_callback(_chain)
        return out

    def engine_stats(self) -> dict[str, int]:
        """Summed fluid-engine counters over this model's transport resources."""
        return dict(self.resource.stats())

    # -- per-collective latency message counts --------------------------------

    @staticmethod
    def alltoall_messages(n_ranks: int) -> int:
        """Messages each rank sends in a pairwise-exchange alltoall."""
        return max(n_ranks - 1, 0)

    @staticmethod
    def tree_messages(n_ranks: int) -> int:
        """Tree depth for barrier/bcast-style collectives."""
        return int(math.ceil(math.log2(n_ranks))) if n_ranks > 1 else 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NetworkModel(capacity={self.capacity:.3g} B/s, "
            f"injection={self.injection_bw:.3g} B/s, latency={self.latency:.3g} s)"
        )


class ClusterNetworkModel(NetworkModel):
    """Two-tier transport: on-node memory system + inter-node fabric.

    Intra-node traffic uses one :class:`NetworkModel`-style fluid resource
    *per node* (nodes' memory systems are independent); inter-node traffic
    shares a single fabric resource whose injection cap applies per *node*
    (the NIC — all ranks of a node share it, however many threads call MPI).

    Parameters
    ----------
    node_of:
        Callable mapping a world rank to its node index.
    inter_capacity / inter_injection_bw / inter_latency:
        Fabric parameters (bisection bandwidth, per-node NIC bandwidth,
        per-message fabric latency).
    link_capacity:
        Optional per-directed-link bandwidth (B/s).  When set, every
        ordered node pair gets its own fluid resource and inter-node
        traffic must clear *both* the shared fabric (bisection) and its
        link — hot node pairs contend with themselves before the fabric
        saturates.  ``None`` (default) keeps the single-fabric model and
        its timings bit-identical.

    Per-link byte/message counters (:attr:`link_bytes`,
    :attr:`link_messages`, :attr:`inter_messages`) are always on — they
    feed the run manifest's ``internode`` section.
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity: float,
        injection_bw: float,
        latency: float,
        node_of: _t.Callable[[object], int],
        inter_capacity: float,
        inter_injection_bw: float,
        inter_latency: float,
        link_capacity: float | None = None,
    ):
        super().__init__(sim, capacity, injection_bw, latency)
        if inter_capacity <= 0 or inter_injection_bw <= 0:
            raise ValueError("inter-node bandwidths must be positive")
        if inter_latency < 0:
            raise ValueError(f"inter_latency must be >= 0, got {inter_latency}")
        if link_capacity is not None and link_capacity <= 0:
            raise ValueError(f"link_capacity must be positive, got {link_capacity}")
        self.node_of = node_of  # overrides the base's constant-0 mapping
        self.inter_latency = inter_latency
        self.link_capacity = link_capacity
        self._node_resources: dict[int, FluidResource] = {}
        self._link_resources: dict[tuple[int, int], FluidResource] = {}
        self._fabric = FluidResource(
            sim,
            RankAwareAllocator(inter_capacity, inter_injection_bw),
            name="fabric",
        )
        #: Bytes that crossed the fabric (diagnostics / tests).
        self.inter_bytes = 0.0
        #: Fabric-crossing sender bursts (one per transfer_parts call that
        #: had at least one off-node destination).
        self.inter_messages = 0
        #: Bytes per directed node pair ``(src_node, dst_node)``.
        self.link_bytes: dict[tuple[int, int], float] = {}
        #: Bursts per directed node pair.
        self.link_messages: dict[tuple[int, int], int] = {}

    def _node_resource(self, node: int) -> FluidResource:
        res = self._node_resources.get(node)
        if res is None:
            res = FluidResource(
                self.sim,
                RankAwareAllocator(self.capacity, self.injection_bw),
                name=f"net-node{node}",
            )
            self._node_resources[node] = res
        return res

    def transfer_parts(
        self, src_rank: object, parts: _t.Sequence[tuple[int, float]]
    ) -> Event:
        if self.faults is not None and self.faults.scenario.guards_transfers:
            return self._guarded(
                src_rank, lambda: self._attempt_parts(src_rank, parts)
            )
        return self._attempt_parts(src_rank, parts)

    def _link_resource(self, src_node: int, dst_node: int) -> FluidResource:
        key = (src_node, dst_node)
        res = self._link_resources.get(key)
        if res is None:
            res = FluidResource(
                self.sim,
                RankAwareAllocator(self.link_capacity, self.injection_bw),
                name=f"link{src_node}-{dst_node}",
            )
            self._link_resources[key] = res
        return res

    def _attempt_parts(
        self, src_rank: object, parts: _t.Sequence[tuple[int, float]]
    ) -> Event:
        src_node = self.node_of(src_rank)
        intra = 0.0
        inter = 0.0
        per_dst_node: dict[int, float] = {}
        for dst, nbytes in parts:
            dst_node = self.node_of(dst)
            if dst_node == src_node:
                intra += nbytes
            else:
                inter += nbytes
                per_dst_node[dst_node] = per_dst_node.get(dst_node, 0.0) + nbytes
        self.bytes_transferred += intra + inter
        self.inter_bytes += inter
        if inter > 0:
            self.inter_messages += 1
            for dst_node, nbytes in per_dst_node.items():
                key = (src_node, dst_node)
                self.link_bytes[key] = self.link_bytes.get(key, 0.0) + nbytes
                self.link_messages[key] = self.link_messages.get(key, 0) + 1
        work_factor = (
            self.faults.transfer_work_factor(src_rank)
            if self.faults is not None
            else 1.0
        )
        pieces = []
        if intra > 0:
            task = self._node_resource(src_node).submit(
                intra * work_factor, meta={"rank": src_rank}
            )
            pieces.append(task.done)
        if inter > 0:
            # NIC sharing: the fabric allocator keys on the *node*.
            task = self._fabric.submit(
                inter * work_factor, meta={"rank": ("node", src_node)}
            )
            pieces.append(task.done)
            if self.link_capacity is not None:
                # Per-link contention: the burst must also clear each
                # directed link it uses (the slower of fabric and link
                # governs completion).
                for dst_node, nbytes in per_dst_node.items():
                    task = self._link_resource(src_node, dst_node).submit(
                        nbytes * work_factor, meta={"rank": ("node", src_node)}
                    )
                    pieces.append(task.done)
        done = Event(self.sim, name="cluster-transfer")
        if not pieces:
            done.succeed(0.0)
        else:
            self.sim.all_of(pieces).add_callback(lambda ev: done.succeed(intra + inter))
        return done

    def _attempt(self, nbytes: float, rank: object) -> Event:
        """Destination-less transfers stay on the sender's node."""
        if rank is None:
            return super()._attempt(nbytes, rank)
        self.bytes_transferred += nbytes
        work = nbytes
        if self.faults is not None:
            work *= self.faults.transfer_work_factor(rank)
        done = Event(self.sim, name="net-transfer")
        task = self._node_resource(self.node_of(rank)).submit(
            work, meta={"rank": rank}
        )
        task.done.add_callback(lambda ev: done.succeed(nbytes))
        return done

    def message_latency(self, ranks: _t.Sequence[int]) -> float:
        nodes = {self.node_of(r) for r in ranks}
        return self.inter_latency if len(nodes) > 1 else self.latency

    def engine_stats(self) -> dict[str, int]:
        """Counters summed over the base, per-node, fabric and link resources."""
        total = super().engine_stats()
        for res in [
            *self._node_resources.values(),
            self._fabric,
            *self._link_resources.values(),
        ]:
            for k, v in res.stats().items():
                total[k] = total.get(k, 0) + v
        return total

    def internode_summary(self) -> dict:
        """Inter-node counters for the run manifest's ``internode`` section."""
        return {
            "inter_bytes": self.inter_bytes,
            "inter_messages": self.inter_messages,
            "link_bytes": {
                f"{src}->{dst}": nbytes
                for (src, dst), nbytes in sorted(self.link_bytes.items())
            },
            "link_messages": {
                f"{src}->{dst}": count
                for (src, dst), count in sorted(self.link_messages.items())
            },
        }
