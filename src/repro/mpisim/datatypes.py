"""Dual-mode message payloads.

Simulated communication must serve two masters:

* **correctness runs** move real numpy arrays so the distributed FFT can be
  validated against a dense reference;
* **performance sweeps** only need the *size* of every message to drive the
  cost model — copying hundreds of megabytes around a 256-rank sweep would
  make the benchmark harness pointlessly slow.

A payload is therefore either a ``numpy.ndarray`` (data + size) or a
:class:`MetaPayload` (size only).  All of :mod:`repro.mpisim` and the FFTXlib
pipeline accept both; :func:`nbytes_of` and :func:`payload_like` are the two
helpers that keep the call sites mode-agnostic.
"""

from __future__ import annotations

import typing as _t

import numpy as np

__all__ = ["BlockType", "MetaPayload", "nbytes_of", "payload_like"]


class MetaPayload:
    """A message body known only by size (and optionally logical length).

    Parameters
    ----------
    nbytes:
        Size in bytes used by the communication cost model.
    count:
        Optional element count (for sanity checks mirroring array lengths).
    """

    __slots__ = ("nbytes", "count")

    def __init__(self, nbytes: float, count: int | None = None):
        if nbytes < 0:
            raise ValueError(f"negative payload size {nbytes!r}")
        self.nbytes = float(nbytes)
        self.count = count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetaPayload({self.nbytes:.0f} B)"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MetaPayload)
            and other.nbytes == self.nbytes
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash((self.nbytes, self.count))


class BlockType:
    """A derived-datatype block descriptor into a rank's flat buffer.

    The simulated analogue of an ``MPI_Datatype`` handed to
    ``MPI_Alltoallw``: it names *which elements* of a flat send (or
    receive) buffer one peer's share occupies, so the exchange can move
    values directly between the two buffers with no intermediate packed
    staging copy.  Three shapes cover every plan in the data plane:

    * **strided** — ``count`` blocks of ``blocklen`` contiguous elements,
      block *k* starting at ``offset + k * stride`` (an
      ``MPI_Type_vector``).  This is the regular side of every transpose:
      z-ranges of stick columns, y-ranges of brick rows.
    * **indexed** — an explicit flat-index array (``MPI_Type_indexed``
      with unit blocks).  The irregular side: scattered stick positions
      inside a plane or pencil brick.  The index array may be supplied
      lazily (a zero-argument callable) so plans built for meta-mode
      sweeps never materialize it.
    * **meta** — only the element count is known.  Enough for the cost
      model; using it to move data raises.

    ``itemsize`` prices the block for the network model (complex128 by
    default, matching the pipeline's payloads).
    """

    __slots__ = ("offset", "count", "blocklen", "stride", "itemsize", "_indices")

    def __init__(
        self,
        offset: int = 0,
        count: int = 0,
        blocklen: int = 1,
        stride: int = 1,
        itemsize: int = 16,
        _indices=None,
    ):
        if count < 0 or blocklen < 0:
            raise ValueError(
                f"negative block geometry: count={count}, blocklen={blocklen}"
            )
        self.offset = int(offset)
        self.count = int(count)
        self.blocklen = int(blocklen)
        self.stride = int(stride)
        self.itemsize = int(itemsize)
        self._indices = _indices

    @classmethod
    def strided(
        cls, offset: int, count: int, blocklen: int, stride: int, itemsize: int = 16
    ) -> "BlockType":
        """``count`` blocks of ``blocklen`` elements, ``stride`` apart."""
        return cls(offset, count, blocklen, stride, itemsize)

    @classmethod
    def indexed(cls, indices, itemsize: int = 16) -> "BlockType":
        """Explicit flat indices (array, or a callable returning one)."""
        if callable(indices):
            return cls(0, 0, 1, 1, itemsize, _indices=indices)
        idx = np.asarray(indices)
        return cls(0, int(idx.size), 1, 1, itemsize, _indices=idx.reshape(-1))

    @classmethod
    def meta(cls, n_items: int, itemsize: int = 16) -> "BlockType":
        """Size-only descriptor for meta-mode (cost accounting) runs."""
        return cls(0, int(n_items), 1, 0, itemsize)

    @property
    def is_meta(self) -> bool:
        return self._indices is None and self.stride == 0 and self.blocklen == 1

    @property
    def n_items(self) -> int:
        """Number of elements the block covers."""
        if self._indices is not None:
            if callable(self._indices):
                self._indices = np.asarray(self._indices()).reshape(-1)
            self.count = int(self._indices.size)
            return self.count
        if self.is_meta:
            return self.count
        return self.count * self.blocklen

    @property
    def nbytes(self) -> float:
        """Bytes the block injects into the transport."""
        return float(self.n_items * self.itemsize)

    def indices(self) -> np.ndarray:
        """The (cached) flat element indices the block describes."""
        if self._indices is not None:
            if callable(self._indices):
                self._indices = np.asarray(self._indices()).reshape(-1)
            return self._indices
        if self.is_meta:
            raise ValueError("meta BlockType carries no element indices")
        base = self.offset + np.arange(self.count, dtype=np.intp) * self.stride
        self._indices = (
            base[:, None] + np.arange(self.blocklen, dtype=np.intp)[None, :]
        ).reshape(-1)
        return self._indices

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._indices is not None:
            n = "lazy" if callable(self._indices) else str(self._indices.size)
            return f"BlockType(indexed, n={n})"
        if self.is_meta:
            return f"BlockType(meta, n={self.count})"
        return (
            f"BlockType(offset={self.offset}, count={self.count}, "
            f"blocklen={self.blocklen}, stride={self.stride})"
        )


Payload = _t.Union[np.ndarray, MetaPayload]


def nbytes_of(payload: Payload) -> float:
    """Size in bytes of a payload of either mode."""
    if isinstance(payload, MetaPayload):
        return payload.nbytes
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    raise TypeError(f"not a payload: {payload!r} (expected ndarray or MetaPayload)")


def payload_like(payload: Payload) -> Payload:
    """A receive-side placeholder with the same size/content semantics.

    Arrays are *copied* (the receiver owns its data — simulated ranks share
    one address space, so aliasing a sender's buffer would let later in-place
    updates corrupt messages already 'delivered'); meta payloads pass through.
    """
    if isinstance(payload, MetaPayload):
        return payload
    if isinstance(payload, np.ndarray):
        return payload.copy()
    raise TypeError(f"not a payload: {payload!r} (expected ndarray or MetaPayload)")
