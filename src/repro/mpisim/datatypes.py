"""Dual-mode message payloads.

Simulated communication must serve two masters:

* **correctness runs** move real numpy arrays so the distributed FFT can be
  validated against a dense reference;
* **performance sweeps** only need the *size* of every message to drive the
  cost model — copying hundreds of megabytes around a 256-rank sweep would
  make the benchmark harness pointlessly slow.

A payload is therefore either a ``numpy.ndarray`` (data + size) or a
:class:`MetaPayload` (size only).  All of :mod:`repro.mpisim` and the FFTXlib
pipeline accept both; :func:`nbytes_of` and :func:`payload_like` are the two
helpers that keep the call sites mode-agnostic.
"""

from __future__ import annotations

import typing as _t

import numpy as np

__all__ = ["MetaPayload", "nbytes_of", "payload_like"]


class MetaPayload:
    """A message body known only by size (and optionally logical length).

    Parameters
    ----------
    nbytes:
        Size in bytes used by the communication cost model.
    count:
        Optional element count (for sanity checks mirroring array lengths).
    """

    __slots__ = ("nbytes", "count")

    def __init__(self, nbytes: float, count: int | None = None):
        if nbytes < 0:
            raise ValueError(f"negative payload size {nbytes!r}")
        self.nbytes = float(nbytes)
        self.count = count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetaPayload({self.nbytes:.0f} B)"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MetaPayload)
            and other.nbytes == self.nbytes
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash((self.nbytes, self.count))


Payload = _t.Union[np.ndarray, MetaPayload]


def nbytes_of(payload: Payload) -> float:
    """Size in bytes of a payload of either mode."""
    if isinstance(payload, MetaPayload):
        return payload.nbytes
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    raise TypeError(f"not a payload: {payload!r} (expected ndarray or MetaPayload)")


def payload_like(payload: Payload) -> Payload:
    """A receive-side placeholder with the same size/content semantics.

    Arrays are *copied* (the receiver owns its data — simulated ranks share
    one address space, so aliasing a sender's buffer would let later in-place
    updates corrupt messages already 'delivered'); meta payloads pass through.
    """
    if isinstance(payload, MetaPayload):
        return payload
    if isinstance(payload, np.ndarray):
        return payload.copy()
    raise TypeError(f"not a payload: {payload!r} (expected ndarray or MetaPayload)")
