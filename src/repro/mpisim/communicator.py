"""Communicators and collective operations.

A :class:`Communicator` is an ordered group of world ranks.  Collectives are
*matched* across members: by default the n-th collective call of each member
on a communicator matches the n-th of every other member (MPI ordering
semantics, enforced — mismatched operation types raise
:class:`MpiSimError`); multi-threaded callers pass an explicit ``key``
instead, because concurrent tasks issue collectives in scheduler-dependent
order (the paper's per-FFT OmpSs tasks do exactly this on the scatter
communicator).

Semantics of each collective (data movement is real when payloads are numpy
arrays; cost accounting per :mod:`repro.mpisim.network`):

``alltoall(parts)``
    ``parts[j]`` goes to local rank ``j``; the result for rank ``i`` is
    ``recv[j] = parts_of_rank_j[i]``.  Ragged part sizes make this double as
    MPI_Alltoallv — the FFTXlib pack/unpack and scatter both map onto it.
``alltoallw(sendbuf, recvbuf, send_blocks, recv_blocks)``
    Generalized redistribution with per-peer derived datatypes
    (:class:`~repro.mpisim.datatypes.BlockType`): the elements
    ``sendbuf[send_blocks[j]]`` of each member land directly at
    ``recvbuf_of_j[recv_blocks_of_j[i]]`` — *pack-free*, no intermediate
    concatenated exchange buffer on either side.  ``None`` buffers with
    meta blocks run the identical cost accounting without moving data.
``barrier()``
    Pure synchronization.
``bcast(root, payload)``
    Everyone receives the root's payload.
``allreduce(array, op)``
    Elementwise sum/max/min over members; everyone gets the result.
``gather(root, payload)``
    Root receives the list of payloads in local-rank order.
``split(color, key)``
    Builds new communicators grouping members by ``color``, ordered by
    ``(key, world_rank)``; returns each caller's new communicator
    (or ``None`` for a negative color, like MPI_UNDEFINED).
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.mpisim.datatypes import MetaPayload, nbytes_of, payload_like
from repro.simkit.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.world import MpiWorld

__all__ = ["Communicator", "MpiSimError", "CollectiveResult"]


class MpiSimError(RuntimeError):
    """Semantic misuse of the simulated MPI (mismatched collectives, bad args)."""


class CollectiveResult:
    """Per-rank outcome of a collective: the received value plus accounting.

    Attributes
    ----------
    value:
        Operation-specific result (e.g. the received parts of an alltoall).
    bytes_sent:
        Bytes this rank injected into the transport.
    sync_time:
        Time this rank spent waiting for the last participant to arrive —
        the 'synchronization' share of communication in the POP model.
    """

    __slots__ = ("value", "bytes_sent", "sync_time")

    def __init__(self, value: object, bytes_sent: float, sync_time: float):
        self.value = value
        self.bytes_sent = bytes_sent
        self.sync_time = sync_time


class _Pending:
    """A collective waiting for all members to arrive."""

    __slots__ = ("op", "key", "args", "events", "arrive_times")

    def __init__(self, op: str, key: object):
        self.op = op
        self.key = key
        self.args: dict[int, dict] = {}
        self.events: dict[int, Event] = {}
        self.arrive_times: dict[int, float] = {}


class Communicator:
    """An ordered group of world ranks supporting collective operations.

    Create via :meth:`MpiWorld.comm_world` / :meth:`Communicator.split`; the
    constructor is internal.
    """

    def __init__(self, world: "MpiWorld", comm_id: int, ranks: _t.Sequence[int], name: str):
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in communicator: {ranks}")
        self.world = world
        self.id = comm_id
        self.ranks = tuple(ranks)
        self.name = name
        self._local_of = {wr: lr for lr, wr in enumerate(self.ranks)}
        self._seq: dict[int, int] = {wr: 0 for wr in self.ranks}
        self._pending: dict[object, _Pending] = {}

    # -- group introspection -------------------------------------------------

    @property
    def size(self) -> int:
        """Number of member ranks."""
        return len(self.ranks)

    def local_rank(self, world_rank: int) -> int:
        """Local rank of a world rank (raises if not a member)."""
        try:
            return self._local_of[world_rank]
        except KeyError:
            raise MpiSimError(
                f"world rank {world_rank} is not a member of {self.name!r}"
            ) from None

    def world_rank(self, local_rank: int) -> int:
        """World rank of a local rank."""
        return self.ranks[local_rank]

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._local_of

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Communicator {self.name!r} id={self.id} size={self.size}>"

    # -- collective entry points ----------------------------------------------

    def alltoall(self, caller: int, parts: _t.Sequence, key: object = None) -> Event:
        """All-to-all personalised exchange (ragged parts = alltoallv)."""
        if len(parts) != self.size:
            raise MpiSimError(
                f"alltoall on {self.name!r} needs {self.size} parts, got {len(parts)}"
            )
        return self._join("alltoall", caller, key, {"parts": list(parts)})

    def alltoallw(
        self,
        caller: int,
        sendbuf,
        recvbuf,
        send_blocks: _t.Sequence,
        recv_blocks: _t.Sequence,
        key: object = None,
    ) -> Event:
        """Generalized all-to-all over per-peer block descriptors.

        ``send_blocks[j]`` describes the elements of this member's flat
        ``sendbuf`` destined for local rank ``j``; ``recv_blocks[j]`` the
        slots of ``recvbuf`` where local rank ``j``'s elements land.  Data
        moves straight between the two buffers when both are arrays;
        ``None`` buffers (meta mode) charge the same cost without moving
        anything.  Resolves to this member's ``recvbuf`` (or ``None``).
        """
        if len(send_blocks) != self.size or len(recv_blocks) != self.size:
            raise MpiSimError(
                f"alltoallw on {self.name!r} needs {self.size} send and recv "
                f"blocks, got {len(send_blocks)}/{len(recv_blocks)}"
            )
        if sendbuf is not None and not sendbuf.flags.c_contiguous:
            raise MpiSimError("alltoallw sendbuf must be C-contiguous")
        if recvbuf is not None and not recvbuf.flags.c_contiguous:
            raise MpiSimError("alltoallw recvbuf must be C-contiguous")
        return self._join(
            "alltoallw",
            caller,
            key,
            {
                "sendbuf": sendbuf,
                "recvbuf": recvbuf,
                "send_blocks": list(send_blocks),
                "recv_blocks": list(recv_blocks),
            },
        )

    def barrier(self, caller: int, key: object = None) -> Event:
        """Block until every member arrives."""
        return self._join("barrier", caller, key, {})

    def bcast(self, caller: int, root: int, payload: object = None, key: object = None) -> Event:
        """Broadcast the root's payload to all members (root is a local rank)."""
        self._check_root(root)
        return self._join("bcast", caller, key, {"root": root, "payload": payload})

    def allreduce(self, caller: int, array: object, op: str = "sum", key: object = None) -> Event:
        """Elementwise reduction over all members; everyone gets the result."""
        if op not in ("sum", "max", "min"):
            raise MpiSimError(f"unsupported allreduce op {op!r}")
        return self._join("allreduce", caller, key, {"array": array, "op": op})

    def gather(self, caller: int, root: int, payload: object, key: object = None) -> Event:
        """Gather payloads to the root (local rank order)."""
        self._check_root(root)
        return self._join("gather", caller, key, {"root": root, "payload": payload})

    def allgather(self, caller: int, payload: object, key: object = None) -> Event:
        """Every member receives every member's payload (local-rank order)."""
        return self._join("allgather", caller, key, {"payload": payload})

    def reduce(self, caller: int, root: int, array: object, op: str = "sum", key: object = None) -> Event:
        """Rooted elementwise reduction; only the root receives the result."""
        self._check_root(root)
        if op not in ("sum", "max", "min"):
            raise MpiSimError(f"unsupported reduce op {op!r}")
        return self._join("reduce", caller, key, {"root": root, "array": array, "op": op})

    def scatter_from_root(self, caller: int, root: int, parts: _t.Sequence | None, key: object = None) -> Event:
        """The root distributes ``parts[i]`` to local rank ``i`` (MPI_Scatter)."""
        self._check_root(root)
        return self._join("rscatter", caller, key, {"root": root, "parts": parts})

    def split(self, caller: int, color: int, order_key: int = 0, key: object = None) -> Event:
        """Partition the communicator by color (negative color -> ``None``)."""
        return self._join("split", caller, key, {"color": color, "order_key": order_key})

    def dup(self, caller: int, key: object = None) -> Event:
        """MPI_Comm_dup: a fresh communicator with the same group.

        Duplication is how real codes give concurrent collective streams
        their own matching context; the simulator's explicit keys make it
        optional, but the API would be incomplete without it.
        """
        return self._join("dup", caller, key, {})

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise MpiSimError(f"root {root} out of range for {self.name!r} (size {self.size})")

    # -- matching engine ----------------------------------------------------------

    def _join(self, op: str, caller: int, key: object, args: dict) -> Event:
        local = self.local_rank(caller)
        if key is None:
            match_key = ("seq", self._seq[caller])
            self._seq[caller] += 1
        else:
            match_key = ("explicit", key)

        pending = self._pending.get(match_key)
        if pending is None:
            pending = _Pending(op, match_key)
            self._pending[match_key] = pending
        elif pending.op != op:
            raise MpiSimError(
                f"collective mismatch on {self.name!r}: rank {caller} called {op!r} "
                f"but matching call is {pending.op!r} (key={match_key})"
            )
        if local in pending.args:
            raise MpiSimError(
                f"rank {caller} joined {op!r} on {self.name!r} twice (key={match_key})"
            )

        sim = self.world.sim
        event = Event(sim, name=f"{op}:{self.name}")
        pending.args[local] = args
        pending.events[local] = event
        pending.arrive_times[local] = sim.now

        if len(pending.args) == self.size:
            del self._pending[match_key]
            self._execute(pending)
        return event

    # -- execution (all members arrived) ---------------------------------------

    def _execute(self, pending: _Pending) -> None:
        handler = getattr(self, f"_exec_{pending.op}")
        handler(pending)

    def _finish(
        self,
        pending: _Pending,
        values: dict[int, object],
        bytes_sent: dict[int, float],
        upstream: Event | None,
        latency_messages: float,
    ) -> None:
        """Complete every member's event after ``upstream`` (+ latency).

        A failed upstream (a lost/timed-out transfer under fault injection)
        fails *every* member's event with the same exception — all
        participants of a collective observe the fault, exactly as a real
        MPI job would see the operation error out everywhere.
        """
        net = self.world.network
        sim = self.world.sim
        t_all = sim.now

        def _complete(_ev: Event | None = None) -> None:
            if _ev is not None and _ev.exception is not None:
                _ev.defuse()
                for event in pending.events.values():
                    event.fail(_ev.exception)
                return
            for local, event in pending.events.items():
                result = CollectiveResult(
                    value=values.get(local),
                    bytes_sent=bytes_sent.get(local, 0.0),
                    sync_time=t_all - pending.arrive_times[local],
                )
                per_message = net.message_latency(self.ranks)
                if latency_messages > 0 and per_message > 0:
                    delayed = sim.timeout(latency_messages * per_message)
                    delayed.add_callback(lambda _e, ev=event, r=result: ev.succeed(r))
                else:
                    event.succeed(result)

        if upstream is None:
            _complete()
        else:
            upstream.add_callback(_complete)

    def _exec_barrier(self, pending: _Pending) -> None:
        net = self.world.network
        self._finish(pending, {}, {}, None, net.tree_messages(self.size))

    def _exec_alltoall(self, pending: _Pending) -> None:
        net = self.world.network
        size = self.size
        values: dict[int, object] = {}
        bytes_sent: dict[int, float] = {}
        transfers = []
        for local in range(size):
            parts = pending.args[local]["parts"]
            # Off-diagonal traffic crosses the transport; the self part is a
            # local copy and free at this model's granularity.
            pairs = [
                (self.world_rank(j), nbytes_of(parts[j]))
                for j in range(size)
                if j != local and nbytes_of(parts[j]) > 0
            ]
            sent = sum(nbytes for _dst, nbytes in pairs)
            bytes_sent[local] = sent
            if sent > 0:
                transfers.append(net.transfer_parts(self.world_rank(local), pairs))
        for local in range(size):
            values[local] = [
                payload_like(pending.args[src]["parts"][local]) for src in range(size)
            ]
        upstream = self.world.sim.all_of(transfers) if transfers else None
        self._finish(pending, values, bytes_sent, upstream, net.alltoall_messages(size))

    def _exec_alltoallw(self, pending: _Pending) -> None:
        net = self.world.network
        size = self.size
        # Conservation law, checked for every (src, dst) pair including the
        # diagonal: the elements src describes toward dst must exactly fill
        # the slots dst reserved for src.
        for src in range(size):
            send_blocks = pending.args[src]["send_blocks"]
            for dst in range(size):
                sb = send_blocks[dst]
                rb = pending.args[dst]["recv_blocks"][src]
                if sb.n_items != rb.n_items:
                    raise MpiSimError(
                        f"alltoallw on {self.name!r}: rank {self.world_rank(src)} "
                        f"sends {sb.n_items} elements to rank "
                        f"{self.world_rank(dst)}, which expects {rb.n_items}"
                    )
        # Direct data movement: one fancy-indexed move per pair, source view
        # to destination slots — the pack-free path (no staging buffer).
        for src in range(size):
            sendbuf = pending.args[src]["sendbuf"]
            if sendbuf is None:
                continue
            flat_src = sendbuf.reshape(-1)
            send_blocks = pending.args[src]["send_blocks"]
            for dst in range(size):
                sb = send_blocks[dst]
                if sb.n_items == 0:
                    continue
                recvbuf = pending.args[dst]["recvbuf"]
                if recvbuf is None:
                    continue
                rb = pending.args[dst]["recv_blocks"][src]
                recvbuf.reshape(-1)[rb.indices()] = flat_src[sb.indices()]
        # Cost accounting mirrors _exec_alltoall exactly (same per-sender
        # pair list, same transfer submissions, same latency term), so a
        # plan whose block volumes equal the old concatenated parts prices
        # identically — byte-for-byte in the simulated timeline.
        values: dict[int, object] = {}
        bytes_sent: dict[int, float] = {}
        transfers = []
        for local in range(size):
            send_blocks = pending.args[local]["send_blocks"]
            pairs = [
                (self.world_rank(j), send_blocks[j].nbytes)
                for j in range(size)
                if j != local and send_blocks[j].nbytes > 0
            ]
            sent = sum(nbytes for _dst, nbytes in pairs)
            bytes_sent[local] = sent
            if sent > 0:
                transfers.append(net.transfer_parts(self.world_rank(local), pairs))
        for local in range(size):
            values[local] = pending.args[local]["recvbuf"]
        upstream = self.world.sim.all_of(transfers) if transfers else None
        self._finish(pending, values, bytes_sent, upstream, net.alltoall_messages(size))

    def _exec_bcast(self, pending: _Pending) -> None:
        net = self.world.network
        root = pending.args[0]["root"]
        for local, args in pending.args.items():
            if args["root"] != root:
                raise MpiSimError(
                    f"bcast root mismatch on {self.name!r}: {args['root']} vs {root}"
                )
        payload = pending.args[root]["payload"]
        nbytes = nbytes_of(payload) if payload is not None else 0.0
        values = {
            local: (payload if local == root else payload_like(payload))
            if payload is not None
            else None
            for local in pending.args
        }
        bytes_sent = {root: nbytes}
        upstream = None
        if nbytes > 0:
            # One copy toward each distinct destination node (tree between
            # nodes); on a single node this is exactly one transfer.
            reps: dict[int, int] = {}
            for local in pending.args:
                if local == root:
                    continue
                node = net.node_of(self.world_rank(local))
                reps.setdefault(node, self.world_rank(local))
            pairs = [(dst, nbytes) for dst in reps.values()]
            if pairs:
                upstream = net.transfer_parts(self.world_rank(root), pairs)
        self._finish(pending, values, bytes_sent, upstream, net.tree_messages(self.size))

    def _exec_allreduce(self, pending: _Pending) -> None:
        net = self.world.network
        op = pending.args[0]["op"]
        arrays = [pending.args[local]["array"] for local in range(self.size)]
        metas = [a for a in arrays if isinstance(a, MetaPayload)]
        if metas and len(metas) != len(arrays):
            raise MpiSimError("allreduce cannot mix array and meta payloads")
        if metas:
            result: object = metas[0]
        else:
            stack = np.stack([np.asarray(a) for a in arrays])
            if op == "sum":
                reduced = stack.sum(axis=0)
            elif op == "max":
                reduced = stack.max(axis=0)
            else:
                reduced = stack.min(axis=0)
            result = reduced
        nbytes = nbytes_of(arrays[0])
        values = {local: payload_like(result) for local in pending.args}
        bytes_sent = {local: 2.0 * nbytes for local in pending.args}
        transfers = (
            [
                net.transfer_parts(
                    self.world_rank(l),
                    [(self.world_rank((l + 1) % self.size), 2.0 * nbytes)],
                )
                for l in range(self.size)
            ]
            if nbytes > 0 and self.size > 1
            else []
        )
        upstream = self.world.sim.all_of(transfers) if transfers else None
        self._finish(pending, values, bytes_sent, upstream, 2 * net.tree_messages(self.size))

    def _exec_gather(self, pending: _Pending) -> None:
        net = self.world.network
        root = pending.args[0]["root"]
        for local, args in pending.args.items():
            if args["root"] != root:
                raise MpiSimError(
                    f"gather root mismatch on {self.name!r}: {args['root']} vs {root}"
                )
        payloads = [pending.args[local]["payload"] for local in range(self.size)]
        bytes_sent = {
            local: nbytes_of(payloads[local]) if local != root else 0.0
            for local in range(self.size)
        }
        transfers = [
            net.transfer_parts(self.world_rank(l), [(self.world_rank(root), b)])
            for l, b in bytes_sent.items()
            if b > 0
        ]
        values: dict[int, object] = {
            local: None for local in pending.args
        }
        values[root] = [payload_like(p) for p in payloads]
        upstream = self.world.sim.all_of(transfers) if transfers else None
        self._finish(pending, values, bytes_sent, upstream, net.tree_messages(self.size))

    def _exec_allgather(self, pending: _Pending) -> None:
        net = self.world.network
        payloads = [pending.args[local]["payload"] for local in range(self.size)]
        gathered_of = {
            local: [payload_like(p) for p in payloads] for local in pending.args
        }
        bytes_sent = {}
        transfers = []
        for local in range(self.size):
            nbytes = nbytes_of(payloads[local])
            # Ring allgather: each value traverses (P-1) hops; the injection
            # is charged on its owner, hop by hop toward the next member.
            sent = nbytes * max(self.size - 1, 0)
            bytes_sent[local] = sent
            if sent > 0:
                next_member = self.world_rank((local + 1) % self.size)
                transfers.append(
                    net.transfer_parts(self.world_rank(local), [(next_member, sent)])
                )
        upstream = self.world.sim.all_of(transfers) if transfers else None
        self._finish(
            pending, gathered_of, bytes_sent, upstream, net.alltoall_messages(self.size)
        )

    def _exec_reduce(self, pending: _Pending) -> None:
        net = self.world.network
        root = pending.args[0]["root"]
        op = pending.args[0]["op"]
        for local, args in pending.args.items():
            if args["root"] != root:
                raise MpiSimError(
                    f"reduce root mismatch on {self.name!r}: {args['root']} vs {root}"
                )
        arrays = [pending.args[local]["array"] for local in range(self.size)]
        metas = [a for a in arrays if isinstance(a, MetaPayload)]
        if metas and len(metas) != len(arrays):
            raise MpiSimError("reduce cannot mix array and meta payloads")
        if metas:
            result: object = metas[0]
        else:
            stack = np.stack([np.asarray(a) for a in arrays])
            result = {"sum": stack.sum, "max": stack.max, "min": stack.min}[op](axis=0)
        nbytes = nbytes_of(arrays[0])
        values: dict[int, object] = {local: None for local in pending.args}
        values[root] = result if metas else payload_like(result)
        # Reduction tree: every non-root sends its contribution once.
        bytes_sent = {
            local: (nbytes if local != root else 0.0) for local in range(self.size)
        }
        transfers = [
            net.transfer_parts(self.world_rank(l), [(self.world_rank(root), b)])
            for l, b in bytes_sent.items()
            if b > 0
        ]
        upstream = self.world.sim.all_of(transfers) if transfers else None
        self._finish(pending, values, bytes_sent, upstream, net.tree_messages(self.size))

    def _exec_rscatter(self, pending: _Pending) -> None:
        net = self.world.network
        root = pending.args[0]["root"]
        for local, args in pending.args.items():
            if args["root"] != root:
                raise MpiSimError(
                    f"scatter root mismatch on {self.name!r}: {args['root']} vs {root}"
                )
        parts = pending.args[root]["parts"]
        if parts is None or len(parts) != self.size:
            raise MpiSimError(
                f"scatter on {self.name!r} needs {self.size} parts at the root"
            )
        values = {local: payload_like(parts[local]) for local in pending.args}
        sent = sum(nbytes_of(parts[j]) for j in range(self.size) if j != root)
        bytes_sent = {root: sent}
        pairs = [
            (self.world_rank(j), nbytes_of(parts[j]))
            for j in range(self.size)
            if j != root and nbytes_of(parts[j]) > 0
        ]
        upstream = (
            net.transfer_parts(self.world_rank(root), pairs) if pairs else None
        )
        self._finish(pending, values, bytes_sent, upstream, net.tree_messages(self.size))

    def _exec_dup(self, pending: _Pending) -> None:
        net = self.world.network
        comm = self.world._register_comm(list(self.ranks), f"{self.name}+dup")
        values = {local: comm for local in pending.args}
        self._finish(pending, values, {}, None, net.tree_messages(self.size))

    def _exec_split(self, pending: _Pending) -> None:
        net = self.world.network
        by_color: dict[int, list[tuple[int, int]]] = {}
        for local in range(self.size):
            color = pending.args[local]["color"]
            order = pending.args[local]["order_key"]
            if color >= 0:
                by_color.setdefault(color, []).append((order, local))
        new_comms: dict[int, Communicator | None] = {local: None for local in range(self.size)}
        for color, members in sorted(by_color.items()):
            members.sort()
            world_ranks = [self.world_rank(local) for _order, local in members]
            comm = self.world._register_comm(world_ranks, f"{self.name}/c{color}")
            for _order, local in members:
                new_comms[local] = comm
        self._finish(pending, new_comms, {}, None, net.tree_messages(self.size))
