"""Simulated MPI over the discrete-event engine.

This package replaces the MPI runtime of the paper's testbed.  Ranks are
coroutine processes sharing one :class:`~repro.simkit.simulator.Simulator`;
communication is *real* in the sense that numpy payloads actually move
between rank-local objects (so the FFT numerics are bit-honest), while the
*time* each operation takes comes from an on-node communication cost model:

* per-message software latency (the MPI stack),
* per-rank injection bandwidth (one core copying),
* a shared transport capacity modelled as a fluid resource, so concurrent
  collectives (and communication overlapped with other communication)
  genuinely contend.

Collective matching follows MPI semantics — the n-th collective on a
communicator matches the n-th on every other member — with an optional
explicit ``key`` for multi-threaded callers (the OmpSs per-FFT tasks issue
concurrent alltoalls on one communicator; keys replace the call-order rule
that would be ill-defined there).

Payloads are dual-mode (:mod:`~repro.mpisim.datatypes`): numpy arrays move
data *and* drive the cost model; :class:`MetaPayload` placeholders drive only
the cost model, letting large benchmark sweeps skip the memory traffic.
"""

from repro.faults.injector import MpiLinkError, MpiTimeoutError
from repro.mpisim.datatypes import BlockType, MetaPayload, nbytes_of, payload_like
from repro.mpisim.network import ClusterNetworkModel, NetworkModel
from repro.mpisim.communicator import Communicator, MpiSimError
from repro.mpisim.world import MpiRecord, MpiWorld, RankContext

__all__ = [
    "BlockType",
    "ClusterNetworkModel",
    "MetaPayload",
    "nbytes_of",
    "payload_like",
    "NetworkModel",
    "Communicator",
    "MpiSimError",
    "MpiLinkError",
    "MpiTimeoutError",
    "MpiWorld",
    "RankContext",
    "MpiRecord",
]
