"""Declarative sweep grids over :class:`~repro.core.config.RunConfig`.

A :class:`GridSpec` is the cartesian product of a few *axes* (``ranks``,
``version``, ``taskgroups``, ...) over a shared base of workload parameters.
Expansion order is deterministic: axes vary right-to-left in declaration
order (the last axis fastest), exactly like nested loops — so a grid is a
reproducible, addressable list of points no matter where or in what order
they later execute.

Every point gets a stable *key* (``"ranks=8,version=original"``) that names
it in sweep manifests; resuming a partial sweep matches on these keys.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from repro.core.config import RunConfig

__all__ = ["GridSpec", "SweepPoint", "point_key"]

#: Axis values must be scalars (JSON-safe and embeddable in a point key).
AxisValue = _t.Union[int, float, str, bool, None]


def point_key(assignment: _t.Mapping[str, AxisValue]) -> str:
    """The canonical name of one grid point: ``"axis=value,..."`` in axis order."""
    return ",".join(f"{k}={v}" for k, v in assignment.items())


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One expanded grid point: its key, axis assignment and full config."""

    key: str
    assignment: dict[str, AxisValue]
    config: RunConfig


@dataclasses.dataclass(frozen=True)
class GridSpec:
    """A sweep = base config parameters x named axes.

    Parameters
    ----------
    axes:
        Mapping of :class:`RunConfig` field name to the sequence of values
        that axis takes.  Declaration order is the expansion order.
    base:
        Keyword arguments shared by every point (workload, seed, faults...).
    """

    axes: dict[str, tuple[AxisValue, ...]]
    base: dict[str, _t.Any] = dataclasses.field(default_factory=dict)

    def __init__(
        self,
        axes: _t.Mapping[str, _t.Sequence[AxisValue]],
        base: _t.Mapping[str, _t.Any] | None = None,
    ):
        if not axes:
            raise ValueError("a grid needs at least one axis")
        normalized = {name: tuple(values) for name, values in axes.items()}
        for name, values in normalized.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")
        overlap = set(normalized) & set(base or {})
        if overlap:
            raise ValueError(f"axes shadow base parameters: {sorted(overlap)}")
        object.__setattr__(self, "axes", normalized)
        object.__setattr__(self, "base", dict(base or {}))

    @property
    def n_points(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def points(self) -> list[SweepPoint]:
        """Expand the grid into its ordered list of points."""
        names = list(self.axes)
        out = []
        for combo in itertools.product(*self.axes.values()):
            assignment = dict(zip(names, combo))
            config = RunConfig(**{**self.base, **assignment})
            out.append(
                SweepPoint(key=point_key(assignment), assignment=assignment, config=config)
            )
        return out

    def to_dict(self) -> dict:
        """JSON-safe description for the sweep manifest's ``sweep.grid``."""
        base: dict[str, _t.Any] = {}
        for k, v in self.base.items():
            if k == "faults" and v is not None:
                from repro.faults.plan import scenario_to_dict

                v = scenario_to_dict(v)
            base[k] = v
        return {
            "axes": {name: list(values) for name, values in self.axes.items()},
            "base": base,
            "n_points": self.n_points,
        }
