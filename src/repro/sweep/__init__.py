"""Declarative, concurrent execution of configuration sweeps.

The paper's evaluation is a set of grids (Tables I/II, Figs. 2-7: ranks x
version x ntg x hyper-threading); every grid point is an independent seeded
simulation.  This package runs those grids as first-class objects:

* :mod:`~repro.sweep.grid` — :class:`GridSpec` expands axes over a base
  config into ordered, stably-keyed points;
* :mod:`~repro.sweep.engine` — :func:`run_sweep` executes points on a
  ``concurrent.futures`` pool (process/thread/serial), reduces each result
  to a JSON summary in the worker, and assembles records in task order so
  concurrency never changes the output;
* :mod:`~repro.sweep.manifest` — the ``repro.sweep_manifest`` artifact:
  grid spec, per-point digests and summaries, wall time, worker count;
  partial manifests are what ``--resume`` picks up.

The experiment runners (:mod:`repro.experiments`) declare their grids
through this engine; ``fftxlib-repro sweep`` exposes it on the CLI.
"""

from repro.sweep.engine import (
    PointRecord,
    SweepError,
    SweepResult,
    SweepTask,
    canonical_json,
    digest_summary,
    run_sweep,
)
from repro.sweep.grid import GridSpec, SweepPoint, point_key
from repro.sweep.manifest import (
    SWEEP_MANIFEST_KIND,
    SWEEP_MANIFEST_SCHEMA_VERSION,
    SweepManifestError,
    build_sweep_manifest,
    load_sweep_manifest,
    validate_sweep_manifest,
    write_sweep_manifest,
)

__all__ = [
    "GridSpec",
    "SweepPoint",
    "point_key",
    "SweepTask",
    "PointRecord",
    "SweepResult",
    "SweepError",
    "run_sweep",
    "canonical_json",
    "digest_summary",
    "SWEEP_MANIFEST_KIND",
    "SWEEP_MANIFEST_SCHEMA_VERSION",
    "SweepManifestError",
    "build_sweep_manifest",
    "load_sweep_manifest",
    "validate_sweep_manifest",
    "write_sweep_manifest",
]
