"""The sweep executor: grid points -> concurrent runs -> one manifest.

The paper's artifacts are all sweeps — the same simulated pipeline executed
over ranks x version x ntg x hyper-threading grids — and every point is an
independent, deterministic simulation.  :func:`run_sweep` exploits that:

* points execute on a ``concurrent.futures`` pool (processes by default,
  threads or in-process serial as fallbacks),
* each worker reduces its :class:`~repro.core.driver.RunResult` *in
  process* to a JSON-safe summary dict (results hold live generators and an
  entire simulated world — they never cross the process boundary),
* expensive shared setup (G-vector sphere, stick maps, FFT plans) is cached
  per worker keyed by the workload parameters
  (:func:`repro.core.driver.build_geometry`), so a grid builds its geometry
  once per worker instead of once per point,
* finished points stream into a sweep manifest
  (:mod:`repro.sweep.manifest`) so an interrupted sweep resumes with
  ``resume=`` skipping the points already on disk.

Determinism contract: results are assembled in *task order*, each point's
simulation is seeded and wall-clock free, and reducers run in the worker
that simulated the point — so a sweep at ``--jobs 8`` is byte-identical,
point for point, to the same sweep at ``--jobs 1``.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import importlib
import json
import pathlib
import time
import typing as _t

from repro.core.config import RunConfig
from repro.core.driver import RunResult, run_fft_phase
from repro.machine.knl import KnlParameters

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.perf.tracer import Trace
    from repro.sweep.grid import GridSpec

__all__ = [
    "SweepTask",
    "PointRecord",
    "SweepResult",
    "SweepError",
    "run_sweep",
    "canonical_json",
    "digest_summary",
]

#: Execution modes for the worker pool.
MODES = ("process", "thread", "serial")


class SweepError(RuntimeError):
    """A sweep point failed to execute; the message names the point."""


# -- reducers ------------------------------------------------------------------
#
# A reducer turns (task, result, ideal_result, trace) into the JSON-safe
# summary stored for its point.  Tasks reference reducers *by name* — either
# a builtin alias or a "module:function" path — so a task pickles by value
# under any pool start method and the manifest records which reduction
# produced each summary.


def reduce_summary(
    task: "SweepTask",
    result: RunResult,
    ideal: RunResult | None,
    trace: "Trace | None",
) -> dict:
    """Default reduction: the full stable run manifest of the point.

    ``wall_time_s`` stays unset and ``created`` is pinned, exactly like the
    CLI's ``--stable-manifest`` — two executions of the same seeded point
    produce byte-identical summaries regardless of host or worker count.
    """
    from repro.perf.popmodel import factors_from_run
    from repro.telemetry.manifest import build_manifest

    factors = None
    ideal_time = None
    if ideal is not None:
        ideal_time = ideal.phase_time
        factors = factors_from_run(result, ideal_time=ideal_time)
    return build_manifest(
        result,
        wall_time_s=None,
        factors=factors,
        ideal_time_s=ideal_time,
        created="(stable)",
    )


_BUILTIN_REDUCERS: dict[str, _t.Callable] = {
    "summary": reduce_summary,
}


def _resolve_reducer(name: str) -> _t.Callable:
    if name in _BUILTIN_REDUCERS:
        return _BUILTIN_REDUCERS[name]
    if ":" in name:
        module_name, _, attr = name.partition(":")
        try:
            fn = getattr(importlib.import_module(module_name), attr)
        except (ImportError, AttributeError) as exc:
            raise SweepError(f"cannot resolve reducer {name!r}: {exc}") from exc
        if not callable(fn):
            raise SweepError(f"reducer {name!r} is not callable")
        return fn
    raise SweepError(
        f"unknown reducer {name!r}; use a builtin ({sorted(_BUILTIN_REDUCERS)}) "
        f"or a 'module:function' path"
    )


# -- tasks and records ---------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: a config plus how to run and reduce it.

    ``ideal_replay`` additionally runs the configuration on the ideal
    network (the POP transfer-split replay); ``trace`` attaches a tracer.
    Both feed the reducer, which must be named by ``reducer`` (builtin alias
    or ``module:function``).
    """

    key: str
    config: RunConfig
    knl: KnlParameters | None = None
    reducer: str = "summary"
    ideal_replay: bool = False
    trace: bool = False


@dataclasses.dataclass
class PointRecord:
    """The stored outcome of one executed (or resumed) point."""

    key: str
    summary: dict
    digest: str
    phase_time_s: float
    failed: bool
    reused: bool = False

    def to_manifest_entry(self) -> dict:
        return {
            "digest": self.digest,
            "phase_time_s": self.phase_time_s,
            "failed": self.failed,
            "summary": self.summary,
        }


@dataclasses.dataclass
class SweepResult:
    """All point records of a sweep, in task order."""

    records: list[PointRecord]
    jobs: int
    mode: str
    wall_time_s: float

    @property
    def computed_keys(self) -> list[str]:
        return [r.key for r in self.records if not r.reused]

    @property
    def reused_keys(self) -> list[str]:
        return [r.key for r in self.records if r.reused]

    def summaries(self) -> dict[str, dict]:
        """Point key -> reduced summary, in task order."""
        return {r.key: r.summary for r in self.records}

    def __getitem__(self, key: str) -> PointRecord:
        for r in self.records:
            if r.key == key:
                return r
        raise KeyError(key)


# -- canonical JSON and digests ------------------------------------------------


def _jsonify(value: _t.Any) -> _t.Any:
    """Reduce numpy scalars/arrays and tuples to plain JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "tolist"):  # numpy array or scalar
        return _jsonify(value.tolist())
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"summary value {value!r} is not JSON-serializable")


def canonical_json(doc: _t.Any) -> str:
    """The byte-stable serialization digests and identity checks use."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def digest_summary(summary: dict) -> str:
    """Content digest of one point's summary (sha256 over canonical JSON)."""
    return "sha256:" + hashlib.sha256(canonical_json(summary).encode()).hexdigest()


# -- execution -----------------------------------------------------------------


def _execute_task(task: SweepTask) -> dict:
    """Worker body: simulate one point and reduce it to a record dict.

    Runs inside the pool worker (or inline for serial/thread modes); only
    the JSON-safe record crosses back to the parent.
    """
    reducer = _resolve_reducer(task.reducer)
    trace = None
    if task.trace:
        from repro.perf.tracer import trace_run

        result, trace = trace_run(task.config, knl=task.knl)
    else:
        result = run_fft_phase(task.config, knl=task.knl)
    ideal = None
    if task.ideal_replay:
        from repro.perf.popmodel import ideal_network

        ideal_config = (
            dataclasses.replace(task.config, telemetry=False)
            if task.config.telemetry
            else task.config
        )
        ideal = run_fft_phase(ideal_config, knl=ideal_network(task.knl))
    summary = _jsonify(reducer(task, result, ideal, trace))
    return {
        "key": task.key,
        "summary": summary,
        "digest": digest_summary(summary),
        "phase_time_s": float(result.phase_time),
        "failed": bool(result.failed),
    }


def _record_from_resume(key: str, entry: dict) -> PointRecord:
    return PointRecord(
        key=key,
        summary=entry["summary"],
        digest=entry["digest"],
        phase_time_s=entry["phase_time_s"],
        failed=entry.get("failed", False),
        reused=True,
    )


def run_sweep(
    tasks: _t.Sequence[SweepTask],
    jobs: int = 1,
    mode: str | None = None,
    resume: dict | None = None,
    out: str | pathlib.Path | None = None,
    grid: "GridSpec | dict | None" = None,
    stable: bool = False,
    on_point: _t.Callable[[PointRecord], None] | None = None,
) -> SweepResult:
    """Execute ``tasks`` and return their records in task order.

    Parameters
    ----------
    jobs:
        Concurrent workers.  ``1`` executes in-process (no pool).
    mode:
        ``"process"`` (default for ``jobs > 1``), ``"thread"`` or
        ``"serial"``.  Processes give real parallelism; threads are the
        fallback where fork is unavailable; serial is the reference path.
    resume:
        A previously written sweep manifest (the loaded dict).  Tasks whose
        key has a record there are not re-executed; their stored record is
        reused verbatim.
    out:
        Path to stream the sweep manifest to.  The file is rewritten after
        every finished point, so an interrupted sweep leaves a loadable
        partial manifest behind for ``resume``.
    grid:
        Optional grid description embedded in the manifest
        (:class:`~repro.sweep.grid.GridSpec` or an equivalent dict).
    stable:
        Omit wall-clock fields from the streamed manifest (the sweep
        analogue of ``--stable-manifest``).
    on_point:
        Callback invoked with each finished :class:`PointRecord`, in
        completion order (progress reporting).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if mode is None:
        mode = "process" if jobs > 1 else "serial"
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    keys = [t.key for t in tasks]
    dupes = {k for k in keys if keys.count(k) > 1}
    if dupes:
        raise ValueError(f"duplicate sweep point keys: {sorted(dupes)}")

    resume_entries: dict[str, dict] = {}
    if resume is not None:
        resume_entries = dict(resume.get("points", {}))

    t0 = time.perf_counter()
    records: list[PointRecord | None] = [None] * len(tasks)
    pending: list[tuple[int, SweepTask]] = []
    for i, task in enumerate(tasks):
        if task.key in resume_entries:
            records[i] = _record_from_resume(task.key, resume_entries[task.key])
        else:
            pending.append((i, task))

    def _emit(record: PointRecord) -> None:
        if out is not None:
            _stream_manifest(
                out, tasks, records, grid, jobs, mode,
                None if stable else time.perf_counter() - t0, stable,
            )
        if on_point is not None:
            on_point(record)

    for record in records:
        if record is not None:
            _emit(record)

    if pending:
        n_workers = min(jobs, len(pending))
        if mode == "serial" or n_workers == 1:
            for i, task in pending:
                records[i] = _run_one(task)
                _emit(records[i])
        else:
            pool_cls = (
                concurrent.futures.ProcessPoolExecutor
                if mode == "process"
                else concurrent.futures.ThreadPoolExecutor
            )
            with pool_cls(max_workers=n_workers) as pool:
                futures = {pool.submit(_execute_task, task): i for i, task in pending}
                for future in concurrent.futures.as_completed(futures):
                    i = futures[future]
                    try:
                        doc = future.result()
                    except SweepError:
                        raise
                    except Exception as exc:
                        raise SweepError(
                            f"sweep point {tasks[i].key!r} failed: "
                            f"{type(exc).__name__}: {exc}"
                        ) from exc
                    records[i] = PointRecord(reused=False, **doc)
                    _emit(records[i])

    wall = time.perf_counter() - t0
    done = _t.cast("list[PointRecord]", records)
    result = SweepResult(records=done, jobs=jobs, mode=mode, wall_time_s=wall)
    if out is not None:
        _stream_manifest(
            out, tasks, records, grid, jobs, mode, None if stable else wall, stable
        )
    return result


def _run_one(task: SweepTask) -> PointRecord:
    try:
        doc = _execute_task(task)
    except SweepError:
        raise
    except Exception as exc:
        raise SweepError(
            f"sweep point {task.key!r} failed: {type(exc).__name__}: {exc}"
        ) from exc
    return PointRecord(reused=False, **doc)


def _stream_manifest(
    out: str | pathlib.Path,
    tasks: _t.Sequence[SweepTask],
    records: _t.Sequence[PointRecord | None],
    grid: "GridSpec | dict | None",
    jobs: int,
    mode: str,
    wall_time_s: float | None,
    stable: bool,
) -> None:
    from repro.sweep.manifest import build_sweep_manifest, write_sweep_manifest

    finished = [r for r in records if r is not None]
    manifest = build_sweep_manifest(
        finished,
        grid=grid,
        jobs=jobs,
        mode=mode,
        wall_time_s=wall_time_s,
        n_tasks=len(tasks),
        created="(stable)" if stable else None,
    )
    write_sweep_manifest(out, manifest)
