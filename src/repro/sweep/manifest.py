"""Sweep manifests: one JSON artifact per sweep.

Extends the run-manifest family (:mod:`repro.telemetry.manifest`) with a
``sweep`` section and a ``points`` map:

* ``sweep`` — the grid description, worker count and mode, wall time, and
  progress counters (``n_tasks`` vs ``n_points`` distinguishes a partial
  manifest from a complete one — that difference is what ``--resume``
  consumes);
* ``points`` — per-point records in task order: the content digest of the
  reduced summary, the simulated phase time, the failure flag, and the
  summary itself.

Validation is hand-rolled in the run-manifest style (no jsonschema
dependency); ``docs/sweep_manifest.schema.json`` mirrors the rules.
"""

from __future__ import annotations

import json
import pathlib
import time
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sweep.engine import PointRecord
    from repro.sweep.grid import GridSpec

__all__ = [
    "SWEEP_MANIFEST_KIND",
    "SWEEP_MANIFEST_SCHEMA_VERSION",
    "SweepManifestError",
    "build_sweep_manifest",
    "write_sweep_manifest",
    "load_sweep_manifest",
    "validate_sweep_manifest",
]

SWEEP_MANIFEST_KIND = "repro.sweep_manifest"
SWEEP_MANIFEST_SCHEMA_VERSION = 1


class SweepManifestError(ValueError):
    """A sweep manifest failed schema validation."""


def build_sweep_manifest(
    records: _t.Sequence["PointRecord"],
    grid: "GridSpec | dict | None" = None,
    jobs: int = 1,
    mode: str = "serial",
    wall_time_s: float | None = None,
    n_tasks: int | None = None,
    created: str | None = None,
) -> dict:
    """Assemble the manifest dict for (possibly partially) finished records."""
    grid_doc: dict | None
    if grid is None or isinstance(grid, dict):
        grid_doc = grid
    else:
        grid_doc = grid.to_dict()
    return {
        "kind": SWEEP_MANIFEST_KIND,
        "schema_version": SWEEP_MANIFEST_SCHEMA_VERSION,
        "created": created
        if created is not None
        else time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "sweep": {
            "grid": grid_doc,
            "jobs": jobs,
            "mode": mode,
            "wall_time_s": wall_time_s,
            "n_tasks": n_tasks if n_tasks is not None else len(records),
            "n_points": len(records),
            "n_failed": sum(1 for r in records if r.failed),
        },
        "points": {r.key: r.to_manifest_entry() for r in records},
    }


def write_sweep_manifest(path: str | pathlib.Path, manifest: dict) -> pathlib.Path:
    """Validate and write a sweep manifest; returns the written path."""
    errors = validate_sweep_manifest(manifest)
    if errors:
        raise SweepManifestError("; ".join(errors))
    path = pathlib.Path(path)
    if not path.suffix:
        path = path.with_suffix(".json")
    path.write_text(json.dumps(manifest, indent=2, sort_keys=False) + "\n")
    return path


def load_sweep_manifest(path: str | pathlib.Path) -> dict:
    """Read and validate a sweep manifest file."""
    manifest = json.loads(pathlib.Path(path).read_text())
    errors = validate_sweep_manifest(manifest)
    if errors:
        raise SweepManifestError(f"{path}: " + "; ".join(errors))
    return manifest


#: (dotted path, expected type(s), required) — mirrors the run-manifest rules.
_RULES: list[tuple[str, tuple[type, ...], bool]] = [
    ("kind", (str,), True),
    ("schema_version", (int,), True),
    ("created", (str,), True),
    ("sweep", (dict,), True),
    ("sweep.jobs", (int,), True),
    ("sweep.mode", (str,), True),
    ("sweep.n_tasks", (int,), True),
    ("sweep.n_points", (int,), True),
    ("sweep.n_failed", (int,), True),
    ("points", (dict,), True),
]


def _lookup(doc: dict, dotted: str):
    node: _t.Any = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None, False
        node = node[part]
    return node, True


def validate_sweep_manifest(manifest: object) -> list[str]:
    """Return schema violations (empty list = valid)."""
    if not isinstance(manifest, dict):
        return ["sweep manifest must be a JSON object"]
    errors = []
    for dotted, types, required in _RULES:
        value, present = _lookup(manifest, dotted)
        if not present:
            if required:
                errors.append(f"missing required field {dotted!r}")
            continue
        if not isinstance(value, types):
            names = "/".join(t.__name__ for t in types)
            errors.append(f"{dotted!r} must be {names}, got {type(value).__name__}")
    if errors:
        return errors
    if manifest["kind"] != SWEEP_MANIFEST_KIND:
        errors.append(
            f"kind must be {SWEEP_MANIFEST_KIND!r}, got {manifest['kind']!r}"
        )
    if manifest["schema_version"] > SWEEP_MANIFEST_SCHEMA_VERSION:
        errors.append(
            f"schema_version {manifest['schema_version']} is newer than "
            f"supported {SWEEP_MANIFEST_SCHEMA_VERSION}"
        )
    sweep = manifest["sweep"]
    if sweep["jobs"] < 1:
        errors.append("sweep.jobs must be >= 1")
    if sweep["n_points"] != len(manifest["points"]):
        errors.append(
            f"sweep.n_points ({sweep['n_points']}) does not match the "
            f"points map ({len(manifest['points'])} entries)"
        )
    if sweep["n_points"] > sweep["n_tasks"]:
        errors.append("sweep.n_points exceeds sweep.n_tasks")
    for key, entry in manifest["points"].items():
        if not isinstance(entry, dict):
            errors.append(f"points.{key} must be an object")
            continue
        for field, types in (
            ("digest", (str,)),
            ("phase_time_s", (int, float)),
            ("failed", (bool,)),
            ("summary", (dict,)),
        ):
            if field not in entry:
                errors.append(f"points.{key} missing field {field!r}")
            elif not isinstance(entry[field], types):
                names = "/".join(t.__name__ for t in types)
                errors.append(f"points.{key}.{field} must be {names}")
    return errors
