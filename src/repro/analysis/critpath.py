"""Critical-path extraction over traces and task graphs.

Two complementary views of "what made the run this long":

* :func:`critical_path_from_trace` walks the per-stream record timelines
  *backwards* from the makespan, hopping between streams at wait
  boundaries.  The result is a gap-free tiling of ``[0, makespan]`` into
  segments (compute / MPI wait / MPI transfer / dependency idle), so the
  path length equals the makespan **by construction** — the invariant the
  acceptance gate checks.  Attribution per resource (cpu vs network vs
  wait) falls out of the segment kinds.

* :func:`graph_critical_path` runs the classical CPM forward/backward
  pass over an explicit task DAG (the ompss dependency edges exported by
  the runtime), yielding the longest dependency chain, per-task slack and
  a slack histogram.  This answers "which *task kind* is critical", which
  the timeline walk cannot (it sees phases, not tasks).
"""

from __future__ import annotations

import dataclasses
import typing as _t
from repro.telemetry.layers import comm_layer

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.trace import Trace

__all__ = [
    "PathSegment",
    "CriticalPath",
    "critical_path_from_trace",
    "GraphNode",
    "GraphCriticalPath",
    "graph_critical_path",
    "slack_histogram",
]

#: Segment kinds, in attribution order.
KIND_COMPUTE = "compute"
KIND_MPI_WAIT = "mpi_wait"
KIND_MPI_TRANSFER = "mpi_transfer"
KIND_IDLE = "idle"


@dataclasses.dataclass(frozen=True)
class PathSegment:
    """One contiguous stretch of the critical path on one stream."""

    stream: str
    kind: str  # compute | mpi_wait | mpi_transfer | idle
    label: str  # phase name, mpi "call@layer", or ""
    t_begin: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_begin

    def to_dict(self) -> dict:
        return {
            "stream": self.stream,
            "kind": self.kind,
            "label": self.label,
            "t_begin": self.t_begin,
            "t_end": self.t_end,
            "duration_s": self.duration,
        }


@dataclasses.dataclass
class CriticalPath:
    """The extracted path plus its resource/label attribution."""

    makespan_s: float
    segments: list[PathSegment]

    @property
    def length_s(self) -> float:
        return sum(s.duration for s in self.segments)

    @property
    def by_kind(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for s in self.segments:
            out[s.kind] = out.get(s.kind, 0.0) + s.duration
        return out

    @property
    def by_label(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for s in self.segments:
            key = s.label or s.kind
            out[key] = out.get(key, 0.0) + s.duration
        return out

    def top_labels(self, k: int = 5) -> list[tuple[str, float]]:
        return sorted(self.by_label.items(), key=lambda kv: -kv[1])[:k]

    def to_dict(self, max_segments: int = 64) -> dict:
        merged = _merge_segments(self.segments)
        return {
            "makespan_s": self.makespan_s,
            "length_s": self.length_s,
            "n_segments": len(merged),
            "by_kind": {k: v for k, v in sorted(self.by_kind.items())},
            "by_label": {k: v for k, v in sorted(self.by_label.items())},
            "segments": [s.to_dict() for s in merged[:max_segments]],
        }


def _merge_segments(segments: list[PathSegment]) -> list[PathSegment]:
    """Coalesce adjacent segments with identical stream/kind/label."""
    out: list[PathSegment] = []
    for s in segments:
        if s.duration <= 0.0:
            continue
        if (
            out
            and out[-1].stream == s.stream
            and out[-1].kind == s.kind
            and out[-1].label == s.label
            and abs(out[-1].t_end - s.t_begin) < 1e-15
        ):
            out[-1] = dataclasses.replace(out[-1], t_end=s.t_end)
        else:
            out.append(s)
    return out


@dataclasses.dataclass(frozen=True)
class _Rec:
    """Unified timeline record used by the backward walk."""

    stream: str
    kind: str  # compute | mpi
    label: str
    t_begin: float
    t_end: float
    sync_time: float  # mpi only; leading wait share of [t_begin, t_end]


def _records(trace: "Trace") -> list[_Rec]:
    recs = []
    for r in trace.compute:
        recs.append(
            _Rec(
                stream=repr(r.stream),
                kind="compute",
                label=r.phase,
                t_begin=r.start,
                t_end=r.end,
                sync_time=0.0,
            )
        )
    for r in trace.mpi:
        layer = comm_layer(r.comm_name)
        recs.append(
            _Rec(
                stream=repr(r.stream),
                kind="mpi",
                label=f"{r.call}@{layer}",
                t_begin=r.t_begin,
                t_end=r.t_end,
                sync_time=min(max(r.sync_time, 0.0), r.t_end - r.t_begin),
            )
        )
    return recs


def _emit(rec: _Rec, lo: float, hi: float, out: list[PathSegment]) -> None:
    """Tile ``[lo, hi]`` of one record into path segments (reverse order)."""
    if hi - lo <= 0.0:
        return
    if rec.kind == "compute":
        out.append(PathSegment(rec.stream, KIND_COMPUTE, rec.label, lo, hi))
        return
    # MPI record: [t_begin, t_begin + sync) waits, the rest transfers.
    split = rec.t_begin + rec.sync_time
    if hi > split:
        out.append(
            PathSegment(rec.stream, KIND_MPI_TRANSFER, rec.label, max(lo, split), hi)
        )
    if lo < split:
        out.append(
            PathSegment(rec.stream, KIND_MPI_WAIT, rec.label, lo, min(hi, split))
        )


def critical_path_from_trace(
    trace: "Trace", makespan_s: float | None = None
) -> CriticalPath:
    """Backward walk from the makespan to time zero.

    At every point the walk stands on the record that *ends last no later
    than the cursor* — the activity the finish time was waiting on.  Where
    no record covers the cursor, the gap is attributed as ``mpi_wait``
    when the enclosing record is an MPI call still in flight, else as
    ``idle`` (dependency wait: the blocking activity ended earlier on
    another stream).  Segments tile ``[0, makespan]`` exactly, so
    ``length_s == makespan_s`` up to float rounding.
    """
    recs = _records(trace)
    if not recs:
        return CriticalPath(makespan_s=makespan_s or 0.0, segments=[])
    horizon = max(r.t_end for r in recs)
    if makespan_s is None or makespan_s < horizon:
        makespan_s = horizon
    # Records sorted by end time for "latest end <= cursor" queries.
    by_end = sorted(recs, key=lambda r: (r.t_end, r.t_begin))

    segments: list[PathSegment] = []  # built back-to-front
    cursor = makespan_s
    if makespan_s > horizon:
        # Finalization tail after the last record (e.g. span bookkeeping).
        last = by_end[-1]
        segments.append(
            PathSegment(last.stream, KIND_IDLE, "", horizon, makespan_s)
        )
        cursor = horizon
    idx = len(by_end) - 1
    eps = 1e-15
    while cursor > eps and idx >= 0:
        # Latest-ending record with t_end <= cursor (+eps for float noise).
        while idx >= 0 and by_end[idx].t_end > cursor + eps:
            idx -= 1
        if idx < 0:
            break
        rec = by_end[idx]
        if rec.t_end < cursor - eps:
            # Gap: nothing ends at the cursor; whoever resumed at `cursor`
            # was waiting for `rec` to finish.  Blame the gap on the stream
            # that was blocked (the one that resumes), as idle/dependency
            # wait, then continue from rec's end.
            blocked = _stream_resuming_at(recs, cursor, rec.stream)
            segments.append(
                PathSegment(blocked, KIND_IDLE, "", rec.t_end, cursor)
            )
            cursor = rec.t_end
        # Consume the record (or the part of it below the cursor).
        lo = min(rec.t_begin, cursor)
        _emit(rec, lo, cursor, segments)
        cursor = lo
        idx -= 1
    if cursor > eps:
        first = min(recs, key=lambda r: r.t_begin)
        segments.append(PathSegment(first.stream, KIND_IDLE, "", 0.0, cursor))
    segments.reverse()
    return CriticalPath(makespan_s=makespan_s, segments=segments)


def _stream_resuming_at(recs: list[_Rec], t: float, fallback: str) -> str:
    """The stream whose record begins at ``t`` (the one that was waiting)."""
    best = None
    for r in recs:
        if abs(r.t_begin - t) < 1e-12:
            if best is None or r.t_end < best.t_end:
                best = r
    return best.stream if best is not None else fallback


# ---------------------------------------------------------------------------
# Task-graph CPM


@dataclasses.dataclass
class GraphNode:
    """CPM annotations of one task."""

    key: _t.Hashable
    name: str
    duration: float
    earliest_finish: float = 0.0
    latest_finish: float = 0.0

    @property
    def slack(self) -> float:
        return self.latest_finish - self.earliest_finish

    def to_dict(self) -> dict:
        return {
            "key": repr(self.key),
            "name": self.name,
            "duration_s": self.duration,
            "earliest_finish_s": self.earliest_finish,
            "slack_s": self.slack,
        }


@dataclasses.dataclass
class GraphCriticalPath:
    """Longest dependency chain of a task DAG plus slack statistics."""

    length_s: float
    chain: list[GraphNode]
    nodes: list[GraphNode]
    n_edges: int

    @property
    def by_name(self) -> dict[str, float]:
        """Critical-chain time attributed per task name (kind)."""
        out: dict[str, float] = {}
        for n in self.chain:
            out[n.name] = out.get(n.name, 0.0) + n.duration
        return out

    def top_critical(self, k: int = 5) -> list[GraphNode]:
        """The k longest tasks on the critical chain."""
        return sorted(self.chain, key=lambda n: -n.duration)[:k]

    def to_dict(self, top_k: int = 5, bins: int = 8) -> dict:
        return {
            "length_s": self.length_s,
            "n_tasks": len(self.nodes),
            "n_edges": self.n_edges,
            "chain_len": len(self.chain),
            "by_name": {k: v for k, v in sorted(self.by_name.items())},
            "top_critical": [n.to_dict() for n in self.top_critical(top_k)],
            "slack_histogram": slack_histogram(self.nodes, bins=bins),
        }


def graph_critical_path(
    tasks: _t.Mapping[_t.Hashable, tuple[str, float]],
    edges: _t.Iterable[tuple[_t.Hashable, _t.Hashable]],
) -> GraphCriticalPath:
    """Classical CPM over ``tasks`` (key -> (name, duration)) and ``edges``.

    Edges run predecessor -> successor.  Raises :class:`ValueError` on a
    dependency cycle or an edge naming an unknown task.
    """
    nodes = {
        key: GraphNode(key=key, name=name, duration=float(dur))
        for key, (name, dur) in tasks.items()
    }
    succs: dict[_t.Hashable, list[_t.Hashable]] = {k: [] for k in nodes}
    preds: dict[_t.Hashable, list[_t.Hashable]] = {k: [] for k in nodes}
    n_edges = 0
    for a, b in edges:
        if a not in nodes or b not in nodes:
            raise ValueError(f"edge ({a!r}, {b!r}) names an unknown task")
        succs[a].append(b)
        preds[b].append(a)
        n_edges += 1

    # Kahn topological order (deterministic: keys sorted by repr).
    indeg = {k: len(preds[k]) for k in nodes}
    ready = sorted((k for k in nodes if indeg[k] == 0), key=repr)
    order = []
    while ready:
        k = ready.pop(0)
        order.append(k)
        newly = []
        for s in succs[k]:
            indeg[s] -= 1
            if indeg[s] == 0:
                newly.append(s)
        if newly:
            ready = sorted(ready + newly, key=repr)
    if len(order) != len(nodes):
        raise ValueError("task graph has a dependency cycle")

    # Forward pass: earliest finish.
    for k in order:
        n = nodes[k]
        start = max((nodes[p].earliest_finish for p in preds[k]), default=0.0)
        n.earliest_finish = start + n.duration
    length = max((n.earliest_finish for n in nodes.values()), default=0.0)

    # Backward pass: latest finish.
    for k in reversed(order):
        n = nodes[k]
        if succs[k]:
            n.latest_finish = min(
                nodes[s].latest_finish - nodes[s].duration for s in succs[k]
            )
        else:
            n.latest_finish = length

    # Chain backtracking from the sink with zero slack.
    chain: list[GraphNode] = []
    tol = 1e-12 * max(length, 1.0)
    current = None
    for k in order:
        n = nodes[k]
        if abs(n.earliest_finish - length) <= tol and n.slack <= tol:
            current = k
            break
    while current is not None:
        n = nodes[current]
        chain.append(n)
        nxt = None
        for p in sorted(preds[current], key=repr):
            pn = nodes[p]
            if (
                pn.slack <= tol
                and abs(pn.earliest_finish - (n.earliest_finish - n.duration)) <= tol
            ):
                nxt = p
                break
        current = nxt
    chain.reverse()

    return GraphCriticalPath(
        length_s=length,
        chain=chain,
        nodes=sorted(nodes.values(), key=lambda n: repr(n.key)),
        n_edges=n_edges,
    )


def slack_histogram(nodes: _t.Sequence[GraphNode], bins: int = 8) -> dict:
    """Fixed-bin histogram of task slack (how far off-critical tasks sit)."""
    if not nodes:
        return {"bins": [], "counts": [], "max_slack_s": 0.0}
    slacks = [max(n.slack, 0.0) for n in nodes]
    top = max(slacks)
    if top <= 0.0:
        return {"bins": [0.0], "counts": [len(slacks)], "max_slack_s": 0.0}
    width = top / bins
    counts = [0] * bins
    for s in slacks:
        i = min(int(s / width), bins - 1)
        counts[i] += 1
    return {
        "bins": [round(width * (i + 1), 15) for i in range(bins)],
        "counts": counts,
        "max_slack_s": top,
    }
