"""Automated regression triage: from "it got slower" to "here is why".

:func:`triage_pair` consumes two run manifests (baseline A, candidate B)
and produces a :class:`TriageReport` — a ranked list of
:class:`TriageFinding` rows naming what moved: the phase, the efficiency
factor, the MPI layer, the engine counter.  The report is the structured
blame attachment of ``perf diff`` / ``perf check`` and the A/B mode of the
``analyze`` CLI; it serializes to JSON and renders to text via
:mod:`repro.analysis.render`.

Findings are heuristic rankings over exact data — every number in a
finding comes straight from the manifests; only the ordering ("dominant")
is judgment, by absolute seconds moved (phases/MPI) and absolute factor
drop (efficiencies).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.perf.compare import ManifestDiff, diff_manifests

__all__ = ["TriageFinding", "TriageReport", "triage_pair"]

#: Finding kinds, in severity/report order.
KIND_RUNTIME = "runtime"
KIND_PHASE = "phase"
KIND_FACTOR = "efficiency_factor"
KIND_MPI = "mpi_layer"
KIND_COUNTER = "counter"


@dataclasses.dataclass(frozen=True)
class TriageFinding:
    """One attributed change between baseline and candidate."""

    kind: str  # runtime | phase | efficiency_factor | mpi_layer | counter
    subject: str  # phase name, factor name, layer, counter path
    value_a: float
    value_b: float
    delta: float  # B - A, in the subject's unit
    relative: float  # (B - A) / A, or inf when A == 0
    severity: float  # ranking key within the report (unitless)
    detail: str

    def to_dict(self) -> dict:
        doc = dataclasses.asdict(self)
        if self.relative == float("inf"):
            doc["relative"] = None
        return doc


@dataclasses.dataclass
class TriageReport:
    """The structured blame report of one A/B comparison."""

    label_a: str
    label_b: str
    verdict: str  # "regression" | "improvement" | "neutral"
    runtime_a_s: float
    runtime_b_s: float
    runtime_relative: float
    threshold: float
    findings: list[TriageFinding]

    @property
    def dominant(self) -> TriageFinding | None:
        """The highest-severity finding other than the runtime headline."""
        for f in self.findings:
            if f.kind != KIND_RUNTIME:
                return f
        return None

    @property
    def dominant_phase(self) -> str | None:
        for f in self.findings:
            if f.kind == KIND_PHASE:
                return f.subject
        return None

    @property
    def dominant_factor(self) -> str | None:
        for f in self.findings:
            if f.kind == KIND_FACTOR:
                return f.subject
        return None

    def to_dict(self) -> dict:
        return {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "verdict": self.verdict,
            "runtime_a_s": self.runtime_a_s,
            "runtime_b_s": self.runtime_b_s,
            "runtime_relative": (
                self.runtime_relative
                if self.runtime_relative != float("inf")
                else None
            ),
            "threshold": self.threshold,
            "dominant_phase": self.dominant_phase,
            "dominant_factor": self.dominant_factor,
            "findings": [f.to_dict() for f in self.findings],
        }


def _relative(a: float, b: float) -> float:
    if a == 0.0:
        return float("inf") if b != 0.0 else 0.0
    return (b - a) / a


def _pop_of(manifest: dict) -> dict:
    """The factor dict to triage: analysis.pop preferred, legacy pop fallback."""
    section = manifest.get("analysis") or {}
    pop = section.get("pop")
    if isinstance(pop, dict):
        return pop
    return manifest.get("pop") or {}


#: The factor keys triage tracks, mapped to report names.
_FACTORS = (
    "load_balance",
    "serialization_efficiency",
    "transfer_efficiency",
    "parallel_efficiency",
)

#: Engine/dataplane counters worth naming in a blame report (paths into the
#: manifest; deltas are reported raw, severity is relative).
_COUNTERS = (
    ("engine.cpu.rebalances", "cpu rebalances"),
    ("engine.cpu.events", "cpu engine events"),
    ("engine.network.rebalances", "network rebalances"),
    ("engine.network.events", "network engine events"),
    ("dataplane.alloc_misses", "arena allocation misses"),
    ("dataplane.bytes_resident", "arena bytes resident"),
)


def _lookup(doc: dict, dotted: str) -> float | None:
    node: _t.Any = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def triage_pair(
    baseline: dict, candidate: dict, threshold: float = 0.02
) -> TriageReport:
    """Build the blame report for ``candidate`` vs ``baseline``.

    ``threshold`` is the relative runtime change below which the verdict is
    ``"neutral"`` and findings are informational only.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    diff: ManifestDiff = diff_manifests(baseline, candidate)
    rel = diff.runtime_relative
    if rel > threshold:
        verdict = "regression"
    elif rel < -threshold:
        verdict = "improvement"
    else:
        verdict = "neutral"

    findings: list[TriageFinding] = []
    runtime_delta = diff.phase_time_b - diff.phase_time_a
    findings.append(
        TriageFinding(
            kind=KIND_RUNTIME,
            subject="phase_runtime",
            value_a=diff.phase_time_a,
            value_b=diff.phase_time_b,
            delta=runtime_delta,
            relative=rel,
            severity=abs(runtime_delta),
            detail=(
                f"simulated phase runtime {diff.phase_time_a * 1e3:.3f} ms -> "
                f"{diff.phase_time_b * 1e3:.3f} ms"
            ),
        )
    )

    # Phases: ranked by absolute seconds moved (the same direction as the
    # runtime change ranks above opposite movers at equal magnitude).
    direction = 1.0 if runtime_delta >= 0 else -1.0
    for p in diff.phases:
        delta = p.time_b - p.time_a
        if delta == 0.0:
            continue
        findings.append(
            TriageFinding(
                kind=KIND_PHASE,
                subject=p.name,
                value_a=p.time_a,
                value_b=p.time_b,
                delta=delta,
                relative=p.relative,
                severity=abs(delta) * (1.0 if delta * direction > 0 else 0.5),
                detail=(
                    f"compute time {p.time_a * 1e3:.3f} ms -> {p.time_b * 1e3:.3f} ms; "
                    f"IPC {p.ipc_a:.3f} -> {p.ipc_b:.3f}"
                ),
            )
        )

    # Efficiency factors: severity scales the factor drop into runtime terms.
    pop_a, pop_b = _pop_of(baseline), _pop_of(candidate)
    for name in _FACTORS:
        a, b = pop_a.get(name), pop_b.get(name)
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            continue
        delta = float(b) - float(a)
        if abs(delta) < 1e-12:
            continue
        findings.append(
            TriageFinding(
                kind=KIND_FACTOR,
                subject=name,
                value_a=float(a),
                value_b=float(b),
                delta=delta,
                relative=_relative(float(a), float(b)),
                # A factor drop of d explains ~d x runtime; weight against
                # the baseline runtime so factors and phases rank together.
                severity=abs(delta) * diff.phase_time_a
                * (1.0 if -delta * direction > 0 else 0.5),
                detail=f"{name.replace('_', ' ')} {a:.4f} -> {b:.4f}",
            )
        )

    for layer in sorted(set(diff.mpi_a) | set(diff.mpi_b)):
        a = diff.mpi_a.get(layer, 0.0)
        b = diff.mpi_b.get(layer, 0.0)
        delta = b - a
        if delta == 0.0:
            continue
        findings.append(
            TriageFinding(
                kind=KIND_MPI,
                subject=layer,
                value_a=a,
                value_b=b,
                delta=delta,
                relative=_relative(a, b),
                severity=abs(delta) * (1.0 if delta * direction > 0 else 0.5),
                detail=f"MPI {layer} time {a * 1e3:.3f} ms -> {b * 1e3:.3f} ms",
            )
        )

    # Counters rank by relative movement, scaled well below time findings —
    # they explain, they do not headline.
    counter_scale = max(abs(runtime_delta), diff.phase_time_a * threshold, 1e-12)
    for dotted, label in _COUNTERS:
        a = _lookup(baseline, dotted)
        b = _lookup(candidate, dotted)
        if a is None or b is None or a == b:
            continue
        findings.append(
            TriageFinding(
                kind=KIND_COUNTER,
                subject=dotted,
                value_a=a,
                value_b=b,
                delta=b - a,
                relative=_relative(a, b),
                severity=min(abs(_relative(a, b)), 1.0) * counter_scale * 0.25,
                detail=f"{label} {a:.0f} -> {b:.0f}",
            )
        )

    findings.sort(key=lambda f: (-f.severity, f.kind, f.subject))
    return TriageReport(
        label_a=diff.label_a,
        label_b=diff.label_b,
        verdict=verdict,
        runtime_a_s=diff.phase_time_a,
        runtime_b_s=diff.phase_time_b,
        runtime_relative=rel,
        threshold=threshold,
        findings=findings,
    )
