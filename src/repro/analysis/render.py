"""Text / markdown rendering of analysis artifacts.

All renderers take the JSON-level dict forms (what :func:`analyze_manifest`
returns, ``TriageReport.to_dict()``, :func:`analyze_sweep` rows) so the CLI
can feed either live objects or reloaded files; JSON output is plain
``json.dumps`` of the same dicts and needs no renderer.
"""

from __future__ import annotations

import typing as _t

__all__ = [
    "render_analysis_text",
    "render_analysis_markdown",
    "render_triage_text",
    "render_triage_markdown",
    "render_sweep_text",
    "render_sweep_markdown",
]


def _fmt(value: _t.Any, spec: str = ".4f", missing: str = "-") -> str:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return format(value, spec)
    return missing


def _ms(value: _t.Any) -> str:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return f"{value * 1e3:.3f} ms"
    return "-"


# ---------------------------------------------------------------------------
# Single-run analysis


def _analysis_rows(info: dict) -> dict:
    section = info.get("analysis") or {}
    return {
        "pop": section.get("pop") or {},
        "critical_path": section.get("critical_path"),
        "task_graph": section.get("task_graph"),
        "unclosed_spans": section.get("unclosed_spans", 0),
    }


def render_analysis_text(info: dict) -> str:
    """Human-readable report of one run's analysis section."""
    rows = _analysis_rows(info)
    pop = rows["pop"]
    lines = [
        f"run: {info.get('label', '?')}",
        f"phase runtime: {_ms(info.get('phase_time_s'))}",
        "",
        "POP efficiency factors",
        "-" * 46,
    ]
    for name in (
        "parallel_efficiency",
        "load_balance",
        "serialization_efficiency",
        "transfer_efficiency",
        "communication_efficiency",
    ):
        lines.append(f"  {name.replace('_', ' '):<28}{_fmt(pop.get(name)):>8}")
    if pop.get("split_source"):
        lines.append(
            f"  (serialization/transfer split: {pop['split_source']}, "
            f"ideal runtime {_ms(pop.get('ideal_runtime_s'))})"
        )
    phases = pop.get("phases") or {}
    if phases:
        lines += [
            "",
            f"  {'phase':<18}{'load bal':>9}{'max':>12}{'mean':>12}",
            "  " + "-" * 51,
        ]
        for name in sorted(phases):
            p = phases[name]
            lines.append(
                f"  {name:<18}{_fmt(p.get('load_balance'), '.3f'):>9}"
                f"{_ms(p.get('time_max_s')):>12}{_ms(p.get('time_mean_s')):>12}"
            )
    layers = pop.get("comm_layers") or {}
    if layers:
        lines += [
            "",
            f"  {'MPI layer':<18}{'time':>12}{'sync':>12}{'transfer':>12}",
            "  " + "-" * 54,
        ]
        for name in sorted(layers):
            c = layers[name]
            lines.append(
                f"  {name:<18}{_ms(c.get('time_s')):>12}"
                f"{_ms(c.get('sync_s')):>12}{_ms(c.get('transfer_s')):>12}"
            )
    crit = rows["critical_path"]
    if crit:
        lines += ["", "Critical path", "-" * 46]
        lines.append(
            f"  length {_ms(crit.get('length_s'))} over "
            f"{crit.get('n_segments', 0)} segment(s) "
            f"(makespan {_ms(crit.get('makespan_s'))})"
        )
        by_kind = crit.get("by_kind") or {}
        for kind in sorted(by_kind, key=lambda k: -by_kind[k]):
            lines.append(f"  {kind:<18}{_ms(by_kind[kind]):>12}")
        top = sorted(
            (crit.get("by_label") or {}).items(), key=lambda kv: -kv[1]
        )[:5]
        if top:
            lines.append("  top contributors:")
            for label, t in top:
                lines.append(f"    {label:<20}{_ms(t):>12}")
    graph = rows["task_graph"]
    if graph:
        lines += ["", "Task graph (ompss)", "-" * 46]
        lines.append(
            f"  {graph.get('n_tasks', 0)} tasks, {graph.get('n_edges', 0)} edges; "
            f"longest chain {_ms(graph.get('length_s'))} "
            f"({graph.get('chain_len', 0)} tasks)"
        )
        for entry in graph.get("top_critical") or []:
            lines.append(
                f"    {entry.get('name', '?'):<20}{_ms(entry.get('duration_s')):>12}"
                f"  slack {_ms(entry.get('slack_s'))}"
            )
    if rows["unclosed_spans"]:
        lines += [
            "",
            f"WARNING: {rows['unclosed_spans']} span(s) never closed — "
            "the span tree is truncated.",
        ]
    return "\n".join(lines)


def render_analysis_markdown(info: dict) -> str:
    """Markdown report of one run's analysis section (the CI artifact)."""
    rows = _analysis_rows(info)
    pop = rows["pop"]
    lines = [
        f"# Analysis: {info.get('label', '?')}",
        "",
        f"Simulated phase runtime: **{_ms(info.get('phase_time_s'))}**",
        "",
        "## POP efficiency factors",
        "",
        "| factor | value |",
        "| --- | ---: |",
    ]
    for name in (
        "parallel_efficiency",
        "load_balance",
        "serialization_efficiency",
        "transfer_efficiency",
        "communication_efficiency",
    ):
        lines.append(f"| {name.replace('_', ' ')} | {_fmt(pop.get(name))} |")
    if pop.get("split_source"):
        lines += [
            "",
            f"Serialization/transfer split source: `{pop['split_source']}` "
            f"(ideal runtime {_ms(pop.get('ideal_runtime_s'))}).",
        ]
    phases = pop.get("phases") or {}
    if phases:
        lines += [
            "",
            "## Per-phase load balance",
            "",
            "| phase | load balance | max | mean |",
            "| --- | ---: | ---: | ---: |",
        ]
        for name in sorted(phases):
            p = phases[name]
            lines.append(
                f"| {name} | {_fmt(p.get('load_balance'), '.3f')} | "
                f"{_ms(p.get('time_max_s'))} | {_ms(p.get('time_mean_s'))} |"
            )
    layers = pop.get("comm_layers") or {}
    if layers:
        lines += [
            "",
            "## MPI layers",
            "",
            "| layer | time | sync | transfer |",
            "| --- | ---: | ---: | ---: |",
        ]
        for name in sorted(layers):
            c = layers[name]
            lines.append(
                f"| {name} | {_ms(c.get('time_s'))} | {_ms(c.get('sync_s'))} | "
                f"{_ms(c.get('transfer_s'))} |"
            )
    crit = rows["critical_path"]
    if crit:
        lines += [
            "",
            "## Critical path",
            "",
            f"Length **{_ms(crit.get('length_s'))}** over "
            f"{crit.get('n_segments', 0)} segment(s) "
            f"(makespan {_ms(crit.get('makespan_s'))}).",
            "",
            "| resource | time |",
            "| --- | ---: |",
        ]
        by_kind = crit.get("by_kind") or {}
        for kind in sorted(by_kind, key=lambda k: -by_kind[k]):
            lines.append(f"| {kind} | {_ms(by_kind[kind])} |")
    graph = rows["task_graph"]
    if graph:
        lines += [
            "",
            "## Task graph",
            "",
            f"{graph.get('n_tasks', 0)} tasks, {graph.get('n_edges', 0)} edges; "
            f"longest dependency chain {_ms(graph.get('length_s'))}.",
        ]
    if rows["unclosed_spans"]:
        lines += [
            "",
            f"> **Warning:** {rows['unclosed_spans']} span(s) never closed — "
            "the span tree is truncated.",
        ]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Triage (A/B)


def render_triage_text(report: dict, top: int = 8) -> str:
    """Human-readable blame report (``TriageReport.to_dict()`` form)."""
    rel = report.get("runtime_relative")
    rel_str = f"{rel * 100:+.1f}%" if isinstance(rel, (int, float)) else "new"
    lines = [
        f"A: {report.get('label_a', '?')}",
        f"B: {report.get('label_b', '?')}",
        f"verdict: {report.get('verdict', '?').upper()} "
        f"({_ms(report.get('runtime_a_s'))} -> {_ms(report.get('runtime_b_s'))}, "
        f"{rel_str}; threshold {report.get('threshold', 0) * 100:.1f}%)",
    ]
    if report.get("dominant_phase"):
        lines.append(f"dominant phase:  {report['dominant_phase']}")
    if report.get("dominant_factor"):
        lines.append(f"dominant factor: {report['dominant_factor']}")
    findings = report.get("findings") or []
    if findings:
        lines += ["", f"{'kind':<18}{'subject':<26}{'delta':>12}  detail", "-" * 78]
        for f in findings[:top]:
            delta = f.get("delta")
            if f.get("kind") in ("phase", "mpi_layer", "runtime"):
                delta_str = (
                    f"{delta * 1e3:+.3f}ms" if isinstance(delta, (int, float)) else "-"
                )
            else:
                delta_str = _fmt(delta, "+.4f")
            lines.append(
                f"{f.get('kind', '?'):<18}{f.get('subject', '?'):<26}"
                f"{delta_str:>12}  {f.get('detail', '')}"
            )
        if len(findings) > top:
            lines.append(f"... and {len(findings) - top} more finding(s)")
    return "\n".join(lines)


def render_triage_markdown(report: dict, top: int = 8) -> str:
    """Markdown blame report."""
    rel = report.get("runtime_relative")
    rel_str = f"{rel * 100:+.1f}%" if isinstance(rel, (int, float)) else "new"
    lines = [
        f"# Triage: {report.get('label_a', '?')} → {report.get('label_b', '?')}",
        "",
        f"**Verdict: {report.get('verdict', '?').upper()}** — "
        f"{_ms(report.get('runtime_a_s'))} → {_ms(report.get('runtime_b_s'))} "
        f"({rel_str}).",
    ]
    if report.get("dominant_phase") or report.get("dominant_factor"):
        lines.append("")
        if report.get("dominant_phase"):
            lines.append(f"- Dominant phase: `{report['dominant_phase']}`")
        if report.get("dominant_factor"):
            lines.append(f"- Dominant factor: `{report['dominant_factor']}`")
    findings = report.get("findings") or []
    if findings:
        lines += [
            "",
            "| kind | subject | A | B | Δ | detail |",
            "| --- | --- | ---: | ---: | ---: | --- |",
        ]
        for f in findings[:top]:
            lines.append(
                f"| {f.get('kind', '?')} | {f.get('subject', '?')} | "
                f"{_fmt(f.get('value_a'), '.6g')} | {_fmt(f.get('value_b'), '.6g')} | "
                f"{_fmt(f.get('delta'), '+.6g')} | {f.get('detail', '')} |"
            )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Sweep efficiency series


_SWEEP_COLUMNS = (
    ("parallel_efficiency", "par eff"),
    ("load_balance", "load bal"),
    ("serialization_efficiency", "serial"),
    ("transfer_efficiency", "transfer"),
)


def render_sweep_text(rows: _t.Sequence[dict]) -> str:
    """Efficiency scaling series of a sweep manifest, as an ASCII table."""
    header = f"{'point':<34}{'time':>12}" + "".join(
        f"{title:>10}" for _, title in _SWEEP_COLUMNS
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = "".join(
            f"{_fmt(row.get(key), '.4f'):>10}" for key, _ in _SWEEP_COLUMNS
        )
        flag = " (FAILED)" if row.get("failed") else ""
        lines.append(
            f"{row.get('point', '?'):<34}{_ms(row.get('phase_time_s')):>12}"
            f"{cells}{flag}"
        )
    return "\n".join(lines)


def render_sweep_markdown(rows: _t.Sequence[dict]) -> str:
    """Efficiency scaling series as a markdown table."""
    lines = [
        "# Sweep efficiency series",
        "",
        "| point | time | par eff | load bal | serialization | transfer |",
        "| --- | ---: | ---: | ---: | ---: | ---: |",
    ]
    for row in rows:
        cells = " | ".join(
            _fmt(row.get(key), ".4f") for key, _ in _SWEEP_COLUMNS
        )
        point = row.get("point", "?")
        if row.get("failed"):
            point = f"{point} ⚠"
        lines.append(f"| {point} | {_ms(row.get('phase_time_s'))} | {cells} |")
    return "\n".join(lines) + "\n"
