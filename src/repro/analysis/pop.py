"""Per-phase POP efficiency decomposition from stream timelines.

The run-level POP model (:mod:`repro.perf.popmodel`) condenses a whole run
into one factor column; this module computes the same multiplicative
decomposition *per phase* and *per communicator layer*, directly from the
per-stream record timelines the telemetry layer stores — the step the
paper performs in Paraver before quoting a table.

Definitions (per stream ``s`` over the measured horizon ``T``):

* ``C(s)`` — useful compute time, ``S(s)`` — MPI synchronization (waiting
  for a partner), ``X(s)`` — MPI transfer (moving bytes);
* **load balance** = ``mean_s C(s) / max_s C(s)``;
* **communication efficiency** = ``max_s C(s) / T``, split multiplicatively
  into **serialization x transfer**.  With a real ideal-network replay time
  the split uses it (the Dimemas what-if, exact in a simulator); without
  one it is estimated trace-side as ``T_ideal ~= max_s (C(s) + S(s))`` —
  on an instantaneous network the transfer share vanishes while dependency
  waits remain;
* **parallel efficiency** = load balance x serialization x transfer
  ``= mean_s C(s) / T`` — the identity holds exactly by construction.

Per phase only the load-balance factor is identified (a phase has no
private network); per communicator layer the sync/transfer split of the
MPI time is reported instead.
"""

from __future__ import annotations

import dataclasses
import typing as _t
from repro.telemetry.layers import comm_layer

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.machine.counters import CounterSet
    from repro.telemetry.trace import Trace

__all__ = [
    "StreamTimeline",
    "PhaseEfficiency",
    "CommLayerSplit",
    "PopDecomposition",
    "timelines_from_trace",
    "timelines_from_counters",
    "decompose",
]


def _layer_of(comm_name: str) -> str:
    """Low-cardinality communicator layer (``pack3`` -> ``pack``)."""
    return comm_layer(comm_name)


@dataclasses.dataclass
class StreamTimeline:
    """One stream's time accounting, aggregated by phase and MPI layer."""

    stream: str
    compute_by_phase: dict[str, float] = dataclasses.field(default_factory=dict)
    mpi_sync_by_layer: dict[str, float] = dataclasses.field(default_factory=dict)
    mpi_transfer_by_layer: dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def compute_time(self) -> float:
        return sum(self.compute_by_phase.values())

    @property
    def mpi_sync(self) -> float:
        return sum(self.mpi_sync_by_layer.values())

    @property
    def mpi_transfer(self) -> float:
        return sum(self.mpi_transfer_by_layer.values())


def timelines_from_trace(trace: "Trace") -> list[StreamTimeline]:
    """Per-stream timelines from a run's record store (compute + MPI)."""
    out: dict[str, StreamTimeline] = {}

    def of(stream: _t.Hashable) -> StreamTimeline:
        key = repr(stream)
        if key not in out:
            out[key] = StreamTimeline(stream=key)
        return out[key]

    for r in trace.compute:
        tl = of(r.stream)
        tl.compute_by_phase[r.phase] = (
            tl.compute_by_phase.get(r.phase, 0.0) + r.duration
        )
    for r in trace.mpi:
        tl = of(r.stream)
        layer = _layer_of(r.comm_name)
        tl.mpi_sync_by_layer[layer] = (
            tl.mpi_sync_by_layer.get(layer, 0.0) + r.sync_time
        )
        tl.mpi_transfer_by_layer[layer] = (
            tl.mpi_transfer_by_layer.get(layer, 0.0) + r.transfer_time
        )
    return [out[k] for k in sorted(out)]


def timelines_from_counters(counters: "CounterSet") -> list[StreamTimeline]:
    """Per-stream compute timelines from the hardware counters (no MPI split).

    The counter bank is always populated (telemetry or not), so efficiency
    factors remain computable for untraced runs — only the sync/transfer
    split degrades to the neutral estimate.
    """
    out = []
    for stream in counters.streams:
        tl = StreamTimeline(stream=repr(stream))
        for phase, c in counters.phases(stream).items():
            tl.compute_by_phase[phase] = c.compute_time
        out.append(tl)
    return out


@dataclasses.dataclass(frozen=True)
class PhaseEfficiency:
    """Load-balance view of one phase across streams."""

    phase: str
    load_balance: float
    time_total_s: float
    time_max_s: float
    time_mean_s: float
    n_streams: int

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class CommLayerSplit:
    """Sync/transfer split of one communicator layer's MPI time."""

    layer: str
    time_s: float
    sync_s: float
    transfer_s: float

    @property
    def sync_fraction(self) -> float:
        return self.sync_s / self.time_s if self.time_s > 0 else 0.0

    def to_dict(self) -> dict:
        doc = dataclasses.asdict(self)
        doc["sync_fraction"] = self.sync_fraction
        return doc


@dataclasses.dataclass
class PopDecomposition:
    """The multiplicative efficiency model of one run, with per-phase detail."""

    makespan_s: float
    n_streams: int
    load_balance: float
    serialization_efficiency: float
    transfer_efficiency: float
    communication_efficiency: float
    parallel_efficiency: float
    #: Ideal-network runtime used for the sync/transfer split: the measured
    #: replay when available, the trace-side estimate otherwise.
    ideal_runtime_s: float
    #: ``"replay"`` (measured ideal network), ``"estimate"`` (from MPI sync
    #: records) or ``"neutral"`` (no MPI data; transfer pinned to 1).
    split_source: str
    phases: list[PhaseEfficiency] = dataclasses.field(default_factory=list)
    comm_layers: list[CommLayerSplit] = dataclasses.field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "makespan_s": self.makespan_s,
            "n_streams": self.n_streams,
            "load_balance": self.load_balance,
            "serialization_efficiency": self.serialization_efficiency,
            "transfer_efficiency": self.transfer_efficiency,
            "communication_efficiency": self.communication_efficiency,
            "parallel_efficiency": self.parallel_efficiency,
            "ideal_runtime_s": self.ideal_runtime_s,
            "split_source": self.split_source,
            "phases": {p.phase: p.to_dict() for p in self.phases},
            "comm_layers": {c.layer: c.to_dict() for c in self.comm_layers},
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "PopDecomposition":
        phases = [
            PhaseEfficiency(**{k: v for k, v in entry.items()})
            for entry in doc.get("phases", {}).values()
        ]
        layers = [
            CommLayerSplit(
                layer=entry["layer"],
                time_s=entry["time_s"],
                sync_s=entry["sync_s"],
                transfer_s=entry["transfer_s"],
            )
            for entry in doc.get("comm_layers", {}).values()
        ]
        return cls(
            makespan_s=doc["makespan_s"],
            n_streams=doc["n_streams"],
            load_balance=doc["load_balance"],
            serialization_efficiency=doc["serialization_efficiency"],
            transfer_efficiency=doc["transfer_efficiency"],
            communication_efficiency=doc["communication_efficiency"],
            parallel_efficiency=doc["parallel_efficiency"],
            ideal_runtime_s=doc["ideal_runtime_s"],
            split_source=doc.get("split_source", "estimate"),
            phases=sorted(phases, key=lambda p: p.phase),
            comm_layers=sorted(layers, key=lambda c: c.layer),
        )


def decompose(
    timelines: _t.Sequence[StreamTimeline],
    makespan_s: float,
    ideal_time_s: float | None = None,
) -> PopDecomposition:
    """Compute the efficiency decomposition from per-stream timelines.

    ``ideal_time_s`` — runtime of the same configuration on an ideal
    network (the Dimemas replay); when given it identifies the
    serialization/transfer split exactly.  Without it the split is
    estimated from the recorded MPI sync times (see module docstring), or
    left neutral (transfer = 1) when no MPI records exist.
    """
    if not timelines:
        raise ValueError("no stream timelines to decompose")
    if makespan_s <= 0.0:
        raise ValueError(f"makespan must be > 0, got {makespan_s}")

    compute = [tl.compute_time for tl in timelines]
    max_compute = max(compute)
    mean_compute = sum(compute) / len(compute)
    load_balance = mean_compute / max_compute if max_compute > 0 else 1.0
    comm_eff = max_compute / makespan_s
    parallel_eff = load_balance * comm_eff

    has_mpi = any(tl.mpi_sync or tl.mpi_transfer for tl in timelines)
    if ideal_time_s is not None and ideal_time_s > 0:
        split_source = "replay"
        ideal = ideal_time_s
        transfer_eff = min(ideal / makespan_s, 1.0)
        serialization_eff = min(max_compute / ideal, 1.0) if ideal > 0 else 1.0
    elif has_mpi:
        split_source = "estimate"
        busy = max(tl.compute_time + tl.mpi_sync for tl in timelines)
        # Serialization keeps the dependency waits; transfer removal cannot
        # make the run slower than measured or faster than its compute.
        ideal = min(max(busy, max_compute), makespan_s)
        transfer_eff = ideal / makespan_s
        serialization_eff = max_compute / ideal if ideal > 0 else 1.0
    else:
        split_source = "neutral"
        ideal = makespan_s
        transfer_eff = 1.0
        serialization_eff = comm_eff

    phase_names = sorted({p for tl in timelines for p in tl.compute_by_phase})
    phases = []
    for name in phase_names:
        times = [tl.compute_by_phase.get(name, 0.0) for tl in timelines]
        t_max = max(times)
        t_mean = sum(times) / len(times)
        phases.append(
            PhaseEfficiency(
                phase=name,
                load_balance=t_mean / t_max if t_max > 0 else 1.0,
                time_total_s=sum(times),
                time_max_s=t_max,
                time_mean_s=t_mean,
                n_streams=len(times),
            )
        )

    layer_names = sorted(
        {l for tl in timelines for l in tl.mpi_sync_by_layer}
        | {l for tl in timelines for l in tl.mpi_transfer_by_layer}
    )
    layers = []
    for name in layer_names:
        sync = sum(tl.mpi_sync_by_layer.get(name, 0.0) for tl in timelines)
        transfer = sum(tl.mpi_transfer_by_layer.get(name, 0.0) for tl in timelines)
        layers.append(
            CommLayerSplit(
                layer=name,
                time_s=sync + transfer,
                sync_s=sync,
                transfer_s=transfer,
            )
        )

    return PopDecomposition(
        makespan_s=makespan_s,
        n_streams=len(timelines),
        load_balance=load_balance,
        serialization_efficiency=serialization_eff,
        transfer_efficiency=transfer_eff,
        communication_efficiency=comm_eff,
        parallel_efficiency=parallel_eff,
        ideal_runtime_s=ideal,
        split_source=split_source,
        phases=phases,
        comm_layers=layers,
    )
