"""Performance analytics over recorded telemetry (the POP toolchain).

The telemetry layer records; this package explains.  It consumes what a run
already emits — span trees, compute/MPI/task records, hardware counters,
run and sweep manifests — and produces the three artifacts the paper's
methodology rests on:

* the **POP multiplicative efficiency model** per run and per phase
  (:mod:`repro.analysis.pop`),
* the **critical path** through the simulated timeline and the ompss task
  graph (:mod:`repro.analysis.critpath`),
* **regression triage** for manifest pairs — which phase, which factor,
  which counter moved (:mod:`repro.analysis.triage`).

Everything here is read-only over existing data: analyzing a run never
perturbs the simulation (the golden-manifest gate pins this).

Entry points
------------
:func:`analyze_run` (a live :class:`~repro.core.driver.RunResult`),
:func:`analyze_session` (a telemetry session, used by the driver at
finalization), :func:`analyze_manifest` / :func:`analyze_pair` /
:func:`analyze_sweep` (JSON artifacts, used by the CLI).
"""

from __future__ import annotations

import dataclasses
import typing as _t
import warnings

from repro.analysis.critpath import (
    CriticalPath,
    GraphCriticalPath,
    critical_path_from_trace,
    graph_critical_path,
    slack_histogram,
)
from repro.analysis.pop import (
    CommLayerSplit,
    PhaseEfficiency,
    PopDecomposition,
    StreamTimeline,
    decompose,
    timelines_from_counters,
    timelines_from_trace,
)
from repro.analysis.triage import TriageFinding, TriageReport, triage_pair

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.driver import RunResult
    from repro.machine.counters import CounterSet
    from repro.telemetry import Telemetry

__all__ = [
    "ANALYSIS_SCHEMA_VERSION",
    "RunAnalysis",
    "analyze_run",
    "analyze_session",
    "analyze_manifest",
    "analyze_pair",
    "analyze_sweep",
    "efficiency_summary",
    # re-exports
    "PopDecomposition",
    "PhaseEfficiency",
    "CommLayerSplit",
    "StreamTimeline",
    "decompose",
    "timelines_from_trace",
    "timelines_from_counters",
    "CriticalPath",
    "GraphCriticalPath",
    "critical_path_from_trace",
    "graph_critical_path",
    "slack_histogram",
    "TriageFinding",
    "TriageReport",
    "triage_pair",
]

ANALYSIS_SCHEMA_VERSION = 1


@dataclasses.dataclass
class RunAnalysis:
    """The derived analytics of one run (embedded as ``manifest["analysis"]``)."""

    pop: PopDecomposition | None
    critical_path: CriticalPath | None
    task_graph: GraphCriticalPath | None
    unclosed_spans: int

    def to_dict(self) -> dict:
        return {
            "schema_version": ANALYSIS_SCHEMA_VERSION,
            "unclosed_spans": self.unclosed_spans,
            "pop": self.pop.to_dict() if self.pop is not None else None,
            "critical_path": (
                self.critical_path.to_dict() if self.critical_path is not None else None
            ),
            "task_graph": (
                self.task_graph.to_dict() if self.task_graph is not None else None
            ),
        }


def analyze_session(
    tel: "Telemetry",
    makespan_s: float,
    counters: "CounterSet | None" = None,
    ideal_time_s: float | None = None,
) -> RunAnalysis:
    """Analyze a finalized telemetry session.

    Called by the driver at run finalization (and usable standalone on any
    session).  Prefers the trace records (full sync/transfer split and a
    timeline critical path); falls back to the hardware ``counters`` for
    compute-only factors when the session carries no trace.
    """
    unclosed = sum(1 for s in tel.spans.all() if s.t_end is None)
    if unclosed:
        warnings.warn(
            f"{unclosed} span(s) still open at run finalization — the span "
            "tree is truncated (crashed or fault-killed task?); analysis "
            "and exports see incomplete intervals",
            RuntimeWarning,
            stacklevel=2,
        )

    timelines = timelines_from_trace(tel.trace)
    if not timelines and counters is not None:
        timelines = timelines_from_counters(counters)
    pop = (
        decompose(timelines, makespan_s, ideal_time_s=ideal_time_s)
        if timelines and makespan_s > 0
        else None
    )

    critical = None
    if tel.trace.compute or tel.trace.mpi:
        critical = critical_path_from_trace(tel.trace, makespan_s)

    graph = _task_graph_analysis(tel)
    return RunAnalysis(
        pop=pop, critical_path=critical, task_graph=graph, unclosed_spans=unclosed
    )


def _task_graph_analysis(tel: "Telemetry") -> GraphCriticalPath | None:
    """CPM over the exported ompss dependency edges (task versions only)."""
    if not tel.trace.tasks:
        return None
    tasks: dict[tuple[int, int], tuple[str, float]] = {}
    for rank, rec in tel.trace.tasks:
        # "pack:('it', 1)" / "fft_z[0:10]" -> task type "pack" / "fft_z".
        kind = rec.name.split("[", 1)[0].split(":", 1)[0].rstrip("0123456789")
        tasks[(rank, rec.tid)] = (kind, rec.duration)
    edges = [
        ((rank, pred), (rank, succ))
        for rank, pred, succ in tel.task_edges
        if (rank, pred) in tasks and (rank, succ) in tasks
    ]
    try:
        return graph_critical_path(tasks, edges)
    except ValueError:
        # A truncated trace (fault-killed run) can expose a malformed
        # subgraph; analysis degrades to "no task view" rather than failing
        # the run summary.
        return None


def analyze_run(
    result: "RunResult", ideal_time_s: float | None = None
) -> RunAnalysis:
    """Analyze a completed :class:`~repro.core.driver.RunResult`."""
    tel = result.telemetry
    if tel is not None and tel.enabled:
        stashed = getattr(tel, "analysis", None)
        if stashed is not None and ideal_time_s is None:
            return stashed
        return analyze_session(
            tel, result.phase_time, result.cpu.counters, ideal_time_s
        )
    timelines = timelines_from_counters(result.cpu.counters)
    pop = (
        decompose(timelines, result.phase_time, ideal_time_s=ideal_time_s)
        if timelines and result.phase_time > 0
        else None
    )
    return RunAnalysis(pop=pop, critical_path=None, task_graph=None, unclosed_spans=0)


# ---------------------------------------------------------------------------
# Manifest-level entry points (the CLI's substrate)


def analyze_manifest(manifest: dict) -> dict:
    """The ``analysis`` section of a run manifest, with context attached.

    Returns ``{"label", "phase_time_s", "analysis"}``.  Raises
    :class:`ValueError` when the manifest predates the analysis section —
    the caller should regenerate it with telemetry enabled.
    """
    section = manifest.get("analysis")
    if section is None:
        raise ValueError(
            "manifest has no 'analysis' section; regenerate it with a "
            "telemetry-enabled run (RunConfig(telemetry=True) or the CLI "
            "run command)"
        )
    return {
        "label": manifest.get("config", {}).get("label", "?"),
        "phase_time_s": manifest.get("timing", {}).get("phase_time_s"),
        "analysis": section,
    }


def analyze_pair(
    baseline: dict, candidate: dict, threshold: float = 0.02
) -> TriageReport:
    """Triage a manifest pair: what regressed and which factor moved."""
    return triage_pair(baseline, candidate, threshold=threshold)


def analyze_sweep(manifest: dict) -> list[dict]:
    """Efficiency series across a sweep manifest's points.

    Returns one row per point (task order) with the POP factors of its
    summary's analysis section; points without one carry ``None`` factors
    (e.g. a custom reducer that drops the manifest).
    """
    rows = []
    for key, entry in manifest.get("points", {}).items():
        summary = entry.get("summary") or {}
        row: dict[str, _t.Any] = {
            "point": key,
            "phase_time_s": entry.get("phase_time_s"),
            "failed": bool(entry.get("failed", False)),
        }
        section = summary.get("analysis") if isinstance(summary, dict) else None
        pop = (section or {}).get("pop")
        if pop:
            row.update(efficiency_summary(pop))
        else:
            row.update(
                {
                    "parallel_efficiency": None,
                    "load_balance": None,
                    "serialization_efficiency": None,
                    "transfer_efficiency": None,
                }
            )
        rows.append(row)
    return rows


#: The four headline factors, in report order.
FACTOR_KEYS = (
    "parallel_efficiency",
    "load_balance",
    "serialization_efficiency",
    "transfer_efficiency",
)


def efficiency_summary(pop: dict) -> dict:
    """The headline factor columns of one ``analysis.pop`` dict."""
    return {k: pop.get(k) for k in FACTOR_KEYS}
