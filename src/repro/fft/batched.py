"""Public FFT API and the FFTXlib compute kernels.

Two families of entry points:

* generic ``fft``/``ifft`` (any axis) and ``fft2``/``ifft2`` (two axes),
  with numpy's normalisation convention (inverse scaled by 1/N) — used by
  tests and by the dense validation reference;
* Quantum ESPRESSO's convention, as FFTXlib uses it:

  - ``invfft``  (G -> R, "backward"/"wave" direction): exponent ``+i``,
    **unscaled**;
  - ``fwfft``  (R -> G, "forward"): exponent ``-i``, scaled by ``1/N``;

  and the two pipeline kernels mirroring ``fft_scalar``:

  - ``cft_1z``: batched 1D transforms along z for a block of sticks laid
    out as ``(nsticks, nz)``;
  - ``cft_2xy``: batched 2D transforms over xy planes laid out as
    ``(nplanes, nx, ny)``.

``sign=+1`` selects the G→R direction in the kernels (QE's convention for
``isign``), ``sign=-1`` the R→G direction with its 1/N scaling folded in.
"""

from __future__ import annotations

import numpy as np

from repro.fft.mixed_radix import fft_last_axis

__all__ = [
    "fft",
    "ifft",
    "fft2",
    "ifft2",
    "fwfft",
    "invfft",
    "cft_1z",
    "cft_2xy",
    "cfft3d",
]


def fft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Unnormalised forward DFT (exponent ``-i``) along ``axis``."""
    return _along_axis(x, axis, sign=-1)


def ifft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse DFT along ``axis`` (exponent ``+i``, scaled by ``1/n``)."""
    n = np.asarray(x).shape[axis]
    return _along_axis(x, axis, sign=+1) / n


def fft2(x: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    """Unnormalised 2D forward DFT over ``axes``."""
    return fft(fft(x, axis=axes[1]), axis=axes[0])


def ifft2(x: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    """2D inverse DFT over ``axes`` (scaled by ``1/(n1*n2)``)."""
    return ifft(ifft(x, axis=axes[1]), axis=axes[0])


def invfft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """QE backward transform (G -> R): exponent ``+i``, unscaled."""
    return _along_axis(x, axis, sign=+1)


def fwfft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """QE forward transform (R -> G): exponent ``-i``, scaled by ``1/n``."""
    n = np.asarray(x).shape[axis]
    return _along_axis(x, axis, sign=-1) / n


def cft_1z(
    sticks: np.ndarray, sign: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Batched 1D z-transforms of a stick block ``(nsticks, nz)``.

    ``sign=+1``: G -> R (unscaled); ``sign=-1``: R -> G (scaled by 1/nz).
    ``out``, when given, receives the result and is returned — the R -> G
    scaling then divides in place (same operation, same bits as the fresh
    quotient).
    """
    sticks = np.asarray(sticks)
    if sticks.ndim != 2:
        raise ValueError(f"cft_1z expects (nsticks, nz), got shape {sticks.shape}")
    _check_sign(sign)
    res = _along_axis(sticks, -1, sign=sign, out=out)
    if sign == -1:
        if out is not None:
            np.divide(res, sticks.shape[-1], out=res)
        else:
            res = res / sticks.shape[-1]
    return res


def cft_2xy(
    planes: np.ndarray, sign: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Batched 2D xy-transforms of a plane block ``(nplanes, nx, ny)``.

    ``sign=+1``: G -> R (unscaled); ``sign=-1``: R -> G (scaled by 1/(nx*ny)).
    ``out``, when given, receives a copy of the result (the two-axis
    composition cannot write its final pass in place); the hot pipeline
    path therefore takes the fresh result instead of passing ``out``.
    """
    planes = np.asarray(planes)
    if planes.ndim != 3:
        raise ValueError(f"cft_2xy expects (nplanes, nx, ny), got shape {planes.shape}")
    _check_sign(sign)
    res = _along_axis(_along_axis(planes, -1, sign=sign), -2, sign=sign)
    if sign == -1:
        res = res / (planes.shape[-1] * planes.shape[-2])
    if out is not None:
        np.copyto(out, res)
        return out
    return res


def cfft3d(field: np.ndarray, sign: int) -> np.ndarray:
    """Full 3D transform of one grid in QE conventions.

    ``sign=+1``: G -> R (unscaled); ``sign=-1``: R -> G (scaled 1/N).
    The single-grid equivalent of the distributed pipeline — the dense
    reference and the Gamma-trick checks are built on it.
    """
    field = np.asarray(field)
    if field.ndim != 3:
        raise ValueError(f"cfft3d expects a 3D grid, got shape {field.shape}")
    _check_sign(sign)
    out = field
    for axis in range(3):
        out = _along_axis(out, axis, sign=sign)
    if sign == -1:
        out = out / field.size
    return out


def _check_sign(sign: int) -> None:
    if sign not in (-1, 1):
        raise ValueError(f"sign must be -1 or +1, got {sign}")


def _along_axis(
    x: np.ndarray, axis: int, sign: int, out: np.ndarray | None = None
) -> np.ndarray:
    x = np.asarray(x, dtype=np.complex128)
    _check_sign(sign)
    if x.ndim == 0:
        raise ValueError("FFT input must have at least one axis")
    axis = axis % x.ndim
    if axis == x.ndim - 1:
        return fft_last_axis(x, sign, out=out)
    moved = np.moveaxis(x, axis, -1)
    res = np.moveaxis(fft_last_axis(np.ascontiguousarray(moved), sign), -1, axis)
    if out is not None:
        np.copyto(out, res)
        return out
    return res
