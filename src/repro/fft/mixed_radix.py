"""Vectorised mixed-radix Cooley–Tukey kernel.

Executes a :class:`~repro.fft.plan.Plan` over the last axis of an arbitrarily
batched complex array.  Decimation in time, derived as:

with ``n = r * m``, input index ``j = j1 * r + s`` and output index
``k = k2 * m + k1``::

    X[k2*m + k1] = sum_s W_r^(s*k2) * ( W_n^(s*k1) * FFT_m(x[s::r])[k1] )

i.e. per level: reshape to ``(..., m, r)``, transpose the residue classes to
the front, recurse on the length-``m`` axis, multiply by the ``(r, m)``
twiddle block, and combine with the small radix-``r`` DFT matrix via
``einsum``.  All heavy lifting is numpy matmul/einsum over the whole batch —
the "vectorise the batch, not the butterfly" idiom for array languages.
"""

from __future__ import annotations

import numpy as np

from repro.fft.plan import Plan, get_plan

__all__ = ["execute_plan", "fft_last_axis"]


def fft_last_axis(x: np.ndarray, sign: int) -> np.ndarray:
    """Unnormalised DFT along the last axis (any batch shape)."""
    x = np.asarray(x)
    if x.ndim < 1:
        raise ValueError("fft_last_axis needs at least one axis")
    n = x.shape[-1]
    plan = get_plan(n, sign)
    return execute_plan(x.astype(np.complex128, copy=False), plan)


def execute_plan(x: np.ndarray, plan: Plan) -> np.ndarray:
    """Run ``plan`` over the last axis of ``x`` (complex input)."""
    if x.shape[-1] != plan.n:
        raise ValueError(f"array last axis {x.shape[-1]} != plan size {plan.n}")
    return _recurse(x, plan, 0)


def _recurse(x: np.ndarray, plan: Plan, level: int) -> np.ndarray:
    if level == len(plan.levels):
        return _base_case(x, plan)
    lvl = plan.levels[level]
    batch = x.shape[:-1]
    # (..., m, r): y[..., j1, s] = x[..., j1*r + s]; move residues in front of
    # the recursion axis.
    y = x.reshape(*batch, lvl.m, lvl.r)
    y = np.swapaxes(y, -1, -2)  # (..., r, m)
    sub = _recurse(y, plan, level + 1)  # FFT_m along last axis
    z = sub * lvl.twiddles  # broadcast (r, m)
    # Combine: X[..., k2, k1] = sum_s D[k2, s] * z[..., s, k1]
    out = np.einsum("ks,...sm->...km", lvl.radix_dft, z, optimize=True)
    return out.reshape(*batch, lvl.n)


def _base_case(x: np.ndarray, plan: Plan) -> np.ndarray:
    if plan.base_matrix is not None:
        if plan.base_n == 1:
            return x
        # X[..., k] = sum_j x[..., j] W[j, k]
        return x @ plan.base_matrix
    # Large prime base: chirp-z. Imported lazily to avoid a module cycle
    # (bluestein itself uses power-of-two plans through this kernel).
    from repro.fft.bluestein import bluestein_last_axis

    return bluestein_last_axis(x, plan.sign)
