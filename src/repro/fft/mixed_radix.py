"""Vectorised mixed-radix Cooley–Tukey kernel.

Executes a :class:`~repro.fft.plan.Plan` over the last axis of an arbitrarily
batched complex array.  Decimation in time, derived as:

with ``n = r * m``, input index ``j = j1 * r + s`` and output index
``k = k2 * m + k1``::

    X[k2*m + k1] = sum_s W_r^(s*k2) * ( W_n^(s*k1) * FFT_m(x[s::r])[k1] )

i.e. per level: reshape to ``(..., m, r)``, transpose the residue classes to
the front, recurse on the length-``m`` axis, multiply by the ``(r, m)``
twiddle block, and combine with the small radix-``r`` DFT matrix via
``einsum``.  All heavy lifting is numpy matmul/einsum over the whole batch —
the "vectorise the batch, not the butterfly" idiom for array languages.
"""

from __future__ import annotations

import numpy as np

from repro.fft.plan import Plan, get_plan

__all__ = ["execute_plan", "fft_last_axis"]

# numpy's einsum executes every two-operand contraction through its (shape-
# cached) batched-matmul helper — after re-parsing the subscripts and path
# on every call.  The combine below is the same contraction every time, so
# dispatch to the helper directly when it exists; per call this skips the
# whole einsum_path/parse layer while running the identical kernel (bit-for-
# bit the einsum result).  Older/newer numpys without the helper fall back
# to einsum with the plan's precomputed contraction path.
try:  # pragma: no cover - exercised implicitly on the pinned numpy
    from numpy._core.einsumfunc import bmm_einsum as _bmm_einsum
except Exception:  # pragma: no cover
    _bmm_einsum = None

_BATCH_LETTERS = "abcdefghij"


def _combine(radix_dft: np.ndarray, z: np.ndarray, path, out=None) -> np.ndarray:
    """``X[..., k, m] = sum_s D[k, s] z[..., s, m]`` (the level combine)."""
    nbatch = z.ndim - 2
    if _bmm_einsum is not None and nbatch <= len(_BATCH_LETTERS):
        # Operand order matters for bit-identity: einsum's path executor
        # contracts this pair as "(z, D)" — mirror it exactly.
        batch = _BATCH_LETTERS[:nbatch]
        return _bmm_einsum(f"{batch}sm,ks->{batch}km", z, radix_dft, out=out)
    if out is not None:
        return np.einsum("ks,...sm->...km", radix_dft, z, optimize=path, out=out)
    return np.einsum("ks,...sm->...km", radix_dft, z, optimize=path)


def fft_last_axis(
    x: np.ndarray, sign: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Unnormalised DFT along the last axis (any batch shape).

    ``out``, when given, receives the result (and is returned) — the outer
    combine writes straight into it, so a caller holding a reusable buffer
    skips the result allocation.  Values are bit-identical either way.
    """
    x = np.asarray(x)
    if x.ndim < 1:
        raise ValueError("fft_last_axis needs at least one axis")
    n = x.shape[-1]
    plan = get_plan(n, sign)
    return execute_plan(x.astype(np.complex128, copy=False), plan, out=out)


def execute_plan(
    x: np.ndarray, plan: Plan, out: np.ndarray | None = None
) -> np.ndarray:
    """Run ``plan`` over the last axis of ``x`` (complex input)."""
    if x.shape[-1] != plan.n:
        raise ValueError(f"array last axis {x.shape[-1]} != plan size {plan.n}")
    if out is not None and not (
        out.shape == x.shape
        and out.dtype == np.complex128
        and out.flags.c_contiguous
    ):
        # The direct-write path needs a reshapeable destination; anything
        # else gets the computed result copied in.
        np.copyto(out, _recurse(x, plan, 0))
        return out
    return _recurse(x, plan, 0, out=out)


def _recurse(
    x: np.ndarray, plan: Plan, level: int, out: np.ndarray | None = None
) -> np.ndarray:
    if level == len(plan.levels):
        return _base_case(x, plan, out=out)
    lvl = plan.levels[level]
    batch = x.shape[:-1]
    # (..., m, r): y[..., j1, s] = x[..., j1*r + s]; move residues in front of
    # the recursion axis.
    y = x.reshape(*batch, lvl.m, lvl.r)
    y = np.swapaxes(y, -1, -2)  # (..., r, m)
    sub = _recurse(y, plan, level + 1)  # FFT_m along last axis
    z = sub * lvl.twiddles  # broadcast (r, m)
    # Combine: X[..., k2, k1] = sum_s D[k2, s] * z[..., s, k1].
    if out is not None:
        _combine(
            lvl.radix_dft, z, lvl.contract_path, out=out.reshape(*batch, lvl.r, lvl.m)
        )
        return out
    res = _combine(lvl.radix_dft, z, lvl.contract_path)
    return res.reshape(*batch, lvl.n)


def _base_case(
    x: np.ndarray, plan: Plan, out: np.ndarray | None = None
) -> np.ndarray:
    if plan.base_matrix is not None:
        if plan.base_n == 1:
            if out is not None:
                np.copyto(out, x)
                return out
            return x
        # X[..., k] = sum_j x[..., j] W[j, k]
        if out is not None:
            return np.matmul(x, plan.base_matrix, out=out)
        return x @ plan.base_matrix
    # Large prime base: chirp-z. Imported lazily to avoid a module cycle
    # (bluestein itself uses power-of-two plans through this kernel).
    from repro.fft.bluestein import bluestein_last_axis

    res = bluestein_last_axis(x, plan.sign)
    if out is not None:
        np.copyto(out, res)
        return out
    return res
