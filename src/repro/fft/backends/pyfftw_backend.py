"""Optional pyFFTW backend (FFTW3 bindings), auto-detected at import.

FFTW is the performance reference of the source paper's era and the
backend the RISC-V FFTW study (PAPERS.md) identifies as the dominant
lever; when ``pyfftw`` is importable this backend plans real FFTW
transforms through the ``pyfftw.interfaces.numpy_fft`` layer with the
plan cache enabled, and passes ``threads=`` for in-library multicore.

When pyfftw is missing (the common case in this container — no new
dependencies are installed) the backend stays registered but reports
unavailable with a reason, the conformance suite skips it visibly, and
selecting it via ``RunConfig.fft_backend`` raises a clean
:class:`~repro.fft.backends.base.BackendUnavailableError`.
"""

from __future__ import annotations

import numpy as np

from repro.fft.backends.base import (
    FftBackend,
    PlanSpec,
    check_input,
    complex_dtype_of,
    deliver,
    real_dtype_of,
)

try:  # gated optional dependency — absent in this container
    import pyfftw
    from pyfftw.interfaces import numpy_fft as _wfft

    pyfftw.interfaces.cache.enable()
    _PYFFTW_NOTE = f"pyfftw {pyfftw.__version__} (FFTW3)"
except ImportError:
    _wfft = None
    _PYFFTW_NOTE = "pyfftw is not installed"

__all__ = ["PyfftwBackend"]


class PyfftwBackend(FftBackend):
    name = "pyfftw"
    supports_workers = True

    def availability(self) -> tuple[bool, str]:
        return _wfft is not None, _PYFFTW_NOTE

    def _plan_aos(self, spec: PlanSpec):  # pragma: no cover - needs pyfftw
        cplx = complex_dtype_of(spec)

        if spec.kind == "rfft":
            rdt = real_dtype_of(spec)

            def exe(x, sign=-1, out=None, workers=None):
                x = np.asarray(x)
                check_input(spec, x, sign)
                res = _wfft.rfft(x.astype(rdt, copy=False), axis=-1, threads=workers or 1)
                return deliver(res, out, cplx)

        elif spec.kind == "c2c_1d":

            def exe(x, sign, out=None, workers=None):
                x = np.asarray(x)
                check_input(spec, x, sign)
                x = x.astype(cplx, copy=False)
                n = spec.shape[-1]
                if sign == 1:
                    # pyfftw ifft is scaled 1/n; QE's +i transform is unscaled.
                    res = _wfft.ifft(x, axis=-1, threads=workers or 1) * n
                else:
                    res = _wfft.fft(x, axis=-1, threads=workers or 1) / n
                return deliver(res, out, cplx)

        else:  # c2c_2d

            def exe(x, sign, out=None, workers=None):
                x = np.asarray(x)
                check_input(spec, x, sign)
                x = x.astype(cplx, copy=False)
                n = spec.shape[-2] * spec.shape[-1]
                if sign == 1:
                    res = _wfft.ifftn(x, axes=(-2, -1), threads=workers or 1) * n
                else:
                    res = _wfft.fftn(x, axes=(-2, -1), threads=workers or 1) / n
                return deliver(res, out, cplx)

        exe.spec = spec
        return exe
