"""Optional scipy.fft backend (threaded pocketfft).

scipy ships the same pocketfft core as numpy but adds a ``workers=``
argument that splits the batch across threads *inside* the C extension —
the cheapest multicore mode when scipy is importable, because no data
crosses a process boundary.  Batch rows are computed independently, so
``workers=N`` output is byte-identical to single-threaded output (pinned
by ``tests/core/test_kernel_workers.py``).

The module import is gated: when scipy is missing the backend reports
unavailable with a reason and the conformance suite skips it cleanly.
"""

from __future__ import annotations

import numpy as np

from repro.fft.backends.base import (
    FftBackend,
    PlanSpec,
    check_input,
    complex_dtype_of,
    deliver,
    real_dtype_of,
)

try:  # gated optional dependency — never a hard import error
    import scipy
    import scipy.fft as _sfft

    _SCIPY_NOTE = f"scipy {scipy.__version__} (pocketfft, workers=)"
except ImportError:  # pragma: no cover - exercised in the numpy-only CI env
    _sfft = None
    _SCIPY_NOTE = "scipy is not installed"

__all__ = ["ScipyBackend"]


class ScipyBackend(FftBackend):
    name = "scipy"
    supports_workers = True

    def availability(self) -> tuple[bool, str]:
        return _sfft is not None, _SCIPY_NOTE

    def _plan_aos(self, spec: PlanSpec):
        cplx = complex_dtype_of(spec)

        if spec.kind == "rfft":
            rdt = real_dtype_of(spec)

            def exe(x, sign=-1, out=None, workers=None):
                x = np.asarray(x)
                check_input(spec, x, sign)
                res = _sfft.rfft(x.astype(rdt, copy=False), axis=-1, workers=workers)
                return deliver(res, out, cplx)

        elif spec.kind == "c2c_1d":

            def exe(x, sign, out=None, workers=None):
                x = np.asarray(x)
                check_input(spec, x, sign)
                x = x.astype(cplx, copy=False)
                if sign == 1:
                    res = _sfft.ifft(x, axis=-1, norm="forward", workers=workers)
                else:
                    res = _sfft.fft(x, axis=-1, norm="forward", workers=workers)
                return deliver(res, out, cplx)

        else:  # c2c_2d

            def exe(x, sign, out=None, workers=None):
                x = np.asarray(x)
                check_input(spec, x, sign)
                x = x.astype(cplx, copy=False)
                if sign == 1:
                    res = _sfft.ifftn(x, axes=(-2, -1), norm="forward", workers=workers)
                else:
                    res = _sfft.fftn(x, axes=(-2, -1), norm="forward", workers=workers)
                return deliver(res, out, cplx)

        exe.spec = spec
        return exe
