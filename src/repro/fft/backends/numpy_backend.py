"""The default backend: numpy's bundled pocketfft.

Mapping QE conventions onto numpy's ``norm="forward"`` mode:

* ``sign=+1`` (G→R, exponent ``+i``, unscaled) is ``np.fft.ifft(..,
  norm="forward")`` — forward-norm puts the ``1/n`` on the *forward*
  transform, leaving the inverse unscaled.
* ``sign=-1`` (R→G, exponent ``-i``, scaled ``1/n``) is ``np.fft.fft(..,
  norm="forward")``.

pocketfft preserves ``complex64`` end to end, so the single-precision
conformance lane exercises a genuine single-precision kernel.  numpy has
no ``workers=`` knob — multicore execution for this backend goes through
the shared-memory process pool (``repro.fft.backends.pool``), which is
byte-deterministic because pocketfft computes batch rows independently.
"""

from __future__ import annotations

import numpy as np

from repro.fft.backends.base import (
    FftBackend,
    PlanSpec,
    check_input,
    complex_dtype_of,
    deliver,
    real_dtype_of,
)

__all__ = ["NumpyBackend"]


class NumpyBackend(FftBackend):
    name = "numpy"
    supports_workers = False

    def availability(self) -> tuple[bool, str]:
        return True, f"numpy {np.__version__} (pocketfft)"

    def _plan_aos(self, spec: PlanSpec):
        cplx = complex_dtype_of(spec)

        if spec.kind == "rfft":
            rdt = real_dtype_of(spec)

            def exe(x, sign=-1, out=None, workers=None):
                x = np.asarray(x)
                check_input(spec, x, sign)
                res = np.fft.rfft(x.astype(rdt, copy=False), axis=-1)
                return deliver(res, out, cplx)

        elif spec.kind == "c2c_1d":

            def exe(x, sign, out=None, workers=None):
                x = np.asarray(x)
                check_input(spec, x, sign)
                x = x.astype(cplx, copy=False)
                if sign == 1:
                    res = np.fft.ifft(x, axis=-1, norm="forward")
                else:
                    res = np.fft.fft(x, axis=-1, norm="forward")
                return deliver(res, out, cplx)

        else:  # c2c_2d

            def exe(x, sign, out=None, workers=None):
                x = np.asarray(x)
                check_input(spec, x, sign)
                x = x.astype(cplx, copy=False)
                if sign == 1:
                    res = np.fft.ifftn(x, axes=(-2, -1), norm="forward")
                else:
                    res = np.fft.fftn(x, axes=(-2, -1), norm="forward")
                return deliver(res, out, cplx)

        exe.spec = spec
        return exe
