"""Structure-of-arrays (planar) layout adapter for FFT backends.

SoA keeps real and imaginary parts in separate contiguous planes — a float
array of shape ``(2,) + shape`` where ``x[0]`` is the real plane and
``x[1]`` the imaginary plane.  The batched layout study referenced in
SNIPPETS.md (FFT-Optimization-Research) finds planar layouts win on
batched strided transforms on wide-vector hardware because the
real/imaginary streams vectorize without de-interleaving shuffles; on
commodity hardware with pocketfft the AoS path usually wins.  The
microbenchmark in ``benchmarks/test_bench_fft_backends.py`` measures both
so the choice stays data-driven per host.

The adapter stages planar input into an interleaved complex scratch
buffer, runs the backend's AoS executable, and unpacks the result back to
planes.  Staging buffers can come from a workspace arena (keyed with
``layout="soa"`` so they never alias the AoS pools — the PR 8 arena-key
fix) or are allocated fresh.
"""

from __future__ import annotations

import numpy as np

from repro.fft.backends.base import (
    PlanSpec,
    check_input,
    complex_dtype_of,
    real_dtype_of,
    result_shape,
)

__all__ = ["to_soa", "from_soa", "wrap_soa"]


def to_soa(x: np.ndarray) -> np.ndarray:
    """Interleaved complex ``shape`` → planar float ``(2,) + shape``."""
    x = np.asarray(x)
    out = np.empty((2,) + x.shape, dtype=x.real.dtype)
    out[0] = x.real
    out[1] = x.imag
    return out


def from_soa(planes: np.ndarray) -> np.ndarray:
    """Planar float ``(2,) + shape`` → interleaved complex ``shape``."""
    planes = np.asarray(planes)
    if planes.ndim < 1 or planes.shape[0] != 2:
        raise ValueError(f"SoA array must have a leading plane axis of 2, got {planes.shape}")
    cplx = np.dtype("complex64") if planes.dtype == np.float32 else np.dtype("complex128")
    out = np.empty(planes.shape[1:], dtype=cplx)
    out.real = planes[0]
    out.imag = planes[1]
    return out


def wrap_soa(aos_exe, spec: PlanSpec):
    """Wrap an AoS executable into the planar calling convention of ``spec``.

    The returned executable takes planar input (``(2,) + shape`` floats;
    plain real ``shape`` for rfft), produces planar output, and accepts an
    optional planar ``out=``.  An optional ``scratch=`` keyword lets the
    engine pass an arena-checked-out interleaved staging buffer so the hot
    path stays allocation-free.
    """
    cplx = complex_dtype_of(spec)
    rdt = real_dtype_of(spec)
    out_shape = (2,) + result_shape(spec)

    def exe(x, sign, out=None, workers=None, scratch=None):
        x = np.asarray(x)
        check_input(spec, x, sign)
        if spec.kind == "rfft":
            aos_in = np.ascontiguousarray(x, dtype=rdt)
        else:
            if scratch is None:
                scratch = np.empty(spec.shape, dtype=cplx)
            elif scratch.shape != spec.shape or scratch.dtype != cplx:
                raise ValueError(
                    f"SoA scratch must be {spec.shape} {cplx}, "
                    f"got {scratch.shape} {scratch.dtype}"
                )
            scratch.real = x[0]
            scratch.imag = x[1]
            aos_in = scratch
        res = aos_exe(aos_in, sign, workers=workers)
        if out is None:
            out = np.empty(out_shape, dtype=rdt)
        elif tuple(out.shape) != out_shape:
            raise ValueError(f"SoA out must have shape {out_shape}, got {tuple(out.shape)}")
        out[0] = res.real
        out[1] = res.imag
        return out

    exe.spec = spec
    return exe
