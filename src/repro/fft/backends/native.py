"""The repo's own mixed-radix Cooley–Tukey kernels as a backend.

This wraps the pure-python/einsum kernel plane (`repro.fft.batched`,
`repro.fft.realfft`) behind the backend interface, so the reproduction's
original kernels remain selectable (``fft_backend="native"``) and are held
to the same differential-conformance bar as the external libraries.  For
``complex128`` the executables delegate straight to
:func:`~repro.fft.batched.cft_1z` / :func:`~repro.fft.batched.cft_2xy`, so
selecting ``native`` is bit-identical to the pre-backend-plane data plane.
The native kernels always compute in double precision; ``complex64`` specs
compute in double and cast the delivered result, which conformance checks
at the single-precision tolerance.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.fft.backends.base import (
    FftBackend,
    PlanSpec,
    check_input,
    complex_dtype_of,
    deliver,
)
from repro.fft.batched import cft_1z, cft_2xy
from repro.fft.realfft import rfft as native_rfft

__all__ = ["NativeBackend"]


class NativeBackend(FftBackend):
    name = "native"
    supports_workers = False

    def availability(self) -> tuple[bool, str]:
        version = getattr(repro, "__version__", "dev")
        return True, f"repro {version} mixed-radix (einsum)"

    def _plan_aos(self, spec: PlanSpec):
        cplx = complex_dtype_of(spec)

        if spec.kind == "rfft":
            if spec.shape[-1] % 2 != 0:
                raise ValueError(
                    f"native rfft requires an even transform length, got {spec.shape[-1]}"
                )

            def exe(x, sign=-1, out=None, workers=None):
                x = np.asarray(x)
                check_input(spec, x, sign)
                res = native_rfft(np.asarray(x, dtype=np.float64))
                return deliver(res, out, cplx)

        elif spec.kind == "c2c_1d":

            def exe(x, sign, out=None, workers=None):
                x = np.asarray(x)
                check_input(spec, x, sign)
                if cplx == np.dtype("complex128"):
                    return cft_1z(x, sign, out=out)
                return deliver(cft_1z(x.astype(np.complex128), sign), out, cplx)

        else:  # c2c_2d

            def exe(x, sign, out=None, workers=None):
                x = np.asarray(x)
                check_input(spec, x, sign)
                if cplx == np.dtype("complex128"):
                    return cft_2xy(x, sign, out=out)
                return deliver(cft_2xy(x.astype(np.complex128), sign), out, cplx)

        exe.spec = spec
        return exe
