"""Shared-memory process pool: true multicore for non-threaded backends.

numpy's pocketfft has no ``workers=`` knob and the GIL serialises python
threads, so the only way to put a batched kernel on N real cores with the
default backend is N processes.  This pool makes that cheap enough for the
per-band batches of the data plane:

* **persistent workers** — forked once, reused across bands, so the
  per-call cost is a pipe message, not a process spawn;
* **anonymous shared mappings** — input and output travel through
  ``mmap.mmap(-1, size)`` (``MAP_SHARED | MAP_ANONYMOUS``) segments that
  the workers inherit through ``fork``, so rows are never pickled and
  there are no named segments to track or leak (this deliberately avoids
  ``multiprocessing.shared_memory``, whose resource tracker misattributes
  ownership across fork).  Workers write their output rows straight into
  the shared segment; the parent copies once into the caller's
  (arena-backed) ``out=`` buffer.  A batch that outgrows the segments
  restarts the workers on larger ones — capacity is monotone per pool, so
  steady state never restarts;
* **contiguous row chunks** — worker *i* computes rows ``[r0_i, r1_i)``
  of the batch with its own cached backend plan.  pocketfft computes batch
  rows independently, so the chunked result is byte-identical to the
  single-process result regardless of worker count (pinned by
  ``tests/core/test_kernel_workers.py``).

A worker dying mid-band (OOM-killed, segfault, ``kill -9`` — the real
process analogue of the ``repro.faults`` task-kill machinery) must surface
as a clean error, never a hang: every receive polls with a deadline while
checking ``Process.is_alive``, and any dead/wedged worker raises
:class:`KernelPoolError` and marks the pool broken so the shared-pool
cache replaces it on next use.  A worker that merely *reports* a task
failure (bad spec for its backend) stays healthy: the reply protocol is
drained and the pool keeps serving.
"""

from __future__ import annotations

import atexit
import mmap
import multiprocessing as mp
import traceback

import numpy as np

from repro.fft.backends.base import PlanSpec, result_shape

__all__ = ["KernelPool", "KernelPoolError", "shared_pool", "close_shared_pools"]

#: Seconds a receive may poll before a live-but-silent worker is declared
#: wedged.  Generous: real bands finish in milliseconds.
_RECV_TIMEOUT_S = 60.0
_POLL_STEP_S = 0.05

#: Initial size of each shared segment; grown (with a worker restart) the
#: first time a batch needs more.
_INITIAL_SEGMENT_BYTES = 1 << 20


class KernelPoolError(RuntimeError):
    """A pool worker died or failed mid-band."""


def _worker_main(conn, mm_in, mm_out) -> None:
    """Worker loop: receive a row-chunk task, transform it, acknowledge."""
    from repro.fft.backends.registry import get_backend

    plans: dict = {}
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        try:
            spec = PlanSpec(task["kind"], task["shape"], task["dtype"])
            r0, r1 = task["rows"]
            dt = np.dtype(spec.dtype)
            count = int(np.prod(spec.shape))
            full = np.frombuffer(mm_in, dtype=dt, count=count).reshape(spec.shape)
            out_shape = result_shape(spec)
            out_dt = np.dtype(task["out_dtype"])
            out_count = int(np.prod(out_shape))
            full_out = np.frombuffer(mm_out, dtype=out_dt, count=out_count).reshape(
                out_shape
            )
            key = (task["backend"], spec.kind, (r1 - r0,) + spec.shape[1:], spec.dtype)
            exe = plans.get(key)
            if exe is None:
                exe = get_backend(task["backend"]).plan(spec.kind, key[2], dtype=spec.dtype)
                plans[key] = exe
            exe(full[r0:r1], task["sign"], out=full_out[r0:r1])
            conn.send(("ok", r0, r1))
        except Exception:
            try:
                conn.send(("err", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break


class KernelPool:
    """N persistent forked workers around two anonymous shared mappings."""

    def __init__(self, workers: int):
        if workers < 2:
            raise ValueError(f"KernelPool needs >= 2 workers, got {workers}")
        self.workers = int(workers)
        self.broken = False
        self._in_bytes = _INITIAL_SEGMENT_BYTES
        self._out_bytes = _INITIAL_SEGMENT_BYTES
        self._mm_in: mmap.mmap | None = None
        self._mm_out: mmap.mmap | None = None
        self._procs: list = []
        self._conns: list = []
        # Batches fanned out and total rows computed, for dataplane gauges.
        self.batches = 0
        self.rows = 0
        self._start()

    # -- lifecycle ----------------------------------------------------------

    def _start(self) -> None:
        """Map the segments and fork the workers (they inherit the maps)."""
        self._mm_in = mmap.mmap(-1, self._in_bytes)
        self._mm_out = mmap.mmap(-1, self._out_bytes)
        ctx = mp.get_context("fork")
        for _ in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, self._mm_in, self._mm_out),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def _stop_workers(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs = []
        self._conns = []

    def close(self) -> None:
        """Terminate workers and release the mappings (idempotent)."""
        self._stop_workers()
        for attr in ("_mm_in", "_mm_out"):
            mm = getattr(self, attr)
            if mm is not None:
                try:
                    mm.close()
                except BufferError:
                    # A numpy view into the map is still alive (e.g. held by
                    # the traceback of the error that triggered this close).
                    # Anonymous maps have no name to unlink — dropping the
                    # reference lets GC reclaim once the views die.
                    pass
                setattr(self, attr, None)

    def _ensure_capacity(self, in_bytes: int, out_bytes: int) -> None:
        """Restart on larger segments when a batch outgrows the current ones.

        Forked children keep the *old* mappings alive until they exit, so
        growth must recycle the workers too; capacity only ever grows, so a
        steady-state workload pays this once.
        """
        if in_bytes <= self._in_bytes and out_bytes <= self._out_bytes:
            return
        self._in_bytes = max(self._in_bytes, in_bytes)
        self._out_bytes = max(self._out_bytes, out_bytes)
        self.close()
        self._start()

    def worker_pids(self) -> list[int]:
        return [p.pid for p in self._procs]

    # -- execution ----------------------------------------------------------

    def _recv(self, idx: int):
        conn, proc = self._conns[idx], self._procs[idx]
        waited = 0.0
        while waited < _RECV_TIMEOUT_S:
            if conn.poll(_POLL_STEP_S):
                try:
                    return conn.recv()
                except (EOFError, OSError):
                    raise KernelPoolError(
                        f"kernel pool worker pid={proc.pid} died mid-band "
                        f"(connection closed)"
                    ) from None
            if not proc.is_alive():
                raise KernelPoolError(
                    f"kernel pool worker pid={proc.pid} died mid-band "
                    f"(exitcode={proc.exitcode})"
                )
            waited += _POLL_STEP_S
        raise KernelPoolError(
            f"kernel pool worker pid={proc.pid} unresponsive after "
            f"{_RECV_TIMEOUT_S:.0f}s"
        )

    def run(self, backend: str, kind: str, x: np.ndarray, sign: int, out=None):
        """Fan one batched transform across the workers by row chunks."""
        if self.broken:
            raise KernelPoolError("kernel pool is broken (a worker died earlier)")
        x = np.ascontiguousarray(x)
        spec = PlanSpec(kind, x.shape, x.dtype.name)
        out_shape = result_shape(spec)
        out_dt = np.dtype(spec.dtype)
        out_nbytes = int(np.prod(out_shape)) * out_dt.itemsize
        self._ensure_capacity(x.nbytes, out_nbytes)

        view_in = np.frombuffer(self._mm_in, dtype=x.dtype, count=x.size).reshape(
            spec.shape
        )
        np.copyto(view_in, x)
        view_out = np.frombuffer(
            self._mm_out, dtype=out_dt, count=int(np.prod(out_shape))
        ).reshape(out_shape)

        nrows = spec.shape[0]
        bounds = np.linspace(0, nrows, self.workers + 1).astype(int)
        active = []
        try:
            for i in range(self.workers):
                r0, r1 = int(bounds[i]), int(bounds[i + 1])
                if r1 <= r0:
                    continue
                self._conns[i].send(
                    {
                        "backend": backend,
                        "kind": kind,
                        "shape": spec.shape,
                        "dtype": spec.dtype,
                        "out_dtype": out_dt.name,
                        "rows": (r0, r1),
                        "sign": sign,
                    }
                )
                active.append(i)
            # Drain every reply before judging the batch, so a task-level
            # failure in one worker leaves no reply queued to desync the
            # next batch's protocol.
            replies = [(i, self._recv(i)) for i in active]
        except KernelPoolError:
            # A dead/wedged worker: the pool cannot be trusted again.
            self.broken = True
            self.close()
            raise
        except (BrokenPipeError, OSError) as exc:
            self.broken = True
            self.close()
            raise KernelPoolError(f"kernel pool worker pipe broke: {exc}") from exc
        failures = [(i, r) for i, r in replies if r[0] != "ok"]
        if failures:
            # The workers are alive and the protocol is drained — a bad
            # *task* (e.g. an invalid spec for one backend) is the caller's
            # error and must not condemn the pool.
            i, reply = failures[0]
            raise KernelPoolError(
                f"kernel pool worker pid={self._procs[i].pid} failed:\n{reply[1]}"
            )

        self.batches += 1
        self.rows += nrows
        if out is not None:
            np.copyto(out, view_out)
            return out
        return view_out.copy()


_SHARED: dict[int, KernelPool] = {}


def shared_pool(workers: int) -> KernelPool:
    """Process-wide pool cache, one per worker count; broken pools replaced."""
    pool = _SHARED.get(workers)
    if pool is None or pool.broken:
        pool = KernelPool(workers)
        _SHARED[workers] = pool
    return pool


def close_shared_pools() -> None:
    for pool in _SHARED.values():
        pool.close()
    _SHARED.clear()


atexit.register(close_shared_pools)
