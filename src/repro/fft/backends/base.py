"""The backend interface of the pluggable kernel plane.

A *backend* turns a :class:`PlanSpec` — transform kind, batched shape,
dtype, memory layout — into an *executable*: a callable
``exe(x, sign, out=None, workers=None)`` that runs the batched transform in
Quantum ESPRESSO's conventions (the same conventions as
:func:`repro.fft.batched.cft_1z` / :func:`~repro.fft.batched.cft_2xy`):

``c2c_1d``
    Batched 1D transforms along the last axis of ``(nbatch, n)``.
    ``sign=+1`` is the G→R direction (exponent ``+i``, unscaled);
    ``sign=-1`` is R→G (exponent ``-i``, scaled by ``1/n``).
``c2c_2d``
    Batched 2D transforms over the last two axes of ``(nbatch, nx, ny)``;
    ``sign=-1`` scales by ``1/(nx*ny)``.
``rfft``
    Batched unnormalised forward DFT of *real* input ``(nbatch, n)``
    returning the ``n//2 + 1`` non-redundant coefficients
    (``numpy.fft.rfft`` convention).  Only ``sign=-1`` is meaningful.

Two memory layouts are supported.  ``aos`` (array-of-structures) is the
ordinary interleaved complex ndarray.  ``soa`` (structure-of-arrays) keeps
real and imaginary parts in separate planes — a float array of shape
``(2,) + shape`` with ``x[0]`` the real plane and ``x[1]`` the imaginary
plane (for ``rfft`` the *input* is already real/planar, so only the output
is planar).  The layout study referenced in SNIPPETS.md motivates offering
both: batched strided transforms can prefer either depending on the
hardware's gather/scatter cost.

Every backend must be *numerically conformant*: its executables must match
the pocketfft reference to :data:`CONFORMANCE_RTOL`/:data:`CONFORMANCE_ATOL`
per dtype — pinned by ``tests/fft/test_backend_conformance.py``, which is
what makes swapping kernels under the reproduction safe.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

__all__ = [
    "KINDS",
    "LAYOUTS",
    "CONFORMANCE_RTOL",
    "CONFORMANCE_ATOL",
    "BackendUnavailableError",
    "PlanSpec",
    "FftBackend",
    "complex_dtype_of",
    "real_dtype_of",
    "result_shape",
    "check_input",
    "deliver",
]

#: Transform kinds every backend provides.
KINDS: tuple[str, ...] = ("c2c_1d", "c2c_2d", "rfft")

#: Supported memory layouts (see module docstring).
LAYOUTS: tuple[str, ...] = ("aos", "soa")

#: Differential-conformance tolerances versus the pocketfft reference,
#: keyed by the *complex* working dtype.  Double precision agrees to a few
#: ulps across implementations; single precision carries its own rounding.
CONFORMANCE_RTOL: dict[str, float] = {"complex128": 1e-12, "complex64": 3e-5}
CONFORMANCE_ATOL: dict[str, float] = {"complex128": 1e-13, "complex64": 1e-4}


class BackendUnavailableError(ValueError):
    """A known backend cannot run here (its library is not importable)."""


#: dtype families per kind: c2c kinds take complex input, rfft real input.
_C2C_DTYPES = ("complex128", "complex64")
_RFFT_DTYPES = ("float64", "float32")

_NDIM = {"c2c_1d": 2, "c2c_2d": 3, "rfft": 2}


@dataclasses.dataclass(frozen=True)
class PlanSpec:
    """One plan request: kind + logical (AoS) batched shape + dtype + layout.

    ``shape`` is always the *logical* batch shape — ``(nbatch, n)`` or
    ``(nbatch, nx, ny)`` — never including the SoA plane axis; ``dtype`` is
    the *input* dtype string (complex for c2c kinds, real for rfft).
    """

    kind: str
    shape: tuple[int, ...]
    dtype: str
    layout: str = "aos"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown transform kind {self.kind!r}; choose from {KINDS}")
        if self.layout not in LAYOUTS:
            raise ValueError(f"unknown layout {self.layout!r}; choose from {LAYOUTS}")
        shape = tuple(int(s) for s in self.shape)
        object.__setattr__(self, "shape", shape)
        if len(shape) != _NDIM[self.kind] or any(s < 1 for s in shape):
            raise ValueError(
                f"{self.kind} expects a batched shape of {_NDIM[self.kind]} "
                f"positive axes, got {shape}"
            )
        dtype = np.dtype(self.dtype).name
        object.__setattr__(self, "dtype", dtype)
        allowed = _RFFT_DTYPES if self.kind == "rfft" else _C2C_DTYPES
        if dtype not in allowed:
            raise ValueError(f"{self.kind} supports dtypes {allowed}, got {dtype!r}")

    @property
    def scale_axes(self) -> tuple[int, ...]:
        """Transform axes (of the logical shape) whose product scales R→G."""
        return (-2, -1) if self.kind == "c2c_2d" else (-1,)


def complex_dtype_of(spec: PlanSpec) -> np.dtype:
    """The complex working/output dtype of a spec (c64 for single precision)."""
    return np.dtype(
        "complex64" if spec.dtype in ("complex64", "float32") else "complex128"
    )


def real_dtype_of(spec: PlanSpec) -> np.dtype:
    """The real plane dtype of a spec's SoA representation."""
    return np.dtype(
        "float32" if spec.dtype in ("complex64", "float32") else "float64"
    )


def result_shape(spec: PlanSpec) -> tuple[int, ...]:
    """Logical (AoS) output shape: input shape except rfft's halved last axis."""
    if spec.kind == "rfft":
        return spec.shape[:-1] + (spec.shape[-1] // 2 + 1,)
    return spec.shape


def check_input(spec: PlanSpec, x: np.ndarray, sign: int) -> None:
    """Validate one executable call against its spec (shape, dtype, sign)."""
    if spec.kind == "rfft":
        if sign != -1:
            raise ValueError(f"rfft is a forward transform; sign must be -1, got {sign}")
    elif sign not in (-1, 1):
        raise ValueError(f"sign must be -1 or +1, got {sign}")
    expect = spec.shape
    if spec.layout == "soa" and spec.kind != "rfft":
        expect = (2,) + expect
    if tuple(x.shape) != expect:
        raise ValueError(
            f"{spec.kind}/{spec.layout} executable planned for shape {expect}, "
            f"got {tuple(x.shape)}"
        )


def deliver(res: np.ndarray, out: np.ndarray | None, dtype: np.dtype) -> np.ndarray:
    """Finish one executable call: cast to the spec dtype, honour ``out``.

    The result is always *computed* first and then copied — so the values a
    caller receives are bit-identical whether or not it supplied ``out``
    (the contract the data plane's arena identity tests rely on).
    """
    res = np.asarray(res)
    if res.dtype != dtype:
        res = res.astype(dtype)
    if out is not None:
        np.copyto(out, res)
        return out
    return res


class FftBackend(abc.ABC):
    """One kernel provider (numpy pocketfft, scipy, pyFFTW, native, ...)."""

    #: Registry name (also the ``RunConfig.fft_backend`` value selecting it).
    name: str = "?"
    #: Whether the backend's executables accept a ``workers=N`` argument
    #: that runs the batch on N threads *inside* the library.  When false,
    #: the engine's multicore mode uses the shared-memory process pool.
    supports_workers: bool = False

    @abc.abstractmethod
    def availability(self) -> tuple[bool, str]:
        """``(available, note)`` — note is a version string or skip reason."""

    @abc.abstractmethod
    def _plan_aos(self, spec: PlanSpec):
        """Build the AoS executable for a (validated, available) spec."""

    def plan(self, kind: str, shape: tuple, dtype=np.complex128, layout: str = "aos"):
        """An executable ``exe(x, sign, out=None, workers=None)`` for the spec.

        Raises :class:`BackendUnavailableError` when the backing library is
        not importable here, and ``ValueError`` for malformed specs.
        """
        spec = PlanSpec(kind, tuple(shape), np.dtype(dtype).name, layout)
        available, note = self.availability()
        if not available:
            raise BackendUnavailableError(
                f"fft backend {self.name!r} is not available: {note}"
            )
        if spec.layout == "soa":
            from repro.fft.backends.soa import wrap_soa

            aos = self._plan_aos(dataclasses.replace(spec, layout="aos"))
            return wrap_soa(aos, spec)
        return self._plan_aos(spec)

    def describe(self) -> dict:
        """Registry/CLI row: name, availability, capabilities."""
        available, note = self.availability()
        return {
            "name": self.name,
            "available": available,
            "note": note,
            "kinds": list(KINDS),
            "layouts": list(LAYOUTS),
            "supports_workers": self.supports_workers,
        }
