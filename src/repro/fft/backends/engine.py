"""The kernel engine: what the data plane actually calls.

One :class:`KernelEngine` is built per run from ``RunConfig.fft_backend``
and ``RunConfig.kernel_workers``; the pipeline's FFT steps call its
:meth:`cft_1z` / :meth:`cft_2xy` / :meth:`rfft` instead of importing the
kernels directly.  The engine caches backend executables per
``(kind, shape, dtype, layout)`` — band after band hits a ready plan —
and decides how a call goes multicore:

* ``workers == 1``: plain single-threaded executable (the default; output
  byte-identical to the pre-backend-plane data plane with
  ``fft_backend="native"``, and to plain ``np.fft`` with ``"numpy"``).
* ``workers > 1`` and the backend threads internally (scipy, pyFFTW):
  pass ``workers=`` straight into the executable — zero-copy multicore.
* ``workers > 1`` otherwise (numpy, native): fan row chunks across the
  shared-memory process pool for the c2c kinds.  Sub-batch transforms are
  row-independent for pocketfft, so the result is byte-identical to
  ``workers=1`` (pinned by ``tests/core/test_kernel_workers.py``).

Call and row counters feed the ``dataplane.*`` telemetry gauges through
:meth:`stats`.
"""

from __future__ import annotations

import numpy as np

from repro.fft.backends.base import FftBackend
from repro.fft.backends.registry import DEFAULT_BACKEND, get_backend

__all__ = ["KernelEngine", "default_engine"]

#: Don't fan a batch to processes below this many rows — the pipe/copy
#: overhead swamps the kernel for tiny batches.
_MIN_POOL_ROWS = 2


class KernelEngine:
    """Per-run facade over one backend + one multicore strategy."""

    def __init__(self, backend: str = DEFAULT_BACKEND, workers: int = 1):
        if workers < 1:
            raise ValueError(f"kernel_workers must be >= 1, got {workers}")
        self.backend: FftBackend = get_backend(backend)
        self.workers = int(workers)
        self._plans: dict = {}
        self.kernel_calls = 0
        self.kernel_rows = 0
        self.pool_batches = 0
        self.pool_rows = 0

    # -- planning -----------------------------------------------------------

    def plan(self, kind: str, shape, dtype=np.complex128, layout: str = "aos"):
        """Cached backend executable for the spec (also the public API)."""
        key = (kind, tuple(shape), np.dtype(dtype).name, layout)
        exe = self._plans.get(key)
        if exe is None:
            exe = self.backend.plan(kind, tuple(shape), dtype=dtype, layout=layout)
            self._plans[key] = exe
        return exe

    # -- execution ----------------------------------------------------------

    def _run_c2c(self, kind: str, x: np.ndarray, sign: int, out):
        self.kernel_calls += 1
        self.kernel_rows += x.shape[0]
        if self.workers > 1:
            if self.backend.supports_workers:
                exe = self.plan(kind, x.shape, dtype=x.dtype)
                return exe(x, sign, out=out, workers=self.workers)
            if x.shape[0] >= _MIN_POOL_ROWS:
                from repro.fft.backends.pool import shared_pool

                pool = shared_pool(self.workers)
                res = pool.run(self.backend.name, kind, x, sign, out=out)
                self.pool_batches += 1
                self.pool_rows += x.shape[0]
                return res
        exe = self.plan(kind, x.shape, dtype=x.dtype)
        return exe(x, sign, out=out)

    def cft_1z(self, sticks: np.ndarray, sign: int, out=None) -> np.ndarray:
        """Batched 1D transforms along z: ``(nsticks, nz)``, QE conventions."""
        sticks = np.asarray(sticks)
        if sticks.ndim != 2:
            raise ValueError(f"cft_1z expects (nsticks, nz), got shape {sticks.shape}")
        if not np.issubdtype(sticks.dtype, np.complexfloating):
            sticks = sticks.astype(np.complex128)
        return self._run_c2c("c2c_1d", sticks, sign, out)

    def cft_2xy(self, planes: np.ndarray, sign: int, out=None) -> np.ndarray:
        """Batched 2D transforms: ``(nplanes, nx, ny)``, QE conventions."""
        planes = np.asarray(planes)
        if planes.ndim != 3:
            raise ValueError(f"cft_2xy expects (nplanes, nx, ny), got shape {planes.shape}")
        if not np.issubdtype(planes.dtype, np.complexfloating):
            planes = planes.astype(np.complex128)
        return self._run_c2c("c2c_2d", planes, sign, out)

    def rfft(self, x: np.ndarray, out=None) -> np.ndarray:
        """Batched real-input forward DFT along the last axis."""
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"rfft expects (nbatch, n), got shape {x.shape}")
        if not np.issubdtype(x.dtype, np.floating):
            x = x.astype(np.float64)
        self.kernel_calls += 1
        self.kernel_rows += x.shape[0]
        exe = self.plan("rfft", x.shape, dtype=x.dtype)
        workers = self.workers if self.backend.supports_workers and self.workers > 1 else None
        return exe(x, -1, out=out, workers=workers)

    # -- telemetry ----------------------------------------------------------

    def stats(self) -> dict:
        """Counters merged into the run's ``dataplane`` manifest section."""
        return {
            "kernel_backend": self.backend.name,
            "kernel_workers": self.workers,
            "kernel_calls": self.kernel_calls,
            "kernel_rows": self.kernel_rows,
            "kernel_pool_batches": self.pool_batches,
            "kernel_pool_rows": self.pool_rows,
        }


_DEFAULT: KernelEngine | None = None


def default_engine() -> KernelEngine:
    """Process-wide single-threaded default-backend engine.

    Used by contexts constructed without an explicit engine (unit tests,
    ad-hoc pipeline steps) so kernel routing never needs a None check.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = KernelEngine(DEFAULT_BACKEND, workers=1)
    return _DEFAULT
