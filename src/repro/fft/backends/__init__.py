"""Pluggable FFT backend plane (PR 8).

Public surface:

* :class:`~repro.fft.backends.base.FftBackend` / ``plan(kind, shape,
  dtype, layout)`` — the backend interface (``c2c_1d``/``c2c_2d``/``rfft``
  × AoS/SoA × complex64/complex128, QE sign/scaling conventions).
* :func:`~repro.fft.backends.registry.get_backend` /
  ``available_backends`` / ``backend_info`` — discovery (numpy default,
  scipy/pyFFTW auto-detected, native mixed-radix).
* :class:`~repro.fft.backends.engine.KernelEngine` — the per-run facade
  the executors call, with plan caching and multicore fan-out.
* :class:`~repro.fft.backends.pool.KernelPool` — shared-memory process
  pool behind ``kernel_workers>1`` for backends without internal threads.

Every backend is held numerically equivalent to the pocketfft reference by
``tests/fft/test_backend_conformance.py``.
"""

from repro.fft.backends.base import (
    CONFORMANCE_ATOL,
    CONFORMANCE_RTOL,
    KINDS,
    LAYOUTS,
    BackendUnavailableError,
    FftBackend,
    PlanSpec,
)
from repro.fft.backends.engine import KernelEngine, default_engine
from repro.fft.backends.pool import KernelPool, KernelPoolError, shared_pool
from repro.fft.backends.registry import (
    DEFAULT_BACKEND,
    available_backends,
    backend_info,
    get_backend,
    known_backends,
)
from repro.fft.backends.soa import from_soa, to_soa

__all__ = [
    "KINDS",
    "LAYOUTS",
    "CONFORMANCE_RTOL",
    "CONFORMANCE_ATOL",
    "BackendUnavailableError",
    "FftBackend",
    "PlanSpec",
    "KernelEngine",
    "default_engine",
    "KernelPool",
    "KernelPoolError",
    "shared_pool",
    "DEFAULT_BACKEND",
    "available_backends",
    "backend_info",
    "get_backend",
    "known_backends",
    "to_soa",
    "from_soa",
]
