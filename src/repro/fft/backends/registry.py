"""Backend discovery and selection.

All known backends are registered here; availability is probed lazily so
importing the package never hard-fails on a missing optional library.
``RunConfig.fft_backend`` validates through :func:`get_backend`, the CLI's
``backends`` subcommand prints :func:`backend_info`, and the conformance
suite parametrizes over :func:`known_backends` (skipping unavailable ones
with their reason rather than passing silently).
"""

from __future__ import annotations

from repro.fft.backends.base import BackendUnavailableError, FftBackend

__all__ = [
    "DEFAULT_BACKEND",
    "known_backends",
    "get_backend",
    "available_backends",
    "backend_info",
]

#: pocketfft via numpy: always importable here and the fastest safe default.
DEFAULT_BACKEND = "numpy"

_REGISTRY: dict[str, FftBackend] | None = None


def _registry() -> dict[str, FftBackend]:
    global _REGISTRY
    if _REGISTRY is None:
        from repro.fft.backends.native import NativeBackend
        from repro.fft.backends.numpy_backend import NumpyBackend
        from repro.fft.backends.pyfftw_backend import PyfftwBackend
        from repro.fft.backends.scipy_backend import ScipyBackend

        backends = [NumpyBackend(), ScipyBackend(), PyfftwBackend(), NativeBackend()]
        _REGISTRY = {b.name: b for b in backends}
    return _REGISTRY


def known_backends() -> tuple[str, ...]:
    """All registered backend names, available or not (default first)."""
    return tuple(_registry())


def get_backend(name: str, require_available: bool = True) -> FftBackend:
    """Resolve a backend by name.

    Unknown names raise ``ValueError`` listing the registry; known-but-
    unimportable backends raise :class:`BackendUnavailableError` with the
    probe's reason unless ``require_available=False``.
    """
    reg = _registry()
    if name not in reg:
        raise ValueError(
            f"unknown fft backend {name!r}; known backends: {', '.join(sorted(reg))}"
        )
    backend = reg[name]
    if require_available:
        available, note = backend.availability()
        if not available:
            raise BackendUnavailableError(
                f"fft backend {name!r} is not available: {note}"
            )
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of backends that can actually run in this environment."""
    return tuple(n for n, b in _registry().items() if b.availability()[0])


def backend_info() -> list[dict]:
    """One describe() row per registered backend (CLI/tests/manifests)."""
    return [b.describe() for b in _registry().values()]
