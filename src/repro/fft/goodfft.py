"""QE-style good FFT orders.

Quantum ESPRESSO's ``good_fft_order`` rounds every grid dimension up to the
next integer whose prime factorisation contains only 2, 3 and 5, with at most
one factor of 7 or 11 (the radices its FFT backends handle efficiently).  The
FFTXlib descriptor does the same, so grid dimensions like 60, 72, 96 appear
throughout the paper's workload family.
"""

from __future__ import annotations

__all__ = ["allowed_fft_order", "good_fft_order", "factorize"]


def factorize(n: int) -> dict[int, int]:
    """Prime factorisation of ``n >= 1`` as ``{prime: multiplicity}``."""
    if n < 1:
        raise ValueError(f"factorize needs n >= 1, got {n}")
    factors: dict[int, int] = {}
    rest = n
    p = 2
    while p * p <= rest:
        while rest % p == 0:
            factors[p] = factors.get(p, 0) + 1
            rest //= p
        p += 1 if p == 2 else 2
    if rest > 1:
        factors[rest] = factors.get(rest, 0) + 1
    return factors


def allowed_fft_order(n: int) -> bool:
    """Whether ``n`` factorises into 2/3/5 with at most one 7 or 11."""
    if n < 1:
        return False
    factors = factorize(n)
    extra = 0
    for prime, mult in factors.items():
        if prime in (2, 3, 5):
            continue
        if prime in (7, 11):
            extra += mult
        else:
            return False
    return extra <= 1


def good_fft_order(n: int, max_order: int = 2049) -> int:
    """Smallest allowed FFT order >= ``n``.

    Parameters
    ----------
    n:
        Minimum required size (>= 1).
    max_order:
        Search bound mirroring QE's ``nfftx`` sanity limit.
    """
    if n < 1:
        raise ValueError(f"good_fft_order needs n >= 1, got {n}")
    m = n
    while m <= max_order:
        if allowed_fft_order(m):
            return m
        m += 1
    raise ValueError(f"no allowed FFT order found in [{n}, {max_order}]")
