"""Bluestein chirp-z transform: FFTs of arbitrary (e.g. large-prime) size.

Rewrites the DFT as a convolution::

    X[k] = c[k] * sum_j (x[j] * c[j]) * conj(c)[k - j],   c[j] = e^(sign*i*pi*j^2/n)

and evaluates the convolution with zero-padded power-of-two FFTs (which the
mixed-radix kernel handles natively).  ``good_fft_order`` keeps paper grids
away from this path, but the library would be incomplete — and untestable on
adversarial sizes — without it.
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = ["bluestein_last_axis"]


@functools.lru_cache(maxsize=128)
def _chirp_tables(n: int, sign: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Chirp ``c``, forward transform of the padded kernel, and FFT size."""
    j = np.arange(n)
    # exp(sign * i*pi*j^2 / n); j^2 taken mod 2n keeps the argument small and
    # the phase exact for large n.
    phase = (j * j) % (2 * n)
    c = np.exp(sign * 1j * np.pi * phase / n)
    length = 1
    while length < 2 * n - 1:
        length *= 2
    kernel = np.zeros(length, dtype=np.complex128)
    kernel[:n] = np.conj(c)
    kernel[length - n + 1:] = np.conj(c[1:][::-1])
    from repro.fft.mixed_radix import fft_last_axis

    kernel_hat = fft_last_axis(kernel, -1)
    c.setflags(write=False)
    kernel_hat.setflags(write=False)
    return c, kernel_hat, np.conj(c), length


def bluestein_last_axis(x: np.ndarray, sign: int) -> np.ndarray:
    """Unnormalised DFT of the last axis via chirp-z (any size >= 1)."""
    from repro.fft.mixed_radix import fft_last_axis

    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[-1]
    if n == 1:
        return x.copy()
    c, kernel_hat, _c_conj, length = _chirp_tables(n, sign)
    padded = np.zeros((*x.shape[:-1], length), dtype=np.complex128)
    padded[..., :n] = x * c
    # Convolution theorem with power-of-two transforms; the inverse is the
    # conjugate-forward trick with 1/L scaling.
    prod = fft_last_axis(padded, -1) * kernel_hat
    conv = np.conj(fft_last_axis(np.conj(prod), -1)) / length
    return conv[..., :n] * c
