"""Twiddle-factor and small-DFT-matrix construction (cached).

All arrays returned here are cached and therefore must be treated as
read-only by callers; the plan layer only ever multiplies by them.
"""

from __future__ import annotations

import functools

import numpy as np

__all__ = ["dft_matrix", "twiddle_block"]


@functools.lru_cache(maxsize=256)
def dft_matrix(n: int, sign: int) -> np.ndarray:
    """The dense DFT matrix ``W[j, k] = exp(sign * 2*pi*i * j * k / n)``.

    Used both as the base case of the mixed-radix recursion and as the
    combine stage's small radix-``r`` matrix.
    """
    if n < 1:
        raise ValueError(f"dft_matrix needs n >= 1, got {n}")
    if sign not in (-1, 1):
        raise ValueError(f"sign must be -1 or +1, got {sign}")
    jk = np.outer(np.arange(n), np.arange(n))
    w = np.exp(sign * 2j * np.pi * jk / n)
    w.setflags(write=False)
    return w


@functools.lru_cache(maxsize=512)
def twiddle_block(n: int, r: int, m: int, sign: int) -> np.ndarray:
    """Twiddles ``T[s, k1] = exp(sign * 2*pi*i * s * k1 / n)`` for a CT level.

    ``n = r * m``; ``s`` indexes the radix-``r`` residue class, ``k1`` the
    length-``m`` sub-transform output.
    """
    if n != r * m:
        raise ValueError(f"inconsistent level: n={n} != r*m={r}*{m}")
    if sign not in (-1, 1):
        raise ValueError(f"sign must be -1 or +1, got {sign}")
    sk = np.outer(np.arange(r), np.arange(m))
    t = np.exp(sign * 2j * np.pi * sk / n)
    t.setflags(write=False)
    return t
