"""Real-input transforms via the packed complex trick.

A length-``n`` real sequence has a Hermitian spectrum, so its DFT can be
computed from one length-``n/2`` *complex* transform: pack even/odd samples
as real/imaginary parts, transform, and untangle with the standard
split formulas.  This is the 1D sibling of the Gamma-point band pairing in
:mod:`repro.core.gamma` (two real objects per complex FFT), implemented on
top of the library's own complex kernel and validated against
``numpy.fft.rfft`` in the tests.

API mirrors numpy: ``rfft`` returns the ``n//2 + 1`` non-redundant
coefficients; ``irfft`` inverts back to the real signal.
"""

from __future__ import annotations

import numpy as np

from repro.fft.mixed_radix import fft_last_axis

__all__ = ["rfft", "irfft"]


def rfft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """DFT of real input; returns the ``n//2 + 1`` non-negative frequencies.

    ``n`` (the transform length) must be even — the packing halves it.
    """
    x = np.asarray(x, dtype=np.float64)
    axis = axis % x.ndim
    x = np.moveaxis(x, axis, -1)
    n = x.shape[-1]
    if n % 2 or n < 2:
        raise ValueError(f"rfft requires an even length >= 2, got {n}")
    half = n // 2

    # Pack: z[j] = x[2j] + i x[2j+1]; one half-length complex transform.
    z = x[..., 0::2] + 1j * x[..., 1::2]
    zhat = fft_last_axis(z, -1)

    # Untangle: split zhat into the even/odd subsequence spectra.
    k = np.arange(half)
    zconj = np.conj(zhat[..., (-k) % half])
    even = 0.5 * (zhat + zconj)  # spectrum of x[0::2]
    odd = -0.5j * (zhat - zconj)  # spectrum of x[1::2]
    twiddle = np.exp(-2j * np.pi * k / n)

    out = np.empty(x.shape[:-1] + (half + 1,), dtype=np.complex128)
    out[..., :half] = even + twiddle * odd
    # Nyquist term: X[n/2] = E[0] - O[0].
    out[..., half] = (even[..., 0] - odd[..., 0]).real
    return np.moveaxis(out, -1, axis)


def irfft(spectrum: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`rfft`: Hermitian coefficients -> real signal.

    The input carries ``n//2 + 1`` coefficients; the output length is the
    (even) ``n``.
    """
    spectrum = np.asarray(spectrum, dtype=np.complex128)
    axis = axis % spectrum.ndim
    spectrum = np.moveaxis(spectrum, axis, -1)
    m = spectrum.shape[-1]
    if m < 2:
        raise ValueError(f"irfft needs at least 2 coefficients, got {m}")
    n = 2 * (m - 1)
    half = n // 2

    # Re-tangle the even/odd spectra out of the half-spectrum.
    k = np.arange(half)
    x_k = spectrum[..., :half]
    x_rev = np.conj(spectrum[..., half - k])  # X*(n/2 - k) = X(n/2 + k)
    even = 0.5 * (x_k + x_rev)
    twiddle = np.exp(2j * np.pi * k / n)
    odd = 0.5 * twiddle * (x_k - x_rev)

    # Inverse half-length complex transform of z = E + i O.
    zhat = even + 1j * odd
    z = np.conj(fft_last_axis(np.conj(zhat), -1)) / half

    out = np.empty(spectrum.shape[:-1] + (n,), dtype=np.float64)
    out[..., 0::2] = z.real
    out[..., 1::2] = z.imag
    return np.moveaxis(out, -1, axis)
