"""From-scratch batched complex FFTs (the ``fft_scalar`` substrate).

FFTXlib delegates its 1D/2D transforms to vendor libraries (FFTW, DFTI);
this package is the reproduction's own implementation, so that the compute
substrate of the pipeline is real code rather than a stub:

* :mod:`~repro.fft.goodfft` — QE-style ``good_fft_order``: grid sizes are
  rounded up to products of small radices (2, 3, 5, with at most one factor
  of 7 or 11), exactly as the FFTXlib descriptor machinery does;
* :mod:`~repro.fft.plan` — mixed-radix decimation-in-time plans with cached
  twiddle factors (the analogue of FFTW plans);
* :mod:`~repro.fft.mixed_radix` — the vectorised Cooley–Tukey kernel,
  operating on the last axis of arbitrarily batched arrays;
* :mod:`~repro.fft.bluestein` — chirp-z fallback for sizes with large prime
  factors (completeness; good grids never need it);
* :mod:`~repro.fft.batched` — the FFTXlib-facing API: ``fft`` / ``ifft``
  along any axis, and the ``cft_1z`` / ``cft_2xy`` kernels with Quantum
  ESPRESSO's normalisation convention (backward/G→R unscaled, forward/R→G
  scaled by 1/N).

Everything is validated against ``numpy.fft`` in the test suite, including
hypothesis property tests (linearity, Parseval, round trips); numpy's FFT is
used nowhere in the library itself.
"""

from repro.fft.goodfft import allowed_fft_order, good_fft_order
from repro.fft.plan import Plan, get_plan
from repro.fft.batched import cfft3d, cft_1z, cft_2xy, fft, fft2, ifft, ifft2, fwfft, invfft
from repro.fft.realfft import irfft, rfft

__all__ = [
    "allowed_fft_order",
    "good_fft_order",
    "Plan",
    "get_plan",
    "fft",
    "ifft",
    "fft2",
    "ifft2",
    "fwfft",
    "invfft",
    "cft_1z",
    "cft_2xy",
    "cfft3d",
    "rfft",
    "irfft",
]
