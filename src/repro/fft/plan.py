"""FFT plans: a size's decimation-in-time decomposition, with cached twiddles.

A :class:`Plan` for size ``n`` is a chain of Cooley–Tukey levels
``n = r0 * (r1 * (... * base))`` where every ``r`` is a small radix and the
base case is a direct small-DFT matrix multiply (or a Bluestein fallback for
large prime factors).  Plans are immutable and cached per ``(n, sign)``, the
moral equivalent of FFTW's plan cache that ``fft_scalar`` keeps per grid
dimension.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict

import numpy as np

from repro import telemetry as _telemetry
from repro.fft.goodfft import factorize
from repro.fft.twiddle import dft_matrix, twiddle_block

__all__ = ["Plan", "PlanLevel", "get_plan", "plan_cache_stats", "clear_plan_cache"]

#: Radix preference for each decomposition level (8/4 amortise Python-level
#: overhead; larger first keeps the recursion shallow).
_RADICES = (8, 4, 2, 3, 5, 7, 11, 13)

#: Largest size handled by a direct DFT-matrix base case.
_DIRECT_MAX = 16


@dataclasses.dataclass(frozen=True)
class PlanLevel:
    """One Cooley–Tukey level: split ``n`` into radix ``r`` times ``m``."""

    n: int
    r: int
    m: int
    twiddles: np.ndarray  # (r, m) read-only
    radix_dft: np.ndarray  # (r, r) read-only
    #: Precomputed ``np.einsum_path`` for the level's combine contraction —
    #: computed once at plan build, so the kernel skips the per-call
    #: ``optimize=True`` path search.  The same optimized-path machinery
    #: executes the contraction, so results are bit-identical.
    contract_path: list = dataclasses.field(default_factory=list)


class Plan:
    """Decomposition of a 1D complex FFT of size ``n`` with direction ``sign``.

    Attributes
    ----------
    n:
        Transform size.
    sign:
        Exponent sign: ``-1`` (the conventional forward direction) or ``+1``.
    levels:
        Cooley–Tukey levels from the outermost split inwards.
    base_n:
        Size of the innermost sub-transform.
    base_matrix:
        Direct DFT matrix of ``base_n`` if small enough, else ``None``
        (Bluestein handles it).
    flops:
        Nominal real-operation count ``5 n log2 n`` — the standard FFT cost
        accounting the performance model uses for instruction budgets.
    """

    def __init__(self, n: int, sign: int):
        if n < 1:
            raise ValueError(f"Plan needs n >= 1, got {n}")
        if sign not in (-1, 1):
            raise ValueError(f"sign must be -1 or +1, got {sign}")
        self.n = n
        self.sign = sign
        self.levels: list[PlanLevel] = []
        m = n
        while m > _DIRECT_MAX:
            r = self._pick_radix(m)
            if r is None:
                break  # prime (or stubborn) remainder: Bluestein base case
            sub = m // r
            radix_dft = dft_matrix(r, sign)
            # The contraction path is shape-class independent for a
            # two-operand einsum; a 1-batch probe operand stands in for any
            # batch at execution time.
            path = np.einsum_path(
                "ks,...sm->...km",
                radix_dft,
                np.empty((1, r, sub), dtype=np.complex128),
                optimize=True,
            )[0]
            self.levels.append(
                PlanLevel(
                    n=m,
                    r=r,
                    m=sub,
                    twiddles=twiddle_block(m, r, sub, sign),
                    radix_dft=radix_dft,
                    contract_path=path,
                )
            )
            m = sub
        self.base_n = m
        self.base_matrix = dft_matrix(m, sign) if m <= _DIRECT_MAX else None

    @staticmethod
    def _pick_radix(m: int) -> int | None:
        for r in _RADICES:
            if m % r == 0 and m // r >= 1:
                return r
        # Any remaining factor is a prime > 13.
        return None

    @property
    def uses_bluestein(self) -> bool:
        """Whether the innermost sub-transform needs the chirp-z fallback."""
        return self.base_matrix is None

    @property
    def flops(self) -> float:
        """Nominal ``5 n log2 n`` real operations of one transform."""
        return 5.0 * self.n * np.log2(max(self.n, 2))

    def describe(self) -> str:
        """Human-readable decomposition, e.g. ``'60 = 4 x 3 x 5'``."""
        radices = [lvl.r for lvl in self.levels]
        tail = str(self.base_n) if self.base_n > 1 or not radices else None
        parts = [str(r) for r in radices] + ([tail] if tail else [])
        return f"{self.n} = {' x '.join(parts) if parts else '1'}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Plan {self.describe()} sign={self.sign:+d}>"


# Explicit LRU plan cache.  functools.lru_cache is itself thread-safe, but
# the telemetry accounting around it (cache_info deltas) raced under the
# sweep thread executor, and an unbounded survey of exotic sizes could pin
# arbitrary twiddle memory.  One lock covers lookup, construction, insertion
# and eviction: concurrent callers of the same size always receive the same
# Plan object.
_PLAN_CACHE_MAX = 512
_plan_lock = threading.Lock()
_plan_cache: "OrderedDict[tuple[int, int], Plan]" = OrderedDict()
_plan_hits = 0
_plan_misses = 0
_plan_evictions = 0


def get_plan(n: int, sign: int) -> Plan:
    """Cached plan lookup (the public entry point) — thread-safe, bounded.

    Hit/miss counts feed the ``fft.plan_cache_hits`` / ``fft.plan_cache_misses``
    telemetry metrics — the simulated analogue of FFTW wisdom reuse, and the
    witness that a run amortises planning across its 64 band FFTs; evictions
    of the LRU bound land on ``fft.plan_cache_evictions``.
    """
    global _plan_hits, _plan_misses, _plan_evictions
    key = (n, sign)
    evicted = False
    with _plan_lock:
        plan = _plan_cache.get(key)
        hit = plan is not None
        if hit:
            _plan_cache.move_to_end(key)
            _plan_hits += 1
        else:
            # Built inside the lock so two threads racing on a new size both
            # receive the same Plan object (identity matters to plan tests).
            plan = Plan(n, sign)
            _plan_cache[key] = plan
            _plan_misses += 1
            if len(_plan_cache) > _PLAN_CACHE_MAX:
                _plan_cache.popitem(last=False)
                _plan_evictions += 1
                evicted = True
    tel = _telemetry.current()
    if tel.enabled:
        tel.metrics.count("fft.plan_cache_hits" if hit else "fft.plan_cache_misses")
        if evicted:
            tel.metrics.count("fft.plan_cache_evictions")
    return plan


def plan_cache_stats() -> dict:
    """Cache counters (hits, misses, evictions, size, maxsize)."""
    with _plan_lock:
        return {
            "hits": _plan_hits,
            "misses": _plan_misses,
            "evictions": _plan_evictions,
            "size": len(_plan_cache),
            "maxsize": _PLAN_CACHE_MAX,
        }


def clear_plan_cache() -> None:
    """Drop all cached plans and reset counters (test isolation hook)."""
    global _plan_hits, _plan_misses, _plan_evictions
    with _plan_lock:
        _plan_cache.clear()
        _plan_hits = 0
        _plan_misses = 0
        _plan_evictions = 0


def largest_prime_factor(n: int) -> int:
    """Largest prime factor of ``n`` (diagnostics for plan quality tests)."""
    return max(factorize(n)) if n > 1 else 1
