"""VOFR: apply the real-space (diagonal) potential.

The inner loop of the kernel: once a band is in real space, the operator is
a pointwise multiply by ``V(r)`` on this rank's plane slab.  The potential is
real, so the Gamma-trick band pairing (two real bands in one complex field)
commutes with it — both packed bands are multiplied correctly at once.
"""

from __future__ import annotations

import numpy as np

__all__ = ["apply_potential"]


def apply_potential(planes: np.ndarray | None, v_slab: np.ndarray | None) -> np.ndarray | None:
    """Multiply plane data by the potential slab, in place; returns the planes.

    Both arguments are ``None`` in meta mode (cost-only runs).
    """
    if planes is None:
        return None
    if v_slab is None:
        raise ValueError("data-mode VOFR needs a potential slab")
    if planes.shape != v_slab.shape:
        raise ValueError(
            f"planes shape {planes.shape} does not match potential slab {v_slab.shape}"
        )
    planes *= v_slab
    return planes
