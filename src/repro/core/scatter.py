"""The forward/backward scatter (the second MPI layer's marshalling).

Between the 1D z-transform and the 2D xy-transform the data must move from
stick (pencil) layout to plane layout: each scatter-group member sends, for
every peer, the z-slab of its group sticks that falls into the peer's
planes (an MPI_Alltoall within the scatter communicator), and assembles the
received stick slabs into full xy planes at the sticks' (ix, iy) positions.
The backward scatter mirrors this exactly.
"""

from __future__ import annotations

import numpy as np

from repro.grids.descriptor import DistributedLayout
from repro.mpisim.datatypes import MetaPayload

__all__ = [
    "scatter_fw_parts",
    "assemble_planes",
    "scatter_bw_parts",
    "assemble_group_block_from_planes",
    "scatter_part_bytes",
]

_COMPLEX = 16


def scatter_part_bytes(layout: DistributedLayout, r_from: int, r_to: int) -> float:
    """Bytes of the slab scatter-rank ``r_from`` sends to ``r_to``."""
    return float(layout.nst_group(r_from) * layout.npp(r_to) * _COMPLEX)


def scatter_fw_parts(
    layout: DistributedLayout, r: int, group_block: np.ndarray | None
) -> list:
    """Forward-scatter parts of rank ``r``: per-peer z-slabs of its sticks.

    The parts are column-slice *views* of the group block: the simulated
    collective copies payloads at delivery (``payload_like``), so the old
    per-peer ``ascontiguousarray`` staging copies were pure overhead.  The
    caller must keep ``group_block`` alive until the collective executes
    (i.e. until its ``yield`` resumes).
    """
    if group_block is None:
        return [
            MetaPayload(scatter_part_bytes(layout, r, r_to))
            for r_to in range(layout.R)
        ]
    return [group_block[:, layout.z_slice(r_to)] for r_to in range(layout.R)]


def assemble_planes(
    layout: DistributedLayout,
    r: int,
    received: list,
    out: np.ndarray | None = None,
    workspace=None,
) -> np.ndarray | None:
    """Build rank ``r``'s xy planes from the received stick slabs.

    ``received[r']`` has shape ``(nst_group(r'), npp(r))``; its rows land at
    the (ix, iy) coordinates of ``group_sticks(r')``.  Result shape is
    ``(npp(r), nr1, nr2)`` with zeros off the sticks.

    The peers' slabs are concatenated (into ``workspace`` staging when
    available) and placed with one fancy put over the layout's cached plane
    index map — each global stick appears exactly once across the peers, so
    the single put writes the same positions/values as the old per-peer
    loop.  ``out``, when given, is fully overwritten and returned.
    """
    if any(isinstance(b, MetaPayload) for b in received):
        return None
    desc = layout.desc
    npp = layout.npp(r)
    for r_from, block in enumerate(received):
        expected = (layout.nst_group(r_from), npp)
        if block.shape != expected:
            raise ValueError(
                f"scatter slab from rank {r_from} has shape {block.shape}; "
                f"expected {expected}"
            )
    if out is None:
        planes = np.zeros((npp, desc.nr1, desc.nr2), dtype=np.complex128)
    else:
        planes = out
        planes.fill(0)
    nsticks = int(layout.scatter_stick_offsets()[-1])
    stage = (
        workspace.acquire("scatter_stage", (nsticks, npp))
        if workspace is not None
        else np.empty((nsticks, npp), dtype=np.complex128)
    )
    np.concatenate(received, axis=0, out=stage)
    planes.reshape(npp, desc.nr1 * desc.nr2)[:, layout.scatter_plane_index()] = stage.T
    if workspace is not None:
        workspace.release(stage)
    return planes


def scatter_bw_parts(
    layout: DistributedLayout,
    r: int,
    planes: np.ndarray | None,
    out: np.ndarray | None = None,
) -> list:
    """Backward-scatter parts: extract each peer's stick values from planes.

    One vectorized take over the cached plane index map gathers every
    peer's stick values at once; the returned parts are contiguous row
    slices of the gather.  ``out``, when given, is the ``(sum nst_group,
    npp(r))`` gather destination — the caller owns it and must keep it
    alive until the collective executes.
    """
    if planes is None:
        return [
            MetaPayload(scatter_part_bytes(layout, r_to, r))
            for r_to in range(layout.R)
        ]
    desc = layout.desc
    npp = layout.npp(r)
    planes2 = planes.reshape(npp, desc.nr1 * desc.nr2)
    gathered = np.take(
        planes2.T, layout.scatter_plane_index(), axis=0, out=out, mode="clip"
    )
    offsets = layout.scatter_stick_offsets()
    return [
        gathered[int(offsets[r_to]) : int(offsets[r_to + 1])]
        for r_to in range(layout.R)
    ]


def assemble_group_block_from_planes(
    layout: DistributedLayout, r: int, received: list, out: np.ndarray | None = None
) -> np.ndarray | None:
    """Reassemble rank ``r``'s (nst_group, nr3) stick block after backward scatter.

    ``received[r']`` holds this rank's sticks restricted to ``r'``'s planes;
    the z-slabs are contiguous and ordered, so the assembly is a single
    axis-1 concatenation (into ``out`` when given).
    """
    if any(isinstance(b, MetaPayload) for b in received):
        return None
    for r_from, slab in enumerate(received):
        expected = (layout.nst_group(r), layout.npp(r_from))
        if slab.shape != expected:
            raise ValueError(
                f"backward slab from rank {r_from} has shape {slab.shape}; "
                f"expected {expected}"
            )
    if out is None:
        out = np.empty((layout.nst_group(r), layout.desc.nr3), dtype=np.complex128)
    np.concatenate(received, axis=1, out=out)
    return out
