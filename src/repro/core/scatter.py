"""The forward/backward scatter (the second MPI layer's marshalling).

Between the 1D z-transform and the 2D xy-transform the data must move from
stick (pencil) layout to plane layout: each scatter-group member sends, for
every peer, the z-slab of its group sticks that falls into the peer's
planes (an MPI_Alltoall within the scatter communicator), and assembles the
received stick slabs into full xy planes at the sticks' (ix, iy) positions.
The backward scatter mirrors this exactly.
"""

from __future__ import annotations

import numpy as np

from repro.grids.descriptor import DistributedLayout
from repro.mpisim.datatypes import MetaPayload

__all__ = [
    "scatter_fw_parts",
    "assemble_planes",
    "scatter_bw_parts",
    "assemble_group_block_from_planes",
    "scatter_part_bytes",
]

_COMPLEX = 16


def scatter_part_bytes(layout: DistributedLayout, r_from: int, r_to: int) -> float:
    """Bytes of the slab scatter-rank ``r_from`` sends to ``r_to``."""
    return float(layout.nst_group(r_from) * layout.npp(r_to) * _COMPLEX)


def scatter_fw_parts(
    layout: DistributedLayout, r: int, group_block: np.ndarray | None
) -> list:
    """Forward-scatter parts of rank ``r``: per-peer z-slabs of its sticks."""
    if group_block is None:
        return [
            MetaPayload(scatter_part_bytes(layout, r, r_to))
            for r_to in range(layout.R)
        ]
    return [
        np.ascontiguousarray(group_block[:, layout.z_slice(r_to)])
        for r_to in range(layout.R)
    ]


def assemble_planes(
    layout: DistributedLayout, r: int, received: list
) -> np.ndarray | None:
    """Build rank ``r``'s xy planes from the received stick slabs.

    ``received[r']`` has shape ``(nst_group(r'), npp(r))``; its rows land at
    the (ix, iy) coordinates of ``group_sticks(r')``.  Result shape is
    ``(npp(r), nr1, nr2)`` with zeros off the sticks.
    """
    if any(isinstance(b, MetaPayload) for b in received):
        return None
    desc = layout.desc
    planes = np.zeros((layout.npp(r), desc.nr1, desc.nr2), dtype=np.complex128)
    for r_from, block in enumerate(received):
        coords = layout.stick_coords(layout.group_sticks(r_from))
        expected = (layout.nst_group(r_from), layout.npp(r))
        if block.shape != expected:
            raise ValueError(
                f"scatter slab from rank {r_from} has shape {block.shape}; "
                f"expected {expected}"
            )
        planes[:, coords[:, 0], coords[:, 1]] = block.T
    return planes


def scatter_bw_parts(
    layout: DistributedLayout, r: int, planes: np.ndarray | None
) -> list:
    """Backward-scatter parts: extract each peer's stick values from planes."""
    if planes is None:
        return [
            MetaPayload(scatter_part_bytes(layout, r_to, r))
            for r_to in range(layout.R)
        ]
    parts = []
    for r_to in range(layout.R):
        coords = layout.stick_coords(layout.group_sticks(r_to))
        # (npp(r), nst_group(r_to)) -> (nst_group(r_to), npp(r))
        parts.append(np.ascontiguousarray(planes[:, coords[:, 0], coords[:, 1]].T))
    return parts


def assemble_group_block_from_planes(
    layout: DistributedLayout, r: int, received: list
) -> np.ndarray | None:
    """Reassemble rank ``r``'s (nst_group, nr3) stick block after backward scatter.

    ``received[r']`` holds this rank's sticks restricted to ``r'``'s planes.
    """
    if any(isinstance(b, MetaPayload) for b in received):
        return None
    block = np.empty((layout.nst_group(r), layout.desc.nr3), dtype=np.complex128)
    for r_from, slab in enumerate(received):
        expected = (layout.nst_group(r), layout.npp(r_from))
        if slab.shape != expected:
            raise ValueError(
                f"backward slab from rank {r_from} has shape {slab.shape}; "
                f"expected {expected}"
            )
        block[:, layout.z_slice(r_from)] = slab
    return block
