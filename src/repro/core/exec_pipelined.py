"""Non-blocking-collectives baseline: software pipelining without tasks.

The classic MPI-only way to overlap communication with computation — what a
careful programmer does *instead of* a task runtime: issue the scatter for
iteration ``i`` (``MPI_Ialltoall``), compute iteration ``i+1``'s G-space
stages while it is in flight, and only then wait.  The schedule, per rank,
with A = prepare+pack+fft_z, B = xy+vofr+xy, C = fft_z+unpack::

    A(0); issue Sfw(0)
    for it:
        A(it+1)                 # overlaps Sfw(it)'s transfer
        wait Sfw(it); B(it)
        issue Sbw(it); issue Sfw(it+1)
        wait Sbw(it); C(it)     # Sfw(it+1) still in flight

In the simulator "issuing" a collective is calling it without yielding the
returned event — the transfer progresses through the fluid network while
the rank computes.  This gives the executor comparison its third corner:
static synchronous (original), static pipelined (this), and the paper's
dynamic task-based versions.

Double-buffering note: iteration ``it+1``'s pack Alltoallv completes while
``Sfw(it)`` may still be in flight, which is exactly why per-iteration
explicit keys (not call order) match the collectives.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro import telemetry as _telemetry
from repro.core import pack as pack_mod
from repro.core import redistribute as redist_mod
from repro.core import scatter as scatter_mod
from repro.core.pipeline import (
    FftPhaseContext,
    band_chain_steps,
    step_fft_xy,
    step_fft_z,
    step_pack,
    step_prepare,
    step_unpack,
    step_vofr,
)
from repro.mpisim.datatypes import MetaPayload

__all__ = ["make_pipelined_program"]


def _stage_a(ctx: FftPhaseContext, bands, unit_key, thread=0):
    """prepare + pack + forward fft_z for one iteration."""
    coeffs = yield from step_prepare(ctx, bands, thread)
    group = yield from step_pack(ctx, coeffs, key=(unit_key, "pack"), thread=thread)
    group = yield from step_fft_z(ctx, group, +1, thread)
    return group


def _issue_scatter_fw(ctx: FftPhaseContext, group, key):
    """Join the forward scatter without waiting; returns ``(event, recvbuf)``.

    Pack-free (default): the Alltoallw recv buffer is acquired and
    zero-filled *before* joining — the strided/indexed moves land in it
    when the last member joins — and the event resolves to it; no staging
    copy is made on either side.  Packed: the parts are views of ``group``
    (``recvbuf`` is ``None``) and the caller assembles planes after the
    wait.  Either way the caller must keep ``group`` checked out until the
    event resolves.
    """
    if ctx.redistribution == "packfree":
        plan = redist_mod.scatter_fw_plan(ctx.layout, ctx.r, ctx.data_mode)
        recvbuf = ctx.recv_buffer("planes", plan)
        sendbuf = None if group is None else np.ascontiguousarray(group)
        ev = ctx.rank.alltoallw(
            ctx.scatter_comm, sendbuf, recvbuf,
            plan.send_blocks, plan.recv_blocks, key=key,
        )
        return ev, recvbuf
    parts = scatter_mod.scatter_fw_parts(ctx.layout, ctx.r, group)
    return ctx.rank.alltoall(ctx.scatter_comm, parts, key=key), None


def _issue_scatter_bw(ctx: FftPhaseContext, planes, key):
    """Issue the backward exchange; returns ``(event, gather_buffer)``.

    Pack-free: sends strided z-slabs of ``planes`` directly into the
    pre-acquired stick-block recv buffer (the event resolves to it); no
    gather staging, so ``gather_buffer`` is ``None``.  Packed: the gather
    buffer backs the send parts (row slices), rides with the event, and is
    released by the caller once the event resolves.
    """
    if ctx.redistribution == "packfree":
        plan = redist_mod.scatter_bw_plan(ctx.layout, ctx.r, ctx.data_mode)
        recvbuf = ctx.recv_buffer("stick_block", plan)
        sendbuf = None if planes is None else np.ascontiguousarray(planes)
        ev = ctx.rank.alltoallw(
            ctx.scatter_comm, sendbuf, recvbuf,
            plan.send_blocks, plan.recv_blocks, key=key,
        )
        return ev, None
    gather = None
    if planes is not None:
        nsticks = int(ctx.layout.scatter_stick_offsets()[-1])
        gather = ctx.acquire("sbw_gather", (nsticks, ctx.layout.npp(ctx.r)))
        ctx.pack_copies += 1
    parts = scatter_mod.scatter_bw_parts(ctx.layout, ctx.r, planes, out=gather)
    return ctx.rank.alltoall(ctx.scatter_comm, parts, key=key), gather


def make_pipelined_program(
    ctx_of: _t.Callable[[object], FftPhaseContext],
    n_iterations: int,
    start_iteration: int = 0,
):
    """Build the per-rank program with depth-2 software pipelining.

    ``start_iteration`` skips iterations completed by a prior attempt
    (checkpoint resume); the prologue then primes the pipeline for the
    first remaining iteration.  Must be the same on every rank.
    """

    def program(rank):
        ctx = ctx_of(rank)
        if start_iteration >= n_iterations:
            return ctx
        T = ctx.layout.T
        cost = ctx.cost
        tel = _telemetry.current()
        track = (rank.rank, 0)

        def clock():
            return rank.sim.now

        def bands_of(it):
            return [it * T + t for t in range(T)]

        def key(it):
            return ("it", it)

        if ctx.layout.decomposition == "pencil":
            # Pencil mode: the middle section is two row/col transposes, not
            # one scatter collective — the depth-2 issue/wait schedule below
            # is slab-shaped, so run the band chain synchronously instead
            # (the task-based executors provide the overlapped pencil runs).
            with tel.spans.span(track, "exec_pipelined", "executor", clock):
                for it in range(start_iteration, n_iterations):
                    with tel.spans.span(
                        track, f"iteration {it}", "iteration", clock,
                        bands=bands_of(it),
                    ):
                        yield from band_chain_steps(ctx, bands_of(it), key(it))
            return ctx

        with tel.spans.span(track, "exec_pipelined", "executor", clock):
            # Prologue: stage A and forward-scatter issue for the first
            # iteration this attempt runs.
            first = start_iteration
            with tel.spans.span(track, "prologue", "pipeline-step", clock):
                group = yield from _stage_a(ctx, bands_of(first), key(first))
                yield rank.compute("scatter_reorder", 0.5 * cost.scatter_marshal(ctx.r))
            ev_fw, _ = _issue_scatter_fw(
                ctx, group, (key(first), "sfw", bands_of(first)[ctx.t])
            )
            fw_buf = group  # block backing ev_fw's in-flight send views

            next_group = None
            for it in range(start_iteration, n_iterations):
                my_band = bands_of(it)[ctx.t]
                with tel.spans.span(
                    track, f"iteration {it}", "iteration", clock, bands=bands_of(it)
                ):
                    # Overlap: compute the next iteration's G-space stages
                    # while the current forward scatter is in flight.
                    if it + 1 < n_iterations:
                        next_group = yield from _stage_a(
                            ctx, bands_of(it + 1), key(it + 1)
                        )

                    received = yield ev_fw
                    ctx.release(fw_buf)
                    yield rank.compute("scatter_reorder", 0.5 * cost.scatter_marshal(ctx.r))
                    if ctx.redistribution == "packfree":
                        # The event resolved to the pre-acquired recv
                        # buffer: the planes arrived in place.
                        planes = received
                    else:
                        out = (
                            ctx.acquire(
                                "planes",
                                (ctx.layout.npp(ctx.r), ctx.layout.desc.nr1, ctx.layout.desc.nr2),
                            )
                            if fw_buf is not None
                            else None
                        )
                        if fw_buf is not None:
                            ctx.pack_copies += 1
                        planes = scatter_mod.assemble_planes(
                            ctx.layout, ctx.r, received, out=out, workspace=ctx.workspace
                        )

                    planes = yield from step_fft_xy(ctx, planes, +1)
                    planes = yield from step_vofr(ctx, planes)
                    planes = yield from step_fft_xy(ctx, planes, -1)

                    yield rank.compute("scatter_reorder", 0.5 * cost.scatter_marshal(ctx.r))
                    ev_bw, bw_gather = _issue_scatter_bw(
                        ctx, planes, (key(it), "sbw", my_band)
                    )
                    if it + 1 < n_iterations:
                        yield rank.compute(
                            "scatter_reorder", 0.5 * cost.scatter_marshal(ctx.r)
                        )
                        ev_fw, _ = _issue_scatter_fw(
                            ctx, next_group, (key(it + 1), "sfw", bands_of(it + 1)[ctx.t])
                        )
                        fw_buf = next_group

                    received = yield ev_bw
                    ctx.release(planes, bw_gather)
                    yield rank.compute("scatter_reorder", 0.5 * cost.scatter_marshal(ctx.r))
                    if ctx.redistribution == "packfree":
                        # The stick block arrived in the pre-acquired recv
                        # buffer the event resolved to.
                        group_back = received
                    else:
                        group_back = _assemble_bw(ctx, received)
                    group_back = yield from step_fft_z(ctx, group_back, -1)
                    yield from step_unpack(
                        ctx, group_back, bands_of(it), key=(key(it), "unpack")
                    )
        return ctx

    return program


def _assemble_bw(ctx: FftPhaseContext, received):
    if any(isinstance(b, MetaPayload) for b in received):
        return None
    ctx.pack_copies += 1
    out = ctx.acquire(
        "stick_block", (ctx.layout.nst_group(ctx.r), ctx.layout.desc.nr3)
    )
    return scatter_mod.assemble_group_block_from_planes(
        ctx.layout, ctx.r, received, out=out
    )
