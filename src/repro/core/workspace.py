"""Reusable data-plane buffer arenas (the zero-allocation workspace).

Data-mode runs used to allocate every marshalling buffer fresh: each band's
group stick block (``np.zeros`` per pack), each plane block (per scatter),
each gather staging array.  A :class:`Workspace` replaces those with a
pooled acquire/release protocol: buffers are keyed by ``(kind, shape,
dtype, layout)`` and recycled across bands, directions, iterations and — because
arenas attach to the (process-cached) :class:`~repro.grids.descriptor.
DistributedLayout` — across runs and sweep points of the same workload.

Design constraints, in decreasing order of importance:

* **Safety over thrift.**  ``release`` is tolerant: ``None``, arrays the
  arena never handed out (foreign), and double releases are all ignored
  (counted, not raised).  A generator killed mid-chain by fault injection
  simply leaks its checkouts — the arena holds only weak references to
  checked-out buffers, so the memory is reclaimed by the GC and the pool
  refills by allocating.
* **Concurrency.**  Several band chains interleave on one rank (the
  per-FFT/combined executors) and the sweep thread executor can share one
  layout's arenas across threads, so every operation takes the arena lock
  and checkouts are tracked per buffer identity, never per buffer name.
* **Observability.**  Counters (acquires, reuse hits, alloc misses,
  releases) and gauges (bytes resident, live peak) feed the telemetry
  ``dataplane.*`` gauges and the manifest ``dataplane`` section.

The arena is an *optimization*, never a semantic layer: every helper that
accepts an arena buffer also runs identically (bit-for-bit) with fresh
allocations when no workspace is supplied.
"""

from __future__ import annotations

import threading
import typing as _t
import weakref

import numpy as np

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.grids.descriptor import DistributedLayout

__all__ = ["Workspace", "workspace_for", "layout_workspaces", "aggregate_stats"]

#: Layout attribute holding the per-process arena dict.  Attached lazily so
#: the layout class itself stays a pure geometry object.
_ARENAS_ATTR = "_dataplane_arenas"

_module_lock = threading.Lock()

#: Checkout-table size above which dead (leaked-and-collected) entries are
#: pruned on the next acquire.
_PRUNE_THRESHOLD = 256


def _key_bytes(key: tuple) -> int:
    _kind, shape, dtypestr, _layout = key
    n = 1
    for dim in shape:
        n *= int(dim)
    return n * np.dtype(dtypestr).itemsize


class Workspace:
    """One process's pooled data-plane buffers.

    ``acquire(kind, shape)`` returns a recycled buffer when one of the exact
    ``(kind, shape, dtype, layout)`` key is free, else allocates.  Contents are
    *unspecified* — callers must fully overwrite (or zero-fill) what they
    acquire.  ``release`` returns buffers to the pool; only the exact array
    object previously acquired is accepted (views are not, by design — the
    owner of the backing buffer releases it).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pools: dict[tuple, list[np.ndarray]] = {}
        #: id(buffer) -> (pool key, weakref) for checked-out buffers.  The
        #: weakref both avoids keeping leaked buffers alive and lets release
        #: detect id reuse after a leak (the ref no longer matches).
        self._out: dict[int, tuple[tuple, weakref.ref]] = {}
        self.acquires = 0
        self.reuse_hits = 0
        self.alloc_misses = 0
        self.releases = 0
        self.foreign_releases = 0
        #: Checkouts whose buffer was garbage-collected without a release —
        #: pruned entries plus (in :meth:`stats`) currently-dead refs.  A
        #: monotonic counter: under sustained service traffic a silent leak
        #: becomes a steady drift, not an invisible prune.
        self.leaked = 0
        self.live = 0
        self.live_peak = 0

    def acquire(
        self,
        kind: str,
        shape: tuple,
        dtype: np.dtype | type = np.complex128,
        layout: str = "aos",
    ) -> np.ndarray:
        """Check out a C-contiguous buffer of the given kind/shape/dtype.

        ``layout`` is part of the pool key: an SoA staging buffer (planar
        real/imag, ``layout="soa"``) must never be recycled as an AoS
        (interleaved complex) buffer of coincidentally equal shape and
        dtype — the two carry different value conventions, and sharing a
        pool would hand callers buffers whose stale contents alias the
        other layout's.
        """
        key = (kind, tuple(int(s) for s in shape), np.dtype(dtype).str, str(layout))
        with self._lock:
            if len(self._out) > _PRUNE_THRESHOLD:
                self._prune_locked()
            self.acquires += 1
            pool = self._pools.get(key)
            if pool:
                buf = pool.pop()
                self.reuse_hits += 1
            else:
                buf = np.empty(key[1], dtype=np.dtype(key[2]))
                self.alloc_misses += 1
            self._out[id(buf)] = (key, weakref.ref(buf))
            self.live += 1
            if self.live > self.live_peak:
                self.live_peak = self.live
        return buf

    def release(self, *arrays: np.ndarray | None) -> None:
        """Return buffers to their pools; tolerant of anything not ours."""
        for arr in arrays:
            if arr is None:
                continue
            with self._lock:
                entry = self._out.get(id(arr))
                if entry is None:
                    self.foreign_releases += 1
                    continue
                key, ref = entry
                if ref() is not arr:
                    # id reuse after a leaked buffer was collected: the
                    # stale entry is dropped, this release is foreign.
                    del self._out[id(arr)]
                    self.live -= 1
                    self.foreign_releases += 1
                    continue
                del self._out[id(arr)]
                self._pools.setdefault(key, []).append(arr)
                self.releases += 1
                self.live -= 1

    def _prune_locked(self) -> None:
        """Drop checkout entries whose buffer was garbage-collected."""
        dead = [i for i, (_k, ref) in self._out.items() if ref() is None]
        for i in dead:
            del self._out[i]
        self.live -= len(dead)
        self.leaked += len(dead)

    def begin_run(self) -> None:
        """Reset the peak tracker at a run boundary (counters keep running)."""
        with self._lock:
            self._prune_locked()
            self.live_peak = self.live

    def stats(self) -> dict[str, int]:
        """Current counters plus derived byte gauges."""
        with self._lock:
            pooled = sum(len(bufs) for bufs in self._pools.values())
            bytes_pooled = sum(
                _key_bytes(key) * len(bufs) for key, bufs in self._pools.items()
            )
            bytes_out = sum(
                _key_bytes(key)
                for key, ref in self._out.values()
                if ref() is not None
            )
            dead_out = sum(1 for _key, ref in self._out.values() if ref() is None)
            return {
                "acquires": self.acquires,
                "reuse_hits": self.reuse_hits,
                "alloc_misses": self.alloc_misses,
                "releases": self.releases,
                "foreign_releases": self.foreign_releases,
                "workspace_leaks": self.leaked + dead_out,
                "live": self.live,
                "live_peak": self.live_peak,
                "pooled": pooled,
                "bytes_resident": bytes_pooled + bytes_out,
            }


def workspace_for(layout: "DistributedLayout", p: int) -> Workspace:
    """The (created-on-demand) arena of layout process ``p``.

    Arenas live on the layout object, which :func:`~repro.core.driver.
    build_geometry` caches per process — so repeated runs and sweep points
    of one workload share pools instead of re-allocating.
    """
    with _module_lock:
        arenas = getattr(layout, _ARENAS_ATTR, None)
        if arenas is None:
            arenas = {}
            setattr(layout, _ARENAS_ATTR, arenas)
        ws = arenas.get(p)
        if ws is None:
            ws = Workspace()
            arenas[p] = ws
    return ws


def layout_workspaces(layout: "DistributedLayout") -> dict[int, Workspace]:
    """Snapshot of the layout's arenas (empty if none were created)."""
    with _module_lock:
        return dict(getattr(layout, _ARENAS_ATTR, None) or {})


def aggregate_stats(workspaces: _t.Iterable[Workspace]) -> dict[str, int]:
    """Element-wise sum of :meth:`Workspace.stats` over arenas."""
    total: dict[str, int] = {}
    for ws in workspaces:
        for name, value in ws.stats().items():
            total[name] = total.get(name, 0) + value
    return total
