"""The FFT-phase step library and its instruction cost model.

Every executor (original, per-step tasks, per-FFT tasks, combined) composes
the *same* nine steps of the paper's Fig. 1 kernel, implemented here as
generator functions over a per-rank :class:`FftPhaseContext`:

    prepare -> pack -> fft_z(+1) -> scatter_fw -> fft_xy(+1)
            -> vofr -> fft_xy(-1) -> scatter_bw -> fft_z(-1) -> unpack

Each step charges its compute phase on the machine model (the phase name
selects the contention profile of :mod:`repro.machine.knl`) and, where the
paper's kernel communicates, performs the simulated MPI collective — with
real payloads in data mode, sizes only in meta mode.  Data transformations
are delegated to :mod:`~repro.core.wave`, :mod:`~repro.core.pack`,
:mod:`~repro.core.scatter` and :mod:`~repro.core.vofr`, so the numerics are
identical no matter which executor (or scheduler order) drives the steps.

Instruction budgets come from :class:`CostModel`: FFT steps use the standard
``5 n log2 n`` flop count (times a flops-to-instructions factor), with the
xy stage reduced to the lines that actually contain data — QE's
empty-line-skipping — computed from the stick geometry; marshalling and
pointwise steps are linear in the points touched.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.core import pack as pack_mod
from repro.core import redistribute as redist_mod
from repro.core import scatter as scatter_mod
from repro.core import wave as wave_mod
from repro.core.vofr import apply_potential
from repro.core.wave import extract_from_sticks
from repro.fft.backends.engine import default_engine
from repro.grids.descriptor import DistributedLayout
from repro.mpisim.datatypes import MetaPayload

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.communicator import Communicator
    from repro.mpisim.world import RankContext

__all__ = [
    "CostConstants",
    "CostModel",
    "FftPhaseContext",
    "band_chain_steps",
    "pencil_middle_steps",
]


@dataclasses.dataclass(frozen=True)
class CostConstants:
    """Calibrated instruction-count constants (see DESIGN.md §5).

    ``fft_instr_per_flop`` converts nominal FFT flops to instructions;
    the ``*_per_g``/``*_per_point`` constants are instructions per touched
    element for the gather/scatter-type steps.
    """

    prep_per_g: float = 10.0
    unpack_per_g: float = 10.0
    pack_per_point: float = 1.5
    scatter_per_point: float = 1.5
    fft_instr_per_flop: float = 0.6
    vofr_per_point: float = 4.0
    #: MPI-stack instructions per message of a collective (marshalling,
    #: matching, progress).  This is what makes the *total* instruction
    #: count grow slightly with the process count — the paper's
    #: instruction-scalability row declining from 100 % to ~98.9 %.
    instr_per_message: float = 5000.0


class CostModel:
    """Per-step instruction budgets for one distributed layout.

    All quantities are *per complex band* unless stated otherwise; process
    arguments are the layout's process indices.
    """

    def __init__(self, layout: DistributedLayout, constants: CostConstants | None = None):
        self.layout = layout
        self.c = constants or CostConstants()
        desc = layout.desc
        self._log_n3 = np.log2(max(desc.nr3, 2))
        self._log_n1 = np.log2(max(desc.nr1, 2))
        self._log_n2 = np.log2(max(desc.nr2, 2))
        # QE's cft_2xy transforms along x only the y-lines that carry sticks.
        self._nonempty_y_lines = len(np.unique(desc.sticks.coords[:, 1]))

    # -- per-step budgets -----------------------------------------------------

    def prepare(self, p: int) -> float:
        """``prepare_psis`` for one band on process ``p``."""
        return self.c.prep_per_g * self.layout.ngw_of(p)

    def pack_expand(self, r: int) -> float:
        """Zero-fill + scatter-write of one band into the group stick block,
        plus the MPI-stack work of the pack Alltoallv's messages."""
        expand = self.c.pack_per_point * self.layout.nst_group(r) * self.layout.desc.nr3
        stack = self.c.instr_per_message * max(self.layout.T - 1, 0)
        return expand + stack

    def ngw_group(self, r: int) -> int:
        """Sphere coefficients held by pack group ``r``."""
        return sum(self.layout.ngw_of(self.layout.proc_of(r, t)) for t in range(self.layout.T))

    def unpack_extract(self, r: int) -> float:
        """Gathering one band's coefficients back out of the group block."""
        return self.c.unpack_per_g * self.ngw_group(r)

    def fft_z(self, r: int) -> float:
        """Batched z-transforms of pack group ``r``'s sticks (one band)."""
        flops = 5.0 * self.layout.nst_group(r) * self.layout.desc.nr3 * self._log_n3
        return self.c.fft_instr_per_flop * flops

    def scatter_marshal(self, r: int) -> float:
        """Slab extraction + plane assembly around one scatter (one band),
        plus the MPI-stack work of the Alltoall's messages."""
        desc = self.layout.desc
        send_points = self.layout.nst_group(r) * desc.nr3
        recv_points = desc.sticks.nsticks * self.layout.npp(r)
        stack = self.c.instr_per_message * max(self.layout.R - 1, 0)
        return self.c.scatter_per_point * (send_points + recv_points) + stack

    def fft_xy(self, r: int) -> float:
        """2D transforms of rank ``r``'s planes (one band), skipping empty lines."""
        desc = self.layout.desc
        per_plane = 5.0 * (
            self._nonempty_y_lines * desc.nr1 * self._log_n1
            + desc.nr1 * desc.nr2 * self._log_n2
        )
        return self.c.fft_instr_per_flop * self.layout.npp(r) * per_plane

    def vofr(self, r: int) -> float:
        """Pointwise potential application on rank ``r``'s planes (one band)."""
        desc = self.layout.desc
        return self.c.vofr_per_point * self.layout.npp(r) * desc.nr1 * desc.nr2

    def unpack(self, p: int) -> float:
        """Coefficient extraction for one band on process ``p``."""
        return self.c.unpack_per_g * self.layout.ngw_of(p)

    # -- pencil-decomposition budgets (see repro.grids.pencil) ----------------

    def _pencil(self):
        grid = self.layout.pencil
        if grid is None:
            raise ValueError("pencil costs need a pencil-decomposed layout")
        return grid

    def pencil_zy_marshal(self, r: int) -> float:
        """Brick re-slicing around the row-internal z->y transpose, plus the
        MPI-stack work of its Alltoallw messages (Pc - 1 peers)."""
        grid = self._pencil()
        i, j = grid.coords(r)
        desc = self.layout.desc
        send_points = self.layout.nst_group(r) * desc.nr3
        recv_points = grid.nx(i) * grid.nz(j) * desc.nr2
        stack = self.c.instr_per_message * max(grid.Pc - 1, 0)
        return self.c.scatter_per_point * (send_points + recv_points) + stack

    def pencil_yx_marshal(self, r: int) -> float:
        """Brick re-slicing around the column-internal y->x transpose
        (Pr - 1 peers)."""
        grid = self._pencil()
        i, j = grid.coords(r)
        desc = self.layout.desc
        y_points = grid.nx(i) * grid.nz(j) * desc.nr2
        x_points = grid.ny(i) * grid.nz(j) * desc.nr1
        stack = self.c.instr_per_message * max(grid.Pr - 1, 0)
        return self.c.scatter_per_point * (y_points + x_points) + stack

    def fft_y(self, r: int) -> float:
        """Batched 1D y-transforms of rank ``r``'s y-brick (one band)."""
        grid = self._pencil()
        i, j = grid.coords(r)
        nr2 = self.layout.desc.nr2
        flops = 5.0 * grid.nx(i) * grid.nz(j) * nr2 * self._log_n2
        return self.c.fft_instr_per_flop * flops

    def fft_x(self, r: int) -> float:
        """Batched 1D x-transforms of rank ``r``'s x-brick (one band)."""
        grid = self._pencil()
        i, j = grid.coords(r)
        nr1 = self.layout.desc.nr1
        flops = 5.0 * grid.ny(i) * grid.nz(j) * nr1 * self._log_n1
        return self.c.fft_instr_per_flop * flops

    def pencil_vofr(self, r: int) -> float:
        """Pointwise potential application on rank ``r``'s x-brick (one band)."""
        grid = self._pencil()
        i, j = grid.coords(r)
        return (
            self.c.vofr_per_point * grid.ny(i) * grid.nz(j) * self.layout.desc.nr1
        )


class FftPhaseContext:
    """Everything one rank's executor needs to run pipeline steps.

    Attributes
    ----------
    rank:
        The simulated MPI rank context.
    layout:
        The R x T data distribution (this rank is layout process
        ``rank.rank``).
    cost:
        Instruction budgets.
    pack_comm / scatter_comm:
        The two communicator layers (``pack_comm`` is ``None`` when T == 1,
        i.e. task groups are off).
    packed:
        ``(n_complex_bands, ngw_of(p))`` input coefficients, or ``None`` in
        meta mode.
    results:
        Output coefficients per band (filled by the unpack step).
    v_slab:
        This scatter rank's potential planes (``None`` in meta mode).
    workspace:
        This rank's data-plane buffer arena
        (:class:`~repro.core.workspace.Workspace`), or ``None`` to allocate
        every marshalling buffer fresh.  Results are bit-identical either
        way; the arena only recycles storage.
    kernels:
        The run's :class:`~repro.fft.backends.engine.KernelEngine` — every
        batched FFT the steps execute goes through it, which is what makes
        ``RunConfig.fft_backend`` / ``kernel_workers`` take effect.  When
        ``None`` the process-wide single-threaded default-backend engine is
        used.
    row_comm / col_comm:
        The pencil transpose communicators (row-internal z<->y over Pc
        ranks, column-internal y<->x over Pr ranks); ``None`` for the slab
        decomposition.  In pencil mode ``v_slab`` holds the x-brick
        potential block instead of the plane slab.
    redistribution:
        ``"packfree"`` routes every exchange through the Alltoallw block
        plans of :mod:`~repro.core.redistribute` (zero staging copies);
        ``"packed"`` keeps the legacy staged marshalling.  Identical
        results and identical simulated timings either way.
    """

    def __init__(
        self,
        rank: "RankContext",
        layout: DistributedLayout,
        cost: CostModel,
        pack_comm: "Communicator | None",
        scatter_comm: "Communicator",
        packed: np.ndarray | None,
        v_slab: np.ndarray | None,
        workspace=None,
        kernels=None,
        row_comm: "Communicator | None" = None,
        col_comm: "Communicator | None" = None,
        redistribution: str = "packfree",
    ):
        self.rank = rank
        self.layout = layout
        self.cost = cost
        self.pack_comm = pack_comm
        self.scatter_comm = scatter_comm
        self.packed = packed
        self.v_slab = v_slab
        self.workspace = workspace
        if kernels is None:
            kernels = default_engine()
        self.kernels = kernels
        self.row_comm = row_comm
        self.col_comm = col_comm
        if redistribution not in ("packed", "packfree"):
            raise ValueError(f"unknown redistribution {redistribution!r}")
        self.redistribution = redistribution
        #: Staging (pack/unpack) buffer passes performed by this rank's
        #: exchanges, data mode only — pinned to zero on the pack-free path.
        self.pack_copies = 0
        self.results: dict[int, np.ndarray] = {}
        #: Bands whose full chain finished on this rank (filled by the
        #: unpack step, both modes) — the driver's checkpoint granularity.
        self.completed: set[int] = set()
        self.r, self.t = layout.rt_of(rank.rank)
        self.data_mode = packed is not None

    @property
    def p(self) -> int:
        """This rank's layout process index."""
        return self.rank.rank

    def band_coefficients(self, band: int) -> np.ndarray | None:
        """Input packed coefficients of one band (``None`` in meta mode)."""
        if self.packed is None:
            return None
        return self.packed[band]

    # -- arena helpers --------------------------------------------------------
    #
    # Buffer-release discipline (why releasing mid-chain is safe):
    #
    # * The simulated collective *copies* every ndarray payload when the
    #   last member joins (``payload_like``), so once a rank's ``yield
    #   alltoall`` resumes its send buffers are free to recycle.
    # * Fault-injected task re-execution replays only communication-free
    #   tasks (``Task.did_mpi`` exemption), immediately and from their
    #   original (still checked-out or non-arena) inputs, so a replay never
    #   reads a buffer its own discarded execution released downstream.
    # * A generator killed mid-chain (attempt abort) leaks its checkouts;
    #   the arena tracks them weakly and tolerates the loss.

    def acquire(self, kind: str, shape: tuple) -> np.ndarray | None:
        """An arena buffer of the given kind/shape, or ``None`` without an
        arena (callees then allocate fresh — identical results)."""
        if self.workspace is None:
            return None
        return self.workspace.acquire(kind, shape)

    def release(self, *buffers) -> None:
        """Return arena buffers; ``None``/foreign/double releases are ignored."""
        if self.workspace is not None:
            self.workspace.release(*buffers)

    def recv_buffer(self, kind: str, plan) -> np.ndarray | None:
        """The receive buffer of a pack-free exchange plan (``None`` in meta
        mode).  Zero-filled when the plan's incoming blocks cover the buffer
        only sparsely; otherwise left uninitialized (fully overwritten)."""
        if not self.data_mode:
            return None
        buf = self.acquire(kind, plan.recv_shape)
        if buf is None:
            return (
                np.zeros(plan.recv_shape, dtype=np.complex128)
                if plan.zero_fill
                else np.empty(plan.recv_shape, dtype=np.complex128)
            )
        if plan.zero_fill:
            buf.fill(0)
        return buf


# ---------------------------------------------------------------------------
# Step generators.  Each yields compute/MPI events on the given hardware
# thread and returns the transformed data (None in meta mode).
# ---------------------------------------------------------------------------


def step_prepare(ctx: FftPhaseContext, bands: _t.Sequence[int], thread: int = 0):
    """Gather/reorder the group's packed coefficients (the low-IPC Psi prep).

    Band groups are consecutive bands (``it*T + t``), so the usual result is
    one ``(T, ngw_of(p))`` row-block view of the packed input — the batched
    multi-band form; non-contiguous band lists fall back to per-band row
    views.  Either way no copy is made: rows of ``ctx.packed`` are already
    C-contiguous and the collective copies payloads at delivery.
    """
    instructions = ctx.cost.prepare(ctx.p) * len(bands)
    yield ctx.rank.compute("prepare_psis", instructions, thread=thread)
    if not ctx.data_mode:
        return None
    first = bands[0]
    if list(bands) == list(range(first, first + len(bands))):
        return ctx.packed[first : first + len(bands)]
    return [ctx.packed[band] for band in bands]


def step_pack(ctx: FftPhaseContext, band_coeffs: list | None, key: object, thread: int = 0):
    """Pack Alltoallv + expansion: this rank ends up with band ``t`` on its
    group sticks.

    With task groups off (T == 1) there is no exchange; the expansion of the
    rank's own coefficients is charged to the ``prepare_psis`` phase (it is
    the same scatter-write, just without the communication around it).
    """
    layout = ctx.layout
    if ctx.pack_comm is None:
        yield ctx.rank.compute("prepare_psis", ctx.cost.pack_expand(ctx.r), thread=thread)
        if band_coeffs is None:
            return None
        out = ctx.acquire(
            "stick_block", (len(layout.sticks_of(ctx.p)), layout.desc.nr3)
        )
        return wave_mod.expand_to_sticks(layout, ctx.p, band_coeffs[0], out=out)
    if ctx.redistribution == "packfree":
        plan = redist_mod.pack_fw_plan(layout, ctx.p, ctx.data_mode)
        sendbuf = None
        if band_coeffs is not None:
            sendbuf = np.ascontiguousarray(band_coeffs)
        recvbuf = ctx.recv_buffer("stick_block", plan)
        yield ctx.rank.alltoallw(
            ctx.pack_comm, sendbuf, recvbuf,
            plan.send_blocks, plan.recv_blocks, key=key, thread=thread,
        )
        yield ctx.rank.compute("pack_sticks", ctx.cost.pack_expand(ctx.r), thread=thread)
        return recvbuf
    parts = pack_mod.pack_parts(layout, ctx.p, band_coeffs)
    received = yield ctx.rank.alltoall(ctx.pack_comm, parts, key=key, thread=thread)
    yield ctx.rank.compute("pack_sticks", ctx.cost.pack_expand(ctx.r), thread=thread)
    if any(isinstance(b, MetaPayload) for b in received):
        return None
    ctx.pack_copies += 1
    out = ctx.acquire("stick_block", (layout.nst_group(ctx.r), layout.desc.nr3))
    return wave_mod.expand_group_block(
        layout, ctx.r, received, out=out, workspace=ctx.workspace
    )


def step_fft_z(ctx: FftPhaseContext, group_block, sign: int, thread: int = 0):
    """Batched 1D transforms along z of the group sticks.

    The transform writes into an arena block and releases the consumed
    input (a no-op for fresh/foreign inputs).
    """
    yield ctx.rank.compute("fft_z", ctx.cost.fft_z(ctx.r), thread=thread)
    if group_block is None:
        return None
    out = ctx.acquire("stick_block", group_block.shape)
    result = ctx.kernels.cft_1z(group_block, sign, out=out)
    ctx.release(group_block)
    return result


def step_scatter_fw(ctx: FftPhaseContext, group_block, key: object, thread: int = 0):
    """Forward scatter: sticks -> planes within the scatter group."""
    yield ctx.rank.compute("scatter_reorder", ctx.cost.scatter_marshal(ctx.r), thread=thread)
    if ctx.redistribution == "packfree":
        plan = redist_mod.scatter_fw_plan(ctx.layout, ctx.r, ctx.data_mode)
        recvbuf = ctx.recv_buffer("planes", plan)
        sendbuf = None if group_block is None else np.ascontiguousarray(group_block)
        yield ctx.rank.alltoallw(
            ctx.scatter_comm, sendbuf, recvbuf,
            plan.send_blocks, plan.recv_blocks, key=key, thread=thread,
        )
        # The resumed yield means the exchange executed (elements moved
        # straight from the stick block into every peer's planes), so the
        # block is free to recycle.
        ctx.release(group_block)
        return recvbuf
    parts = scatter_mod.scatter_fw_parts(ctx.layout, ctx.r, group_block)
    received = yield ctx.rank.alltoall(ctx.scatter_comm, parts, key=key, thread=thread)
    # The resumed yield means the collective executed and copied the send
    # views, so the stick block is free to recycle.
    ctx.release(group_block)
    desc = ctx.layout.desc
    out = None
    if group_block is not None:
        ctx.pack_copies += 1
        out = ctx.acquire("planes", (ctx.layout.npp(ctx.r), desc.nr1, desc.nr2))
    return scatter_mod.assemble_planes(
        ctx.layout, ctx.r, received, out=out, workspace=ctx.workspace
    )


def step_fft_xy(ctx: FftPhaseContext, planes, sign: int, thread: int = 0):
    """Batched 2D transforms of this rank's planes."""
    yield ctx.rank.compute("fft_xy", ctx.cost.fft_xy(ctx.r), thread=thread)
    if planes is None:
        return None
    result = ctx.kernels.cft_2xy(planes, sign)
    ctx.release(planes)
    return result


def step_vofr(ctx: FftPhaseContext, planes, thread: int = 0):
    """Apply the real-space potential on this rank's planes."""
    yield ctx.rank.compute("vofr", ctx.cost.vofr(ctx.r), thread=thread)
    if planes is None:
        return None
    return apply_potential(planes, ctx.v_slab)


def step_scatter_bw(ctx: FftPhaseContext, planes, key: object, thread: int = 0):
    """Backward scatter: planes -> sticks within the scatter group."""
    yield ctx.rank.compute("scatter_reorder", ctx.cost.scatter_marshal(ctx.r), thread=thread)
    layout = ctx.layout
    if ctx.redistribution == "packfree":
        plan = redist_mod.scatter_bw_plan(layout, ctx.r, ctx.data_mode)
        recvbuf = ctx.recv_buffer("stick_block", plan)
        # No-op for the common contiguous case; backends whose xy transform
        # hands back a strided view get one normalizing copy here.
        sendbuf = None if planes is None else np.ascontiguousarray(planes)
        yield ctx.rank.alltoallw(
            ctx.scatter_comm, sendbuf, recvbuf,
            plan.send_blocks, plan.recv_blocks, key=key, thread=thread,
        )
        ctx.release(planes)
        return recvbuf
    gather = None
    if planes is not None:
        ctx.pack_copies += 1
        nsticks = int(layout.scatter_stick_offsets()[-1])
        gather = ctx.acquire("sbw_gather", (nsticks, layout.npp(ctx.r)))
    parts = scatter_mod.scatter_bw_parts(layout, ctx.r, planes, out=gather)
    received = yield ctx.rank.alltoall(ctx.scatter_comm, parts, key=key, thread=thread)
    ctx.release(planes, gather)
    out = (
        ctx.acquire("stick_block", (layout.nst_group(ctx.r), layout.desc.nr3))
        if planes is not None
        else None
    )
    return scatter_mod.assemble_group_block_from_planes(
        layout, ctx.r, received, out=out
    )


def step_unpack(
    ctx: FftPhaseContext,
    group_block,
    bands: _t.Sequence[int],
    key: object,
    thread: int = 0,
    mark_completed: bool = True,
):
    """Extraction + unpack Alltoallv; stores per-band results.

    With task groups on, this rank extracts band ``t``'s coefficients from
    its group block (one share per member) and the Alltoallv returns every
    member its own-sticks share of every band; with task groups off the
    extraction is purely local.

    ``mark_completed=False`` leaves ``ctx.completed`` untouched — the task
    executors defer the marking to task *success*, so an execution that
    fault injection later discards never advances the checkpoint frontier.
    """
    if ctx.pack_comm is not None:
        yield ctx.rank.compute("unpack_sticks", ctx.cost.unpack_extract(ctx.r), thread=thread)
        if ctx.redistribution == "packfree":
            plan = redist_mod.pack_bw_plan(ctx.layout, ctx.p, ctx.data_mode)
            # Fresh (non-arena) receive rows: the per-band results outlive
            # the run, so they must not return to the buffer pool.
            recvbuf = (
                np.empty(plan.recv_shape, dtype=np.complex128)
                if group_block is not None
                else None
            )
            sendbuf = (
                None if group_block is None else np.ascontiguousarray(group_block)
            )
            yield ctx.rank.alltoallw(
                ctx.pack_comm, sendbuf, recvbuf,
                plan.send_blocks, plan.recv_blocks, key=key, thread=thread,
            )
            ctx.release(group_block)
            yield ctx.rank.compute("unpack_sticks", ctx.cost.unpack(ctx.p) * len(bands), thread=thread)
            if mark_completed:
                ctx.completed.update(bands)
            if recvbuf is not None:
                for t, band in enumerate(bands):
                    ctx.results[band] = recvbuf[t]
            return None
        gather = None
        member_coeffs = None
        if group_block is not None:
            ctx.pack_copies += 1
            ngw_group = int(ctx.layout.group_coeff_offsets(ctx.r)[-1])
            gather = ctx.acquire("coeff_gather", (ngw_group,))
            member_coeffs = wave_mod.extract_group_coefficients(
                ctx.layout, ctx.r, group_block, out=gather
            )
        parts = pack_mod.unpack_parts(ctx.layout, ctx.r, member_coeffs)
        received = yield ctx.rank.alltoall(ctx.pack_comm, parts, key=key, thread=thread)
        ctx.release(group_block, gather)
        yield ctx.rank.compute("unpack_sticks", ctx.cost.unpack(ctx.p) * len(bands), thread=thread)
        if mark_completed:
            ctx.completed.update(bands)
        if any(isinstance(b, MetaPayload) for b in received):
            return None
        for band, coeffs in zip(bands, received):
            ctx.results[band] = coeffs
        return None

    yield ctx.rank.compute("unpack_sticks", ctx.cost.unpack(ctx.p) * len(bands), thread=thread)
    if mark_completed:
        ctx.completed.update(bands)
    if group_block is None:
        return None
    # The gather owns fresh storage, so the consumed block can be recycled.
    # (In the task executors this path's input is a fresh array — the arena
    # block release matters for the linear executors and per-band chains.)
    ctx.results[bands[0]] = extract_from_sticks(ctx.layout, ctx.p, group_block)
    ctx.release(group_block)
    return None


def step_transpose_zy(
    ctx: FftPhaseContext, block, key: object, thread: int = 0, inverse: bool = False
):
    """Row-internal pencil transpose: z-stick block <-> y-brick (Pc ranks).

    Forward consumes the stick block and yields the zero-filled
    ``(nx_i, nz_j, nr2)`` y-brick; ``inverse=True`` swaps roles (the stick
    block comes back fully covered).  Always pack-free (Alltoallw).
    """
    yield ctx.rank.compute(
        "scatter_reorder", ctx.cost.pencil_zy_marshal(ctx.r), thread=thread
    )
    plan = redist_mod.pencil_zy_plan(ctx.layout, ctx.r, ctx.data_mode, inverse=inverse)
    recvbuf = ctx.recv_buffer("stick_block" if inverse else "ybrick", plan)
    sendbuf = None if block is None else np.ascontiguousarray(block)
    yield ctx.rank.alltoallw(
        ctx.row_comm, sendbuf, recvbuf,
        plan.send_blocks, plan.recv_blocks, key=key, thread=thread,
    )
    ctx.release(block)
    return recvbuf


def step_transpose_yx(
    ctx: FftPhaseContext, block, key: object, thread: int = 0, inverse: bool = False
):
    """Column-internal pencil transpose: y-brick <-> x-brick (Pr ranks)."""
    yield ctx.rank.compute(
        "scatter_reorder", ctx.cost.pencil_yx_marshal(ctx.r), thread=thread
    )
    plan = redist_mod.pencil_yx_plan(ctx.layout, ctx.r, ctx.data_mode, inverse=inverse)
    recvbuf = ctx.recv_buffer("ybrick" if inverse else "xbrick", plan)
    sendbuf = None if block is None else np.ascontiguousarray(block)
    yield ctx.rank.alltoallw(
        ctx.col_comm, sendbuf, recvbuf,
        plan.send_blocks, plan.recv_blocks, key=key, thread=thread,
    )
    ctx.release(block)
    return recvbuf


def step_fft_pencil(
    ctx: FftPhaseContext, brick, sign: int, axis: str, thread: int = 0
):
    """Batched 1D transforms along a pencil brick's last axis (y or x).

    Bricks keep the transform axis contiguous and last, so the whole brick
    is one ``(rows, n)`` batched 1D call — the same kernel the z stage uses.
    Charged to the ``fft_z`` phase (same contention profile: batched 1D).
    """
    cost = ctx.cost.fft_y(ctx.r) if axis == "y" else ctx.cost.fft_x(ctx.r)
    yield ctx.rank.compute("fft_z", cost, thread=thread)
    if brick is None:
        return None
    kind = "ybrick" if axis == "y" else "xbrick"
    out = ctx.acquire(kind, brick.shape)
    if out is None:
        out = np.empty(brick.shape, dtype=np.complex128)
    n = brick.shape[-1]
    ctx.kernels.cft_1z(brick.reshape(-1, n), sign, out=out.reshape(-1, n))
    ctx.release(brick)
    return out


def step_pencil_vofr(ctx: FftPhaseContext, brick, thread: int = 0):
    """Apply the potential on this rank's x-brick (``v_slab`` holds the
    matching x-brick potential block in pencil mode)."""
    yield ctx.rank.compute("vofr", ctx.cost.pencil_vofr(ctx.r), thread=thread)
    if brick is None:
        return None
    return apply_potential(brick, ctx.v_slab)


def pencil_middle_steps(
    ctx: FftPhaseContext, group, my_band: int, key_prefix: object, thread: int = 0
):
    """The pencil replacement for the slab scatter/xy middle section.

    Takes the z-transformed stick block, runs the two forward transposes
    with the y/x 1D stages and VOFR, then the inverse transposes; returns
    the stick block ready for the inverse z transform.  The z+y+x 1D chain
    equals the slab z+xy 3D transform to roundoff.
    """
    brick = yield from step_transpose_zy(ctx, group, key=(key_prefix, "tzy", my_band), thread=thread)
    brick = yield from step_fft_pencil(ctx, brick, +1, "y", thread)
    xbrick = yield from step_transpose_yx(ctx, brick, key=(key_prefix, "tyx", my_band), thread=thread)
    xbrick = yield from step_fft_pencil(ctx, xbrick, +1, "x", thread)
    xbrick = yield from step_pencil_vofr(ctx, xbrick, thread)
    xbrick = yield from step_fft_pencil(ctx, xbrick, -1, "x", thread)
    brick = yield from step_transpose_yx(ctx, xbrick, key=(key_prefix, "txy", my_band), thread=thread, inverse=True)
    brick = yield from step_fft_pencil(ctx, brick, -1, "y", thread)
    group = yield from step_transpose_zy(ctx, brick, key=(key_prefix, "tyz", my_band), thread=thread, inverse=True)
    return group


def band_chain_steps(
    ctx: FftPhaseContext,
    bands: _t.Sequence[int],
    key_prefix: object,
    thread: int = 0,
    mark_completed: bool = True,
):
    """The full nine-step chain for one band group (Fig. 1's loop body).

    ``bands`` are the complex bands of this iteration in task-group order
    (``bands[t]`` is handled by pack-group member ``t``); this rank carries
    ``bands[ctx.t]`` through the z/scatter/xy middle section — or, in
    pencil mode, through the transpose_zy/fft_y/transpose_yx/fft_x middle
    (:func:`pencil_middle_steps`).
    """
    if len(bands) != ctx.layout.T:
        raise ValueError(f"band group must have T={ctx.layout.T} entries, got {len(bands)}")
    my_band = bands[ctx.t]
    blocks = yield from step_prepare(ctx, bands, thread)
    group = yield from step_pack(ctx, blocks, key=(key_prefix, "pack"), thread=thread)
    group = yield from step_fft_z(ctx, group, +1, thread)
    if ctx.layout.decomposition == "pencil":
        group = yield from pencil_middle_steps(ctx, group, my_band, key_prefix, thread)
    else:
        planes = yield from step_scatter_fw(ctx, group, key=(key_prefix, "sfw", my_band), thread=thread)
        planes = yield from step_fft_xy(ctx, planes, +1, thread)
        planes = yield from step_vofr(ctx, planes, thread)
        planes = yield from step_fft_xy(ctx, planes, -1, thread)
        group = yield from step_scatter_bw(ctx, planes, key=(key_prefix, "sbw", my_band), thread=thread)
    group = yield from step_fft_z(ctx, group, -1, thread)
    yield from step_unpack(
        ctx,
        group,
        bands,
        key=(key_prefix, "unpack"),
        thread=thread,
        mark_completed=mark_completed,
    )
