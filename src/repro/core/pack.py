"""Pack/unpack of the NTG group sticks (the first MPI layer's marshalling).

With task groups on, each process owns only a 1/P share of every band's
G-sphere coefficients; the pack Alltoallv inside each pack group (T
consecutive ranks) redistributes the *coefficients* — process (r, t) sends
band t' of the current group (its own-sticks share, ``ngw_of(p)`` complex
values) to member t', and receives band t's shares from every member.  The
receiver then expands them into its group stick block (the low-IPC
scatter-write the paper's Fig. 3 timeline shows around the Alltoallv).

Note the exchanged payloads are *sphere coefficients* (``ngw``-sized), not
full stick columns — this is why the ntg=P extreme of §II.A shifts the
G-vector redistribution cost into pack/unpack while the scatter (which moves
full grid columns) vanishes.
"""

from __future__ import annotations

from repro.grids.descriptor import DistributedLayout
from repro.mpisim.datatypes import MetaPayload

__all__ = ["pack_parts", "unpack_parts", "pack_part_bytes"]

_COMPLEX = 16  # bytes per complex128 coefficient


def pack_part_bytes(layout: DistributedLayout, p: int) -> float:
    """Size of one pack/unpack part from process ``p`` (one band's share)."""
    return float(layout.ngw_of(p) * _COMPLEX)


def pack_parts(
    layout: DistributedLayout, p: int, band_coeffs: list | None
) -> list:
    """Parts for the pack Alltoallv of process ``p``.

    ``band_coeffs[t']`` is band ``t'``'s packed coefficients on ``p``'s own
    sticks (or ``None`` in meta mode).  Part ``t'`` goes to pack-group
    member ``t'``, who assembles band ``t'``.
    """
    T = layout.T
    if band_coeffs is None:
        return [MetaPayload(pack_part_bytes(layout, p)) for _ in range(T)]
    if len(band_coeffs) != T:
        raise ValueError(f"need {T} band coefficient arrays, got {len(band_coeffs)}")
    ngw = layout.ngw_of(p)
    for t, c in enumerate(band_coeffs):
        if c.shape != (ngw,):
            raise ValueError(
                f"band {t} coefficients have shape {c.shape}; process {p} owns {ngw} G-vectors"
            )
    # Pass the arrays through uncopied: the simulated collective copies
    # payloads at delivery (see mpisim.datatypes.payload_like), so handing
    # out views is safe and the old per-band ascontiguousarray was pure
    # overhead.
    return list(band_coeffs)


def unpack_parts(
    layout: DistributedLayout, r: int, member_coeffs: list | None
) -> list:
    """Parts for the unpack Alltoallv: each member's extracted coefficients.

    ``member_coeffs[t']`` (from
    :func:`~repro.core.wave.extract_group_coefficients`) is this band's
    share on member ``t'``'s sticks and is returned to member ``t'``.
    """
    if member_coeffs is None:
        return [
            MetaPayload(pack_part_bytes(layout, layout.proc_of(r, t)))
            for t in range(layout.T)
        ]
    if len(member_coeffs) != layout.T:
        raise ValueError(
            f"need {layout.T} member arrays, got {len(member_coeffs)}"
        )
    return list(member_coeffs)
