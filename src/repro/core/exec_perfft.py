"""Opt 2: each FFT one independent OmpSs task (paper Fig. 5).

The FFT task groups are replaced by OmpSs threads: each MPI rank owns the
full first-layer data distribution (ntg = 1) and submits one task per
complex band; tasks carry distinct ``("psis", band)`` regions, so — as the
paper puts it — "since there are no dependencies between the loop
iterations each task can be scheduled without any further constraints."

The dynamic schedule de-synchronises the compute phases across the node:
at any instant only a subset of hardware threads is in the high-intensity
xy phase while others prepare, pack, or wait in scatters — softening the
bandwidth contention and raising the main phase's IPC (the Fig. 7 effect).

MPI note: scatter Alltoalls run *from inside tasks*, concurrently for
several bands on one communicator; matching uses explicit per-band keys
(see :mod:`repro.mpisim`).  The FIFO ready queue keeps all ranks working on
overlapping band windows so keyed collectives pair up promptly.
"""

from __future__ import annotations

import typing as _t

from repro import telemetry as _telemetry
from repro.core.pipeline import FftPhaseContext, band_chain_steps
from repro.ompss import TaskRuntime

__all__ = ["make_perfft_program"]


def make_perfft_program(
    ctx_of: _t.Callable[[object], FftPhaseContext],
    n_complex_bands: int,
    n_workers: int,
    policy: str = "fifo",
    task_overhead: float = 3.0e-6,
    task_observer: _t.Callable | None = None,
    mpi_task_switching: bool = False,
    start_band: int = 0,
):
    """Build the per-rank program submitting one task per band.

    ``start_band`` skips bands already completed in a prior attempt
    (checkpoint resume); it must be the same on every rank.
    """

    def program(rank):
        ctx = ctx_of(rank)
        if ctx.layout.T != 1:
            raise ValueError("per-FFT tasks require task groups off (T == 1)")
        rt = TaskRuntime(
            rank,
            n_workers=n_workers,
            policy=policy,
            task_overhead=task_overhead,
            mpi_task_switching=mpi_task_switching,
        )
        if task_observer is not None:
            rt.add_observer(lambda rec, _r=rank.rank: task_observer(_r, rec))
        rt.start()
        tel = _telemetry.current()
        track = (rank.rank, 0)

        def clock():
            return rank.sim.now

        with tel.spans.span(track, "exec_perfft", "executor", clock):
            with tel.spans.span(
                track, "submit", "sub-phase", clock,
                n_tasks=n_complex_bands - start_band,
            ):
                for band in range(start_band, n_complex_bands):

                    def body(worker, band=band):
                        # Completion is marked on task *success* below, so a
                        # discarded (fault-injected) execution never advances
                        # the checkpoint frontier.
                        yield from band_chain_steps(
                            ctx,
                            [band],
                            key_prefix=("band", band),
                            thread=worker.thread_index,
                            mark_completed=False,
                        )

                    task = rt.submit(f"fft_band{band}", body, inouts=[("psis", band)])
                    task.done.add_callback(
                        lambda ev, band=band: (
                            ctx.completed.add(band) if ev.exception is None else None
                        )
                    )
            with tel.spans.span(track, "taskwait", "sub-phase", clock):
                yield rt.taskwait()
            yield rt.shutdown()
        return ctx

    return program
