"""Physical observables of the kernel (cross-checks beyond array equality).

The FFT phase applies ``psi_out = FW(V(r) * BW(psi_in))``.  The potential
expectation value

    E_b = <psi_b | V | psi_b> = sum_r |psi_b(r)|^2 V(r) / N

is then expressible *entirely in G space* as ``E_b = <c_in_b, c_out_b>``
(Parseval plus the sphere support of the coefficients), so it can be
computed from the distributed per-rank outputs with a plain inner product
and a sum over ranks — no extra transform.  Because V is real and positive,
every ``E_b`` must be real and positive: a physics-level invariant the
integration tests check on every executor, complementary to the
bitwise-against-reference comparison.
"""

from __future__ import annotations

import numpy as np

from repro.core.driver import RunResult

__all__ = ["potential_expectation", "potential_expectation_dense"]


def potential_expectation(result: RunResult) -> np.ndarray:
    """Per-band ``<psi|V|psi>`` from the distributed run (data mode).

    Computed as ``sum_G conj(c_in(G)) * c_out(G)`` accumulated over each
    rank's owned G-vectors.
    """
    if result.input_coeffs is None:
        raise RuntimeError("potential_expectation requires data mode")
    n_bands = result.config.n_complex_bands
    acc = np.zeros(n_bands, dtype=np.complex128)
    for ctx in result.contexts:
        if not ctx.results:
            continue
        g_idx, _sl, _iz = result.layout.local_g_table(ctx.p)
        c_in_local = result.input_coeffs[:, g_idx]
        for band, c_out in ctx.results.items():
            acc[band] += np.vdot(c_in_local[band], c_out)
    return acc


def potential_expectation_dense(result: RunResult) -> np.ndarray:
    """The same observable straight from the dense real-space definition."""
    if result.input_coeffs is None or result.potential is None:
        raise RuntimeError("potential_expectation_dense requires data mode")
    from repro.fft import invfft

    desc = result.desc
    idx = desc.grid_idx
    v_xyz = result.potential.transpose(1, 2, 0)
    out = np.zeros(result.config.n_complex_bands, dtype=np.complex128)
    for b in range(result.config.n_complex_bands):
        field = np.zeros(desc.grid_shape, dtype=np.complex128)
        field[idx[:, 0], idx[:, 1], idx[:, 2]] = result.input_coeffs[b]
        for axis in range(3):
            field = invfft(field, axis=axis)
        out[b] = np.sum(np.abs(field) ** 2 * v_xyz) / desc.nnr
    return out
