"""Pack-free redistribution plans: Alltoallw block descriptors per layout.

The legacy data plane marshals every exchange through staging buffers —
per-peer slab extraction, a packed Alltoall, then an assembly pass on the
receive side.  The plans here describe the *same* exchanges as per-peer
:class:`~repro.mpisim.datatypes.BlockType` descriptors into the flat source
and destination buffers, so the simulated ``MPI_Alltoallw`` moves each
element exactly once, straight from its source view into its destination
slot.  Steady-state slab traffic then performs **zero** pack/unpack copies
(the ``dataplane.pack_copies`` counter pins this).

Descriptor volumes are arranged to equal the legacy packed part sizes
byte-for-byte, and the simulated collective prices per-peer bytes the same
way for both ops — so switching a run between ``redistribution="packed"``
and ``"packfree"`` changes *host* work only, never the simulated timeline.

Four slab plans (forward/backward of each MPI layer) and two pencil
transposes (plus inverses) cover the data plane:

* ``pack_fw`` / ``pack_bw`` — the task-group pack/unpack Alltoallv
  (T members): contiguous coefficient rows <-> scattered (stick, z) slots
  of the group stick block via the layout's cached flat index maps.
* ``scatter_fw`` / ``scatter_bw`` — the slab scatter (R members): z-ranges
  of stick columns (strided) <-> stick positions inside xy planes
  (indexed).
* ``pencil_zy`` / ``pencil_yx`` and inverses — the two pencil transposes
  (row-internal over Pc ranks, column-internal over Pr ranks); an inverse
  plan is its forward plan with send/recv roles swapped.

Plans are built once per (layout, endpoint, mode) and cached on the layout
(like the workspace arenas), so descriptor construction never rides the
steady-state path.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.grids.descriptor import DistributedLayout
from repro.mpisim.datatypes import BlockType

__all__ = [
    "ExchangePlan",
    "pack_fw_plan",
    "pack_bw_plan",
    "scatter_fw_plan",
    "scatter_bw_plan",
    "pencil_zy_plan",
    "pencil_yx_plan",
]

_LOCK = threading.Lock()
_PLAN_ATTR = "_redistribute_plans"


class ExchangePlan:
    """One endpoint's half of an Alltoallw exchange.

    ``send_blocks[j]`` / ``recv_blocks[j]`` index this endpoint's flat send
    and receive buffers for communicator-local peer ``j``.  ``recv_shape``
    is the receive buffer to allocate; ``zero_fill`` says whether its
    untouched slots are semantically zero (sparse stick coverage) or the
    incoming blocks cover it completely.
    """

    __slots__ = ("send_blocks", "recv_blocks", "recv_shape", "zero_fill")

    def __init__(self, send_blocks, recv_blocks, recv_shape, zero_fill):
        self.send_blocks = list(send_blocks)
        self.recv_blocks = list(recv_blocks)
        self.recv_shape = tuple(int(n) for n in recv_shape)
        self.zero_fill = bool(zero_fill)

    def swapped(self, recv_shape, zero_fill) -> "ExchangePlan":
        """The inverse exchange: send what was received, receive what was sent."""
        return ExchangePlan(self.recv_blocks, self.send_blocks, recv_shape, zero_fill)


def _cache(layout: DistributedLayout) -> dict:
    cache = getattr(layout, _PLAN_ATTR, None)
    if cache is None:
        with _LOCK:
            cache = getattr(layout, _PLAN_ATTR, None)
            if cache is None:
                cache = {}
                setattr(layout, _PLAN_ATTR, cache)
    return cache


def _cached(layout: DistributedLayout, key: tuple, build):
    cache = _cache(layout)
    plan = cache.get(key)
    if plan is None:
        plan = build()
        cache[key] = plan
    return plan


# -- pack layer (T members; peers are task-group indices) ---------------------


def pack_fw_plan(layout: DistributedLayout, p: int, data_mode: bool) -> ExchangePlan:
    """Pack Alltoallv of process ``p``: band rows -> group stick block.

    Send side is the ``(T, ngw_of(p))`` contiguous band-row block from
    ``prepare``; row ``t'`` goes whole to member ``t'``.  Receive side is
    the zero-filled ``(nst_group(r), nr3)`` group stick block; member
    ``t''``'s coefficients land at its segment of the cached group flat
    index map — the scatter-write ``expand_group_block`` used to stage.
    """
    return _cached(layout, ("pack_fw", p, data_mode), lambda: _build_pack(layout, p, data_mode))


def pack_bw_plan(layout: DistributedLayout, p: int, data_mode: bool) -> ExchangePlan:
    """Unpack Alltoallv: group stick block -> per-band coefficient rows."""

    def build() -> ExchangePlan:
        fw = pack_fw_plan(layout, p, data_mode)
        return fw.swapped((layout.T, layout.ngw_of(p)), zero_fill=False)

    return _cached(layout, ("pack_bw", p, data_mode), build)


def _build_pack(layout: DistributedLayout, p: int, data_mode: bool) -> ExchangePlan:
    r, _t_own = layout.rt_of(p)
    T = layout.T
    ngw_p = layout.ngw_of(p)
    recv_shape = (layout.nst_group(r), layout.desc.nr3)
    if not data_mode:
        send = [BlockType.meta(ngw_p) for _ in range(T)]
        recv = [
            BlockType.meta(layout.ngw_of(layout.proc_of(r, t))) for t in range(T)
        ]
        return ExchangePlan(send, recv, recv_shape, zero_fill=True)
    send = [BlockType.strided(t * ngw_p, 1, ngw_p, max(ngw_p, 1)) for t in range(T)]
    offsets = layout.group_coeff_offsets(r)
    flat = layout.group_flat_index(r)
    recv = [
        BlockType.indexed(flat[int(offsets[t]) : int(offsets[t + 1])])
        for t in range(T)
    ]
    return ExchangePlan(send, recv, recv_shape, zero_fill=True)


# -- slab scatter layer (R members; peers are scatter ranks) ------------------


def scatter_fw_plan(layout: DistributedLayout, r: int, data_mode: bool) -> ExchangePlan:
    """Forward slab scatter of rank ``r``: stick block -> xy planes.

    Sends peer ``j`` the z-range ``z_slice(j)`` of every group stick
    (strided over the ``(nst_group(r), nr3)`` block); receives peer ``j``'s
    sticks at their (ix, iy) plane positions for every owned plane
    (indexed into the zero-filled ``(npp(r), nr1, nr2)`` planes).
    """
    return _cached(
        layout, ("scatter_fw", r, data_mode), lambda: _build_scatter(layout, r, data_mode)
    )


def scatter_bw_plan(layout: DistributedLayout, r: int, data_mode: bool) -> ExchangePlan:
    """Backward slab scatter: xy planes -> stick block (full z coverage)."""

    def build() -> ExchangePlan:
        fw = scatter_fw_plan(layout, r, data_mode)
        return fw.swapped(
            (layout.nst_group(r), layout.desc.nr3), zero_fill=False
        )

    return _cached(layout, ("scatter_bw", r, data_mode), build)


def _build_scatter(layout: DistributedLayout, r: int, data_mode: bool) -> ExchangePlan:
    desc = layout.desc
    R = layout.R
    npp_r = layout.npp(r)
    recv_shape = (npp_r, desc.nr1, desc.nr2)
    if not data_mode:
        send = [
            BlockType.meta(layout.nst_group(r) * layout.npp(j)) for j in range(R)
        ]
        recv = [
            BlockType.meta(layout.nst_group(j) * npp_r) for j in range(R)
        ]
        return ExchangePlan(send, recv, recv_shape, zero_fill=True)
    send = [
        BlockType.strided(layout.z_offset(j), layout.nst_group(r), layout.npp(j), desc.nr3)
        for j in range(R)
    ]
    offsets = layout.scatter_stick_offsets()
    plane_pos = layout.scatter_plane_index()
    z_steps = np.arange(npp_r, dtype=np.intp) * (desc.nr1 * desc.nr2)
    recv = []
    for j in range(R):
        pos = plane_pos[int(offsets[j]) : int(offsets[j + 1])].astype(np.intp)
        recv.append(BlockType.indexed((pos[:, None] + z_steps[None, :]).reshape(-1)))
    return ExchangePlan(send, recv, recv_shape, zero_fill=True)


# -- pencil transposes (row / column internal) --------------------------------


def pencil_zy_plan(
    layout: DistributedLayout, r: int, data_mode: bool, inverse: bool = False
) -> ExchangePlan:
    """Row-internal transpose of rank ``r = (i, j)``: z-sticks <-> y-brick.

    Forward sends row peer ``(i, j')`` the ``Z_{j'}`` z-range of every
    group stick and receives each peer's sticks at their ``(ix - xlo, *,
    iy)`` positions of the zero-filled ``(nx_i, nz_j, nr2)`` y-brick.
    The inverse swaps roles; its strided receive covers the stick block's
    full z extent, so no zero fill.
    """

    def build() -> ExchangePlan:
        fw = _cached(
            layout,
            ("pencil_zy", r, data_mode),
            lambda: _build_pencil_zy(layout, r, data_mode),
        )
        if not inverse:
            return fw
        return fw.swapped((layout.nst_group(r), layout.desc.nr3), zero_fill=False)

    return _cached(layout, ("pencil_zy", r, data_mode, inverse), build)


def pencil_yx_plan(
    layout: DistributedLayout, r: int, data_mode: bool, inverse: bool = False
) -> ExchangePlan:
    """Column-internal transpose of rank ``r = (i, j)``: y-brick <-> x-brick.

    Both directions are dense (every brick slot carries data), so neither
    receive buffer needs zero fill.
    """

    def build() -> ExchangePlan:
        fw = _cached(
            layout,
            ("pencil_yx", r, data_mode),
            lambda: _build_pencil_yx(layout, r, data_mode),
        )
        if not inverse:
            return fw
        grid = layout.pencil
        assert grid is not None
        i, j = grid.coords(r)
        return fw.swapped((grid.nx(i), grid.nz(j), layout.desc.nr2), zero_fill=False)

    return _cached(layout, ("pencil_yx", r, data_mode, inverse), build)


def _pencil_grid(layout: DistributedLayout):
    grid = layout.pencil
    if grid is None:
        raise ValueError("pencil plans need a pencil-decomposed layout")
    return grid


def _build_pencil_zy(layout: DistributedLayout, r: int, data_mode: bool) -> ExchangePlan:
    grid = _pencil_grid(layout)
    desc = layout.desc
    i, j = grid.coords(r)
    nst_r = layout.nst_group(r)
    nzj = grid.nz(j)
    recv_shape = (grid.nx(i), nzj, desc.nr2)
    if not data_mode:
        send = [BlockType.meta(nst_r * grid.nz(jj)) for jj in range(grid.Pc)]
        recv = [
            BlockType.meta(layout.nst_group(grid.rank_of(i, jj)) * nzj)
            for jj in range(grid.Pc)
        ]
        return ExchangePlan(send, recv, recv_shape, zero_fill=True)
    send = [
        BlockType.strided(grid.z_span(jj)[0], nst_r, grid.nz(jj), desc.nr3)
        for jj in range(grid.Pc)
    ]
    xlo, _xhi = grid.x_span(i)
    z_steps = np.arange(nzj, dtype=np.intp) * desc.nr2
    recv = []
    for jj in range(grid.Pc):
        coords = layout.stick_coords(layout.group_sticks(grid.rank_of(i, jj)))
        base = ((coords[:, 0] - xlo) * (nzj * desc.nr2) + coords[:, 1]).astype(np.intp)
        recv.append(BlockType.indexed((base[:, None] + z_steps[None, :]).reshape(-1)))
    return ExchangePlan(send, recv, recv_shape, zero_fill=True)


def _build_pencil_yx(layout: DistributedLayout, r: int, data_mode: bool) -> ExchangePlan:
    grid = _pencil_grid(layout)
    desc = layout.desc
    i, j = grid.coords(r)
    nxi, nzj, nyi = grid.nx(i), grid.nz(j), grid.ny(i)
    recv_shape = (nyi, nzj, desc.nr1)
    if not data_mode:
        send = [BlockType.meta(nxi * nzj * grid.ny(ii)) for ii in range(grid.Pr)]
        recv = [BlockType.meta(grid.nx(ii) * nzj * nyi) for ii in range(grid.Pr)]
        return ExchangePlan(send, recv, recv_shape, zero_fill=False)
    send = [
        BlockType.strided(grid.y_span(ii)[0], nxi * nzj, grid.ny(ii), desc.nr2)
        for ii in range(grid.Pr)
    ]
    # Receive order matches the sender's (x, z, y) item order: peer ii's
    # global x-columns land at x-brick flat slots ((yy * nzj) + zz) * nr1 + x.
    yz = (
        np.arange(nyi, dtype=np.intp)[None, None, :] * nzj
        + np.arange(nzj, dtype=np.intp)[None, :, None]
    ) * desc.nr1
    recv = []
    for ii in range(grid.Pr):
        xlo_p, xhi_p = grid.x_span(ii)
        idx = yz + np.arange(xlo_p, xhi_p, dtype=np.intp)[:, None, None]
        recv.append(BlockType.indexed(idx.reshape(-1)))
    return ExchangePlan(send, recv, recv_shape, zero_fill=False)
