"""Dense single-grid reference and validation helpers.

The distributed pipeline applies ``psi_out = FW( V(r) * BW(psi_in) )`` band
by band.  The reference computes the same operator on one full 3D grid with
the library's own (numpy-validated) transforms; every executor, on every
process grid and in any task schedule, must match it to near machine
precision — the strongest correctness statement the test suite makes.
"""

from __future__ import annotations

import numpy as np

from repro.fft import cfft3d
from repro.grids.descriptor import DistributedLayout, FftDescriptor

__all__ = ["dense_reference", "gather_results", "max_relative_error"]


def dense_reference(
    desc: FftDescriptor, coeffs: np.ndarray, potential: np.ndarray
) -> np.ndarray:
    """Apply the kernel's operator densely.

    Parameters
    ----------
    desc:
        Global FFT geometry.
    coeffs:
        ``(n_bands, ngw)`` packed sphere coefficients.
    potential:
        ``V[iz, ix, iy]`` real-space potential (plane-major layout).

    Returns the ``(n_bands, ngw)`` output coefficients.
    """
    if coeffs.ndim != 2 or coeffs.shape[1] != desc.ngw:
        raise ValueError(f"coeffs must be (n_bands, {desc.ngw}), got {coeffs.shape}")
    idx = desc.grid_idx
    v_xyz = potential.transpose(1, 2, 0)  # V[ix, iy, iz]
    out = np.empty_like(coeffs)
    for b in range(coeffs.shape[0]):
        field = np.zeros(desc.grid_shape, dtype=np.complex128)
        field[idx[:, 0], idx[:, 1], idx[:, 2]] = coeffs[b]
        field = cfft3d(field, +1)
        field *= v_xyz
        field = cfft3d(field, -1)
        out[b] = field[idx[:, 0], idx[:, 1], idx[:, 2]]
    return out


def gather_results(
    layout: DistributedLayout, per_rank_results: list[dict[int, np.ndarray]], n_bands: int
) -> np.ndarray:
    """Assemble the distributed per-band outputs into global coefficients.

    ``per_rank_results[p]`` maps band -> that process's packed output slice
    (its own G-vectors, ascending global order).
    """
    out = np.zeros((n_bands, layout.desc.ngw), dtype=np.complex128)
    seen = np.zeros((n_bands, layout.desc.ngw), dtype=bool)
    for p, results in enumerate(per_rank_results):
        g_idx, _sl, _iz = layout.local_g_table(p)
        for band, values in results.items():
            if values.shape != g_idx.shape:
                raise ValueError(
                    f"rank {p} band {band}: {values.shape[0]} coefficients for "
                    f"{len(g_idx)} owned G-vectors"
                )
            out[band, g_idx] = values
            seen[band, g_idx] = True
    if not seen.all():
        missing = np.argwhere(~seen)
        raise ValueError(
            f"{len(missing)} coefficients were never produced "
            f"(first: band {missing[0][0]}, G {missing[0][1]})"
        )
    return out


def max_relative_error(result: np.ndarray, reference: np.ndarray) -> float:
    """``max |a - b| / max |b|`` — scale-free comparison for the tests."""
    scale = np.abs(reference).max()
    if scale == 0.0:
        return float(np.abs(result).max())
    return float(np.abs(result - reference).max() / scale)
