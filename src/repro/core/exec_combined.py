"""Combined optimization (paper §VI future work): overlap + de-synchronization.

Runs on the Opt 2 mapping (ranks x OmpSs threads, task groups off) but
decomposes each band's FFT into per-step tasks with flow dependencies, like
Opt 1.  Bands are independent chains, so the scheduler can simultaneously
de-synchronise compute phases *and* hide each band's scatter communication
behind other bands' computation — "we try to combine the approaches to
overlap communication and computation with asynchronously scheduled tasks."
"""

from __future__ import annotations

import typing as _t

from repro import telemetry as _telemetry
from repro.core.exec_steps import submit_unit_tasks
from repro.core.pipeline import FftPhaseContext
from repro.ompss import TaskRuntime

__all__ = ["make_combined_program"]


def make_combined_program(
    ctx_of: _t.Callable[[object], FftPhaseContext],
    n_complex_bands: int,
    n_workers: int,
    policy: str = "fifo",
    task_overhead: float = 3.0e-6,
    grainsize_xy: int = 10,
    grainsize_z: int = 200,
    task_observer: _t.Callable | None = None,
    mpi_task_switching: bool = False,
    start_band: int = 0,
):
    """Build the per-rank program: per-band chains of step tasks.

    ``start_band`` skips bands already completed in a prior attempt
    (checkpoint resume); it must be the same on every rank.
    """

    def program(rank):
        ctx = ctx_of(rank)
        if ctx.layout.T != 1:
            raise ValueError("the combined version requires task groups off (T == 1)")
        rt = TaskRuntime(
            rank,
            n_workers=n_workers,
            policy=policy,
            task_overhead=task_overhead,
            mpi_task_switching=mpi_task_switching,
        )
        if task_observer is not None:
            rt.add_observer(lambda rec, _r=rank.rank: task_observer(_r, rec))
        rt.start()
        tel = _telemetry.current()
        track = (rank.rank, 0)

        def clock():
            return rank.sim.now

        with tel.spans.span(track, "exec_combined", "executor", clock):
            with tel.spans.span(
                track, "submit", "sub-phase", clock,
                n_tasks=n_complex_bands - start_band,
            ):
                for band in range(start_band, n_complex_bands):
                    submit_unit_tasks(
                        ctx, rt, ("band", band), [band], grainsize_xy, grainsize_z
                    )
            with tel.spans.span(track, "taskwait", "sub-phase", clock):
                yield rt.taskwait()
            yield rt.shutdown()
        return ctx

    return program
