"""Wavefunction and potential data (data mode) and stick-buffer helpers.

128 real bands pack pairwise into 64 complex fields; the pipeline operates
on the packed fields directly (the paper's 64 FFTs).  Coefficients live on
the wave G-sphere in the canonical global ordering; each process holds the
contiguous-by-G subset belonging to its sticks.

The helpers here are the *data-mode* halves of the pipeline steps: expanding
packed coefficients into stick columns (``prepare_psis``), extracting them
back (``unpack``), and building the real-space potential slabs for VOFR.
All are deterministic functions of the config seed, so every executor sees
identical inputs and must produce identical outputs.
"""

from __future__ import annotations

import numpy as np

from repro.grids.descriptor import DistributedLayout
from repro.simkit.rng import substream

__all__ = [
    "make_band_coefficients",
    "make_potential",
    "distribute_coefficients",
    "expand_to_sticks",
    "extract_from_sticks",
    "expand_group_block",
    "extract_group_coefficients",
    "potential_slab",
    "potential_block",
]


def make_band_coefficients(ngw: int, n_complex_bands: int, seed: int) -> np.ndarray:
    """Global packed coefficients, shape ``(n_complex_bands, ngw)``.

    Each packed field is ``psi_{2b} + i * psi_{2b+1}`` of two random real
    bands (unit-variance complex Gaussians serve the same purpose and keep
    the generator simple); deterministic in ``seed``.
    """
    rng = substream(seed)
    re = rng.standard_normal((n_complex_bands, ngw))
    im = rng.standard_normal((n_complex_bands, ngw))
    return (re + 1j * im) / np.sqrt(2.0)


def make_potential(grid_shape: tuple[int, int, int], seed: int) -> np.ndarray:
    """A real, positive, smooth-ish potential on the full grid.

    Layout is ``V[iz, ix, iy]`` (plane-major, matching the pipeline's plane
    blocks).  Smoothness is irrelevant to the kernel; positivity keeps the
    result well-conditioned for relative-error checks.
    """
    nr1, nr2, nr3 = grid_shape
    rng = substream(seed + 1)
    v = 1.0 + 0.5 * rng.random((nr3, nr1, nr2))
    return v


def distribute_coefficients(
    layout: DistributedLayout, coeffs: np.ndarray
) -> list[np.ndarray]:
    """Split global packed coefficients by stick ownership.

    Returns one ``(n_bands, ngw_of(p))`` array per process, columns in the
    process's ascending global-G order (the packed storage convention).
    The ``take`` gathers straight into fresh C-contiguous storage — unlike
    ``coeffs[:, g_idx]`` (whose mixed basic/advanced indexing yields an
    F-ordered intermediate) followed by ``ascontiguousarray``, it makes no
    second copy.
    """
    out = []
    for p in range(layout.P):
        g_idx, _stick_local, _iz = layout.local_g_table(p)
        out.append(np.take(coeffs, g_idx, axis=1))
    return out


def expand_to_sticks(
    layout: DistributedLayout, p: int, packed: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """``prepare_psis``: scatter packed coefficients into stick columns.

    ``packed`` is ``(ngw_of(p),)``; the result is ``(nst_p, nr3)`` with
    zeros outside the sphere.  ``out``, when given, is the (arena-owned)
    destination block — fully overwritten, returned in place of a fresh
    allocation, bit-identical either way.
    """
    flat = layout.local_flat_index(p)
    if packed.shape != flat.shape:
        raise ValueError(
            f"packed coefficients have {packed.shape[0] if packed.ndim else 0} "
            f"entries; process {p} owns {len(flat)} G-vectors"
        )
    shape = (len(layout.sticks_of(p)), layout.desc.nr3)
    if out is None:
        block = np.zeros(shape, dtype=np.complex128)
    else:
        block = out
        block.fill(0)
    block.reshape(-1)[flat] = packed
    return block


def extract_from_sticks(
    layout: DistributedLayout, p: int, block: np.ndarray
) -> np.ndarray:
    """Inverse of :func:`expand_to_sticks`: gather the sphere coefficients."""
    expected = (len(layout.sticks_of(p)), layout.desc.nr3)
    if block.shape != expected:
        raise ValueError(f"stick block shape {block.shape}; expected {expected}")
    return np.take(block.reshape(-1), layout.local_flat_index(p))


def expand_group_block(
    layout: DistributedLayout,
    r: int,
    member_coeffs: list,
    out: np.ndarray | None = None,
    workspace=None,
) -> np.ndarray:
    """Expand the pack group's received coefficients into the group stick block.

    ``member_coeffs[t]`` holds one band's packed coefficients on member
    ``t``'s sticks (what the pack Alltoallv delivered); each member's values
    land in its segment of the concatenated group buffer, at its own
    (stick, z) positions.  Result: ``(nst_group(r), nr3)``.

    The members' values are concatenated (into ``workspace`` staging when
    available) and written with one fancy put over the group's cached flat
    index map — the batched form of the old per-member scatter-write loop,
    touching exactly the same positions with the same values.
    """
    offsets = layout.group_coeff_offsets(r)
    for t, coeffs in enumerate(member_coeffs):
        ngw_t = int(offsets[t + 1] - offsets[t])
        if coeffs.shape != (ngw_t,):
            raise ValueError(
                f"member {t} of group {r} sent {coeffs.shape} coefficients; "
                f"owns {ngw_t} G-vectors"
            )
    shape = (layout.nst_group(r), layout.desc.nr3)
    if out is None:
        block = np.zeros(shape, dtype=np.complex128)
    else:
        block = out
        block.fill(0)
    ngw_group = int(offsets[-1])
    stage = (
        workspace.acquire("coeff_stage", (ngw_group,))
        if workspace is not None
        else np.empty(ngw_group, dtype=np.complex128)
    )
    np.concatenate(member_coeffs, out=stage)
    block.reshape(-1)[layout.group_flat_index(r)] = stage
    if workspace is not None:
        workspace.release(stage)
    return block


def extract_group_coefficients(
    layout: DistributedLayout, r: int, block: np.ndarray, out: np.ndarray | None = None
) -> list[np.ndarray]:
    """Inverse of :func:`expand_group_block`: per-member packed coefficients.

    One vectorized take over the cached flat index map gathers all members'
    coefficients at once; the returned per-member arrays are contiguous row
    slices of that gather (of ``out`` when given — the caller then owns the
    backing buffer and its lifetime).
    """
    expected = (layout.nst_group(r), layout.desc.nr3)
    if block.shape != expected:
        raise ValueError(f"group block shape {block.shape}; expected {expected}")
    # mode="clip" skips numpy's bounds-check buffering of the out array; the
    # cached index map is in range by construction, so values are identical.
    gathered = np.take(block.reshape(-1), layout.group_flat_index(r), out=out, mode="clip")
    offsets = layout.group_coeff_offsets(r)
    return [
        gathered[int(offsets[t]) : int(offsets[t + 1])] for t in range(layout.T)
    ]


def potential_slab(layout: DistributedLayout, r: int, potential: np.ndarray) -> np.ndarray:
    """Scatter-rank ``r``'s z-plane slab of the potential ``V[iz, ix, iy]``."""
    expected = (layout.desc.nr3, layout.desc.nr1, layout.desc.nr2)
    if potential.shape != expected:
        raise ValueError(f"potential shape {potential.shape}; expected {expected}")
    return potential[layout.z_slice(r)]


def potential_block(layout: DistributedLayout, r: int, potential: np.ndarray) -> np.ndarray:
    """Pencil rank ``r``'s x-brick view of the potential ``V[iz, ix, iy]``.

    The pencil pipeline applies VOFR on the x-brick ``(ny_i, nz_j, nr1)``
    (full x-lines for ``iy in Y_i``, ``iz in Z_j``); this restricts and
    transposes the potential to match that brick layout exactly.
    """
    grid = layout.pencil
    if grid is None:
        raise ValueError("potential_block needs a pencil-decomposed layout")
    expected = (layout.desc.nr3, layout.desc.nr1, layout.desc.nr2)
    if potential.shape != expected:
        raise ValueError(f"potential shape {potential.shape}; expected {expected}")
    i, j = grid.coords(r)
    zlo, zhi = grid.z_span(j)
    ylo, yhi = grid.y_span(i)
    return np.ascontiguousarray(potential[zlo:zhi, :, ylo:yhi].transpose(2, 0, 1))
