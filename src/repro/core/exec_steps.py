"""Opt 1: every pipeline step a task with flow dependencies (paper Fig. 4).

The process grid and the two MPI layers stay exactly as in the original
version, but each step of each loop iteration becomes an OmpSs task; within
an iteration the steps form a flow-dependency chain, while different
iterations are independent ("there is a flow dependency within each loop
iteration, while the iterations itself are independent from each other").
The FFT kernels are additionally split with taskloops — "we converted the
main loops in functions cft_2xy and cft_2z into OpenMP task loops" with
grainsizes 10 (xy planes) and 200 (z sticks).

Overlap comes from the extra hyper-thread worker each process owns (bound
to its own core's spare slot, see ``NodeTopology.place_grouped``): while one
worker blocks inside a communication task, the sibling advances compute
tasks of other iterations — communication hides behind computation.

The dependency encoding uses fan-out/fan-in regions rather than nested
blocking waits: every task of stage ``s`` reads all regions of stage
``s-1`` and writes its own ``(unit, s, k)`` region.  This is semantically
the Fig. 4 graph but deadlock-free on a small worker pool (a parent task
blocking on nested children could strand all workers).

In data mode, chunked FFT stages charge their compute share per chunk but
perform the (atomic, instantaneous) array transform in chunk 0 — the
numerics are schedule-independent by construction.
"""

from __future__ import annotations

import math
import typing as _t

import numpy as np

from repro import telemetry as _telemetry
from repro.core.pipeline import (
    FftPhaseContext,
    step_fft_xy,
    step_fft_z,
    step_pack,
    step_pencil_vofr,
    step_prepare,
    step_scatter_bw,
    step_scatter_fw,
    step_transpose_yx,
    step_transpose_zy,
    step_unpack,
    step_vofr,
)
from repro.ompss import TaskRuntime

__all__ = ["make_steps_program", "submit_unit_tasks"]


def submit_unit_tasks(
    ctx: FftPhaseContext,
    rt: TaskRuntime,
    unit_key: object,
    bands: _t.Sequence[int],
    grainsize_xy: int,
    grainsize_z: int,
) -> None:
    """Submit the step tasks of one loop iteration (or one band).

    Stage graph: prepare -> pack -> fft_z+ -> scatter_fw -> fft_xy+ -> vofr
    -> fft_xy- -> scatter_bw -> fft_z- -> unpack, with the fft stages split
    into grainsize chunks.

    Every stage reads its predecessor's ``state`` slot and writes its own —
    never mutating in place — so a task execution that fault injection
    discards can re-run and produce the identical value (idempotent bodies
    are what makes bounded re-execution safe).  Arena-backed intermediates
    are popped and released in the MPI-bearing stage bodies (which the
    fault layer never replays) once every reader of the block is finalized;
    the remaining fresh intermediates stay alive until the program ends.
    """
    state: dict[str, object] = {}
    my_band = bands[ctx.t]
    prev_regions: list = []
    stage_counter = [0]

    def single(name: str, body_factory):
        stage = stage_counter[0]
        stage_counter[0] += 1
        region = (unit_key, stage, 0)
        task = rt.submit(
            f"{name}:{unit_key}",
            body_factory,
            ins=tuple(prev_regions),
            outs=(region,),
        )
        prev_regions[:] = [region]
        return task

    def chunked(name: str, phase: str, total_instr: float, n_items: int, grainsize: int, transform) -> None:
        stage = stage_counter[0]
        stage_counter[0] += 1
        n_chunks = max(1, math.ceil(max(n_items, 1) / grainsize))
        share = total_instr / n_chunks
        regions = [(unit_key, stage, k) for k in range(n_chunks)]
        for k in range(n_chunks):

            def body(worker, k=k):
                yield ctx.rank.compute(phase, share, thread=worker.thread_index)
                if k == 0:
                    transform()

            rt.submit(
                f"{name}[{k}]:{unit_key}",
                body,
                ins=tuple(prev_regions),
                outs=(regions[k],),
            )
        prev_regions[:] = regions

    # -- stage bodies ---------------------------------------------------------

    def prepare_body(worker):
        state["blocks"] = yield from _strip_compute(
            step_prepare(ctx, bands, worker.thread_index)
        )

    def pack_body(worker):
        state["group_g"] = yield from step_pack(
            ctx, state.get("blocks"), key=(unit_key, "pack"), thread=worker.thread_index
        )

    def fft_z_transform(src, dst, sign):
        def run():
            group = state.get(src)
            if group is None or not ctx.data_mode:
                state[dst] = group
            else:
                state[dst] = ctx.kernels.cft_1z(group, sign)

        return run

    def scatter_fw_body(worker):
        state["planes_fw"] = yield from step_scatter_fw(
            ctx, state.get("group_zfw"), key=(unit_key, "sfw", my_band), thread=worker.thread_index
        )
        # All readers of the pack block (the fft_z chunks) are finalized once
        # this stage runs, and re-execution never replays MPI-bearing tasks —
        # pop-then-release so even a hypothetical re-run releases nothing.
        ctx.release(state.pop("group_g", None))

    def fft_xy_transform(src, dst, sign):
        def run():
            planes = state.get(src)
            if planes is None or not ctx.data_mode:
                state[dst] = planes
            else:
                state[dst] = ctx.kernels.cft_2xy(planes, sign)

        return run

    def vofr_body(worker):
        state["planes_v"] = yield from step_vofr(
            ctx, state.get("planes_xyfw"), thread=worker.thread_index
        )

    def scatter_bw_body(worker):
        state["group_s"] = yield from step_scatter_bw(
            ctx, state.get("planes_xybw"), key=(unit_key, "sbw", my_band), thread=worker.thread_index
        )
        ctx.release(state.pop("planes_fw", None))

    def unpack_body(worker):
        # Completion is marked when the unpack task *succeeds* (below), so a
        # discarded (fault-injected) execution never advances the frontier.
        yield from step_unpack(
            ctx,
            state.get("group_zbw"),
            bands,
            key=(unit_key, "unpack"),
            thread=worker.thread_index,
            mark_completed=False,
        )
        ctx.release(state.pop("group_s", None))

    # -- pencil-decomposition stage bodies ------------------------------------
    # Same region discipline as the slab stages: the transpose (MPI-bearing)
    # bodies pop-and-release the arena brick whose readers — the chunked FFT
    # tasks of the previous stage — are all finalized by the time they run.

    def tzy_fw_body(worker):
        state["ybrick_fw"] = yield from step_transpose_zy(
            ctx, state.get("group_zfw"), key=(unit_key, "tzy", my_band),
            thread=worker.thread_index,
        )
        ctx.release(state.pop("group_g", None))

    def tyx_fw_body(worker):
        state["xbrick_fw"] = yield from step_transpose_yx(
            ctx, state.get("ybrick_yfw"), key=(unit_key, "tyx", my_band),
            thread=worker.thread_index,
        )
        ctx.release(state.pop("ybrick_fw", None))

    def pencil_vofr_body(worker):
        state["xbrick_v"] = yield from step_pencil_vofr(
            ctx, state.get("xbrick_xfw"), thread=worker.thread_index
        )

    def tyx_bw_body(worker):
        state["ybrick_bw"] = yield from step_transpose_yx(
            ctx, state.get("xbrick_xbw"), key=(unit_key, "txy", my_band),
            thread=worker.thread_index, inverse=True,
        )
        ctx.release(state.pop("xbrick_fw", None))

    def tzy_bw_body(worker):
        state["group_s"] = yield from step_transpose_zy(
            ctx, state.get("ybrick_ybw"), key=(unit_key, "tyz", my_band),
            thread=worker.thread_index, inverse=True,
        )
        ctx.release(state.pop("ybrick_bw", None))

    def fft_brick_transform(src, dst, sign):
        def run():
            brick = state.get(src)
            if brick is None or not ctx.data_mode:
                state[dst] = brick
            else:
                n = brick.shape[-1]
                out = np.empty(brick.shape, dtype=np.complex128)
                ctx.kernels.cft_1z(
                    brick.reshape(-1, n), sign, out=out.reshape(-1, n)
                )
                state[dst] = out

        return run

    nst = ctx.layout.nst_group(ctx.r)
    npp = ctx.layout.npp(ctx.r)

    single("prepare", prepare_body)
    single("pack", pack_body)
    chunked("fft_z_fw", "fft_z", ctx.cost.fft_z(ctx.r), nst, grainsize_z, fft_z_transform("group_g", "group_zfw", +1))
    if ctx.layout.decomposition == "pencil":
        grid = ctx.layout.pencil
        i, j = grid.coords(ctx.r)
        y_rows = grid.nx(i) * grid.nz(j)
        x_rows = grid.ny(i) * grid.nz(j)
        single("transpose_zy", tzy_fw_body)
        chunked("fft_y_fw", "fft_z", ctx.cost.fft_y(ctx.r), y_rows, grainsize_z, fft_brick_transform("ybrick_fw", "ybrick_yfw", +1))
        single("transpose_yx", tyx_fw_body)
        chunked("fft_x_fw", "fft_z", ctx.cost.fft_x(ctx.r), x_rows, grainsize_z, fft_brick_transform("xbrick_fw", "xbrick_xfw", +1))
        single("vofr", pencil_vofr_body)
        chunked("fft_x_bw", "fft_z", ctx.cost.fft_x(ctx.r), x_rows, grainsize_z, fft_brick_transform("xbrick_v", "xbrick_xbw", -1))
        single("transpose_xy", tyx_bw_body)
        chunked("fft_y_bw", "fft_z", ctx.cost.fft_y(ctx.r), y_rows, grainsize_z, fft_brick_transform("ybrick_bw", "ybrick_ybw", -1))
        single("transpose_yz", tzy_bw_body)
    else:
        single("scatter_fw", scatter_fw_body)
        chunked("fft_xy_fw", "fft_xy", ctx.cost.fft_xy(ctx.r), npp, grainsize_xy, fft_xy_transform("planes_fw", "planes_xyfw", +1))
        single("vofr", vofr_body)
        chunked("fft_xy_bw", "fft_xy", ctx.cost.fft_xy(ctx.r), npp, grainsize_xy, fft_xy_transform("planes_v", "planes_xybw", -1))
        single("scatter_bw", scatter_bw_body)
    chunked("fft_z_bw", "fft_z", ctx.cost.fft_z(ctx.r), nst, grainsize_z, fft_z_transform("group_s", "group_zbw", -1))
    unpack_task = single("unpack", unpack_body)
    unpack_task.done.add_callback(
        lambda ev, _bands=tuple(bands): (
            ctx.completed.update(_bands) if ev.exception is None else None
        )
    )


def _strip_compute(step_gen):
    """Pass a step generator through unchanged (helper kept for symmetry)."""
    result = yield from step_gen
    return result


def make_steps_program(
    ctx_of: _t.Callable[[object], FftPhaseContext],
    n_iterations: int,
    n_workers: int,
    policy: str = "fifo",
    task_overhead: float = 3.0e-6,
    grainsize_xy: int = 10,
    grainsize_z: int = 200,
    task_observer: _t.Callable | None = None,
    mpi_task_switching: bool = False,
    start_iteration: int = 0,
):
    """Build the per-rank program for the per-step task version.

    ``start_iteration`` skips iterations completed by a prior attempt
    (checkpoint resume); it must be the same on every rank.
    """

    def program(rank):
        ctx = ctx_of(rank)
        T = ctx.layout.T
        rt = TaskRuntime(
            rank,
            n_workers=n_workers,
            policy=policy,
            task_overhead=task_overhead,
            mpi_task_switching=mpi_task_switching,
        )
        if task_observer is not None:
            rt.add_observer(lambda rec, _r=rank.rank: task_observer(_r, rec))
        rt.start()
        tel = _telemetry.current()
        track = (rank.rank, 0)

        def clock():
            return rank.sim.now

        with tel.spans.span(track, "exec_steps", "executor", clock):
            with tel.spans.span(
                track, "submit", "sub-phase", clock,
                n_iterations=n_iterations - start_iteration,
            ):
                for it in range(start_iteration, n_iterations):
                    bands = [it * T + t for t in range(T)]
                    submit_unit_tasks(
                        ctx, rt, ("it", it), bands, grainsize_xy, grainsize_z
                    )
            with tel.spans.span(track, "taskwait", "sub-phase", clock):
                yield rt.taskwait()
            yield rt.shutdown()
        return ctx

    return program
