"""Driver: configuration -> simulated machine -> executed FFT phase.

:func:`run_fft_phase` assembles the full stack for one
:class:`~repro.core.config.RunConfig`:

1. geometry (cell, descriptor, R x T layout) and the cost model;
2. the simulated KNL node (CPU contention model + network) and the MPI
   world with the version's thread placement;
3. the two communicator layers (created at setup time, before the measured
   phase — as FFTXlib builds its communicators during initialization);
4. deterministic wavefunction/potential data (data mode) or size-only
   bookkeeping (meta mode);
5. the version's executor program on every rank.

The returned :class:`RunResult` carries the phase runtime, the machine
counters, and (in data mode) the distributed outputs plus a
:meth:`RunResult.validate` that checks them against the dense reference.

Resilience: with a :class:`~repro.faults.FaultScenario` on the config (or
passed as ``faults=``) the driver runs inside an *attempts loop*.  Each
attempt simulates on a fresh machine; when injected faults escalate to a
:class:`~repro.faults.FaultError` the driver checkpoints the work units
whose full chain completed on every rank (wave coefficients in data mode),
and — while ``scenario.max_resumes`` allows — resumes the executor at the
first unfinished unit.  The accumulated
:class:`~repro.faults.FaultReport` lands on ``RunResult.fault_report``;
an unrecoverable run ends with ``RunResult.failed`` set, never a hang or
a bare traceback.
"""

from __future__ import annotations

import dataclasses
import functools
import time as _time
import typing as _t
import warnings

import numpy as np

from repro import telemetry as _telemetry
from repro.core.config import RunConfig
from repro.core.exec_combined import make_combined_program
from repro.core.exec_original import make_original_program
from repro.core.exec_perfft import make_perfft_program
from repro.core.exec_pipelined import make_pipelined_program
from repro.core.exec_steps import make_steps_program
from repro.core.pipeline import CostConstants, CostModel, FftPhaseContext
from repro.core.validate import dense_reference, gather_results, max_relative_error
from repro.core.wave import (
    distribute_coefficients,
    make_band_coefficients,
    make_potential,
    potential_block,
    potential_slab,
)
from repro.core.workspace import aggregate_stats, layout_workspaces, workspace_for
from repro.faults.injector import FaultError, FaultInjector
from repro.faults.plan import FaultScenario
from repro.fft.backends.engine import KernelEngine
from repro.grids import Cell, DistributedLayout, FftDescriptor
from repro.machine import CpuModel, KnlParameters, knl_phase_table, knl_topology
from repro.machine.cluster import ClusterTopology
from repro.mpisim import MpiWorld, NetworkModel
from repro.mpisim.network import ClusterNetworkModel
from repro.simkit import Simulator

__all__ = ["RunCancelled", "RunResult", "run_fft_phase", "build_geometry"]


class RunCancelled(RuntimeError):
    """The run was aborted by its caller's cancellation hook.

    Raised out of :func:`run_fft_phase` when the ``cancel`` callable returns
    true or the wall-clock ``deadline`` passes — checked at attempt
    boundaries and, via :attr:`repro.simkit.Simulator.interrupt`,
    periodically inside the simulation loop.  This is the mechanism the
    service front end (:mod:`repro.service`) uses to reclaim workers from
    requests whose latency budget expired.
    """


@functools.lru_cache(maxsize=32)
def build_geometry(
    alat: float,
    ecutwfc: float,
    dual: float,
    scatter: int,
    groups: int,
    decomposition: str = "slab",
) -> tuple[Cell, FftDescriptor, DistributedLayout]:
    """Cell + G-vector sphere/stick map + R x T layout for one workload.

    Building the descriptor (sphere enumeration, stick accounting) and the
    layout (stick ownership, group offsets) is the expensive part of a run's
    setup and depends only on these six scalars.  All three objects are
    immutable after construction, so they are cached per process — a sweep
    worker executing many points of the same workload pays the construction
    once instead of once per point.
    """
    cell = Cell(alat=alat)
    desc = FftDescriptor(cell, ecutwfc=ecutwfc, dual=dual)
    layout = DistributedLayout(desc, scatter, groups, decomposition=decomposition)
    return cell, desc, layout


@dataclasses.dataclass
class RunResult:
    """Outcome of one simulated FFT phase."""

    config: RunConfig
    phase_time: float
    sim: Simulator
    world: MpiWorld
    cpu: CpuModel
    desc: FftDescriptor
    layout: DistributedLayout
    contexts: list[FftPhaseContext]
    input_coeffs: np.ndarray | None
    potential: np.ndarray | None
    #: Machine calibration the run used (exported into the run manifest).
    knl: KnlParameters | None = None
    #: The run's telemetry session, or ``None`` when telemetry was off.
    telemetry: _telemetry.Telemetry | None = None
    #: Injection/recovery record (:meth:`FaultReport.to_dict`), or ``None``
    #: for a fault-free run.
    fault_report: dict | None = None
    #: Whether the run ended unrecovered (resume budget exhausted).  The
    #: result then carries the partial state and the fault report; outputs
    #: are incomplete.
    failed: bool = False
    #: Driver attempts simulated (1 = no resume was needed).
    n_attempts: int = 1
    #: Data-plane arena statistics for this run (acquire/release deltas plus
    #: resident-byte gauges), or ``None`` for meta mode / arena disabled.
    dataplane: dict | None = None
    #: Autotuner resolution record (mode, digest, hit, applied knobs,
    #: predicted vs. measured score), or ``None`` with ``tuning="off"``.
    tuning: dict | None = None

    def output_coefficients(self) -> np.ndarray:
        """Gather the distributed outputs (data mode only)."""
        if self.input_coeffs is None:
            raise RuntimeError("outputs exist only in data mode")
        return gather_results(
            self.layout,
            [ctx.results for ctx in self.contexts],
            self.config.n_complex_bands,
        )

    def validate(self) -> float:
        """Max relative error of the distributed result vs. the dense reference."""
        if self.input_coeffs is None or self.potential is None:
            raise RuntimeError("validation requires data mode")
        reference = dense_reference(self.desc, self.input_coeffs, self.potential)
        return max_relative_error(self.output_coefficients(), reference)

    @property
    def average_ipc(self) -> float:
        """Compute-weighted average IPC over all streams (Table I/II metric)."""
        return self.cpu.counters.average_ipc()


def run_fft_phase(
    config: RunConfig,
    knl: KnlParameters | None = None,
    cost_constants: CostConstants | None = None,
    mpi_observer: _t.Callable | None = None,
    compute_observer: _t.Callable | None = None,
    task_observer: _t.Callable | None = None,
    input_coeffs: np.ndarray | None = None,
    potential: np.ndarray | None = None,
    telemetry: _telemetry.Telemetry | None = None,
    faults: FaultScenario | None = None,
    use_workspace: bool = True,
    cancel: _t.Callable[[], bool] | None = None,
    deadline: float | None = None,
) -> RunResult:
    """Run one configuration to completion on a fresh simulated node.

    ``use_workspace=False`` disables the data-plane buffer arena: every
    marshalling buffer is allocated fresh, exactly as before the arena
    existed.  Results are bit-identical either way (the identity tests rely
    on this switch); the arena only changes allocation behaviour.

    ``input_coeffs`` (``(n_complex_bands, ngw)``) and ``potential``
    (``V[iz, ix, iy]``) override the generated data — this is how a caller
    (e.g. the :mod:`repro.qe` band solver) applies the kernel's operator to
    its *own* wavefunctions; both require ``config.data_mode``.

    ``telemetry`` installs the given session for the duration of the run;
    with ``config.telemetry`` set a fresh enabled session is created.  The
    session used (if any) is returned on ``RunResult.telemetry``.

    ``faults`` overrides ``config.faults``; with a scenario active the
    driver checkpoints and resumes as described in the module docstring.

    ``cancel`` (a callable returning true to abort) and ``deadline`` (an
    absolute ``time.monotonic()`` timestamp) install a cooperative
    cancellation hook: it is checked before every attempt and every
    :data:`~repro.simkit.simulator.INTERRUPT_STRIDE` simulator events, and
    trips by raising :class:`RunCancelled`.  With both left ``None`` (the
    default) the simulation loop pays a single ``is None`` check per event.
    """
    knl = knl or KnlParameters()
    tuning_info: dict | None = None
    if config.tuning != "off":
        # Lazy import: tuning=off (the default) never touches the tuner, so
        # the hot path pays one string comparison.  Resolution happens once,
        # up front, and only swaps knob values on the config — everything
        # downstream (geometry, machine, executor) sees an ordinary config,
        # which is what makes consult-vs-off timings byte-identical by
        # construction for the same resolved knobs.
        from repro.tuning import resolve_tuning

        config, tuning_info = resolve_tuning(config, knl)
    if (input_coeffs is not None or potential is not None) and not config.data_mode:
        raise ValueError("caller-provided data requires data_mode=True")
    tel = telemetry
    if tel is None and config.telemetry:
        tel = _telemetry.Telemetry(enabled=True)
    scenario = faults if faults is not None else config.faults
    injector = FaultInjector(scenario, config.seed) if scenario is not None else None

    check_interrupt: _t.Callable[[], None] | None = None
    if cancel is not None or deadline is not None:

        def check_interrupt() -> None:
            if cancel is not None and cancel():
                raise RunCancelled("run cancelled by caller")
            if deadline is not None and _time.monotonic() >= deadline:
                raise RunCancelled("run deadline exceeded")

    # 1. Geometry and costs (geometry cached per process; see build_geometry).
    _cell, desc, layout = build_geometry(
        config.alat, config.ecutwfc, config.dual,
        config.layout_scatter, config.layout_groups,
        config.decomposition,
    )
    cost = CostModel(layout, cost_constants)

    # 2. Data (caller-provided arrays pass through; see the docstring).
    per_proc_packed: list[np.ndarray] | None = None
    v_slabs: list[np.ndarray] | None = None
    if not config.data_mode:
        input_coeffs = None
        potential = None
    if config.data_mode:
        if input_coeffs is None:
            input_coeffs = make_band_coefficients(
                desc.ngw, config.n_complex_bands, config.seed
            )
        else:
            input_coeffs = np.asarray(input_coeffs, dtype=np.complex128)
            expected = (config.n_complex_bands, desc.ngw)
            if input_coeffs.shape != expected:
                raise ValueError(
                    f"input_coeffs shape {input_coeffs.shape}; expected {expected}"
                )
        per_proc_packed = distribute_coefficients(layout, input_coeffs)
        if potential is None:
            potential = make_potential(desc.grid_shape, config.seed)
        else:
            potential = np.asarray(potential, dtype=float)
            expected_v = (desc.nr3, desc.nr1, desc.nr2)
            if potential.shape != expected_v:
                raise ValueError(
                    f"potential shape {potential.shape}; expected {expected_v}"
                )
        if layout.decomposition == "pencil":
            # Pencil VOFR runs on the x-brick, not the plane slab.
            v_slabs = [potential_block(layout, r, potential) for r in range(layout.R)]
        else:
            v_slabs = [potential_slab(layout, r, potential) for r in range(layout.R)]

    if tel is not None and tel.enabled:
        if task_observer is None:
            task_observer = tel.tracer.on_task
        else:
            task_observer = _fanout_task_observer(tel.tracer.on_task, task_observer)

    # The kernel engine: one per run, shared by every rank context, so the
    # whole data plane runs on config.fft_backend with config.kernel_workers
    # and plan caches warm across bands.  Meta-mode runs execute no kernels,
    # so a config naming an uninstalled backend still simulates fine there.
    kernel_engine: KernelEngine | None = None
    if config.data_mode:
        kernel_engine = KernelEngine(config.fft_backend, workers=config.kernel_workers)

    # Data-plane arenas: per-(layout, process) pools shared across runs of
    # one workload.  Snapshot before the attempts loop so the run's manifest
    # reports this run's deltas, not the layout-lifetime totals.
    use_arena = config.data_mode and use_workspace
    dataplane_before: dict[str, int] | None = None
    if use_arena:
        existing = layout_workspaces(layout)
        for ws in existing.values():
            ws.begin_run()
        dataplane_before = aggregate_stats(existing.values())

    # Checkpoint bookkeeping.  A "unit" is the executor's outer-loop step:
    # one iteration (original / pipelined / per-step) or one band (per-FFT /
    # combined).  After a failed attempt the driver keeps the units whose
    # full chain finished on every rank and resumes at the first other one.
    T = config.layout_groups
    if config.version in ("original", "pipelined", "ompss_steps"):
        n_units = config.n_iterations

        def unit_bands(u: int) -> list[int]:
            return [u * T + t for t in range(T)]

    else:
        n_units = config.n_complex_bands

        def unit_bands(u: int) -> list[int]:
            return [u]

    completed_bands: set[int] = set()
    saved_results: dict[int, dict[int, np.ndarray]] = {}
    units_done = 0
    max_attempts = 1 + (scenario.max_resumes if scenario is not None else 0)
    total_time = 0.0
    failed = False
    last_error: str | None = None
    n_attempts = 0

    for attempt in range(1, max_attempts + 1):
        n_attempts = attempt
        if check_interrupt is not None:
            check_interrupt()

        # 3. Machine + world (fresh per attempt; the injector persists).
        sim = Simulator()
        sim.interrupt = check_interrupt
        topo: _t.Any = knl_topology(knl)
        if config.n_nodes > 1:
            topo = ClusterTopology(topo, config.n_nodes)
        cpu = CpuModel(
            sim,
            topo,
            knl_phase_table(),
            bandwidth_bytes_per_s=knl.mem_bandwidth,
            jitter=knl.compute_jitter,
            jitter_seed=knl.jitter_seed,
            bandwidth_rampup_max=knl.mem_bw_rampup_max,
            bandwidth_rampup_half=knl.mem_bw_rampup_half,
        )
        if config.version == "ompss_steps":
            placement = topo.place_grouped(config.total_streams, config.threads_per_rank)
        else:
            placement = topo.place(config.total_streams)
        if config.n_nodes > 1:
            tpr = config.threads_per_rank

            def node_of(rank: object, _placement=placement, _tpr=tpr) -> int:
                return _placement[int(rank) * _tpr].node  # type: ignore[call-overload]

            network: NetworkModel = ClusterNetworkModel(
                sim,
                capacity=knl.net_capacity,
                injection_bw=knl.net_injection_bw,
                latency=knl.net_latency,
                node_of=node_of,
                inter_capacity=knl.fabric_injection_bw * max(config.n_nodes / 2.0, 1.0),
                inter_injection_bw=knl.fabric_injection_bw,
                inter_latency=knl.fabric_latency,
                link_capacity=config.link_capacity,
            )
        else:
            network = NetworkModel(
                sim,
                capacity=knl.net_capacity,
                injection_bw=knl.net_injection_bw,
                latency=knl.net_latency,
            )
        world = MpiWorld(
            sim,
            cpu,
            network,
            n_ranks=config.n_mpi_ranks,
            threads_per_rank=config.threads_per_rank,
            placement=placement,
        )
        if injector is not None:
            cpu.faults = injector
            network.faults = injector
            world.faults = injector
            injector.bind(sim, attempt)
        if mpi_observer is not None:
            world.add_mpi_observer(mpi_observer)
        if compute_observer is not None:
            cpu.add_observer(compute_observer)
        if tel is not None and tel.enabled:
            world.add_mpi_observer(tel.tracer.on_mpi)
            cpu.add_observer(tel.tracer.on_compute)

        # 4. Communicator layers (setup time, unmeasured — like FFTXlib init).
        pack_comms = (
            [world._register_comm(layout.pack_group(r), f"pack{r}") for r in range(layout.R)]
            if layout.T > 1
            else None
        )
        scatter_comms = [
            world._register_comm(layout.scatter_group(t), f"scatter{t}")
            for t in range(layout.T)
        ]
        # Pencil transpose communicators: per task group, one row comm per
        # grid row (Pc members, the z<->y transpose) and one column comm per
        # grid column (Pr members, the y<->x transpose).  Single trailing
        # digit run in the name so comm_layer aggregates them per layer.
        row_comms: dict[tuple[int, int], _t.Any] = {}
        col_comms: dict[tuple[int, int], _t.Any] = {}
        if layout.decomposition == "pencil":
            grid = layout.pencil
            assert grid is not None
            for t in range(layout.T):
                for i in range(grid.Pr):
                    members = [
                        layout.proc_of(grid.rank_of(i, jj), t)
                        for jj in range(grid.Pc)
                    ]
                    row_comms[(t, i)] = world._register_comm(
                        members, f"pencil_row{t * grid.Pr + i}"
                    )
                for jj in range(grid.Pc):
                    members = [
                        layout.proc_of(grid.rank_of(i, jj), t)
                        for i in range(grid.Pr)
                    ]
                    col_comms[(t, jj)] = world._register_comm(
                        members, f"pencil_col{t * grid.Pc + jj}"
                    )

        contexts: dict[int, FftPhaseContext] = {}

        def ctx_of(
            rank,
            _contexts=contexts,
            _pack_comms=pack_comms,
            _scatter_comms=scatter_comms,
            _row_comms=row_comms,
            _col_comms=col_comms,
        ) -> FftPhaseContext:
            p = rank.rank
            if p not in _contexts:
                r, t = layout.rt_of(p)
                row_comm = col_comm = None
                if layout.decomposition == "pencil":
                    assert layout.pencil is not None
                    i, j = layout.pencil.coords(r)
                    row_comm = _row_comms[(t, i)]
                    col_comm = _col_comms[(t, j)]
                ctx = FftPhaseContext(
                    rank=rank,
                    layout=layout,
                    cost=cost,
                    pack_comm=_pack_comms[r] if _pack_comms is not None else None,
                    scatter_comm=_scatter_comms[t],
                    packed=per_proc_packed[p] if per_proc_packed is not None else None,
                    v_slab=v_slabs[r] if v_slabs is not None else None,
                    workspace=workspace_for(layout, p) if use_arena else None,
                    kernels=kernel_engine,
                    row_comm=row_comm,
                    col_comm=col_comm,
                    redistribution=config.redistribution,
                )
                if completed_bands:
                    # Resumed attempt: restore the checkpointed state.
                    ctx.completed.update(completed_bands)
                    ctx.results.update(saved_results.get(p, {}))
                _contexts[p] = ctx
            return _contexts[p]

        # 5. The version's executor, starting past the checkpointed units.
        if config.version == "original":
            program = make_original_program(
                ctx_of, config.n_iterations, start_iteration=units_done
            )
        elif config.version == "pipelined":
            program = make_pipelined_program(
                ctx_of, config.n_iterations, start_iteration=units_done
            )
        elif config.version == "ompss_perfft":
            program = make_perfft_program(
                ctx_of,
                config.n_complex_bands,
                n_workers=config.threads_per_rank,
                policy=config.scheduler,
                task_overhead=config.task_overhead,
                task_observer=task_observer,
                mpi_task_switching=config.effective_task_switching,
                start_band=units_done,
            )
        elif config.version == "ompss_steps":
            program = make_steps_program(
                ctx_of,
                config.n_iterations,
                n_workers=config.threads_per_rank,
                policy=config.scheduler,
                task_overhead=config.task_overhead,
                grainsize_xy=config.grainsize_xy,
                grainsize_z=config.grainsize_z,
                task_observer=task_observer,
                mpi_task_switching=config.effective_task_switching,
                start_iteration=units_done,
            )
        else:  # ompss_combined
            program = make_combined_program(
                ctx_of,
                config.n_complex_bands,
                n_workers=config.threads_per_rank,
                policy=config.scheduler,
                task_overhead=config.task_overhead,
                grainsize_xy=config.grainsize_xy,
                grainsize_z=config.grainsize_z,
                task_observer=task_observer,
                mpi_task_switching=config.effective_task_switching,
                start_band=units_done,
            )

        previous = _telemetry.install(tel) if tel is not None else None
        try:
            world.launch(program)
            attempt_time = world.run()
        except FaultError as err:
            assert injector is not None  # only injection raises FaultError
            attempt_time = sim.now
            total_time += attempt_time
            units_done = _completed_units(contexts, n_units, unit_bands)
            for u in range(units_done):
                completed_bands.update(unit_bands(u))
            if config.data_mode:
                for p, ctx in contexts.items():
                    keep = saved_results.setdefault(p, {})
                    for band, coeffs in ctx.results.items():
                        if band in completed_bands:
                            keep[band] = coeffs
            last_error = f"{type(err).__name__}: {err}"
            injector.report.attempt_done(attempt_time, units_done, last_error)
            if attempt < max_attempts:
                injector.record(
                    "resume", next_attempt=attempt + 1, resume_unit=units_done
                )
                continue
            failed = True
            break
        finally:
            if tel is not None:
                _telemetry.install(previous)
        total_time += attempt_time
        units_done = n_units
        if injector is not None:
            injector.report.attempt_done(attempt_time, n_units, None)
        break

    fault_report: dict | None = None
    if injector is not None:
        injector.report.recovered = not failed
        injector.report.failure = last_error if failed else None
        fault_report = injector.report.to_dict()

    dataplane: dict | None = None
    if use_arena:
        dataplane = _dataplane_summary(
            dataplane_before or {},
            aggregate_stats(layout_workspaces(layout).values()),
        )
        dataplane["decomposition"] = layout.decomposition
        dataplane["redistribution"] = config.redistribution
        dataplane["pack_copies"] = sum(
            ctx.pack_copies for ctx in contexts.values()
        )
        if dataplane["workspace_leaks"] > 0:
            warnings.warn(
                f"run leaked {dataplane['workspace_leaks']} workspace "
                "checkout(s): buffers were garbage-collected without a "
                "release (arena bleed; harmless once, a drift under "
                "sustained service traffic)",
                ResourceWarning,
                stacklevel=2,
            )
        if kernel_engine is not None:
            # Kernel-plane counters ride the dataplane section (and thus the
            # dataplane.* gauges): backend, workers, calls, rows, pool fan-outs.
            dataplane.update(kernel_engine.stats())

    if tuning_info is not None:
        tuning_info["measured_s"] = total_time

    if tel is not None and tel.enabled:
        _record_run_summary(
            tel, config, cpu, sim, total_time, injector, world=world,
            dataplane=dataplane, tuning=tuning_info,
        )

    return RunResult(
        config=config,
        phase_time=total_time,
        sim=sim,
        world=world,
        cpu=cpu,
        desc=desc,
        layout=layout,
        contexts=[contexts[p] for p in sorted(contexts)],
        input_coeffs=input_coeffs,
        potential=potential,
        knl=knl,
        telemetry=tel,
        fault_report=fault_report,
        failed=failed,
        n_attempts=n_attempts,
        dataplane=dataplane,
        tuning=tuning_info,
    )


#: Arena counters reported as per-run deltas; the rest are state gauges.
_DATAPLANE_COUNTERS = (
    "acquires",
    "reuse_hits",
    "alloc_misses",
    "releases",
    "foreign_releases",
    "workspace_leaks",
)
_DATAPLANE_GAUGES = ("live", "live_peak", "pooled", "bytes_resident")


def _dataplane_summary(before: dict, after: dict) -> dict:
    """This run's arena activity: counter deltas + absolute byte gauges.

    ``allocations_avoided`` is the headline number — pool hits that would
    each have been an ``np.zeros``/``np.empty`` on the fresh-allocation
    path.  Note the hit/miss split depends on arena warmth (a cold first
    run misses where a warm rerun hits); the structural numbers (acquires,
    releases, live_peak, bytes_resident) are warmth-invariant.
    """
    out = {k: int(after.get(k, 0)) - int(before.get(k, 0)) for k in _DATAPLANE_COUNTERS}
    for k in _DATAPLANE_GAUGES:
        out[k] = int(after.get(k, 0))
    out["allocations_avoided"] = out["reuse_hits"]
    return out


def _completed_units(
    contexts: dict[int, FftPhaseContext],
    n_units: int,
    unit_bands: _t.Callable[[int], list[int]],
) -> int:
    """Units whose every band completed on every rank (checkpoint frontier)."""
    if not contexts:
        return 0
    common = set.intersection(*(ctx.completed for ctx in contexts.values()))
    done = 0
    while done < n_units and all(b in common for b in unit_bands(done)):
        done += 1
    return done


def _fanout_task_observer(first: _t.Callable, second: _t.Callable) -> _t.Callable:
    def observer(rank: int, record: object) -> None:
        first(rank, record)
        second(rank, record)

    return observer


def _record_run_summary(
    tel: _telemetry.Telemetry,
    config: RunConfig,
    cpu: CpuModel,
    sim: Simulator,
    phase_time: float,
    injector: FaultInjector | None = None,
    world: MpiWorld | None = None,
    dataplane: dict | None = None,
    tuning: dict | None = None,
) -> None:
    """Close out a telemetry session: the run span and derived gauges."""
    tel.spans.add(
        "driver",
        "run",
        "run",
        0.0,
        phase_time,
        label=config.label(),
        version=config.version,
    )
    counters = cpu.counters
    phases = sorted({p for s in counters.streams for p in counters.phases(s)})
    for phase in phases:
        tel.metrics.set_gauge(
            "machine.effective_ipc", counters.phase_ipc(phase), phase=phase
        )
    tel.metrics.set_gauge("machine.average_ipc", counters.average_ipc())
    tel.metrics.set_gauge("sim.events_dispatched", float(sim.n_dispatched))
    tel.metrics.set_gauge("run.phase_seconds", phase_time)
    engine_sources = [("cpu", cpu.engine_stats())]
    if world is not None:
        engine_sources.append(("network", world.network.engine_stats()))
    for resource, stats in engine_sources:
        for name, value in stats.items():
            tel.metrics.set_gauge(f"engine.{name}", float(value), resource=resource)
    if dataplane is not None:
        for name, value in dataplane.items():
            # kernel_backend is a string label; only numeric entries gauge.
            if isinstance(value, (int, float)):
                tel.metrics.set_gauge(f"dataplane.{name}", float(value))
    if tuning is not None:
        tel.metrics.set_gauge("tuning.hit", float(bool(tuning.get("hit"))))
        for name in ("score", "predicted_s", "measured_s"):
            value = tuning.get(name)
            if isinstance(value, (int, float)):
                tel.metrics.set_gauge(f"tuning.{name}", float(value))
    if injector is not None:
        report = injector.report
        tel.metrics.set_gauge("faults.injected", float(report.n_injected))
        tel.metrics.set_gauge("faults.recovered_events", float(report.n_recovered))
        tel.metrics.set_gauge("faults.attempts", float(len(report.attempts)))
        t0 = 0.0
        for i, a in enumerate(report.attempts, start=1):
            tel.spans.add(
                "faults",
                f"attempt {i}",
                "attempt",
                t0,
                t0 + a["phase_time_s"],
                completed_units=a["completed_units"],
                error=a["error"],
            )
            t0 += a["phase_time_s"]
        for s in injector.scenario.stragglers:
            tel.spans.add(
                "faults",
                f"straggler rank {s.rank}",
                "fault",
                0.0,
                phase_time,
                slowdown=s.slowdown,
            )

    # Derived analytics (read-only over the records above): the POP factor
    # decomposition, the timeline critical path and the task-graph view.
    # Stashed on the session so build_manifest embeds the same object, and
    # summarized as analysis.* gauges for metric-level consumers.
    from repro import analysis as _analysis

    tel.analysis = _analysis.analyze_session(
        tel, phase_time, counters=counters
    )
    run_analysis = tel.analysis
    tel.metrics.set_gauge(
        "analysis.unclosed_spans", float(run_analysis.unclosed_spans)
    )
    if run_analysis.pop is not None:
        pop = run_analysis.pop
        tel.metrics.set_gauge("analysis.parallel_efficiency", pop.parallel_efficiency)
        tel.metrics.set_gauge("analysis.load_balance", pop.load_balance)
        tel.metrics.set_gauge(
            "analysis.serialization_efficiency", pop.serialization_efficiency
        )
        tel.metrics.set_gauge(
            "analysis.transfer_efficiency", pop.transfer_efficiency
        )
    if run_analysis.critical_path is not None:
        crit = run_analysis.critical_path
        tel.metrics.set_gauge("analysis.critical_path_seconds", crit.length_s)
        for kind, seconds in crit.by_kind.items():
            tel.metrics.set_gauge(
                "analysis.critical_path_share", seconds, kind=kind
            )
    if run_analysis.task_graph is not None:
        tel.metrics.set_gauge(
            "analysis.task_chain_seconds", run_analysis.task_graph.length_s
        )
