"""Driver: configuration -> simulated machine -> executed FFT phase.

:func:`run_fft_phase` assembles the full stack for one
:class:`~repro.core.config.RunConfig`:

1. geometry (cell, descriptor, R x T layout) and the cost model;
2. the simulated KNL node (CPU contention model + network) and the MPI
   world with the version's thread placement;
3. the two communicator layers (created at setup time, before the measured
   phase — as FFTXlib builds its communicators during initialization);
4. deterministic wavefunction/potential data (data mode) or size-only
   bookkeeping (meta mode);
5. the version's executor program on every rank.

The returned :class:`RunResult` carries the phase runtime, the machine
counters, and (in data mode) the distributed outputs plus a
:meth:`RunResult.validate` that checks them against the dense reference.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro import telemetry as _telemetry
from repro.core.config import RunConfig
from repro.core.exec_combined import make_combined_program
from repro.core.exec_original import make_original_program
from repro.core.exec_perfft import make_perfft_program
from repro.core.exec_pipelined import make_pipelined_program
from repro.core.exec_steps import make_steps_program
from repro.core.pipeline import CostConstants, CostModel, FftPhaseContext
from repro.core.validate import dense_reference, gather_results, max_relative_error
from repro.core.wave import (
    distribute_coefficients,
    make_band_coefficients,
    make_potential,
    potential_slab,
)
from repro.grids import Cell, DistributedLayout, FftDescriptor
from repro.machine import CpuModel, KnlParameters, knl_phase_table, knl_topology
from repro.machine.cluster import ClusterTopology
from repro.mpisim import MpiWorld, NetworkModel
from repro.mpisim.network import ClusterNetworkModel
from repro.simkit import Simulator

__all__ = ["RunResult", "run_fft_phase"]


@dataclasses.dataclass
class RunResult:
    """Outcome of one simulated FFT phase."""

    config: RunConfig
    phase_time: float
    sim: Simulator
    world: MpiWorld
    cpu: CpuModel
    desc: FftDescriptor
    layout: DistributedLayout
    contexts: list[FftPhaseContext]
    input_coeffs: np.ndarray | None
    potential: np.ndarray | None
    #: Machine calibration the run used (exported into the run manifest).
    knl: KnlParameters | None = None
    #: The run's telemetry session, or ``None`` when telemetry was off.
    telemetry: _telemetry.Telemetry | None = None

    def output_coefficients(self) -> np.ndarray:
        """Gather the distributed outputs (data mode only)."""
        if self.input_coeffs is None:
            raise RuntimeError("outputs exist only in data mode")
        return gather_results(
            self.layout,
            [ctx.results for ctx in self.contexts],
            self.config.n_complex_bands,
        )

    def validate(self) -> float:
        """Max relative error of the distributed result vs. the dense reference."""
        if self.input_coeffs is None or self.potential is None:
            raise RuntimeError("validation requires data mode")
        reference = dense_reference(self.desc, self.input_coeffs, self.potential)
        return max_relative_error(self.output_coefficients(), reference)

    @property
    def average_ipc(self) -> float:
        """Compute-weighted average IPC over all streams (Table I/II metric)."""
        return self.cpu.counters.average_ipc()


def run_fft_phase(
    config: RunConfig,
    knl: KnlParameters | None = None,
    cost_constants: CostConstants | None = None,
    mpi_observer: _t.Callable | None = None,
    compute_observer: _t.Callable | None = None,
    task_observer: _t.Callable | None = None,
    input_coeffs: np.ndarray | None = None,
    potential: np.ndarray | None = None,
    telemetry: _telemetry.Telemetry | None = None,
) -> RunResult:
    """Run one configuration to completion on a fresh simulated node.

    ``input_coeffs`` (``(n_complex_bands, ngw)``) and ``potential``
    (``V[iz, ix, iy]``) override the generated data — this is how a caller
    (e.g. the :mod:`repro.qe` band solver) applies the kernel's operator to
    its *own* wavefunctions; both require ``config.data_mode``.

    ``telemetry`` installs the given session for the duration of the run;
    with ``config.telemetry`` set a fresh enabled session is created.  The
    session used (if any) is returned on ``RunResult.telemetry``.
    """
    knl = knl or KnlParameters()
    if (input_coeffs is not None or potential is not None) and not config.data_mode:
        raise ValueError("caller-provided data requires data_mode=True")
    tel = telemetry
    if tel is None and config.telemetry:
        tel = _telemetry.Telemetry(enabled=True)

    # 1. Geometry and costs.
    cell = Cell(alat=config.alat)
    desc = FftDescriptor(cell, ecutwfc=config.ecutwfc, dual=config.dual)
    layout = DistributedLayout(desc, config.layout_scatter, config.layout_groups)
    cost = CostModel(layout, cost_constants)

    # 2. Machine + world.
    sim = Simulator()
    topo: _t.Any = knl_topology(knl)
    if config.n_nodes > 1:
        topo = ClusterTopology(topo, config.n_nodes)
    cpu = CpuModel(
        sim,
        topo,
        knl_phase_table(),
        bandwidth_bytes_per_s=knl.mem_bandwidth,
        jitter=knl.compute_jitter,
        jitter_seed=knl.jitter_seed,
        bandwidth_rampup_max=knl.mem_bw_rampup_max,
        bandwidth_rampup_half=knl.mem_bw_rampup_half,
    )
    if config.version == "ompss_steps":
        placement = topo.place_grouped(config.total_streams, config.threads_per_rank)
    else:
        placement = topo.place(config.total_streams)
    if config.n_nodes > 1:
        tpr = config.threads_per_rank

        def node_of(rank: object) -> int:
            return placement[int(rank) * tpr].node  # type: ignore[call-overload]

        network: NetworkModel = ClusterNetworkModel(
            sim,
            capacity=knl.net_capacity,
            injection_bw=knl.net_injection_bw,
            latency=knl.net_latency,
            node_of=node_of,
            inter_capacity=knl.fabric_injection_bw * max(config.n_nodes / 2.0, 1.0),
            inter_injection_bw=knl.fabric_injection_bw,
            inter_latency=knl.fabric_latency,
        )
    else:
        network = NetworkModel(
            sim,
            capacity=knl.net_capacity,
            injection_bw=knl.net_injection_bw,
            latency=knl.net_latency,
        )
    world = MpiWorld(
        sim,
        cpu,
        network,
        n_ranks=config.n_mpi_ranks,
        threads_per_rank=config.threads_per_rank,
        placement=placement,
    )
    if mpi_observer is not None:
        world.add_mpi_observer(mpi_observer)
    if compute_observer is not None:
        cpu.add_observer(compute_observer)
    if tel is not None and tel.enabled:
        world.add_mpi_observer(tel.tracer.on_mpi)
        cpu.add_observer(tel.tracer.on_compute)
        if task_observer is None:
            task_observer = tel.tracer.on_task
        else:
            task_observer = _fanout_task_observer(tel.tracer.on_task, task_observer)

    # 3. Communicator layers (setup time, unmeasured — like FFTXlib init).
    pack_comms = (
        [world._register_comm(layout.pack_group(r), f"pack{r}") for r in range(layout.R)]
        if layout.T > 1
        else None
    )
    scatter_comms = [
        world._register_comm(layout.scatter_group(t), f"scatter{t}")
        for t in range(layout.T)
    ]

    # 4. Data (caller-provided arrays pass through; see the docstring).
    per_proc_packed: list[np.ndarray] | None = None
    v_slabs: list[np.ndarray] | None = None
    if not config.data_mode:
        input_coeffs = None
        potential = None
    if config.data_mode:
        if input_coeffs is None:
            input_coeffs = make_band_coefficients(
                desc.ngw, config.n_complex_bands, config.seed
            )
        else:
            input_coeffs = np.asarray(input_coeffs, dtype=np.complex128)
            expected = (config.n_complex_bands, desc.ngw)
            if input_coeffs.shape != expected:
                raise ValueError(
                    f"input_coeffs shape {input_coeffs.shape}; expected {expected}"
                )
        per_proc_packed = distribute_coefficients(layout, input_coeffs)
        if potential is None:
            potential = make_potential(desc.grid_shape, config.seed)
        else:
            potential = np.asarray(potential, dtype=float)
            expected_v = (desc.nr3, desc.nr1, desc.nr2)
            if potential.shape != expected_v:
                raise ValueError(
                    f"potential shape {potential.shape}; expected {expected_v}"
                )
        v_slabs = [potential_slab(layout, r, potential) for r in range(layout.R)]

    contexts: dict[int, FftPhaseContext] = {}

    def ctx_of(rank) -> FftPhaseContext:
        p = rank.rank
        if p not in contexts:
            r, t = layout.rt_of(p)
            contexts[p] = FftPhaseContext(
                rank=rank,
                layout=layout,
                cost=cost,
                pack_comm=pack_comms[r] if pack_comms is not None else None,
                scatter_comm=scatter_comms[t],
                packed=per_proc_packed[p] if per_proc_packed is not None else None,
                v_slab=v_slabs[r] if v_slabs is not None else None,
            )
        return contexts[p]

    # 5. The version's executor.
    if config.version == "original":
        program = make_original_program(ctx_of, config.n_iterations)
    elif config.version == "pipelined":
        program = make_pipelined_program(ctx_of, config.n_iterations)
    elif config.version == "ompss_perfft":
        program = make_perfft_program(
            ctx_of,
            config.n_complex_bands,
            n_workers=config.threads_per_rank,
            policy=config.scheduler,
            task_overhead=config.task_overhead,
            task_observer=task_observer,
            mpi_task_switching=config.effective_task_switching,
        )
    elif config.version == "ompss_steps":
        program = make_steps_program(
            ctx_of,
            config.n_iterations,
            n_workers=config.threads_per_rank,
            policy=config.scheduler,
            task_overhead=config.task_overhead,
            grainsize_xy=config.grainsize_xy,
            grainsize_z=config.grainsize_z,
            task_observer=task_observer,
            mpi_task_switching=config.effective_task_switching,
        )
    else:  # ompss_combined
        program = make_combined_program(
            ctx_of,
            config.n_complex_bands,
            n_workers=config.threads_per_rank,
            policy=config.scheduler,
            task_overhead=config.task_overhead,
            grainsize_xy=config.grainsize_xy,
            grainsize_z=config.grainsize_z,
            task_observer=task_observer,
            mpi_task_switching=config.effective_task_switching,
        )

    previous = _telemetry.install(tel) if tel is not None else None
    try:
        world.launch(program)
        phase_time = world.run()
    finally:
        if tel is not None:
            _telemetry.install(previous)

    if tel is not None and tel.enabled:
        _record_run_summary(tel, config, cpu, sim, phase_time)

    return RunResult(
        config=config,
        phase_time=phase_time,
        sim=sim,
        world=world,
        cpu=cpu,
        desc=desc,
        layout=layout,
        contexts=[contexts[p] for p in sorted(contexts)],
        input_coeffs=input_coeffs,
        potential=potential,
        knl=knl,
        telemetry=tel,
    )


def _fanout_task_observer(first: _t.Callable, second: _t.Callable) -> _t.Callable:
    def observer(rank: int, record: object) -> None:
        first(rank, record)
        second(rank, record)

    return observer


def _record_run_summary(
    tel: _telemetry.Telemetry,
    config: RunConfig,
    cpu: CpuModel,
    sim: Simulator,
    phase_time: float,
) -> None:
    """Close out a telemetry session: the run span and derived gauges."""
    tel.spans.add(
        "driver",
        "run",
        "run",
        0.0,
        phase_time,
        label=config.label(),
        version=config.version,
    )
    counters = cpu.counters
    phases = sorted({p for s in counters.streams for p in counters.phases(s)})
    for phase in phases:
        tel.metrics.set_gauge(
            "machine.effective_ipc", counters.phase_ipc(phase), phase=phase
        )
    tel.metrics.set_gauge("machine.average_ipc", counters.average_ipc())
    tel.metrics.set_gauge("sim.events_dispatched", float(sim.n_dispatched))
    tel.metrics.set_gauge("run.phase_seconds", phase_time)
