"""The FFTXlib miniapp: the paper's kernel and its task-based optimizations.

The kernel applies an operator diagonal in real space to a set of bands:
forward transform (G -> R), multiply by the potential (VOFR), backward
transform (R -> G), over the two-layer MPI distribution described in
DESIGN.md.  Three executors share the same step library and produce
*identical numerics* (asserted by the integration tests):

* :mod:`~repro.core.exec_original` — the baseline FFTXlib: a synchronous
  loop over band groups with FFT task groups (paper Fig. 1);
* :mod:`~repro.core.exec_steps` — Opt 1: every step a task with flow
  dependencies, nested taskloops in the FFT kernels (paper Fig. 4);
* :mod:`~repro.core.exec_perfft` — Opt 2: each FFT (loop iteration) one
  independent task, dynamically scheduled (paper Fig. 5);
* :mod:`~repro.core.exec_combined` — the paper's future-work combination
  (overlap + de-synchronization).

:mod:`~repro.core.driver` wires a :class:`~repro.core.config.RunConfig`
into a full simulated run and optionally validates the distributed result
against the dense single-grid reference of :mod:`~repro.core.validate`.
"""

from repro.core.config import RunConfig, Version
from repro.core.pipeline import CostConstants, CostModel
from repro.core.driver import RunResult, run_fft_phase
from repro.core.validate import dense_reference, max_relative_error
from repro.core.gamma import pack_real_bands, unpack_real_bands
from repro.core.observables import potential_expectation

__all__ = [
    "RunConfig",
    "Version",
    "CostConstants",
    "CostModel",
    "RunResult",
    "run_fft_phase",
    "dense_reference",
    "max_relative_error",
    "pack_real_bands",
    "unpack_real_bands",
    "potential_expectation",
]
