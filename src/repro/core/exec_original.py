"""The baseline FFTXlib executor (paper Fig. 1).

A synchronous, single-threaded-per-rank loop over band groups: all steps run
in program order, all ranks move through the phases together, synchronized
by the collectives — the execution style whose lock-step high-intensity
phases cause the resource contention analysed in Section III.
"""

from __future__ import annotations

import typing as _t

from repro import telemetry as _telemetry
from repro.core.pipeline import FftPhaseContext, band_chain_steps

__all__ = ["make_original_program"]


def make_original_program(
    ctx_of: _t.Callable[[object], FftPhaseContext],
    n_iterations: int,
    start_iteration: int = 0,
):
    """Build the per-rank program: ``DO I = 1, NB, NTG`` over the step chain.

    ``ctx_of(rank)`` supplies the rank's phase context (layout, comms, data).
    ``start_iteration`` skips iterations already completed in a prior attempt
    (checkpoint resume); it must be the same on every rank.
    """

    def program(rank):
        ctx = ctx_of(rank)
        T = ctx.layout.T
        tel = _telemetry.current()
        track = (rank.rank, 0)

        def clock():
            return rank.sim.now

        with tel.spans.span(track, "exec_original", "executor", clock):
            for it in range(start_iteration, n_iterations):
                bands = [it * T + t for t in range(T)]
                with tel.spans.span(
                    track, f"iteration {it}", "iteration", clock, bands=bands
                ):
                    yield from band_chain_steps(ctx, bands, key_prefix=("it", it))
        return ctx

    return program
