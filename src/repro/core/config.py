"""Run configuration: the paper's workload and execution-version knobs.

The paper's experiment family is described as ``N x 8`` (ranks x FFT task
groups) with the workload "plane wave energy cut off: 80, lattice parameter:
20, number of bands: 128, number of task groups: 8".  A :class:`RunConfig`
captures both the workload and how it is executed:

* ``version="original"`` — ``ranks * taskgroups`` single-threaded MPI
  processes; the two-layer MPI communication with ``taskgroups`` FFT task
  groups.
* ``version="ompss_perfft"`` — Opt 2: ``ranks`` MPI processes, each with
  ``taskgroups`` OmpSs worker threads replacing the task groups (ntg=1);
  one task per FFT.
* ``version="ompss_steps"`` — Opt 1: the original process grid, each process
  with 2 hyper-threaded workers so blocked communication tasks overlap with
  compute tasks of other iterations; per-step tasks + nested taskloops.
* ``version="ompss_combined"`` — future work (§VI): per-band chains of step
  tasks on the Opt 2 mapping.
* ``version="pipelined"`` — a non-task overlap baseline: the original
  process grid with depth-2 software pipelining over non-blocking
  collectives (what careful MPI code does without a task runtime).

128 *real* bands are packed pairwise into 64 complex FFT fields (the
standard Gamma-point trick; the paper's trace shows exactly "the 64 FFTs ...
executed with 8 FFTs at the same time").
"""

from __future__ import annotations

import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultScenario

__all__ = ["RunConfig", "Version", "VERSIONS"]

Version = _t.Literal[
    "original", "pipelined", "ompss_perfft", "ompss_steps", "ompss_combined"
]

VERSIONS: tuple[str, ...] = (
    "original",
    "pipelined",
    "ompss_perfft",
    "ompss_steps",
    "ompss_combined",
)


@dataclasses.dataclass(frozen=True)
class RunConfig:
    """Workload + execution parameters of one FFT-phase run."""

    #: Wave-function cutoff in Rydberg (paper: 80).
    ecutwfc: float = 80.0
    #: Lattice parameter in Bohr (paper: 20).
    alat: float = 20.0
    #: Number of real bands (paper: 128; must be even — bands pack in pairs).
    nbnd: int = 128
    #: FFT task groups / OmpSs threads (paper: 8).
    taskgroups: int = 8
    #: First-layer MPI ranks (the "N" of "N x 8").
    ranks: int = 1
    #: Which executor to run.
    version: str = "original"
    #: Move real numpy payloads (tests/validation) or metadata only (sweeps).
    data_mode: bool = False
    #: Grid-to-wave cutoff ratio (QE dual).
    dual: float = 4.0
    #: OmpSs scheduler policy for the task versions.
    scheduler: str = "fifo"
    #: Per-task dispatch overhead (seconds).
    task_overhead: float = 3.0e-6
    #: Workers per process for the per-step version (hyper-thread slots).
    steps_workers: int = 2
    #: Taskloop grainsize for the xy-plane loops (paper: 10).
    grainsize_xy: int = 10
    #: Taskloop grainsize for the z-stick loops (paper: 200).
    grainsize_z: int = 200
    #: Seed for the deterministic wavefunction/potential data.
    seed: int = 2017
    #: KNL nodes (1 = the paper's single-node testbed; >1 adds the
    #: inter-node fabric and per-node contention domains).
    n_nodes: int = 1
    #: Suspend tasks blocked in MPI and run others meanwhile (the hybrid
    #: MPI/SMPSs technique of the paper's ref. [11]).  ``None`` keeps each
    #: version's default: on for the overlap-oriented per-step/combined
    #: executors (without it their blocking collectives can strand every
    #: worker), off for per-FFT tasks (the paper lists it as future work).
    task_switching: bool | None = None
    #: Record telemetry (metrics, spans, compute/MPI/task trace) during the
    #: run.  Off by default: instrumented call sites then cost a single
    #: attribute check — see :mod:`repro.telemetry`.
    telemetry: bool = False
    #: Deterministic fault scenario (:class:`repro.faults.FaultScenario`)
    #: or ``None`` for a fault-free run.  With ``None`` every injection
    #: hook reduces to one attribute check, so baselines are untouched.
    faults: "FaultScenario | None" = None
    #: FFT kernel backend for data-mode runs (``repro.fft.backends``):
    #: ``"numpy"`` (pocketfft, default), ``"scipy"``, ``"pyfftw"`` when
    #: importable, or ``"native"`` (the repo's own mixed-radix kernels).
    #: Simulated timings never depend on this — only real payload math.
    fft_backend: str = "numpy"
    #: Real cores driving each batched kernel call: 1 = single-threaded
    #: (default).  ``N>1`` threads inside the library for backends that
    #: support it (scipy/pyFFTW) or fans row chunks across the
    #: shared-memory process pool (numpy/native); output is byte-identical
    #: to ``kernel_workers=1`` for the pocketfft backends.
    kernel_workers: int = 1
    #: Real-space decomposition over the R scatter ranks of each task
    #: group: ``"slab"`` (the paper's z-plane scheme, scaling-limited by
    #: ``nr3``) or ``"pencil"`` (a Pr x Pc processor grid with two
    #: row/column-internal transposes — see :mod:`repro.grids.pencil`).
    decomposition: str = "slab"
    #: How redistribution payloads move: ``"packfree"`` (default; Alltoallw
    #: block descriptors move strided source views straight into destination
    #: slots, zero intermediate pack/unpack buffers) or ``"packed"`` (the
    #: legacy staged Alltoall marshalling).  Simulated timings are identical;
    #: the pack-free path saves host copies.
    redistribution: str = "packfree"
    #: Autotuner mode (:mod:`repro.tuning`): ``"off"`` (default; zero
    #: overhead — the driver never imports the tuner), ``"consult"`` (look
    #: the workload digest up in the wisdom DB and apply the stored knob
    #: vector on a hit; run unchanged on a miss) or ``"search"`` (consult,
    #: and on a miss run the cost-model-guided search, persist the winner,
    #: then run with it).
    tuning: str = "off"
    #: Path of the wisdom database (append-only JSONL).  ``None`` uses
    #: :data:`repro.tuning.DEFAULT_WISDOM_PATH`.
    wisdom_path: str | None = None
    #: Per-link capacity of the inter-node fabric contention model (B/s per
    #: directed node pair), or ``None`` (default) for the aggregate-capacity
    #: model — the pre-existing path, pinned bit-identical.  Only multi-node
    #: runs read it; it is part of the autotuner's machine-profile digest.
    link_capacity: float | None = None

    def __post_init__(self) -> None:
        if self.version not in VERSIONS:
            raise ValueError(f"unknown version {self.version!r}; choose from {VERSIONS}")
        if self.nbnd < 2 or self.nbnd % 2:
            raise ValueError(f"nbnd must be even and >= 2, got {self.nbnd}")
        if self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if self.taskgroups < 1:
            raise ValueError(f"taskgroups must be >= 1, got {self.taskgroups}")
        if self.n_complex_bands % self.bands_in_flight:
            raise ValueError(
                f"nbnd/2 = {self.n_complex_bands} complex bands must divide evenly "
                f"into groups of {self.bands_in_flight}"
            )
        if self.steps_workers < 1:
            raise ValueError(f"steps_workers must be >= 1, got {self.steps_workers}")
        if self.grainsize_xy < 1 or self.grainsize_z < 1:
            raise ValueError("grainsizes must be >= 1")
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.n_mpi_ranks % self.n_nodes:
            raise ValueError(
                f"{self.n_mpi_ranks} MPI ranks do not distribute evenly over "
                f"{self.n_nodes} nodes"
            )
        if self.kernel_workers < 1:
            raise ValueError(f"kernel_workers must be >= 1, got {self.kernel_workers}")
        if self.decomposition not in ("slab", "pencil"):
            raise ValueError(
                f"decomposition must be 'slab' or 'pencil', got {self.decomposition!r}"
            )
        if self.redistribution not in ("packed", "packfree"):
            raise ValueError(
                "redistribution must be 'packed' or 'packfree', "
                f"got {self.redistribution!r}"
            )
        if self.tuning not in ("off", "consult", "search"):
            raise ValueError(
                f"tuning must be 'off', 'consult' or 'search', got {self.tuning!r}"
            )
        if self.link_capacity is not None and self.link_capacity <= 0:
            raise ValueError(
                f"link_capacity must be positive, got {self.link_capacity}"
            )
        # Validate the backend name against the registry (lazy import keeps
        # config importable without the fft package in degraded contexts).
        # Availability is checked at engine construction, not here, so a
        # config naming an uninstalled optional backend can still be built,
        # serialized, and rejected with a clear error when actually run.
        from repro.fft.backends.registry import known_backends

        if self.fft_backend not in known_backends():
            raise ValueError(
                f"unknown fft_backend {self.fft_backend!r}; "
                f"known backends: {', '.join(sorted(known_backends()))}"
            )

    # -- derived quantities ----------------------------------------------------

    @property
    def n_complex_bands(self) -> int:
        """Complex FFT fields after pairwise band packing (paper: 64)."""
        return self.nbnd // 2

    @property
    def is_task_version(self) -> bool:
        """Whether an OmpSs executor runs this config."""
        return self.version not in ("original", "pipelined")

    @property
    def n_mpi_ranks(self) -> int:
        """MPI processes launched."""
        if self.version in ("original", "pipelined", "ompss_steps"):
            return self.ranks * self.taskgroups
        return self.ranks

    @property
    def threads_per_rank(self) -> int:
        """Hardware threads each MPI process owns."""
        if self.version in ("original", "pipelined"):
            return 1
        if self.version == "ompss_steps":
            return self.steps_workers
        return self.taskgroups

    @property
    def layout_scatter(self) -> int:
        """R of the R x T data layout (scatter-group width)."""
        if self.version in ("original", "pipelined", "ompss_steps"):
            return self.ranks
        return self.ranks  # task versions: ntg = 1, all ranks in one scatter group

    @property
    def layout_groups(self) -> int:
        """T of the R x T data layout (1 for the task versions: ntg off)."""
        if self.version in ("original", "pipelined", "ompss_steps"):
            return self.taskgroups
        return 1

    @property
    def effective_task_switching(self) -> bool:
        """The MPI-task-switching setting after version defaults."""
        if self.task_switching is not None:
            return self.task_switching
        return self.version in ("ompss_steps", "ompss_combined")

    @property
    def bands_in_flight(self) -> int:
        """Complex bands processed per outer-loop iteration."""
        return self.layout_groups

    @property
    def n_iterations(self) -> int:
        """Outer-loop trip count (``DO I = 1, NB, NTG``)."""
        return self.n_complex_bands // self.bands_in_flight

    @property
    def total_streams(self) -> int:
        """Hardware threads the run occupies on the node."""
        return self.n_mpi_ranks * self.threads_per_rank

    def label(self) -> str:
        """Short display label, e.g. ``'8x8 original'``."""
        return f"{self.ranks}x{self.taskgroups} {self.version}"
