"""The Gamma-point trick: two real bands per complex FFT.

At the Gamma point the Kohn-Sham states are real in real space, so their
plane-wave coefficients obey the Hermitian symmetry ``c(-G) = conj(c(G))``.
FFTXlib exploits this by transforming *two* real bands at once as one
complex field ``psi = f1 + i*f2`` — which is why the paper's 128 bands
appear in the trace as "the 64 FFTs".  After the transform the bands are
recovered from the packed result with the G/-G combination::

    c1(G) = (psi(G) + conj(psi(-G))) / 2
    c2(G) = (psi(G) - conj(psi(-G))) / (2i)

This module implements pack/unpack against a sphere's ``minus_index`` table
and the generator of Hermitian (real-band) coefficient sets.  The pipeline
itself is agnostic (any linear diagonal-in-real-space operator with a real
``V`` commutes with the pairing); these helpers close the loop from real
bands to real bands, and the tests verify the recovered bands equal the
per-band application of the operator.
"""

from __future__ import annotations

import numpy as np

from repro.simkit.rng import substream

__all__ = [
    "hermitian_coefficients",
    "pack_real_bands",
    "unpack_real_bands",
    "is_hermitian",
]


def hermitian_coefficients(
    ngm: int, minus_index: np.ndarray, n_bands: int, seed: int
) -> np.ndarray:
    """Random coefficient sets with ``c(-G) = conj(c(G))`` (real bands).

    Returns ``(n_bands, ngm)``; deterministic in ``seed``.
    """
    if minus_index.shape != (ngm,):
        raise ValueError(f"minus_index has shape {minus_index.shape}; expected ({ngm},)")
    rng = substream(seed)
    c = rng.standard_normal((n_bands, ngm)) + 1j * rng.standard_normal((n_bands, ngm))
    # Symmetrize: average each coefficient with the conjugate of its -G
    # partner; G = 0 (self-paired) becomes real automatically.
    sym = 0.5 * (c + np.conj(c[:, minus_index]))
    return sym


def is_hermitian(coeffs: np.ndarray, minus_index: np.ndarray, tol: float = 1e-12) -> bool:
    """Whether each band satisfies ``c(-G) = conj(c(G))`` within ``tol``."""
    c = np.atleast_2d(coeffs)
    return bool(np.all(np.abs(c[:, minus_index] - np.conj(c)) <= tol))


def pack_real_bands(c1: np.ndarray, c2: np.ndarray) -> np.ndarray:
    """Pack two real bands' coefficient sets into one complex field.

    In real space this is ``f1 + i*f2``; in G space simply ``c1 + i*c2``
    (the transform is linear).
    """
    if c1.shape != c2.shape:
        raise ValueError(f"band shapes differ: {c1.shape} vs {c2.shape}")
    return c1 + 1j * c2


def unpack_real_bands(
    psi: np.ndarray, minus_index: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Recover the two real bands from a packed field's coefficients.

    Valid whenever the packed field is (a linear combination of) real-band
    pairs processed by an operator that is real in real space — the VOFR
    kernel qualifies.
    """
    if psi.shape[-1] != minus_index.shape[0]:
        raise ValueError(
            f"psi has {psi.shape[-1]} coefficients; minus_index covers {minus_index.shape[0]}"
        )
    conj_minus = np.conj(psi[..., minus_index])
    c1 = 0.5 * (psi + conj_minus)
    c2 = -0.5j * (psi - conj_minus)
    return c1, c2
