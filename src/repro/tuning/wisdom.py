"""The wisdom database: append-only JSONL of best-known knob vectors.

FFTW's wisdom files are the model: a persisted store keyed by problem
identity, consulted at plan time, accumulated across runs.  Here each line
is one self-contained JSON record::

    {"schema": 1, "digest": "sha256:...", "knobs": {...},
     "score": 0.0123, "predicted_s": 0.0117, "source": "search",
     "provenance": {...}}

Design choices, each load-bearing for durability:

* **Append-only.**  A record is written with a single ``os.write`` on an
  ``O_APPEND`` descriptor — on POSIX, concurrent appenders from separate
  processes interleave whole lines, never bytes (the concurrency test
  hammers this).  Nothing ever rewrites the file; the best entry per digest
  is resolved at load time (lowest score wins, later lines break ties).
* **Corruption-tolerant load.**  A truncated tail (a crashed writer) or a
  garbage line is skipped, not fatal; the next append starts by repairing a
  missing trailing newline so the damaged line never concatenates with a
  good one.
* **Versioned schema.**  Records carry ``schema``; :func:`migrate_record`
  upgrades older layouts in memory on load (v0 stored the knob vector under
  ``"best"`` with the score inside it), so a DB written by an older build
  keeps working without a rewrite.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import typing as _t

from repro.tuning.digest import KNOB_FIELDS

__all__ = [
    "SCHEMA_VERSION",
    "WisdomEntry",
    "WisdomDB",
    "migrate_record",
    "consult",
]

#: Current record-layout version.
SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class WisdomEntry:
    """One best-known configuration for one workload digest."""

    digest: str
    knobs: dict
    #: Measured phase time of the winning run (seconds; lower is better).
    score: float
    #: The cost model's prediction for the winner, if one was made.
    predicted_s: float | None = None
    #: Where the entry came from: ``"search"``, ``"import"``, ``"manual"``.
    source: str = "search"
    #: Free-form search record (rungs, candidates evaluated, ...).
    provenance: dict = dataclasses.field(default_factory=dict)

    def to_record(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "digest": self.digest,
            "knobs": dict(self.knobs),
            "score": float(self.score),
            "predicted_s": None if self.predicted_s is None else float(self.predicted_s),
            "source": self.source,
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_record(cls, record: dict) -> "WisdomEntry":
        return cls(
            digest=str(record["digest"]),
            knobs=dict(record["knobs"]),
            score=float(record["score"]),
            predicted_s=(
                None if record.get("predicted_s") is None
                else float(record["predicted_s"])
            ),
            source=str(record.get("source", "search")),
            provenance=dict(record.get("provenance", {})),
        )


def migrate_record(record: dict) -> dict | None:
    """Upgrade an older record layout to the current schema, in memory.

    Returns ``None`` for records that cannot be understood (they are
    skipped on load — an unknown *newer* schema is not guessed at).
    """
    schema = record.get("schema")
    if schema == SCHEMA_VERSION:
        return record
    if schema is None and "best" in record:
        # v0: {"digest": ..., "best": {<knobs..., "score": s}}
        best = dict(record.get("best") or {})
        score = best.pop("score", None)
        if "digest" not in record or score is None:
            return None
        return {
            "schema": SCHEMA_VERSION,
            "digest": record["digest"],
            "knobs": {k: v for k, v in best.items() if k in KNOB_FIELDS},
            "score": score,
            "predicted_s": None,
            "source": record.get("source", "migrated-v0"),
            "provenance": {"migrated_from": 0},
        }
    return None


class WisdomDB:
    """In-memory best-per-digest index over one append-only JSONL file.

    ``path=None`` gives a purely in-memory DB (tests, dry runs).
    """

    def __init__(self, path: str | pathlib.Path | None = None):
        self.path = pathlib.Path(path) if path is not None else None
        self._best: dict[str, WisdomEntry] = {}
        self.skipped_lines = 0
        if self.path is not None and self.path.exists():
            self._load()

    # -- load ---------------------------------------------------------------

    def _load(self) -> None:
        assert self.path is not None
        raw = self.path.read_bytes()
        for line in raw.split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self.skipped_lines += 1
                continue
            if not isinstance(record, dict):
                self.skipped_lines += 1
                continue
            migrated = migrate_record(record)
            if migrated is None:
                self.skipped_lines += 1
                continue
            try:
                entry = WisdomEntry.from_record(migrated)
            except (KeyError, TypeError, ValueError):
                self.skipped_lines += 1
                continue
            self._index(entry)

    def _index(self, entry: WisdomEntry) -> None:
        # Lowest score wins; a later record at an equal-or-better score
        # replaces (later appends carry fresher provenance).
        held = self._best.get(entry.digest)
        if held is None or entry.score <= held.score:
            self._best[entry.digest] = entry

    # -- read ---------------------------------------------------------------

    def lookup(self, digest: str) -> WisdomEntry | None:
        return self._best.get(digest)

    def entries(self) -> list[WisdomEntry]:
        """Best entry per digest, sorted by digest (deterministic)."""
        return [self._best[d] for d in sorted(self._best)]

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, digest: str) -> bool:
        return digest in self._best

    # -- write --------------------------------------------------------------

    def record(self, entry: WisdomEntry) -> None:
        """Index the entry and append it to the JSONL file (if persisted)."""
        self._index(entry)
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = (
            json.dumps(entry.to_record(), sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        # O_RDWR, not O_WRONLY: the tail-repair probe below reads one byte.
        fd = os.open(str(self.path), os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            # Repair a truncated tail before extending the log: if the last
            # byte is not a newline (a writer died mid-line), start on a
            # fresh line so the damaged record stays isolated (and skipped
            # on the next load) instead of swallowing this one.
            size = os.fstat(fd).st_size
            if size > 0 and os.pread(fd, 1, size - 1) != b"\n":
                os.write(fd, b"\n")
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)

    # -- portability --------------------------------------------------------

    def export(self, path: str | pathlib.Path) -> int:
        """Write the best-per-digest view as fresh JSONL; returns the count."""
        out = pathlib.Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            json.dumps(e.to_record(), sort_keys=True, separators=(",", ":"))
            for e in self.entries()
        ]
        out.write_text("".join(line + "\n" for line in lines))
        return len(lines)

    def import_from(self, path: str | pathlib.Path, source: str = "import") -> int:
        """Merge another wisdom file; returns how many entries improved us."""
        other = WisdomDB(path)
        merged = 0
        for entry in other.entries():
            held = self._best.get(entry.digest)
            if held is not None and held.score <= entry.score:
                continue
            self.record(dataclasses.replace(entry, source=source))
            merged += 1
        return merged


# -- memoized consult ----------------------------------------------------------
#
# The warm path (driver/service admission) must cost well under 1% of a run.
# The DB file is parsed at most once per (path, mtime, size) generation per
# process; lookups after that are two dict probes.

_DB_CACHE: dict[tuple[str, int, int], WisdomDB] = {}
_DB_CACHE_MAX = 8


def consult(path: str | pathlib.Path, digest: str) -> WisdomEntry | None:
    """Memoized lookup: load/refresh the DB only when the file changed."""
    p = pathlib.Path(path)
    try:
        stat = p.stat()
        key = (str(p), stat.st_mtime_ns, stat.st_size)
    except OSError:
        return None
    db = _DB_CACHE.get(key)
    if db is None:
        if len(_DB_CACHE) >= _DB_CACHE_MAX:
            _DB_CACHE.clear()
        db = WisdomDB(p)
        _DB_CACHE[key] = db
    return db.lookup(digest)
