"""Self-tuning runtime: workload digests, wisdom DB, cost model, search.

The FFTW "wisdom" idea applied to the runtime knobs this codebase has
accumulated (NTG, scheduler, grainsizes, decomposition, redistribution,
FFT backend, kernel workers): search the space once per workload digest,
persist the winner, and let every later run — driver, sweep, service —
consult the database for free.

Entry points:

* :func:`resolve_tuning` — what the driver calls with
  ``RunConfig.tuning != "off"``: digest the workload, consult (memoized)
  the wisdom DB, optionally fall back to :func:`repro.tuning.search.search`
  on a cold cache, and return the resolved config plus the manifest's
  ``tuning`` record.
* :class:`WisdomDB` / :func:`consult` — the persisted store.
* :func:`workload_digest` / :data:`KNOB_FIELDS` — the identity scheme.

See ``docs/TUNING.md`` for the file format and search strategy.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib

from repro.core.config import RunConfig
from repro.machine.knl import KnlParameters
from repro.tuning.costmodel import WorkloadModel, predict
from repro.tuning.digest import (
    DIGEST_SCHEMA,
    KNOB_FIELDS,
    digest_doc,
    knobs_of,
    workload_digest,
)
from repro.tuning.search import candidate_knobs, search
from repro.tuning.wisdom import SCHEMA_VERSION, WisdomDB, WisdomEntry, consult

__all__ = [
    "DIGEST_SCHEMA",
    "KNOB_FIELDS",
    "SCHEMA_VERSION",
    "WisdomDB",
    "WisdomEntry",
    "WorkloadModel",
    "apply_knobs",
    "candidate_knobs",
    "consult",
    "default_wisdom_path",
    "digest_doc",
    "knobs_of",
    "predict",
    "resolve_tuning",
    "search",
    "workload_digest",
]


def default_wisdom_path() -> pathlib.Path:
    """``$REPRO_WISDOM`` or ``wisdom.jsonl`` in the working directory."""
    return pathlib.Path(os.environ.get("REPRO_WISDOM", "wisdom.jsonl"))


def apply_knobs(config: RunConfig, knobs: dict) -> RunConfig | None:
    """The config with a stored knob vector applied, or ``None`` if invalid.

    A wisdom entry can postdate the environment it was recorded in (e.g. a
    backend that is no longer importable, a taskgroup count invalid for a
    different band total).  Strategy: try the full vector; if that fails,
    retry without the backend knobs; if even the scheduling knobs do not
    fit, apply nothing — a stale entry must never break a run.
    """
    vector = {k: knobs[k] for k in KNOB_FIELDS if k in knobs}
    for drop in ((), ("fft_backend", "kernel_workers")):
        trial = {k: v for k, v in vector.items() if k not in drop}
        if not trial:
            continue
        try:
            return dataclasses.replace(config, **trial)
        except ValueError:
            continue
    return None


def resolve_tuning(
    config: RunConfig, knl: KnlParameters | None = None
) -> tuple[RunConfig, dict]:
    """Resolve ``config.tuning`` into a concrete config + manifest record.

    Called once by the driver before any geometry or machine is built;
    the returned config is an ordinary one (its ``tuning`` field is left
    as-is but never re-read), so the simulation downstream is exactly the
    one a hand-written config with the same knobs would produce.
    """
    path = pathlib.Path(config.wisdom_path) if config.wisdom_path else default_wisdom_path()
    digest = workload_digest(config, knl)
    info: dict = {
        "mode": config.tuning,
        "digest": digest,
        "wisdom_path": str(path),
        "hit": False,
        "applied": False,
        "source": None,
        "knobs": None,
        "score": None,
        "predicted_s": None,
    }
    entry = consult(path, digest)
    if entry is not None:
        info["hit"] = True
        info["source"] = entry.source
    elif config.tuning == "search":
        db = WisdomDB(path)
        entry = search(config, knl=knl, db=db)
        info["source"] = "search"
    if entry is None:
        return config, info
    info["knobs"] = dict(entry.knobs)
    info["score"] = float(entry.score)
    info["predicted_s"] = entry.predicted_s
    resolved = apply_knobs(config, entry.knobs)
    if resolved is None:
        return config, info
    info["applied"] = True
    return resolved, info
