"""Workload digests: the wisdom database's lookup key.

A digest identifies *what* is being computed and *where* — the workload
shape (grid cutoffs, bands), the executor family, the node count and the
machine profile — while deliberately excluding every knob the autotuner is
allowed to move (NTG, scheduler, grainsizes, decomposition, redistribution,
FFT backend, kernel workers).  Two runs with the same digest are the same
tuning problem; the DB stores one best-known knob vector per digest.

The serialization reuses the sweep engine's canonical-JSON convention
(:func:`repro.sweep.engine.canonical_json`), so digests are byte-stable
across hosts, processes and executor modes — the durability tests pin
exactly that.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.core.config import RunConfig
from repro.machine.knl import KnlParameters
from repro.sweep.engine import canonical_json

__all__ = [
    "DIGEST_SCHEMA",
    "KNOB_FIELDS",
    "digest_doc",
    "workload_digest",
    "knobs_of",
]

#: Version tag of the digest document layout.  Bump on any field change:
#: old DB entries then simply stop matching (a clean cold cache), never
#: mis-match.
DIGEST_SCHEMA = "repro.tuning.digest/1"

#: The knob vector the tuner is allowed to move — everything else on a
#: :class:`RunConfig` is workload identity, not tuning.
KNOB_FIELDS: tuple[str, ...] = (
    "taskgroups",
    "scheduler",
    "grainsize_xy",
    "grainsize_z",
    "decomposition",
    "redistribution",
    "fft_backend",
    "kernel_workers",
)


def digest_doc(config: RunConfig, knl: KnlParameters | None = None) -> dict:
    """The canonical document a workload digest hashes.

    ``link_capacity`` rides inside the machine profile: it changes the
    fabric physics, so a run with a per-link contention model is a
    different tuning problem than one without.
    """
    machine = dataclasses.asdict(knl or KnlParameters())
    machine["link_capacity"] = config.link_capacity
    return {
        "schema": DIGEST_SCHEMA,
        "ecutwfc": float(config.ecutwfc),
        "alat": float(config.alat),
        "nbnd": int(config.nbnd),
        "dual": float(config.dual),
        "ranks": int(config.ranks),
        "version": str(config.version),
        "n_nodes": int(config.n_nodes),
        "data_mode": bool(config.data_mode),
        "machine": machine,
    }


def workload_digest(config: RunConfig, knl: KnlParameters | None = None) -> str:
    """``sha256:...`` content digest of the workload's canonical document."""
    doc = canonical_json(digest_doc(config, knl))
    return "sha256:" + hashlib.sha256(doc.encode()).hexdigest()


def knobs_of(config: RunConfig) -> dict:
    """The config's current knob vector (the search incumbent)."""
    return {field: getattr(config, field) for field in KNOB_FIELDS}
