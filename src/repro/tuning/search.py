"""Cost-model-guided knob search with a successive-halving sweep fallback.

The search pipeline for one workload digest:

1. **Enumerate** every valid knob vector (taskgroup counts that divide the
   band batch, scheduler policies only where an OmpSs runtime reads them,
   grainsizes only for the per-step/combined executors, both
   decompositions; redistribution stays ``packfree`` — simulated timings
   are pinned identical to ``packed``, so searching it would only burn
   budget).  Validity is decided by the one authority that knows:
   :class:`RunConfig` construction.
2. **Rank** the candidates with the analytic cost model
   (:mod:`repro.tuning.costmodel`) and keep the top-k — the search
   evaluates a handful of simulations instead of the cross product.
3. **Successive halving**: rung 0 simulates the top-k at a reduced band
   count (the cheap budget), the best ``survivors`` advance to rung 1 at
   the full workload.  The **incumbent** — the config's own knob vector —
   is always promoted straight to the final rung, so the recorded winner
   can never lose to the hand-picked default (the tuned-vs-default
   experiment's win-rate guarantee).
4. The winner's full-workload time becomes the wisdom entry's score.

Rungs execute through :func:`repro.sweep.run_sweep` — ``jobs``-parallel,
deterministic, byte-identical across executor modes.  Search runs are
meta-mode with telemetry off: simulated timings do not depend on payload
math, so tuning scores transfer directly to data-mode runs.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from repro.core.config import RunConfig
from repro.machine.knl import KnlParameters
from repro.sweep.engine import SweepTask, canonical_json, run_sweep
from repro.tuning.costmodel import WorkloadModel, score_candidates
from repro.tuning.digest import KNOB_FIELDS, knobs_of, workload_digest
from repro.tuning.wisdom import WisdomDB, WisdomEntry

__all__ = ["candidate_knobs", "search", "reduce_score"]

_TASKGROUP_CHOICES = (1, 2, 4, 8, 16)
_SCHEDULER_CHOICES = ("fifo", "lifo", "locality")
_GRAINSIZE_XY_CHOICES = (5, 10, 20)
_GRAINSIZE_Z_CHOICES = (100, 200, 400)
_DECOMPOSITION_CHOICES = ("slab", "pencil")


def reduce_score(task: SweepTask, result, ideal, trace) -> dict:
    """Sweep reducer: just the objective (phase time) and the failure bit."""
    return {
        "phase_time_s": float(result.phase_time),
        "failed": bool(result.failed),
    }


def _try_config(config: RunConfig, knobs: dict, **overrides) -> RunConfig | None:
    """The candidate's runnable config, or ``None`` if invalid."""
    try:
        return dataclasses.replace(config, **knobs, **overrides)
    except ValueError:
        return None


def candidate_knobs(config: RunConfig) -> list[dict]:
    """Every valid knob vector for this workload, deterministically ordered.

    ``fft_backend`` / ``kernel_workers`` / ``redistribution`` ride along
    pinned at the config's own values: the first two never move simulated
    time (only real payload math), the last is simulated-identical by
    construction — all three stay in the stored vector for provenance.
    """
    schedulers: tuple[str, ...] = (
        _SCHEDULER_CHOICES if config.is_task_version else (config.scheduler,)
    )
    if config.version in ("ompss_steps", "ompss_combined"):
        grains_xy: tuple[int, ...] = _GRAINSIZE_XY_CHOICES
        grains_z: tuple[int, ...] = _GRAINSIZE_Z_CHOICES
    else:
        grains_xy = (config.grainsize_xy,)
        grains_z = (config.grainsize_z,)
    out: list[dict] = []
    for tg in _TASKGROUP_CHOICES:
        for decomposition in _DECOMPOSITION_CHOICES:
            for scheduler in schedulers:
                for gx in grains_xy:
                    for gz in grains_z:
                        knobs = {
                            "taskgroups": tg,
                            "scheduler": scheduler,
                            "grainsize_xy": gx,
                            "grainsize_z": gz,
                            "decomposition": decomposition,
                            "redistribution": config.redistribution,
                            "fft_backend": config.fft_backend,
                            "kernel_workers": config.kernel_workers,
                        }
                        if _try_config(config, knobs) is not None:
                            out.append(knobs)
    incumbent = knobs_of(config)
    if incumbent not in out:
        out.append(incumbent)
    return out


def _rung_nbnd(config: RunConfig, candidates: list[dict]) -> int:
    """The reduced band count of rung 0: every candidate stays valid.

    ``nbnd/2`` must stay divisible by every candidate's band batch, so the
    cheap rung uses the largest multiple of ``2 * lcm(batches)`` at or
    below a quarter of the workload (floored at one lcm block).
    """
    batches = set()
    for knobs in candidates:
        cand = _try_config(config, knobs)
        if cand is not None:
            batches.add(cand.bands_in_flight)
    lcm = 1
    for b in sorted(batches):
        lcm = lcm * b // math.gcd(lcm, b)
    n_complex = config.nbnd // 2
    reduced = max((n_complex // 4) // lcm, 1) * lcm
    return min(2 * reduced, config.nbnd)


def _evaluate(
    config: RunConfig,
    candidates: list[dict],
    nbnd: int,
    knl: KnlParameters | None,
    jobs: int,
    mode: str | None,
    rung: int,
) -> list[tuple[float, dict]]:
    """Simulate the candidates at ``nbnd`` bands; (time, knobs) ascending."""
    tasks = []
    runnable = []
    for knobs in candidates:
        cand = _try_config(
            config, knobs, nbnd=nbnd, data_mode=False, telemetry=False,
            faults=None, tuning="off",
        )
        if cand is None:
            continue
        key = f"rung{rung}:" + canonical_json(knobs)
        tasks.append(SweepTask(
            key=key, config=cand, knl=knl,
            reducer="repro.tuning.search:reduce_score",
        ))
        runnable.append(knobs)
    result = run_sweep(tasks, jobs=jobs, mode=mode)
    scored = []
    for knobs, record in zip(runnable, result.records):
        if record.failed:
            continue
        scored.append((float(record.summary["phase_time_s"]), knobs))
    scored.sort(key=lambda pair: (pair[0], canonical_json(pair[1])))
    return scored


def search(
    config: RunConfig,
    knl: KnlParameters | None = None,
    db: WisdomDB | None = None,
    jobs: int = 1,
    mode: str | None = None,
    top_k: int = 8,
    survivors: int = 3,
) -> WisdomEntry:
    """Find the best knob vector for ``config``'s workload; record it.

    Returns the winning :class:`WisdomEntry` (appended to ``db`` when one
    is given).  Deterministic for a given (config, knl, top_k, survivors).
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if survivors < 1:
        raise ValueError(f"survivors must be >= 1, got {survivors}")
    digest = workload_digest(config, knl)
    incumbent = knobs_of(config)
    candidates = candidate_knobs(config)
    workload = WorkloadModel.from_config(config)
    ranked = score_candidates(
        workload, candidates, knl=knl, link_capacity=config.link_capacity
    )
    predicted = {canonical_json(k): s for s, k in ranked}
    shortlist = [knobs for _score, knobs in ranked[:top_k]]

    # Rung 0: the cost model's shortlist at a reduced band budget.  The
    # incumbent is excluded here — it holds a bye to the final rung.
    rung0 = [k for k in shortlist if k != incumbent]
    cheap_nbnd = _rung_nbnd(config, rung0 + [incumbent])
    evaluated = 0
    finalists: list[dict] = []
    if rung0 and cheap_nbnd < config.nbnd:
        scored0 = _evaluate(config, rung0, cheap_nbnd, knl, jobs, mode, rung=0)
        evaluated += len(scored0)
        finalists = [knobs for _t_, knobs in scored0[:survivors]]
    else:
        finalists = rung0[:survivors]

    # Final rung: survivors + the incumbent at the full workload.  The
    # incumbent's presence makes the winner <= the default by definition.
    final_pool = finalists + [incumbent]
    scored_final = _evaluate(
        config, final_pool, config.nbnd, knl, jobs, mode, rung=1
    )
    evaluated += len(scored_final)
    if not scored_final:
        raise RuntimeError(
            f"tuning search: every candidate failed for digest {digest}"
        )
    best_time, best_knobs = scored_final[0]
    entry = WisdomEntry(
        digest=digest,
        knobs=dict(best_knobs),
        score=best_time,
        predicted_s=predicted.get(canonical_json(best_knobs)),
        source="search",
        provenance={
            "candidates": len(candidates),
            "shortlist": len(shortlist),
            "evaluated": evaluated,
            "rung0_nbnd": cheap_nbnd,
            "incumbent_s": next(
                (t for t, k in scored_final if k == incumbent), None
            ),
        },
    )
    if db is not None:
        db.record(entry)
    return entry
