"""Cheap analytic cost model: rank knob candidates without simulating them.

A full simulated run builds geometry, a machine, a world and an executor —
far too heavy to price hundreds of candidate knob vectors.  This model
prices a candidate from *closed-form totals* of the same quantities the
simulator charges for:

* **compute volume** — the per-stick/per-plane instruction formulas of
  :class:`repro.core.pipeline.CostModel` (same ``CostConstants``), summed
  over ranks and iterations instead of dispatched as events;
* **exchange bytes** — the pack and scatter/transpose alltoall(w) payloads.
  The formulas are pinned against real :class:`ExchangePlan` block volumes
  by :func:`planned_scatter_bytes` (the conformance test) — the model and
  the data plane price the same bytes;
* **fabric costs** — injection/capacity sharing on node, the bisection
  fabric across nodes, and the optional per-link contention cap
  (``link_capacity``).

One :class:`WorkloadModel` is built per workload (a single
``FftDescriptor`` — sphere enumeration only, no layout, no machine) and
then every candidate is priced in microseconds of host time.  Scores are
*rankings*, not predictions of simulated seconds: the search only needs
the ordering to pick its top-k, and the manifest records predicted vs.
measured so the gap stays visible.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.config import RunConfig
from repro.core.pipeline import CostConstants
from repro.machine.knl import KnlParameters

__all__ = [
    "WorkloadModel",
    "predict",
    "score_candidates",
    "planned_scatter_bytes",
    "estimated_scatter_bytes",
]

#: Bytes per complex128 grid element (the data plane's payload unit).
_ITEMSIZE = 16.0


@dataclasses.dataclass(frozen=True)
class WorkloadModel:
    """The digest-level workload quantities every candidate shares."""

    ecutwfc: float
    alat: float
    nbnd: int
    ranks: int
    version: str
    n_nodes: int
    ngw: int
    nsticks: int
    nr1: int
    nr2: int
    nr3: int
    nonempty_y_lines: int

    @classmethod
    def from_config(cls, config: RunConfig) -> "WorkloadModel":
        # One descriptor per workload; deliberately NOT via build_geometry —
        # that cache is keyed per (scatter, groups, decomposition) and a
        # candidate scan must not flush it with layouts it never runs.
        import numpy as np

        from repro.grids import Cell, FftDescriptor

        desc = FftDescriptor(Cell(alat=config.alat), ecutwfc=config.ecutwfc,
                             dual=config.dual)
        return cls(
            ecutwfc=config.ecutwfc,
            alat=config.alat,
            nbnd=config.nbnd,
            ranks=config.ranks,
            version=config.version,
            n_nodes=config.n_nodes,
            ngw=desc.ngw,
            nsticks=int(desc.sticks.nsticks),
            nr1=desc.nr1,
            nr2=desc.nr2,
            nr3=desc.nr3,
            nonempty_y_lines=int(len(np.unique(desc.sticks.coords[:, 1]))),
        )


def _layout_of(version: str, ranks: int, taskgroups: int) -> tuple[int, int, int]:
    """(R, T, threads_per_rank) of the R x T layout a candidate runs."""
    if version in ("original", "pipelined", "ompss_steps"):
        threads = 1 if version in ("original", "pipelined") else 2
        return ranks, taskgroups, threads
    return ranks, 1, taskgroups


def estimated_scatter_bytes(w: WorkloadModel, R: int) -> float:
    """Analytic payload of one forward slab scatter across a scatter group.

    Every (stick, z) element moves exactly once from its stick column into
    its plane slot: ``nsticks * nr3`` complex values, independent of how
    the R ranks slice it.  :func:`planned_scatter_bytes` pins this against
    the real block descriptors.
    """
    del R  # total volume is R-invariant; the parameter documents intent
    return _ITEMSIZE * w.nsticks * w.nr3


def planned_scatter_bytes(layout) -> float:
    """Total send-block bytes of the data-mode forward scatter plans.

    Used by the conformance test only — builds the real
    :class:`ExchangePlan` per scatter rank and sums its descriptor volumes.
    """
    from repro.core.redistribute import scatter_fw_plan

    total = 0.0
    for r in range(layout.R):
        plan = scatter_fw_plan(layout, r, data_mode=True)
        total += sum(block.nbytes for block in plan.send_blocks)
    return total


def predict(
    w: WorkloadModel,
    knobs: dict,
    knl: KnlParameters | None = None,
    link_capacity: float | None = None,
    constants: CostConstants | None = None,
) -> dict:
    """Price one candidate knob vector; returns the component breakdown.

    ``knobs`` is a :data:`repro.tuning.digest.KNOB_FIELDS` dict.  The
    returned ``total_s`` is the ranking score (lower is better).
    """
    knl = knl or KnlParameters()
    c = constants or CostConstants()
    tg = int(knobs.get("taskgroups", 1))
    decomposition = knobs.get("decomposition", "slab")
    R, T, threads = _layout_of(w.version, w.ranks, tg)
    procs = R * T
    streams = procs * threads
    n_complex = w.nbnd // 2
    bands_in_flight = T
    n_iter = max(n_complex // max(bands_in_flight, 1), 1)

    log_n1 = math.log2(max(w.nr1, 2))
    log_n2 = math.log2(max(w.nr2, 2))
    log_n3 = math.log2(max(w.nr3, 2))

    # -- compute instructions per rank per iteration (average rank) --------
    prep = c.prep_per_g * w.ngw * T / max(procs, 1)
    pack = 0.0
    if T > 1:
        pack = 2.0 * (c.pack_per_point * (w.nsticks / R) * w.nr3
                      + c.instr_per_message * (T - 1))
    fft_z = 2.0 * c.fft_instr_per_flop * 5.0 * (w.nsticks / R) * w.nr3 * log_n3
    marshal = 2.0 * (2.0 * c.scatter_per_point * (w.nsticks / R) * w.nr3
                     + c.instr_per_message * (R - 1))
    if decomposition == "pencil":
        fft_rest = 2.0 * c.fft_instr_per_flop * 5.0 * (
            (w.nr1 * w.nr3 / R) * w.nr2 * log_n2
            + (w.nr2 * w.nr3 / R) * w.nr1 * log_n1
        )
        # The second transpose moves the full brick again.
        marshal *= 2.0
    else:
        per_plane = (w.nonempty_y_lines * w.nr1 * log_n1
                     + w.nr1 * w.nr2 * log_n2)
        fft_rest = 2.0 * c.fft_instr_per_flop * (w.nr3 / R) * per_plane
    vofr = c.vofr_per_point * (w.nr3 / R) * w.nr1 * w.nr2
    instr_per_iter = prep + pack + fft_z + marshal + fft_rest + vofr

    # Effective issue rate: nominal ~1 IPC, scaled by hyper-thread issue
    # sharing once streams exceed the cores of their nodes (the paper's
    # "IPC cut in half from 8x8 to 16x8" anchor).
    streams_per_node = streams / max(w.n_nodes, 1)
    share = min(1.0, knl.n_cores / max(streams_per_node, 1.0))
    ipc_eff = 1.0 * share
    compute_s = n_iter * instr_per_iter / (ipc_eff * knl.frequency_hz)

    # -- exchange bytes per iteration --------------------------------------
    scatter_bytes = 2.0 * estimated_scatter_bytes(w, R)  # fw + bw
    if decomposition == "pencil":
        scatter_bytes *= 2.0  # two transposes per direction
    pack_bytes = 2.0 * _ITEMSIZE * w.ngw * T if T > 1 else 0.0
    bytes_per_iter = (scatter_bytes + pack_bytes) * T  # T concurrent groups
    on_node_bw = min(knl.net_capacity, procs * knl.net_injection_bw)
    comm_s = n_iter * bytes_per_iter / on_node_bw
    msgs = n_iter * procs * (2.0 * (R - 1) + (2.0 * (T - 1) if T > 1 else 0.0))
    comm_s += msgs * knl.net_latency / max(procs, 1)
    if w.n_nodes > 1:
        inter_frac = (w.n_nodes - 1) / w.n_nodes
        inter_bytes = n_iter * bytes_per_iter * inter_frac
        fabric_bw = knl.fabric_injection_bw * max(w.n_nodes / 2.0, 1.0)
        fabric_s = inter_bytes / fabric_bw
        cap = link_capacity
        if cap is not None:
            links = max(w.n_nodes * (w.n_nodes - 1), 1)
            fabric_s = max(fabric_s, (inter_bytes / links) / cap)
        comm_s += fabric_s

    # -- runtime overhead --------------------------------------------------
    overhead_s = 0.0
    if w.version not in ("original", "pipelined"):
        if w.version == "ompss_perfft":
            n_tasks = float(n_complex)
        else:
            gx = max(int(knobs.get("grainsize_xy", 10)), 1)
            gz = max(int(knobs.get("grainsize_z", 200)), 1)
            per_iter_tasks = (math.ceil((w.nr3 / R) / gx)
                              + math.ceil((w.nsticks / R) / gz) + 6.0)
            n_tasks = n_iter * per_iter_tasks * procs
        overhead_s = n_tasks * 3.0e-6 / max(procs, 1)

    total = compute_s + comm_s + overhead_s
    return {
        "compute_s": compute_s,
        "comm_s": comm_s,
        "overhead_s": overhead_s,
        "total_s": total,
    }


def score_candidates(
    w: WorkloadModel,
    candidates: list[dict],
    knl: KnlParameters | None = None,
    link_capacity: float | None = None,
) -> list[tuple[float, dict]]:
    """Price every candidate; returns ``(total_s, knobs)`` sorted ascending.

    Ties (e.g. scheduler variants the model cannot distinguish) break on
    the candidate's canonical knob serialization — fully deterministic.
    """
    from repro.sweep.engine import canonical_json

    scored = [
        (predict(w, knobs, knl=knl, link_capacity=link_capacity)["total_s"], knobs)
        for knobs in candidates
    ]
    scored.sort(key=lambda pair: (pair[0], canonical_json(pair[1])))
    return scored
